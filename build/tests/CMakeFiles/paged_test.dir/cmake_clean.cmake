file(REMOVE_RECURSE
  "CMakeFiles/paged_test.dir/paged_test.cc.o"
  "CMakeFiles/paged_test.dir/paged_test.cc.o.d"
  "paged_test"
  "paged_test.pdb"
  "paged_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paged_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
