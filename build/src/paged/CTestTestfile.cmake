# CMake generated Testfile for 
# Source directory: /root/repo/src/paged
# Build directory: /root/repo/build/src/paged
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
