file(REMOVE_RECURSE
  "CMakeFiles/payg_paged.dir/fragment_factory.cc.o"
  "CMakeFiles/payg_paged.dir/fragment_factory.cc.o.d"
  "CMakeFiles/payg_paged.dir/page_cache.cc.o"
  "CMakeFiles/payg_paged.dir/page_cache.cc.o.d"
  "CMakeFiles/payg_paged.dir/paged_data_vector.cc.o"
  "CMakeFiles/payg_paged.dir/paged_data_vector.cc.o.d"
  "CMakeFiles/payg_paged.dir/paged_dictionary.cc.o"
  "CMakeFiles/payg_paged.dir/paged_dictionary.cc.o.d"
  "CMakeFiles/payg_paged.dir/paged_fragment.cc.o"
  "CMakeFiles/payg_paged.dir/paged_fragment.cc.o.d"
  "CMakeFiles/payg_paged.dir/paged_inverted_index.cc.o"
  "CMakeFiles/payg_paged.dir/paged_inverted_index.cc.o.d"
  "libpayg_paged.a"
  "libpayg_paged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_paged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
