# Empty compiler generated dependencies file for payg_paged.
# This may be replaced when dependencies are built.
