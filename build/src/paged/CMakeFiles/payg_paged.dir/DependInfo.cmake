
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paged/fragment_factory.cc" "src/paged/CMakeFiles/payg_paged.dir/fragment_factory.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/fragment_factory.cc.o.d"
  "/root/repo/src/paged/page_cache.cc" "src/paged/CMakeFiles/payg_paged.dir/page_cache.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/page_cache.cc.o.d"
  "/root/repo/src/paged/paged_data_vector.cc" "src/paged/CMakeFiles/payg_paged.dir/paged_data_vector.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/paged_data_vector.cc.o.d"
  "/root/repo/src/paged/paged_dictionary.cc" "src/paged/CMakeFiles/payg_paged.dir/paged_dictionary.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/paged_dictionary.cc.o.d"
  "/root/repo/src/paged/paged_fragment.cc" "src/paged/CMakeFiles/payg_paged.dir/paged_fragment.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/paged_fragment.cc.o.d"
  "/root/repo/src/paged/paged_inverted_index.cc" "src/paged/CMakeFiles/payg_paged.dir/paged_inverted_index.cc.o" "gcc" "src/paged/CMakeFiles/payg_paged.dir/paged_inverted_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/payg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/payg_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/payg_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/payg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
