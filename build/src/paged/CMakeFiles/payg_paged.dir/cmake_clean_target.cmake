file(REMOVE_RECURSE
  "libpayg_paged.a"
)
