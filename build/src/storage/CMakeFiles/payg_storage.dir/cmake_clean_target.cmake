file(REMOVE_RECURSE
  "libpayg_storage.a"
)
