file(REMOVE_RECURSE
  "CMakeFiles/payg_storage.dir/byte_stream.cc.o"
  "CMakeFiles/payg_storage.dir/byte_stream.cc.o.d"
  "CMakeFiles/payg_storage.dir/page.cc.o"
  "CMakeFiles/payg_storage.dir/page.cc.o.d"
  "CMakeFiles/payg_storage.dir/page_file.cc.o"
  "CMakeFiles/payg_storage.dir/page_file.cc.o.d"
  "CMakeFiles/payg_storage.dir/storage_manager.cc.o"
  "CMakeFiles/payg_storage.dir/storage_manager.cc.o.d"
  "libpayg_storage.a"
  "libpayg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
