# Empty compiler generated dependencies file for payg_storage.
# This may be replaced when dependencies are built.
