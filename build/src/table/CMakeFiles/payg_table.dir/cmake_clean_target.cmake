file(REMOVE_RECURSE
  "libpayg_table.a"
)
