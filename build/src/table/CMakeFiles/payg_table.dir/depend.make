# Empty dependencies file for payg_table.
# This may be replaced when dependencies are built.
