file(REMOVE_RECURSE
  "CMakeFiles/payg_table.dir/partition.cc.o"
  "CMakeFiles/payg_table.dir/partition.cc.o.d"
  "CMakeFiles/payg_table.dir/table.cc.o"
  "CMakeFiles/payg_table.dir/table.cc.o.d"
  "libpayg_table.a"
  "libpayg_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
