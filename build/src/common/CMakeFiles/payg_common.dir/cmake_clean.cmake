file(REMOVE_RECURSE
  "CMakeFiles/payg_common.dir/crc32.cc.o"
  "CMakeFiles/payg_common.dir/crc32.cc.o.d"
  "CMakeFiles/payg_common.dir/status.cc.o"
  "CMakeFiles/payg_common.dir/status.cc.o.d"
  "CMakeFiles/payg_common.dir/stopwatch.cc.o"
  "CMakeFiles/payg_common.dir/stopwatch.cc.o.d"
  "libpayg_common.a"
  "libpayg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
