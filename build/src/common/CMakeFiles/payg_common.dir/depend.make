# Empty dependencies file for payg_common.
# This may be replaced when dependencies are built.
