file(REMOVE_RECURSE
  "libpayg_common.a"
)
