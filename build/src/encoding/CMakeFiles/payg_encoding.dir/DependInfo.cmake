
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/bit_packing.cc" "src/encoding/CMakeFiles/payg_encoding.dir/bit_packing.cc.o" "gcc" "src/encoding/CMakeFiles/payg_encoding.dir/bit_packing.cc.o.d"
  "/root/repo/src/encoding/sparse_vector.cc" "src/encoding/CMakeFiles/payg_encoding.dir/sparse_vector.cc.o" "gcc" "src/encoding/CMakeFiles/payg_encoding.dir/sparse_vector.cc.o.d"
  "/root/repo/src/encoding/string_block.cc" "src/encoding/CMakeFiles/payg_encoding.dir/string_block.cc.o" "gcc" "src/encoding/CMakeFiles/payg_encoding.dir/string_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/payg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
