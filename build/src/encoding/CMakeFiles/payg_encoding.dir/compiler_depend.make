# Empty compiler generated dependencies file for payg_encoding.
# This may be replaced when dependencies are built.
