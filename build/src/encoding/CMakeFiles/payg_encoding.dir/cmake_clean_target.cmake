file(REMOVE_RECURSE
  "libpayg_encoding.a"
)
