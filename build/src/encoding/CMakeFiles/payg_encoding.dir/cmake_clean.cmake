file(REMOVE_RECURSE
  "CMakeFiles/payg_encoding.dir/bit_packing.cc.o"
  "CMakeFiles/payg_encoding.dir/bit_packing.cc.o.d"
  "CMakeFiles/payg_encoding.dir/sparse_vector.cc.o"
  "CMakeFiles/payg_encoding.dir/sparse_vector.cc.o.d"
  "CMakeFiles/payg_encoding.dir/string_block.cc.o"
  "CMakeFiles/payg_encoding.dir/string_block.cc.o.d"
  "libpayg_encoding.a"
  "libpayg_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
