file(REMOVE_RECURSE
  "libpayg_core.a"
)
