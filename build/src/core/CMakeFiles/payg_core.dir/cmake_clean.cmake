file(REMOVE_RECURSE
  "CMakeFiles/payg_core.dir/column_store.cc.o"
  "CMakeFiles/payg_core.dir/column_store.cc.o.d"
  "libpayg_core.a"
  "libpayg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
