# Empty compiler generated dependencies file for payg_core.
# This may be replaced when dependencies are built.
