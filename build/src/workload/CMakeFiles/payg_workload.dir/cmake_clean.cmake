file(REMOVE_RECURSE
  "CMakeFiles/payg_workload.dir/erp.cc.o"
  "CMakeFiles/payg_workload.dir/erp.cc.o.d"
  "libpayg_workload.a"
  "libpayg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
