file(REMOVE_RECURSE
  "libpayg_workload.a"
)
