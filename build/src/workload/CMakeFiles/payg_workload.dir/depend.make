# Empty dependencies file for payg_workload.
# This may be replaced when dependencies are built.
