
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/delta_fragment.cc" "src/columnar/CMakeFiles/payg_columnar.dir/delta_fragment.cc.o" "gcc" "src/columnar/CMakeFiles/payg_columnar.dir/delta_fragment.cc.o.d"
  "/root/repo/src/columnar/dictionary.cc" "src/columnar/CMakeFiles/payg_columnar.dir/dictionary.cc.o" "gcc" "src/columnar/CMakeFiles/payg_columnar.dir/dictionary.cc.o.d"
  "/root/repo/src/columnar/inverted_index.cc" "src/columnar/CMakeFiles/payg_columnar.dir/inverted_index.cc.o" "gcc" "src/columnar/CMakeFiles/payg_columnar.dir/inverted_index.cc.o.d"
  "/root/repo/src/columnar/resident_fragment.cc" "src/columnar/CMakeFiles/payg_columnar.dir/resident_fragment.cc.o" "gcc" "src/columnar/CMakeFiles/payg_columnar.dir/resident_fragment.cc.o.d"
  "/root/repo/src/columnar/value.cc" "src/columnar/CMakeFiles/payg_columnar.dir/value.cc.o" "gcc" "src/columnar/CMakeFiles/payg_columnar.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/payg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/payg_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/payg_buffer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
