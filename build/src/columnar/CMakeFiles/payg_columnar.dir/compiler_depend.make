# Empty compiler generated dependencies file for payg_columnar.
# This may be replaced when dependencies are built.
