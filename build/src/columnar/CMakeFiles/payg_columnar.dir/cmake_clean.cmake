file(REMOVE_RECURSE
  "CMakeFiles/payg_columnar.dir/delta_fragment.cc.o"
  "CMakeFiles/payg_columnar.dir/delta_fragment.cc.o.d"
  "CMakeFiles/payg_columnar.dir/dictionary.cc.o"
  "CMakeFiles/payg_columnar.dir/dictionary.cc.o.d"
  "CMakeFiles/payg_columnar.dir/inverted_index.cc.o"
  "CMakeFiles/payg_columnar.dir/inverted_index.cc.o.d"
  "CMakeFiles/payg_columnar.dir/resident_fragment.cc.o"
  "CMakeFiles/payg_columnar.dir/resident_fragment.cc.o.d"
  "CMakeFiles/payg_columnar.dir/value.cc.o"
  "CMakeFiles/payg_columnar.dir/value.cc.o.d"
  "libpayg_columnar.a"
  "libpayg_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
