file(REMOVE_RECURSE
  "libpayg_columnar.a"
)
