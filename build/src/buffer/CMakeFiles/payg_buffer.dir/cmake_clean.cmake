file(REMOVE_RECURSE
  "CMakeFiles/payg_buffer.dir/resource_manager.cc.o"
  "CMakeFiles/payg_buffer.dir/resource_manager.cc.o.d"
  "libpayg_buffer.a"
  "libpayg_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payg_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
