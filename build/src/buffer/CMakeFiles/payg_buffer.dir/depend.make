# Empty dependencies file for payg_buffer.
# This may be replaced when dependencies are built.
