file(REMOVE_RECURSE
  "libpayg_buffer.a"
)
