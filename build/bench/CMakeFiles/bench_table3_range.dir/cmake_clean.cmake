file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_range.dir/bench_table3_range.cc.o"
  "CMakeFiles/bench_table3_range.dir/bench_table3_range.cc.o.d"
  "bench_table3_range"
  "bench_table3_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
