# Empty dependencies file for bench_table3_range.
# This may be replaced when dependencies are built.
