file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scm.dir/bench_ablation_scm.cc.o"
  "CMakeFiles/bench_ablation_scm.dir/bench_ablation_scm.cc.o.d"
  "bench_ablation_scm"
  "bench_ablation_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
