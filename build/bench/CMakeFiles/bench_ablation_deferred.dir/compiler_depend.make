# Empty compiler generated dependencies file for bench_ablation_deferred.
# This may be replaced when dependencies are built.
