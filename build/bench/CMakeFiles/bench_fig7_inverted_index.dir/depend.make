# Empty dependencies file for bench_fig7_inverted_index.
# This may be replaced when dependencies are built.
