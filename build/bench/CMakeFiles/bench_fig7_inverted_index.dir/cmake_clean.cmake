file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_inverted_index.dir/bench_fig7_inverted_index.cc.o"
  "CMakeFiles/bench_fig7_inverted_index.dir/bench_fig7_inverted_index.cc.o.d"
  "bench_fig7_inverted_index"
  "bench_fig7_inverted_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_inverted_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
