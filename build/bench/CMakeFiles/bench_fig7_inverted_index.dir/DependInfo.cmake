
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7_inverted_index.cc" "bench/CMakeFiles/bench_fig7_inverted_index.dir/bench_fig7_inverted_index.cc.o" "gcc" "bench/CMakeFiles/bench_fig7_inverted_index.dir/bench_fig7_inverted_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/payg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/payg_table.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/payg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/paged/CMakeFiles/payg_paged.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/payg_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/payg_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/payg_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/payg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/payg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
