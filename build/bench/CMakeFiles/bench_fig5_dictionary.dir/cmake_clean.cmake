file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dictionary.dir/bench_fig5_dictionary.cc.o"
  "CMakeFiles/bench_fig5_dictionary.dir/bench_fig5_dictionary.cc.o.d"
  "bench_fig5_dictionary"
  "bench_fig5_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
