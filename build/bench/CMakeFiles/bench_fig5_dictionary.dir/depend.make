# Empty dependencies file for bench_fig5_dictionary.
# This may be replaced when dependencies are built.
