# Empty compiler generated dependencies file for bench_fig6_dict_search.
# This may be replaced when dependencies are built.
