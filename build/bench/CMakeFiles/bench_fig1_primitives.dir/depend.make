# Empty dependencies file for bench_fig1_primitives.
# This may be replaced when dependencies are built.
