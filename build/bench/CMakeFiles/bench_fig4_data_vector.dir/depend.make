# Empty dependencies file for bench_fig4_data_vector.
# This may be replaced when dependencies are built.
