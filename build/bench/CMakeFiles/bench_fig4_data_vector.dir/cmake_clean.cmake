file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_data_vector.dir/bench_fig4_data_vector.cc.o"
  "CMakeFiles/bench_fig4_data_vector.dir/bench_fig4_data_vector.cc.o.d"
  "bench_fig4_data_vector"
  "bench_fig4_data_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_data_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
