# Empty compiler generated dependencies file for bench_fig8_unique_index.
# This may be replaced when dependencies are built.
