file(REMOVE_RECURSE
  "CMakeFiles/data_aging.dir/data_aging.cpp.o"
  "CMakeFiles/data_aging.dir/data_aging.cpp.o.d"
  "data_aging"
  "data_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
