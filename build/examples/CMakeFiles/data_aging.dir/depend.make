# Empty dependencies file for data_aging.
# This may be replaced when dependencies are built.
