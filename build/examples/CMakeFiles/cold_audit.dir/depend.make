# Empty dependencies file for cold_audit.
# This may be replaced when dependencies are built.
