file(REMOVE_RECURSE
  "CMakeFiles/cold_audit.dir/cold_audit.cpp.o"
  "CMakeFiles/cold_audit.dir/cold_audit.cpp.o.d"
  "cold_audit"
  "cold_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cold_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
