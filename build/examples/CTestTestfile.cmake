# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "/root/repo/build/example_runs/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_aging "/root/repo/build/examples/data_aging" "/root/repo/build/example_runs/data_aging")
set_tests_properties(example_data_aging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_budget "/root/repo/build/examples/memory_budget" "/root/repo/build/example_runs/memory_budget")
set_tests_properties(example_memory_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
