// Fuzz target for the codec page images (src/encoding/codec.cc) — the
// on-disk bytes the packed kernels run on directly. The kernels trust the
// page view completely, so the property under test is the gate in front of
// them: CodecValidatePage must reject any image whose geometry lies
// (row count, packed width, RLE run catalog), and any image it accepts
// must be safe to hand to every kernel. The payload buffer is heap-
// allocated at its exact claimed size, so a kernel read past the image is
// an ASan report, i.e. a validator gap.
//
// Input layout (16-byte header, then the page payload):
//   byte 0  codec id (mod 3)
//   byte 1  packed bits (raw — out-of-range values must be rejected)
//   u32 @4  n (values on the page, as a hostile header would claim)
//   u32 @8  aux2 (RLE run count / escape marker)
//   u32 @12 FOR base
//   rest    payload words

#include <cstring>
#include <vector>

#include "encoding/codec.h"

#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 16) return 0;
  const auto id = static_cast<payg::CodecId>(data[0] % payg::kCodecCount);
  uint32_t n32 = 0, aux2 = 0, for_base = 0;
  std::memcpy(&n32, data + 4, 4);
  std::memcpy(&aux2, data + 8, 4);
  std::memcpy(&for_base, data + 12, 4);

  // Exact-size heap copy: the words pointer's valid range ends exactly at
  // payload_size, like a pinned page's payload does.
  const size_t payload_size = size - 16;
  std::vector<uint8_t> payload(data + 16, data + size);

  payg::CodecPageView v;
  v.words = reinterpret_cast<const uint64_t*>(payload.data());
  v.n = n32;
  v.aux2 = aux2;
  v.params.bits = data[1];
  v.params.for_base = for_base;
  v.kernels = nullptr;

  payg::Status s = payg::CodecValidatePage(
      id, v, static_cast<uint32_t>(payload_size));
  if (!s.ok() || v.n == 0) return 0;

  // The validator accepted the image: every kernel must now stay inside
  // it. Work is capped so a legitimately huge accepted page (plain bits=1)
  // cannot stall the fuzzer; OOB would show up in the first window anyway.
  const uint64_t span = v.n < 4096 ? v.n : 4096;
  std::vector<payg::ValueId> decoded(span);
  payg::CodecMGet(id, v, 0, span, decoded.data(), nullptr);
  // Point lookups must agree with the bulk decode, and the page edges must
  // both be readable.
  for (uint64_t idx : {uint64_t{0}, span / 2, span - 1}) {
    if (payg::CodecGetValue(id, v, idx) != decoded[idx]) __builtin_trap();
  }
  (void)payg::CodecGetValue(id, v, v.n - 1);

  // Search/decode agreement only holds when the FOR frame cannot wrap the
  // 32-bit vid space (the meta parser rejects wrapping frames before a
  // real column ever gets one; this view is built from raw bytes).
  const uint64_t mask =
      v.params.bits >= 32 ? 0xFFFFFFFFull : ((1ull << v.params.bits) - 1);
  if (id == payg::CodecId::kFor &&
      v.params.for_base > 0xFFFFFFFFull - mask) {
    return 0;
  }

  std::vector<payg::RowPos> rows;
  payg::CodecSearchEq(id, v, 0, span, decoded[0], 0, &rows, nullptr);
  bool found_first = false;
  for (payg::RowPos r : rows) {
    if (r == 0) found_first = true;
  }
  if (!found_first) __builtin_trap();  // search must find what decode saw

  rows.clear();
  payg::CodecSearchRange(id, v, 0, span, 0, ~0u, 0, &rows, nullptr);
  if (rows.size() != span) __builtin_trap();  // [0, max] matches every row
  return 0;
}
