// Fuzz target for the data-vector meta-page parser
// (ParseDataVectorMeta in src/paged/paged_data_vector.cc) — the first
// on-disk bytes PagedDataVector::Open trusts. Properties checked:
//
//   1. Never crash on an arbitrary payload of arbitrary claimed size (the
//      payload buffer is allocated at exactly the claimed size, so any
//      read past it is an ASan report).
//   2. A payload that parses carries geometry the rest of the code can run
//      on: bits in [1, 32], values_per_page a positive multiple of the
//      64-value chunk, and a known codec id — the invariants
//      ValidateGeometry promises downstream code.
//   3. Parsing is deterministic: the same bytes parse to the same meta.

#include <cstring>
#include <vector>

#include "encoding/codec.h"
#include "paged/paged_data_vector.h"

#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Heap-copy at the exact input size so ASan owns the buffer's edges.
  std::vector<uint8_t> payload(data, data + size);
  payg::DataVectorMeta meta;
  payg::Status s = payg::ParseDataVectorMeta(
      payload.data(), static_cast<uint32_t>(size), &meta);
  if (!s.ok()) return 0;

  if (meta.codec.params.bits < 1 || meta.codec.params.bits > 32) {
    __builtin_trap();
  }
  if (meta.values_per_page == 0 || meta.values_per_page % 64 != 0) {
    __builtin_trap();
  }
  if (static_cast<uint32_t>(meta.codec.id) >= payg::kCodecCount) {
    __builtin_trap();
  }

  payg::DataVectorMeta again;
  payg::Status s2 = payg::ParseDataVectorMeta(
      payload.data(), static_cast<uint32_t>(size), &again);
  if (!s2.ok() || again.row_count != meta.row_count ||
      again.values_per_page != meta.values_per_page ||
      again.codec.id != meta.codec.id ||
      again.codec.params.bits != meta.codec.params.bits ||
      again.codec.params.for_base != meta.codec.params.for_base) {
    __builtin_trap();
  }
  return 0;
}
