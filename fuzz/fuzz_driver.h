#ifndef PAYG_FUZZ_FUZZ_DRIVER_H_
#define PAYG_FUZZ_FUZZ_DRIVER_H_

#include <cstddef>
#include <cstdint>

// Every fuzz target defines the libFuzzer entry point. The build links the
// target against either real libFuzzer (clang with PAYG_FUZZERS=ON, via
// -fsanitize=fuzzer) or the standalone replay/mutation driver in
// standalone_main.cc (every other toolchain) — the target itself cannot
// tell the difference, and both drivers accept `-runs=0 <corpus-dir>` for
// the deterministic corpus replay ctest runs on every build.
extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#endif  // PAYG_FUZZ_FUZZ_DRIVER_H_
