// Writes the seed corpora for the three fuzz targets. Run from the repo
// root (or pass the corpus root as argv[1]):
//
//   fuzz_gen_seeds fuzz/corpus
//
// Seeds are real encoder output wrapped in each target's input framing, so
// the mutation engines start from deep inside the accept-path instead of
// spending their budget rediscovering magic numbers. The generated files
// are committed; regenerate only when the wire or page formats change.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "encoding/codec.h"
#include "server/wire.h"

namespace fs = std::filesystem;
namespace wire = payg::server::wire;

namespace {

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  std::ofstream f(dir / name, std::ios::binary);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string RequestSeed(const wire::Request& req) {
  return std::string(1, '\x00') + wire::EncodeRequest(req);
}

std::string ResponseSeed(wire::Op op, const wire::Response& resp) {
  std::string out(1, '\x01');
  out.push_back(static_cast<char>(op));
  return out + wire::EncodeResponse(op, resp);
}

void GenWireSeeds(const fs::path& dir) {
  wire::Request req;
  req.op = wire::Op::kPing;
  req.table = "t";
  WriteSeed(dir, "req_ping", RequestSeed(req));

  req = {};
  req.op = wire::Op::kSelectByValue;
  req.deadline_us = 500000;
  req.table = "orders";
  req.column = "status";
  req.value = payg::Value(std::string("open"));
  req.select_columns = {"id", "amount"};
  WriteSeed(dir, "req_select_by_value", RequestSeed(req));

  req = {};
  req.op = wire::Op::kSelectRange;
  req.table = "orders";
  req.column = "amount";
  req.lo = payg::Value(int64_t{10});
  req.hi = payg::Value(int64_t{99});
  WriteSeed(dir, "req_select_range", RequestSeed(req));

  req = {};
  req.op = wire::Op::kSumRange;
  req.table = "orders";
  req.column = "amount";
  req.lo = payg::Value(1.5);
  req.hi = payg::Value(99.5);
  req.sum_column = "amount";
  WriteSeed(dir, "req_sum_range", RequestSeed(req));

  req = {};
  req.op = wire::Op::kSelectIn;
  req.table = "orders";
  req.column = "id";
  req.values = {payg::Value(int64_t{1}), payg::Value(int64_t{7}),
                payg::Value(std::string("x"))};
  WriteSeed(dir, "req_select_in", RequestSeed(req));

  req = {};
  req.op = wire::Op::kCountPrefix;
  req.table = "orders";
  req.column = "name";
  req.prefix = "ab";
  WriteSeed(dir, "req_count_prefix", RequestSeed(req));

  req = {};
  req.op = wire::Op::kSelectWhere;
  req.table = "orders";
  payg::Predicate eq;
  eq.op = payg::Predicate::Op::kEq;
  eq.column = "status";
  eq.value = payg::Value(std::string("open"));
  payg::Predicate between;
  between.op = payg::Predicate::Op::kBetween;
  between.column = "amount";
  between.lo = payg::Value(int64_t{5});
  between.hi = payg::Value(int64_t{50});
  payg::Predicate in;
  in.op = payg::Predicate::Op::kIn;
  in.column = "id";
  in.values = {payg::Value(int64_t{3})};
  payg::Predicate prefix;
  prefix.op = payg::Predicate::Op::kPrefix;
  prefix.column = "name";
  prefix.prefix = "a";
  req.predicates = {eq, between, in, prefix};
  req.select_columns = {"id"};
  WriteSeed(dir, "req_select_where", RequestSeed(req));

  wire::Response resp;
  resp.code = wire::Code::kOk;
  resp.query_id = 42;
  resp.result.rows = {{payg::Value(int64_t{1}), payg::Value(std::string("a"))},
                      {payg::Value(int64_t{2}), payg::Value(2.5)}};
  WriteSeed(dir, "resp_select",
            ResponseSeed(wire::Op::kSelectByValue, resp));

  resp = {};
  resp.code = wire::Code::kOk;
  resp.query_id = 7;
  resp.count = 1234;
  WriteSeed(dir, "resp_count", ResponseSeed(wire::Op::kCountWhere, resp));

  resp = {};
  resp.code = wire::Code::kOk;
  resp.row_ids = {{0, 5}, {1, 9}};
  WriteSeed(dir, "resp_row_ids",
            ResponseSeed(wire::Op::kRowIdsByValue, resp));

  resp = {};
  resp.code = wire::Code::kOverloaded;
  resp.message = "admission queue full";
  WriteSeed(dir, "resp_error", ResponseSeed(wire::Op::kPing, resp));
}

void PutBytes(std::string* out, const void* p, size_t n) {
  out->append(reinterpret_cast<const char*>(p), n);
}

std::string MetaV1(uint32_t bits, uint64_t row_count, uint64_t vpp,
                   uint8_t codec_id, uint32_t for_base) {
  std::string out;
  const uint32_t version = 1;
  PutBytes(&out, &version, 4);
  PutBytes(&out, &bits, 4);
  PutBytes(&out, &row_count, 8);
  PutBytes(&out, &vpp, 8);
  out.push_back(static_cast<char>(codec_id));
  out.append(3, '\0');
  PutBytes(&out, &for_base, 4);
  out.append(4, '\0');  // reserved
  return out;
}

void GenMetaSeeds(const fs::path& dir) {
  // Version 0: bits u32 @0, row_count u64 @8, values_per_page u64 @16.
  std::string v0;
  const uint32_t bits = 12;
  const uint64_t rows = 100000, vpp = 2048, pad = 0;
  PutBytes(&v0, &bits, 4);
  PutBytes(&v0, &pad, 4);
  PutBytes(&v0, &rows, 8);
  PutBytes(&v0, &vpp, 8);
  WriteSeed(dir, "v0_plain", v0);

  WriteSeed(dir, "v1_plain", MetaV1(12, 100000, 2048, 0, 0));
  WriteSeed(dir, "v1_for", MetaV1(8, 50000, 4096, 1, 1000));
  WriteSeed(dir, "v1_rle", MetaV1(16, 500000, 1024, 2, 0));
  // Rejected shapes, so mutation starts on both sides of every check.
  WriteSeed(dir, "v1_bad_codec", MetaV1(12, 10, 64, 9, 0));
  WriteSeed(dir, "v1_bad_bits", MetaV1(40, 10, 64, 0, 0));
  WriteSeed(dir, "short", std::string(7, '\x01'));
}

std::string CodecSeed(payg::CodecId id, const std::vector<payg::ValueId>& vids) {
  const payg::CodecChoice choice = payg::MakeCodecChoice(id, vids);
  // A small page: capacity chosen so the sample fills a few chunks.
  std::vector<uint8_t> payload(4096, 0);
  uint32_t aux2 = 0;
  const uint32_t psize = payg::CodecEncodePage(
      choice, vids.data(), vids.size(), payload.data(),
      static_cast<uint32_t>(payload.size()), &aux2);

  std::string out;
  out.push_back(static_cast<char>(choice.id));
  out.push_back(static_cast<char>(choice.params.bits));
  out.append(2, '\0');
  const uint32_t n = static_cast<uint32_t>(vids.size());
  PutBytes(&out, &n, 4);
  PutBytes(&out, &aux2, 4);
  PutBytes(&out, &choice.params.for_base, 4);
  out.append(reinterpret_cast<const char*>(payload.data()), psize);
  return out;
}

void GenCodecSeeds(const fs::path& dir) {
  std::vector<payg::ValueId> ramp;
  for (uint32_t i = 0; i < 256; ++i) ramp.push_back(i * 3 + 1);
  WriteSeed(dir, "plain_ramp", CodecSeed(payg::CodecId::kPlain, ramp));

  std::vector<payg::ValueId> clustered;
  for (uint32_t i = 0; i < 256; ++i) clustered.push_back(90000 + i % 40);
  WriteSeed(dir, "for_clustered", CodecSeed(payg::CodecId::kFor, clustered));

  std::vector<payg::ValueId> runs;
  for (uint32_t i = 0; i < 256; ++i) runs.push_back(i / 32);
  WriteSeed(dir, "rle_runs", CodecSeed(payg::CodecId::kRle, runs));

  std::vector<payg::ValueId> dense;
  for (uint32_t i = 0; i < 256; ++i) dense.push_back(i ^ (i << 3));
  // Every value distinct: the RLE encoder escapes to plain packing.
  WriteSeed(dir, "rle_escape", CodecSeed(payg::CodecId::kRle, dense));

  std::vector<payg::ValueId> one{7};
  WriteSeed(dir, "plain_single", CodecSeed(payg::CodecId::kPlain, one));
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  for (const char* sub : {"wire_decode", "meta_page", "codec_page"}) {
    fs::create_directories(root / sub);
  }
  GenWireSeeds(root / "wire_decode");
  GenMetaSeeds(root / "meta_page");
  GenCodecSeeds(root / "codec_page");
  return 0;
}
