// Fuzz target for the wire protocol decoders (src/server/wire.cc) — the
// first bytes a hostile client controls. Properties checked:
//
//   1. Never crash / never read out of bounds on arbitrary payloads (the
//      sanitizers enforce this; every decode is bounds-checked Cursor
//      reads).
//   2. Decode/encode fixed point: if a payload decodes, re-encoding the
//      parsed struct must produce a payload that decodes to the same bytes.
//      (The original payload may legally carry trailing garbage the decoder
//      ignores, so the invariant is over the first re-encode, not the raw
//      input.)
//
// Input layout: byte 0 selects the surface (even = request, odd =
// response); for responses byte 1 is the opcode the body is decoded
// against, mirroring how the client library decodes against the op it sent.

#include <cstring>
#include <string>
#include <string_view>

#include "server/wire.h"

#include "fuzz_driver.h"

namespace wire = payg::server::wire;

namespace {

void CheckRequestRoundTrip(std::string_view payload) {
  wire::Request req;
  payg::Status s = wire::DecodeRequest(payload, &req);
  if (!s.ok()) return;
  const std::string e1 = wire::EncodeRequest(req);
  wire::Request req2;
  payg::Status s2 = wire::DecodeRequest(e1, &req2);
  if (!s2.ok()) __builtin_trap();  // re-encode of a decoded request must parse
  const std::string e2 = wire::EncodeRequest(req2);
  if (e1 != e2) __builtin_trap();  // fixed point
}

void CheckResponseRoundTrip(wire::Op op, std::string_view payload) {
  wire::Response resp;
  payg::Status s = wire::DecodeResponse(op, payload, &resp);
  if (!s.ok()) return;
  const std::string e1 = wire::EncodeResponse(op, resp);
  wire::Response resp2;
  payg::Status s2 = wire::DecodeResponse(op, e1, &resp2);
  if (!s2.ok()) __builtin_trap();
  const std::string e2 = wire::EncodeResponse(op, resp2);
  if (e1 != e2) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  if (data[0] % 2 == 0) {
    CheckRequestRoundTrip(std::string_view(
        reinterpret_cast<const char*>(data + 1), size - 1));
  } else {
    const auto op = static_cast<wire::Op>(
        data[1] % (static_cast<uint8_t>(wire::Op::kDumpStats) + 1));
    CheckResponseRoundTrip(op, std::string_view(
        reinterpret_cast<const char*>(data + 2), size - 2));
  }
  return 0;
}
