// Standalone driver for the fuzz targets: a libFuzzer-shaped main() for
// toolchains without -fsanitize=fuzzer (GCC builds, and any clang build
// that does not opt into PAYG_FUZZERS).
//
// It understands the subset of libFuzzer's command line the build system
// and CI use, with the same semantics:
//
//   fuzz_x -runs=0 <dir|file>...          replay every corpus input, exit
//   fuzz_x -max_total_time=60 <dir>...    replay, then mutate for 60 s
//   fuzz_x -runs=100000 <dir>...          replay, then run 100k mutants
//   -seed=N      PRNG seed (default 1; deterministic for a fixed seed)
//   -max_len=N   mutant size cap (default 4096 bytes)
//
// The mutation engine is deliberately simple — byte flips, arithmetic
// nudges, block deletes/duplicates, and two-parent splices over the seed
// corpus. It has no coverage feedback; its job is to keep the targets
// exercisable everywhere while real coverage-guided runs happen on the
// clang + libFuzzer configuration. Crashing inputs are dumped to
// ./crash-<pid>.bin from a signal handler before the sanitizer report, so
// a reproducer survives even an ASan abort.

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_driver.h"

namespace {

// The input being executed right now, exposed to the crash handler. Plain
// pointers: the handler must not touch std::vector internals mid-resize.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;

void DumpCurrentInput(int sig) {
  char path[64];
  std::snprintf(path, sizeof path, "crash-%d.bin", static_cast<int>(getpid()));
  int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t off = 0;
    while (off < g_current_size) {
      ssize_t n = ::write(fd, g_current_data + off, g_current_size - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fd);
    const char msg[] = "standalone driver: crashing input saved to ./crash-<pid>.bin\n";
    ssize_t ignored = ::write(2, msg, sizeof msg - 1);
    (void)ignored;
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallCrashHandlers() {
  for (int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::signal(sig, DumpCurrentInput);
  }
}

uint64_t g_rng_state = 1;

uint64_t NextRand() {
  // xorshift64* — deterministic for a fixed -seed.
  uint64_t x = g_rng_state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  g_rng_state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

size_t RandBelow(size_t n) { return n == 0 ? 0 : NextRand() % n; }

void RunOne(const std::vector<uint8_t>& input) {
  g_current_data = input.data();
  g_current_size = input.size();
  LLVMFuzzerTestOneInput(input.data(), input.size());
  g_current_data = nullptr;
  g_current_size = 0;
}

// One random edit in place. Mirrors libFuzzer's core mutators minus the
// dictionary and coverage-driven ones.
void Mutate(std::vector<uint8_t>* data, size_t max_len) {
  if (data->empty()) {
    data->push_back(static_cast<uint8_t>(NextRand()));
    return;
  }
  switch (NextRand() % 6) {
    case 0: {  // flip one bit
      size_t i = RandBelow(data->size());
      (*data)[i] ^= static_cast<uint8_t>(1u << (NextRand() % 8));
      break;
    }
    case 1: {  // overwrite a byte
      (*data)[RandBelow(data->size())] = static_cast<uint8_t>(NextRand());
      break;
    }
    case 2: {  // add/subtract a small delta (length fields, counters)
      size_t i = RandBelow(data->size());
      (*data)[i] = static_cast<uint8_t>((*data)[i] + 1 + (NextRand() % 16) -
                                        8);
      break;
    }
    case 3: {  // delete a block
      size_t from = RandBelow(data->size());
      size_t len = 1 + RandBelow(data->size() - from);
      data->erase(data->begin() + static_cast<ptrdiff_t>(from),
                  data->begin() + static_cast<ptrdiff_t>(from + len));
      break;
    }
    case 4: {  // duplicate a block
      size_t from = RandBelow(data->size());
      size_t len = 1 + RandBelow(std::min<size_t>(data->size() - from, 64));
      std::vector<uint8_t> block(data->begin() + static_cast<ptrdiff_t>(from),
                                 data->begin() +
                                     static_cast<ptrdiff_t>(from + len));
      size_t at = RandBelow(data->size());
      data->insert(data->begin() + static_cast<ptrdiff_t>(at), block.begin(),
                   block.end());
      break;
    }
    default: {  // insert random bytes
      size_t len = 1 + RandBelow(8);
      size_t at = RandBelow(data->size());
      for (size_t i = 0; i < len; ++i) {
        data->insert(data->begin() + static_cast<ptrdiff_t>(at),
                     static_cast<uint8_t>(NextRand()));
      }
      break;
    }
  }
  if (data->size() > max_len) data->resize(max_len);
}

bool ReadFile(const std::filesystem::path& p, std::vector<uint8_t>* out) {
  std::ifstream f(p, std::ios::binary);
  if (!f) return false;
  out->assign(std::istreambuf_iterator<char>(f),
              std::istreambuf_iterator<char>());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  long long runs = 0;
  long long max_total_time = 0;
  size_t max_len = 4096;
  std::vector<std::filesystem::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atoll(arg.c_str() + 6);
    } else if (arg.rfind("-max_total_time=", 0) == 0) {
      max_total_time = std::atoll(arg.c_str() + 16);
    } else if (arg.rfind("-seed=", 0) == 0) {
      g_rng_state = static_cast<uint64_t>(std::atoll(arg.c_str() + 6)) | 1;
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = static_cast<size_t>(std::atoll(arg.c_str() + 9));
    } else if (!arg.empty() && arg[0] == '-') {
      // Unknown libFuzzer flag: ignore, so shared CI invocations work.
      std::fprintf(stderr, "standalone driver: ignoring flag %s\n",
                   arg.c_str());
    } else {
      inputs.emplace_back(arg);
    }
  }

  InstallCrashHandlers();

  // Collect corpus files (positional files, plus every regular file inside
  // positional directories), sorted so replay order is deterministic.
  std::vector<std::filesystem::path> files;
  for (const auto& in : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      for (const auto& e : std::filesystem::directory_iterator(in, ec)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
    } else if (std::filesystem::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "standalone driver: no such input: %s\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& f : files) {
    std::vector<uint8_t> data;
    if (!ReadFile(f, &data)) {
      std::fprintf(stderr, "standalone driver: cannot read %s\n",
                   f.string().c_str());
      return 2;
    }
    RunOne(data);
    corpus.push_back(std::move(data));
  }
  std::fprintf(stderr, "standalone driver: replayed %zu corpus inputs\n",
               corpus.size());

  long long executed = 0;
  if (runs > 0 || max_total_time > 0) {
    const std::time_t deadline =
        max_total_time > 0 ? std::time(nullptr) + max_total_time : 0;
    while ((runs <= 0 || executed < runs) &&
           (deadline == 0 || std::time(nullptr) < deadline)) {
      std::vector<uint8_t> mutant =
          corpus.empty() ? std::vector<uint8_t>{}
                         : corpus[RandBelow(corpus.size())];
      // Occasionally splice in a tail from a second parent before the
      // random edits — crosses length fields with foreign bodies.
      if (corpus.size() >= 2 && NextRand() % 4 == 0) {
        const auto& other = corpus[RandBelow(corpus.size())];
        if (!other.empty() && !mutant.empty()) {
          mutant.resize(RandBelow(mutant.size()) + 1);
          size_t from = RandBelow(other.size());
          mutant.insert(mutant.end(), other.begin() +
                        static_cast<ptrdiff_t>(from), other.end());
        }
      }
      const int edits = 1 + static_cast<int>(NextRand() % 4);
      for (int e = 0; e < edits; ++e) Mutate(&mutant, max_len);
      RunOne(mutant);
      ++executed;
      if ((executed & 0xFFFF) == 0) {
        std::fprintf(stderr, "#%lld\trunning\n", executed);
      }
    }
  }
  std::fprintf(stderr, "#%lld\tDONE\n",
               executed + static_cast<long long>(corpus.size()));
  return 0;
}
