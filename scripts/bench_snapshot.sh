#!/usr/bin/env bash
# Records the committed benchmark snapshots:
#   BENCH_fig1.json — packed-kernel primitives, scalar vs SIMD tiers
#                     (google-benchmark JSON; names are <kernel>/<tier>/<bits>)
#   BENCH_fig4.json — cold full-column scan, readahead off vs on at 1 ms
#                     simulated page latency, plus the io_sweep section:
#                     the same scan across I/O backend (sync vs io_uring)
#                     × readahead window × PAYG_IO_DEPTH
#   BENCH_exec_scaling.json — GetPage throughput at 1/2/4/8 client threads,
#                     hot (resident) and cold (evicting) sweeps. The shard
#                     count is pinned to 8 so the recorded configuration is
#                     identical across hosts; the JSON's "cores" field says
#                     how much physical parallelism backed the numbers.
#   BENCH_profile.json — sample p99 QueryProfile from a small fig9 query
#                     stream: the committed reference for the profiler's
#                     JSON shape and a sanity check on its stage numbers.
#   BENCH_server.json — closed-loop client/server sweep through the S25
#                     front door: unbatched vs batched point-lookup
#                     throughput and latency at 1/8/16 clients, plus an
#                     overload phase that must shed at admission.
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
cmake --build "$BUILD" -j --target bench_fig1_primitives bench_fig4_data_vector bench_exec_scaling bench_fig9_end_to_end bench_server

# fig1: the acceptance-relevant kernels (mget + search_eq) on every available
# tier at every bit width, plus the codec-dispatched variants (S22) per
# codec at the two representative widths. Widen or drop the filter for full
# sweeps (search_range / search_in are registered too).
FILTER="${PAYG_FIG1_FILTER:-^(mget|search_eq|codec_mget|codec_search_eq)/}"
"$BUILD"/bench/bench_fig1_primitives \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="${PAYG_FIG1_MIN_TIME:-0.2}" \
  --benchmark_out=BENCH_fig1.json --benchmark_out_format=json

PAYG_SCAN_ONLY=1 PAYG_BENCH_JSON=BENCH_fig4.json \
  "$BUILD"/bench/bench_fig4_data_vector

PAYG_CACHE_SHARDS="${PAYG_CACHE_SHARDS:-8}" \
  PAYG_BENCH_JSON=BENCH_exec_scaling.json \
  "$BUILD"/bench/bench_exec_scaling

# Sample query profile: a reduced fig9 run whose profiler phase writes the
# p99 query's profile (stage breakdown, cold/hit split, per-partition times).
PAYG_ROWS="${PAYG_PROFILE_ROWS:-50000}" PAYG_QUERIES="${PAYG_PROFILE_QUERIES:-300}" \
  PAYG_SESSION_US=0 PAYG_PROFILE_JSON=BENCH_profile.json \
  "$BUILD"/bench/bench_fig9_end_to_end > /dev/null

# Server front door: self-hosted store + server, closed-loop clients. The
# sweep asserts its own health (PAYG_EXPECT_SHED=1: no shedding at healthy
# load, shedding in the overload phase).
PAYG_BENCH_JSON=BENCH_server.json PAYG_EXPECT_SHED=1 \
  "$BUILD"/bench/bench_server

echo "bench_snapshot.sh: wrote BENCH_fig1.json BENCH_fig4.json BENCH_exec_scaling.json BENCH_profile.json BENCH_server.json"
