#!/usr/bin/env python3
"""Project lint rules clang-tidy cannot express (see DESIGN.md S21).

Rules (scanned over src/*.h, src/*.cc):

  raw-sync         std::mutex / std::condition_variable / std::lock_guard /
                   std::unique_lock / std::scoped_lock / std::shared_mutex are
                   banned outside common/thread_annotations.h. The shim types
                   (payg::Mutex, MutexLock, UniqueLock, CondVar) carry the
                   thread-safety capability attributes; a raw std primitive is
                   invisible to the analysis.

  unguarded-mutex  Every declared payg::Mutex must be referenced by at least
                   one thread-safety annotation (GUARDED_BY / PT_GUARDED_BY /
                   REQUIRES / ACQUIRE / RELEASE / EXCLUDES) or a CondVar
                   Wait/WaitFor call in the same file. A mutex nothing is
                   annotated against protects nothing the analysis can check.

  raw-getenv       getenv is banned outside common/env.{h,cc}; every knob
                   goes through the strict EnvLong/EnvFlag/EnvRaw helpers.

  metric-name      String literals passed to counter("...") / gauge("...") /
                   histogram("...") must follow the DESIGN.md §6 scheme:
                   "<layer>.<metric>" with layer one of storage, cache, rm,
                   exec, query, io, buffer, obs (a literal that is a prefix
                   of a concatenated name is checked as a prefix). The check
                   is two-way against the fenced §6 metric inventory: every
                   registered (name, kind) must appear there, and every
                   inventory row must still be registered somewhere in src/
                   — so the table can neither lag the code nor outlive it.
                   Dynamic names use a <k> placeholder in the table.

  dropped-status   (void)-casting a call to a function whose declared return
                   type is Status or Result<T> silently swallows an error
                   path. Propagate it, or justify the drop with a comment AND
                   a lint:allow marker.

Any rule can be suppressed for one line with `// lint:allow(<rule>)` on that
line; the suppression is expected to sit next to a justifying comment.

Usage:
  scripts/lint.py               lint the tree (exit 1 on findings)
  scripts/lint.py --self-test   run the rules over scripts/lint_fixtures/
                                and verify every seeded violation is flagged
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

METRIC_LAYERS = ("storage", "cache", "rm", "exec", "query", "io", "buffer",
                 "obs", "codec", "profile", "server")

RAW_SYNC_RE = re.compile(
    r"std::(mutex|condition_variable(_any)?|lock_guard|unique_lock|"
    r"scoped_lock|shared_mutex|shared_lock)\b")
MUTEX_DECL_RE = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+(\w+)\s*;", re.M)
GETENV_RE = re.compile(r"\bgetenv\s*\(")
METRIC_RE = re.compile(
    r"\b(counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"\s*([+)]?)")
INVENTORY_ROW_RE = re.compile(
    r"^\|\s*`([^`]+)`\s*\|\s*(counter|gauge|histogram)\s*\|", re.M)
INVENTORY_BEGIN = "<!-- metric-inventory:begin -->"
INVENTORY_END = "<!-- metric-inventory:end -->"
VOID_CALL_RE = re.compile(r"\(void\)\s*[\w.\->:]*?(\w+)\s*\(")
STATUS_FN_RE = re.compile(
    r"^\s*(?:static\s+|virtual\s+|inline\s+)*"
    r"(?:payg::)?(?:Status|Result<[^;=]*?>)\s+(\w+)\s*\(", re.M)
ALLOW_RE = re.compile(r"lint:allow\(([a-z\-]+)\)")


def source_files(root):
    return sorted(p for p in root.rglob("*")
                  if p.suffix in (".h", ".cc") and p.is_file())


def status_function_names():
    """Names of functions declared to return Status / Result<T> in src/."""
    names = set()
    for path in source_files(SRC):
        names.update(STATUS_FN_RE.findall(path.read_text()))
    # Factory helpers named like constructors are commonly used in
    # assign-or-return macros, not dropped; keep them in the set anyway —
    # dropping `(void)Build(...)` would be exactly the bug this rule hunts.
    return names


def allowed(line, rule):
    return any(m == rule for m in ALLOW_RE.findall(line))


def parse_metric_inventory(path):
    """name -> (kind, lineno) from the fenced DESIGN.md §6 inventory table."""
    text = path.read_text()
    begin = text.index(INVENTORY_BEGIN)
    end = text.index(INVENTORY_END)
    inventory = {}
    for m in INVENTORY_ROW_RE.finditer(text, begin, end):
        lineno = text[:m.start()].count("\n") + 1
        inventory[m.group(1)] = (m.group(2), lineno)
    return inventory


def check_file(path, text, status_fns, findings, inventory=None, used=None):
    rel = path.relative_to(REPO)
    lines = text.splitlines()
    is_shim = path.name == "thread_annotations.h"
    is_env = path.parent.name == "common" and path.stem == "env"

    for lineno, line in enumerate(lines, 1):
        if not is_shim and RAW_SYNC_RE.search(line) and not allowed(
                line, "raw-sync"):
            findings.append((rel, lineno, "raw-sync",
                             "raw std synchronization primitive; use the "
                             "payg shims from common/thread_annotations.h"))
        if not is_env and GETENV_RE.search(line) and not allowed(
                line, "raw-getenv"):
            findings.append((rel, lineno, "raw-getenv",
                             "raw getenv; use EnvLong/EnvFlag/EnvRaw from "
                             "common/env.h"))
        for kind, name, trail in METRIC_RE.findall(line):
            if allowed(line, "metric-name"):
                continue
            # A concatenated name ("cache.shard" + ...) is validated as a
            # prefix: the layer and the dotted shape must already be right.
            is_prefix = trail == "+"
            ok = re.fullmatch(
                r"(?:%s)\.[a-z0-9_.]+" % "|".join(METRIC_LAYERS), name)
            if not ok:
                findings.append((rel, lineno, "metric-name",
                                 f'metric name "{name}" does not follow the '
                                 "DESIGN.md §6 <layer>.<metric> scheme"))
            if used is not None:
                used.add((name, is_prefix))
            if inventory is None:
                continue
            if is_prefix:
                listed = any(iname.startswith(name) and ikind == kind
                             for iname, (ikind, _) in inventory.items())
            else:
                listed = (name in inventory and inventory[name][0] == kind)
            if not listed:
                findings.append((rel, lineno, "metric-name",
                                 f'{kind} "{name}" is missing from the '
                                 "DESIGN.md §6 metric inventory (or is "
                                 "listed with a different kind)"))
        m = VOID_CALL_RE.search(line)
        if m and m.group(1) in status_fns and not allowed(
                line, "dropped-status"):
            findings.append((rel, lineno, "dropped-status",
                             f"(void)-dropped {m.group(1)}() returns "
                             "Status/Result; propagate or justify with "
                             "lint:allow(dropped-status)"))

    if not is_shim:
        for m in MUTEX_DECL_RE.finditer(text):
            name = m.group(1)
            lineno = text[:m.start()].count("\n") + 1
            decl_line = lines[lineno - 1]
            if allowed(decl_line, "unguarded-mutex"):
                continue
            evidence = re.compile(
                r"(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
                r"EXCLUDES)\s*\(\s*[\w.\->]*\b%s\b|Wait(For)?\s*\(\s*%s\b"
                % (re.escape(name), re.escape(name)))
            if not evidence.search(text):
                findings.append((rel, lineno, "unguarded-mutex",
                                 f"Mutex {name} has no GUARDED_BY/REQUIRES/"
                                 "ACQUIRE annotation (or CondVar wait) "
                                 "anywhere in this file"))


def run(root, status_fns, inventory=None):
    findings = []
    used = set()
    for path in source_files(root):
        check_file(path, path.read_text(), status_fns, findings,
                   inventory=inventory, used=used)
    if inventory is not None:
        # Reverse direction: every inventory row must still be registered.
        # A dynamic registration ("cache.shard" + ...) covers the rows it
        # prefixes (e.g. `cache.shard<k>.pages`).
        for iname, (ikind, lineno) in sorted(inventory.items()):
            covered = any(iname == u or (dyn and iname.startswith(u))
                          for u, dyn in used)
            if not covered:
                findings.append(
                    (Path("DESIGN.md"), lineno, "metric-name",
                     f'inventory row "{iname}" ({ikind}) is not registered '
                     "anywhere under the scanned tree — remove the row or "
                     "restore the metric"))
    return findings


def main():
    status_fns = status_function_names()

    if "--self-test" in sys.argv:
        # Every seeded (file, rule) pair below must be flagged, and the
        # clean fixture must stay clean — so the linter cannot silently rot.
        expected = {
            ("bad_mutex.h", "unguarded-mutex"),
            ("bad_mutex.h", "raw-sync"),
            ("bad_getenv.cc", "raw-getenv"),
            ("bad_metric.cc", "metric-name"),
            ("bad_status.cc", "dropped-status"),
            # The stale inventory row below must be flagged in the reverse
            # direction of the two-way metric check.
            ("DESIGN.md", "metric-name"),
        }
        fixture_inventory = {
            "cache.fixture_touches": ("counter", 1),
            "cache.fixture_stale": ("gauge", 2),
        }
        findings = run(FIXTURES, status_fns, inventory=fixture_inventory)
        got = {(str(rel.name), rule) for rel, _, rule, _ in findings}
        missing = expected - got
        unexpected = {g for g in got
                      if g not in expected and g[0] != "clean.cc"}
        clean_hits = [f for f in findings if f[0].name == "clean.cc"]
        ok = not missing and not unexpected and not clean_hits
        for rel, lineno, rule, msg in findings:
            print(f"{rel}:{lineno}: [{rule}] {msg}")
        if missing:
            print(f"self-test FAILED: seeded violations not flagged: "
                  f"{sorted(missing)}")
        if unexpected:
            print(f"self-test FAILED: unexpected findings: "
                  f"{sorted(unexpected)}")
        if clean_hits:
            print("self-test FAILED: clean.cc was flagged")
        print("self-test " + ("OK" if ok else "FAILED"))
        return 0 if ok else 1

    findings = run(SRC, status_fns,
                   inventory=parse_metric_inventory(REPO / "DESIGN.md"))
    for rel, lineno, rule, msg in findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
