// Lint self-test fixture: deliberately violates raw-getenv.
// Never compiled; scanned by scripts/lint.py --self-test.
#include <cstdlib>

namespace payg_fixture {

int ThreadsFromEnv() {
  const char* raw = std::getenv("PAYG_PREFETCH_THREADS");
  return raw ? *raw - '0' : 2;
}

}  // namespace payg_fixture
