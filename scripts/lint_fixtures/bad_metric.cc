// Lint self-test fixture: deliberately violates metric-name ("pagecache"
// is not a DESIGN.md §6 layer). Never compiled; scanned by --self-test.
namespace payg_fixture {

void RegisterMetrics(Registry* reg) {
  hits_ = reg->counter("pagecache.hits");
}

}  // namespace payg_fixture
