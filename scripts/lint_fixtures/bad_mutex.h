// Lint self-test fixture: deliberately violates raw-sync and
// unguarded-mutex. Never compiled; scanned by scripts/lint.py --self-test.
#ifndef PAYG_LINT_FIXTURE_BAD_MUTEX_H_
#define PAYG_LINT_FIXTURE_BAD_MUTEX_H_

#include <mutex>

namespace payg_fixture {

class BadMutex {
 private:
  std::mutex raw_mu_;  // raw-sync: std primitive instead of payg::Mutex
  Mutex orphan_mu_;    // unguarded-mutex: nothing is annotated against it
  int counter_ = 0;
};

}  // namespace payg_fixture

#endif  // PAYG_LINT_FIXTURE_BAD_MUTEX_H_
