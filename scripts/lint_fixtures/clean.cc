// Lint self-test fixture: fully compliant — must produce zero findings so
// the self-test catches a linter that over-flags. Never compiled.
namespace payg_fixture {

class Clean {
 public:
  void Touch() {
    MutexLock lock(mu_);
    ++counter_;
  }

  void RegisterMetrics(Registry* reg) {
    touches_ = reg->counter("cache.fixture_touches");
  }

 private:
  mutable Mutex mu_;
  int counter_ GUARDED_BY(mu_) = 0;
  Counter* touches_ = nullptr;
};

}  // namespace payg_fixture
