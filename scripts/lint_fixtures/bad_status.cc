// Lint self-test fixture: deliberately violates dropped-status (DropChain
// returns Status in src/storage). Never compiled; scanned by --self-test.
namespace payg_fixture {

void CleanupChains(StorageManager* storage) {
  (void)storage->DropChain("x");
}

}  // namespace payg_fixture
