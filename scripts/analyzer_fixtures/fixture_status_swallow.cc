// Self-test fixture for the status-swallow rule. Never compiled — parsed
// only by scripts/payg_analyzer.py --self-test.

#include "fixture_common.h"

namespace payg {

void PlainDrop() {
  DoWork();  // violation: Status dropped in statement position
}

void TernaryDrop(bool fast) {
  fast ? DoWork() : Flush(1);  // violation: both arms dropped
}

void VoidCastDrop() {
  (void)DoWork();  // violation: the cast is the drop
}

void CommaDrop(int* n) {
  DoWork(), ++*n;  // violation: comma operator discards the Status
}

void CleanUses() {
  Status s = DoWork();
  if (!s.ok()) return;
  PAYG_RETURN_IF_ERROR(Flush(1));
  if (!Flush(2).ok()) return;
  // Ambiguous name (also declared void): must not fire.
  Touch(1);
}

}  // namespace payg
