// Clean fixture: realistic shapes near every rule's trigger that must NOT
// be flagged. Never compiled — parsed only by --self-test.

#include "fixture_common.h"

namespace payg {

class CleanServer {
 public:
  // Locks in strictly sequential scopes; condvar wait under the lock.
  void Drain() {
    {
      MutexLock lk(queue_mu_);
      while (busy_) cv_.Wait(queue_mu_);
    }
    MutexLock lk(sessions_mu_);
    count_ = 0;
  }

  // Status captured and inspected; macro-wrapped propagation.
  Status Step() {
    Status s = DoWork();
    if (!s.ok()) return s;
    PAYG_RETURN_IF_ERROR(Flush(3));
    return Status::OK();
  }

  // Pin used strictly inside its scope; a non-pin pointer is returned.
  const char* Name(PageCache* cache) {
    PageRef ref = cache->GetPage(9).value();
    uint64_t rows = ref.page().header()->aux;
    last_rows_ = rows;  // scalar derived value, not a pointer into the page
    return name_;
  }

 private:
  Mutex queue_mu_;
  Mutex sessions_mu_;
  CondVar cv_;
  bool busy_ = false;
  int count_ = 0;
  uint64_t last_rows_ = 0;
  const char* name_ = "clean";
};

}  // namespace payg
