// Self-test fixture for the lock-order rule: every function below violates
// one documented invariant from the manifest. Never compiled — parsed only
// by scripts/payg_analyzer.py --self-test.

#include "fixture_common.h"

namespace payg {

struct Stripe {
  Mutex mu;
};

class BadManager {
 public:
  // Violation: stripe held while acquiring mu_ (documented order is
  // mu_ -> stripe -> nothing).
  void WrongDirection(Stripe& stripe) {
    MutexLock lock(stripe.mu);
    MutexLock inner(mu_);
    Use();
  }

  // Violation: two stripes at once (stripes are terminal).
  void TwoStripes(Stripe& a, Stripe& b) {
    MutexLock la(a.stripe.mu);
    MutexLock lb(b.stripe.mu);
    Use();
  }

 private:
  void Use() {}
  Mutex mu_;
};

class BadCache {
 public:
  // Violation: two shard locks held at once.
  void CrossShard(const Shard& a, const Shard& b) {
    ShardLock la(*this, a);
    ShardLock lb(*this, b);
  }
};

class BadServer {
 public:
  // Violation: sessions_mu_ acquired under queue_mu_.
  void Together() {
    MutexLock lk(queue_mu_);
    MutexLock lk2(sessions_mu_);
  }

  // Violation: execution entered while holding queue_mu_.
  void ExecuteUnderQueueLock() {
    UniqueLock lk(queue_mu_);
    Dispatch(req_);
  }

  // Violation: Pending mutex is leaf-level.
  void UnderPending(Pending* p) {
    MutexLock lk(p->mu);
    MutexLock lk2(queue_mu_);
  }

  // Clean: sequential scopes, each released before the next — the rule
  // must not fire here.
  void SequentialScopes() {
    {
      MutexLock lk(queue_mu_);
      Touch();
    }
    {
      MutexLock lk(sessions_mu_);
      Touch();
    }
  }

  // Clean: Unlock() drops the queue lock before execution resumes.
  void UnlockBeforeExecute() {
    UniqueLock lk(queue_mu_);
    Touch();
    lk.Unlock();
    Dispatch(req_);
  }

 private:
  void Touch() {}
  Request req_;
  Mutex queue_mu_;
  Mutex sessions_mu_;
};

}  // namespace payg
