// Shared declarations for the analyzer self-test fixtures. Never compiled —
// only parsed. The Status-returning declarations below are what
// --self-test's status-function harvest picks up.

#ifndef PAYG_SCRIPTS_ANALYZER_FIXTURES_FIXTURE_COMMON_H_
#define PAYG_SCRIPTS_ANALYZER_FIXTURES_FIXTURE_COMMON_H_

namespace payg {

Status DoWork();
Status Flush(int fd);
Result<int> ParseCount(std::string_view in);

// Ambiguous on purpose: also declared void elsewhere in this file, so the
// harvest must drop it and the swallow rule must NOT fire on it.
Status Touch(int which);
void Touch(double other);

}  // namespace payg

#endif  // PAYG_SCRIPTS_ANALYZER_FIXTURES_FIXTURE_COMMON_H_
