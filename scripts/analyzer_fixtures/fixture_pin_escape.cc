// Self-test fixture for the pin-escape rule. Never compiled — parsed only
// by scripts/payg_analyzer.py --self-test.

#include "fixture_common.h"

namespace payg {

class Escaper {
 public:
  // Violation: returns a pointer into a page whose pin is a local — the
  // PageRef releases when this function returns.
  const uint8_t* LeakPayload(PageCache* cache) {
    PageRef ref = cache->GetPage(1).value();
    const uint8_t* p = ref.page().payload();
    return p;
  }

  // Violation: stores a pin-derived pointer into a member that outlives
  // the local pin.
  void StashPayload(PageCache* cache) {
    PageRef ref = cache->GetPage(2).value();
    stashed_ = ref.page().payload();
  }

  // Clean: the pin is a member too, so the stored pointer lives exactly
  // as long as the pin — this is the iterator's view_ pattern.
  void MemberPin(PageCache* cache) {
    current_ = cache->GetPage(3).value();
    stashed_ = current_.page().payload();
  }

  // Clean: derived pointer used only inside the pin's scope.
  uint64_t SumInsideScope(PageCache* cache) {
    PageRef ref = cache->GetPage(4).value();
    const uint8_t* p = ref.page().payload();
    uint64_t sum = 0;
    for (int i = 0; i < 8; ++i) sum += p[i];
    return sum;
  }

 private:
  const uint8_t* stashed_ = nullptr;
  PageRef current_;
};

}  // namespace payg
