// Self-test fixture for the wire-bounds rule. Never compiled — parsed only
// by scripts/payg_analyzer.py --self-test.

#include "fixture_common.h"

namespace payg {

// Violation: indexes the payload with no size() check anywhere before the
// read — the shape of a decoder added without its guard.
uint8_t UnguardedRead(std::string_view payload, size_t pos) {
  return static_cast<uint8_t>(payload[pos + 3]);
}

// Violation: substr on the frame data without a dominating length check.
std::string_view UnguardedSubstr(std::string_view data, size_t pos,
                                 uint32_t len) {
  return data.substr(pos, len);
}

// Clean: the Cursor pattern — every read behind a size() comparison.
bool GuardedRead(std::string_view data, size_t pos, uint8_t* out) {
  if (pos + 1 > data.size()) return false;
  *out = static_cast<uint8_t>(data[pos]);
  return true;
}

}  // namespace payg
