#!/usr/bin/env python3
"""payg-analyzer: semantic invariant checks over function bodies (DESIGN.md
§14). Where scripts/lint.py matches single lines, this analyzer reasons
about whole function definitions — lock scopes, pointer lifetimes, and
statement structure — so it catches the bugs that need context.

Rules:

  lock-order       Simulates RAII lock scopes (MutexLock / UniqueLock /
                   ShardLock, plus UniqueLock::Lock/Unlock) through each
                   function and checks every acquisition against the
                   documented lock-order manifest: ResourceManager `mu_` →
                   stripe → nothing (DESIGN.md §8), at most one PageCache
                   shard lock (§12), server `queue_mu_` and `sessions_mu_`
                   never held together and each `Pending` mutex leaf-level
                   (§13). Also flags calls to the server execution entry
                   points while `queue_mu_` is held.

  pin-escape       A raw pointer derived from a function-local PageRef /
                   PinnedResource (via .page() / .payload() / .raw() /
                   .data()) dies with the pin at scope end. Returning such
                   a pointer, or storing it into a member / global /
                   static, lets it dangle after the page is unpinned and
                   possibly evicted. Pins that are themselves members are
                   exempt: their lifetime covers the stored pointer.

  wire-bounds      In the wire decode paths (src/server/wire.cc), every
                   raw read of the frame buffer — indexing or substr on
                   the payload string_view — must be dominated by a length
                   check (`.size()` comparison) on the same buffer in the
                   same function. The Cursor Get* helpers are the
                   sanctioned pattern; this rule catches a future reader
                   added without its guard.

  status-swallow   A statement whose effect is only a call to a function
                   returning Status / Result<T> drops the error on the
                   floor. [[nodiscard]] + -Werror=unused-result already
                   reject the direct form; this rule also sees the shapes
                   the compiler lets through — (void) casts, ternaries
                   (`c ? Foo() : Bar();`), and comma operators.

Any finding can be suppressed for one line with `// analyzer:allow(<rule>)`
on that line (or the line above); the suppression is expected to sit next
to a justifying comment.

Engines: by default the analyzer uses a built-in token engine (a C++
lexer + brace-scope tracker; zero dependencies, same results everywhere).
If the libclang python bindings are importable, `--engine=cindex` parses
each file through clang.cindex instead and feeds the same rule logic from
real AST token streams; `--engine=auto` (default) tries cindex and falls
back to the token engine. Both engines produce identical FunctionUnit
structures, so findings are engine-independent by construction.

Usage:
  scripts/payg_analyzer.py                analyze src/ (exit 1 on findings)
  scripts/payg_analyzer.py --self-test    run over scripts/analyzer_fixtures/
                                          and verify every seeded violation
  scripts/payg_analyzer.py --engine=token|cindex|auto
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = Path(__file__).resolve().parent / "analyzer_fixtures"

ALLOW_RE = re.compile(r"analyzer:allow\(([a-z\-]+)\)")
# lint.py's dropped-status suppression documents the same judgment call the
# status-swallow rule makes; honor it so a justified drop needs one marker,
# not two.
LINT_DROP_RE = re.compile(r"lint:allow\(dropped-status\)")

# ---------------------------------------------------------------------------
# Lock-order manifest. Lock classes are keyed by (file basename, acquisition
# site); the rules below are the documented invariants, one entry per
# forbidden (held, acquired) pair. Fixture files are listed alongside the
# real ones so --self-test exercises the same classification code.
# ---------------------------------------------------------------------------

# basename -> list of (pattern over the guard's constructor argument,
#                      lock class). First match wins; None = unclassified.
LOCK_SITES = {
    "resource_manager.cc": [(r"\bstripe\b", "rm.stripe"), (r"^mu_$", "rm.mu")],
    "server.cc": [(r"^queue_mu_$", "server.queue"),
                  (r"^sessions_mu_$", "server.sessions"),
                  (r"(^|\.|->)mu$", "server.pending")],
    "fixture_lock_order.cc": [(r"\bstripe\b", "rm.stripe"),
                              (r"^mu_$", "rm.mu"),
                              (r"^queue_mu_$", "server.queue"),
                              (r"^sessions_mu_$", "server.sessions"),
                              (r"(^|\.|->)mu$", "server.pending")],
}

# Files where the ShardLock guard type means the PageCache shard mutex.
SHARD_LOCK_FILES = {"page_cache.cc", "fixture_lock_order.cc"}

# (held class, acquired class) -> violation message.
LOCK_ORDER_FORBIDDEN = {
    ("rm.stripe", "rm.mu"):
        "ResourceManager stripe held while acquiring mu_ — the documented "
        "order is mu_ -> stripe -> nothing (DESIGN.md §8)",
    ("rm.stripe", "rm.stripe"):
        "two ResourceManager stripes held at once — stripes are terminal "
        "in the lock order (DESIGN.md §8)",
    ("cache.shard", "cache.shard"):
        "two PageCache shard locks held at once (DESIGN.md §12)",
    ("server.queue", "server.sessions"):
        "sessions_mu_ acquired under queue_mu_ — the two are never held "
        "together (DESIGN.md §13)",
    ("server.sessions", "server.queue"):
        "queue_mu_ acquired under sessions_mu_ — the two are never held "
        "together (DESIGN.md §13)",
    ("server.pending", "server.queue"):
        "a Pending mutex is leaf-level; nothing is acquired under it "
        "(DESIGN.md §13)",
    ("server.pending", "server.sessions"):
        "a Pending mutex is leaf-level; nothing is acquired under it "
        "(DESIGN.md §13)",
    ("server.pending", "server.pending"):
        "a Pending mutex is leaf-level; nothing is acquired under it "
        "(DESIGN.md §13)",
}

# Calls forbidden while a given lock class is held: a worker never holds
# queue_mu_ while executing a query (DESIGN.md §13).
LOCKED_CALL_FORBIDDEN = {
    "server.queue": ({"Dispatch", "ExecuteSingle", "ExecuteBatch"},
                     "query execution entered while holding queue_mu_ "
                     "(DESIGN.md §13: workers drop the queue lock before "
                     "executing)"),
}

# Guards whose constructor takes the mutex as an argument.
GUARD_TYPES = {"MutexLock", "UniqueLock"}

PIN_TYPES = {"PageRef", "PinnedResource"}
# Methods that step from a pin (or a value derived from one) toward the
# underlying storage bytes.
PIN_DERIVE_METHODS = {"page", "payload", "raw", "data", "header"}

WIRE_BOUNDS_FILES = {"wire.cc", "fixture_wire_bounds.cc"}

# ---------------------------------------------------------------------------
# Tokenizer (token engine). Comments and string literals are consumed as
# single tokens; preprocessor lines are skipped.
# ---------------------------------------------------------------------------

TOKEN_RE = re.compile(r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<number>\.?\d(?:[\w.']|[eEpP][+-])*)
  | (?P<punct>->\*?|\+\+|--|<<=?|>>=?|<=|>=|==|!=|&&|\|\||[+\-*/%&|^!=<>]=
              |::|\.\.\.|[()\[\]{};,.?:~+\-*/%&|^!=<>#])
""", re.VERBOSE | re.DOTALL)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.text}@{self.line}"


def tokenize(text):
    """C++ tokens (comments/strings collapsed, preprocessor dropped)."""
    # Strip preprocessor lines first (keep newlines for line numbers),
    # honoring continuations.
    out_lines = []
    skipping = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if skipping or stripped.startswith("#"):
            skipping = line.rstrip().endswith("\\")
            out_lines.append("")
        else:
            out_lines.append(line)
    text = "\n".join(out_lines)

    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        kind = m.lastgroup
        if kind != "comment":
            toks.append(Tok(kind, m.group(), line))
    return toks


class FunctionUnit:
    """One function definition: its name, extent, and body tokens. Both
    engines produce exactly this, so every rule is engine-independent."""

    __slots__ = ("path", "name", "line", "ret_tokens", "tokens")

    def __init__(self, path, name, line, ret_tokens, tokens):
        self.path = path            # Path
        self.name = name            # possibly qualified ("Class::Method")
        self.line = line            # line of the opening brace
        self.ret_tokens = ret_tokens  # tokens between prev ';'/'}' and name
        self.tokens = tokens        # body tokens, including the outer braces


_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                     "sizeof", "alignof", "decltype", "new", "delete"}
_SIG_NOISE = {"const", "noexcept", "override", "final", "mutable", "->",
              "&", "&&", "*", "try"}
_ANNOTATIONS = {"REQUIRES", "EXCLUDES", "ACQUIRE", "RELEASE",
                "ACQUIRED_AFTER", "ACQUIRED_BEFORE", "NO_THREAD_SAFETY_ANALYSIS",
                "SCOPED_CAPABILITY", "ASSERT_CAPABILITY"}


def _match_paren_back(toks, close_idx):
    """Index of the '(' matching toks[close_idx] == ')'."""
    depth = 0
    i = close_idx
    while i >= 0:
        t = toks[i].text
        if t == ")":
            depth += 1
        elif t == "(":
            depth -= 1
            if depth == 0:
                return i
        i -= 1
    return -1


def split_functions(path, toks):
    """Token-engine function splitter: find every body-opening '{' whose
    backward context looks like `name ( params ) [qualifiers] {`, walking
    back over trailing annotations and constructor member-init lists."""
    units = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text != "{":
            i += 1
            continue
        j = i - 1
        # Walk back over signature qualifiers and annotation groups.
        while j >= 0:
            t = toks[j]
            if t.text in _SIG_NOISE:
                j -= 1
            elif t.text == ")":
                open_idx = _match_paren_back(toks, j)
                if open_idx <= 0:
                    break
                prev = toks[open_idx - 1]
                if prev.kind == "ident" and prev.text in _ANNOTATIONS:
                    j = open_idx - 2  # annotation group: keep walking
                else:
                    break  # this is the parameter list (or an init-list entry)
            elif t.kind == "ident" and t.text not in _CONTROL_KEYWORDS:
                # could be a trailing return type / init-list: give up here
                break
            else:
                break
        if j < 0 or toks[j].text != ")":
            i += 1
            continue
        open_idx = _match_paren_back(toks, j)
        if open_idx <= 0:
            i += 1
            continue
        # Constructor member-init list: `) : a_(x), b_(y) {` — hop back over
        # `ident ( ... )` groups joined by ':' or ',' to the parameter list.
        while True:
            name_idx = open_idx - 1
            if name_idx < 0 or toks[name_idx].kind != "ident":
                break
            sep_idx = name_idx - 1
            # init-list braces like `a_{x}` are not matched here (rare in
            # this codebase); ':' also introduces bitfields, which never
            # precede '{', so the hop is safe.
            if sep_idx >= 0 and toks[sep_idx].text in (":", ","):
                if toks[sep_idx].text == ":" and sep_idx >= 1 and \
                        toks[sep_idx - 1].text == ":":
                    break  # '::' — qualified name, not an init list
                prev_close = sep_idx - 1
                while prev_close >= 0 and toks[prev_close].text != ")":
                    prev_close -= 1
                nxt = _match_paren_back(toks, prev_close)
                if nxt <= 0:
                    break
                open_idx = nxt
                continue
            break
        name_idx = open_idx - 1
        if name_idx < 0 or toks[name_idx].kind != "ident" or \
                toks[name_idx].text in _CONTROL_KEYWORDS:
            i += 1
            continue
        # Qualified name: A::B::name.
        name_parts = [toks[name_idx].text]
        k = name_idx - 1
        while k >= 1 and toks[k].text == "::" and toks[k - 1].kind == "ident":
            name_parts.insert(0, toks[k - 1].text)
            k -= 2
        # Return-type tokens: from the previous statement boundary.
        r = k
        ret = []
        while r >= 0 and toks[r].text not in (";", "}", "{"):
            ret.insert(0, toks[r].text)
            r -= 1
        # Find the matching close brace.
        depth = 0
        end = i
        while end < n:
            if toks[end].text == "{":
                depth += 1
            elif toks[end].text == "}":
                depth -= 1
                if depth == 0:
                    break
            end += 1
        units.append(FunctionUnit(path, "::".join(name_parts), toks[i].line,
                                  ret, toks[i:end + 1]))
        i = end + 1
    return units


# ---------------------------------------------------------------------------
# Engines.
# ---------------------------------------------------------------------------

class TokenEngine:
    name = "token"

    def functions(self, path, text):
        return split_functions(path, tokenize(text))


class CindexEngine:
    """libclang-backed engine: walks FUNCTION_DECL / CXX_METHOD cursors in
    each TU (compile flags from build/compile_commands.json when present)
    and re-emits their token streams as FunctionUnits. Rule logic is
    shared with the token engine; only the splitting differs."""

    name = "cindex"

    def __init__(self):
        import clang.cindex as cindex  # raises if bindings are absent
        self._cindex = cindex
        self._index = cindex.Index.create()
        self._args = self._compile_args()

    def _compile_args(self):
        db = REPO / "build" / "compile_commands.json"
        args = ["-std=c++20", f"-I{SRC}"]
        if db.exists():
            try:
                cdb = self._cindex.CompilationDatabase.fromDirectory(
                    str(db.parent))
                cmds = cdb.getAllCompileCommands()
                if cmds:
                    first = list(cmds[0].arguments)
                    args = [a for a in first[1:]
                            if a.startswith(("-I", "-D", "-std"))]
            except self._cindex.CompilationDatabaseError:
                pass
        return args

    def functions(self, path, text):
        cindex = self._cindex
        tu = self._index.parse(str(path), args=self._args,
                               unsaved_files=[(str(path), text)])
        units = []
        kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
                 cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR)

        def visit(cursor):
            for child in cursor.get_children():
                if child.kind in kinds and child.is_definition() and \
                        child.location.file and \
                        Path(str(child.location.file)) == path:
                    toks = [Tok("ident" if t.kind.name == "IDENTIFIER"
                                else t.kind.name.lower(), t.spelling,
                                t.location.line)
                            for t in child.get_tokens()]
                    # Trim to the body (from the first '{').
                    try:
                        start = next(idx for idx, t in enumerate(toks)
                                     if t.text == "{")
                    except StopIteration:
                        continue
                    ret = [t.text for t in toks[:start]]
                    units.append(FunctionUnit(
                        path, child.spelling, toks[start].line, ret,
                        toks[start:]))
                else:
                    visit(child)

        visit(tu.cursor)
        return units


def make_engine(choice):
    if choice in ("auto", "cindex"):
        try:
            return CindexEngine()
        except Exception as e:  # bindings missing or libclang unloadable
            if choice == "cindex":
                print(f"payg_analyzer: cindex engine unavailable ({e}); "
                      "falling back to token engine", file=sys.stderr)
    return TokenEngine()


# ---------------------------------------------------------------------------
# Rule helpers.
# ---------------------------------------------------------------------------

def harvest_status_functions(root):
    """Names only ever declared to return Status / Result<T> under root.
    Every function-shaped declaration is classified by its return type; a
    name that also appears with any other return type is ambiguous and
    dropped — the swallow rule must never fire on a void overload."""
    decl_re = re.compile(
        r"^\s*(?:static\s+|virtual\s+|inline\s+|constexpr\s+|explicit\s+|"
        r"\[\[nodiscard\]\]\s+)*"
        r"(?:const\s+)?(?P<ret>[\w:]+(?:<[^;{}()]*>)?)\s*[&*]?\s+"
        r"(?P<name>\w+)\s*\(", re.M)
    status, other = set(), set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".h", ".cc") or not path.is_file():
            continue
        for m in decl_re.finditer(path.read_text()):
            ret, name = m.group("ret"), m.group("name")
            if ret in ("return", "new", "case", "delete", "else", "typename",
                       "using", "template", "typedef", "co_return", "throw"):
                continue
            base = ret.split("::")[-1]
            if base == "Status" or base.startswith("Result<") or \
                    base == "Result":
                status.add(name)
            else:
                other.add(name)
    return status - other


def collect_allows(text):
    """line -> set of allowed rules (a marker also covers the next line)."""
    allows = {}
    for lineno, line in enumerate(text.split("\n"), 1):
        for rule in ALLOW_RE.findall(line):
            allows.setdefault(lineno, set()).add(rule)
            allows.setdefault(lineno + 1, set()).add(rule)
        if LINT_DROP_RE.search(line):
            allows.setdefault(lineno, set()).add("status-swallow")
            allows.setdefault(lineno + 1, set()).add("status-swallow")
    return allows


def is_allowed(allows, line, rule):
    return rule in allows.get(line, ())


# ---------------------------------------------------------------------------
# Rule: lock-order.
# ---------------------------------------------------------------------------

def classify_lock(basename, arg_text):
    for pattern, cls in LOCK_SITES.get(basename, ()):
        if re.search(pattern, arg_text):
            return cls
    return None


def check_lock_order(unit, findings):
    basename = unit.path.name
    sites = basename in LOCK_SITES
    shard = basename in SHARD_LOCK_FILES
    if not sites and not shard:
        return
    toks = unit.tokens
    held = []  # [cls, guard_name, brace_depth, active]
    depth = 0
    i = 0
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            held = [h for h in held if h[2] <= depth]
        elif t.kind == "ident":
            cls = None
            guard_name = None
            if t.text in GUARD_TYPES and i + 2 < n and \
                    toks[i + 1].kind == "ident" and toks[i + 2].text == "(":
                close = _match_paren_fwd(toks, i + 2)
                arg = "".join(x.text for x in toks[i + 3:close])
                cls = classify_lock(basename, arg) if sites else None
                guard_name = toks[i + 1].text
                i = close
            elif shard and t.text == "ShardLock" and i + 2 < n and \
                    toks[i + 1].kind == "ident" and toks[i + 2].text == "(":
                close = _match_paren_fwd(toks, i + 2)
                cls = "cache.shard"
                guard_name = toks[i + 1].text
                i = close
            elif i + 2 < n and toks[i + 1].text == "." and \
                    toks[i + 2].text in ("Lock", "Unlock"):
                for h in held:
                    if h[1] == t.text:
                        if toks[i + 2].text == "Unlock":
                            h[3] = False
                        else:
                            h[3] = True
                            _check_acquire(
                                unit, h[0], t.line,
                                [x for x in held if x is not h and x[3]],
                                findings)
                i += 2
            elif t.kind == "ident" and i + 1 < n and toks[i + 1].text == "(":
                for h in held:
                    if not h[3]:
                        continue
                    forb = LOCKED_CALL_FORBIDDEN.get(h[0])
                    if forb and t.text in forb[0]:
                        findings.append((unit.path, t.line, "lock-order",
                                         f"{t.text}() called in "
                                         f"{unit.name}: {forb[1]}"))
            if cls is not None:
                _check_acquire(unit, cls, t.line,
                               [h for h in held if h[3]], findings)
                held.append([cls, guard_name, depth, True])
        i += 1


def _check_acquire(unit, cls, line, held, findings):
    for h in held:
        msg = LOCK_ORDER_FORBIDDEN.get((h[0], cls))
        if msg:
            findings.append((unit.path, line, "lock-order",
                             f"in {unit.name}: {msg}"))


def _match_paren_fwd(toks, open_idx):
    depth = 0
    i = open_idx
    while i < len(toks):
        if toks[i].text == "(":
            depth += 1
        elif toks[i].text == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(toks) - 1


# ---------------------------------------------------------------------------
# Rule: pin-escape.
# ---------------------------------------------------------------------------

def check_pin_escape(unit, findings):
    toks = unit.tokens
    n = len(toks)
    # Pass 1: function-local pins (member pins — trailing underscore or
    # declared elsewhere — are exempt: their lifetime covers the pointer).
    pins = set()
    for i, t in enumerate(toks):
        if t.kind == "ident" and t.text in PIN_TYPES and i + 1 < n and \
                toks[i + 1].kind == "ident":
            pins.add(toks[i + 1].text)
    if not pins:
        return

    def derives_from_pin(expr_toks, tainted):
        for k, e in enumerate(expr_toks):
            if e.kind != "ident":
                continue
            if e.text in tainted:
                return True
            if e.text in pins and k + 2 < len(expr_toks) and \
                    expr_toks[k + 1].text in (".", "->") and \
                    expr_toks[k + 2].text in PIN_DERIVE_METHODS:
                return True
        return False

    # Pass 2: statement scan — taint locals initialized from a pin, then
    # flag returns and member/global stores of tainted values.
    tainted = set()
    stmt_start = 0
    returns_ptr = any(x in ("*", "&") for x in unit.ret_tokens)
    for i, t in enumerate(toks):
        if t.text != ";":
            continue
        stmt = toks[stmt_start:i]
        stmt_start = i + 1
        if not stmt:
            continue
        eq = next((k for k, e in enumerate(stmt)
                   if e.text == "=" and e.kind == "punct"), None)
        if eq is not None:
            lhs, rhs = stmt[:eq], stmt[eq + 1:]
            if derives_from_pin(rhs, tainted):
                # Pointer-typed declaration: `T* p = ...` taints p.
                if len(lhs) >= 2 and lhs[-1].kind == "ident" and \
                        any(x.text in ("*", "&") for x in lhs[:-1]):
                    name = lhs[-1].text
                    if name.endswith("_") or \
                            any(x.text in ("this", "->") for x in lhs):
                        findings.append(
                            (unit.path, stmt[0].line, "pin-escape",
                             f"in {unit.name}: pointer derived from a "
                             "function-local pin stored into a member — it "
                             "dangles once the pin is released"))
                    else:
                        tainted.add(name)
                elif lhs and (lhs[-1].text.endswith("_") or
                              any(x.text == "this" for x in lhs) or
                              (len(lhs) >= 3 and lhs[-2].text in (".", "->")
                               and lhs[-1].kind == "ident" and
                               lhs[0].text.endswith("_"))):
                    findings.append(
                        (unit.path, stmt[0].line, "pin-escape",
                         f"in {unit.name}: value derived from a "
                         "function-local pin stored into a member — it "
                         "dangles once the pin is released"))
        elif stmt[0].text == "return" and returns_ptr and \
                derives_from_pin(stmt[1:], tainted):
            findings.append(
                (unit.path, stmt[0].line, "pin-escape",
                 f"in {unit.name}: pointer derived from a function-local "
                 "pin returned — the pin is released when this function "
                 "exits"))


# ---------------------------------------------------------------------------
# Rule: wire-bounds.
# ---------------------------------------------------------------------------

def check_wire_bounds(unit, findings):
    if unit.path.name not in WIRE_BOUNDS_FILES:
        return
    toks = unit.tokens
    n = len(toks)
    # Buffers: string_view-ish names raw-read in this function.
    checked = set()   # buffers with a .size() comparison seen so far
    for i, t in enumerate(toks):
        if t.kind != "ident":
            continue
        # `buf . size ( )` in a comparison context marks buf as checked
        # from here on (straight-line dominance approximation).
        if i + 2 < n and toks[i + 1].text == "." and \
                toks[i + 2].text == "size":
            checked.add(t.text)
            continue
        # Raw reads: `buf [ ... ]` or `buf . substr (` or memcpy from
        # `buf . data ( ) + off`.
        is_index = i + 1 < n and toks[i + 1].text == "[" and \
            t.text not in ("out",)
        is_substr = i + 2 < n and toks[i + 1].text == "." and \
            toks[i + 2].text == "substr"
        is_data = i + 2 < n and toks[i + 1].text == "." and \
            toks[i + 2].text == "data"
        if not (is_index or is_substr or is_data):
            continue
        # Only frame buffers matter: the payload view or the Cursor's view.
        if t.text not in ("data", "payload", "buf", "frame"):
            continue
        if t.text not in checked:
            findings.append(
                (unit.path, t.line, "wire-bounds",
                 f"in {unit.name}: raw read of '{t.text}' not dominated by "
                 f"a {t.text}.size() check in this function"))


# ---------------------------------------------------------------------------
# Rule: status-swallow.
# ---------------------------------------------------------------------------

_STMT_STOPPERS = {"if", "while", "for", "switch", "return", "case",
                  "goto", "do", "else", "co_return", "co_await", "throw"}


def check_status_swallow(unit, status_fns, findings):
    toks = unit.tokens
    stmt_start = 1  # skip the opening brace
    depth = 0
    for i, t in enumerate(toks):
        if t.text in ("{", "}"):
            depth += 1 if t.text == "{" else -1
            stmt_start = i + 1
            continue
        if t.text != ";":
            continue
        stmt = toks[stmt_start:i]
        stmt_start = i + 1
        if not stmt:
            continue
        texts = [s.text for s in stmt]
        # Paren-balanced check: a ';' inside `for (...)` splits mid-header;
        # skip those fragments.
        if texts.count("(") != texts.count(")"):
            continue
        if any(x in _STMT_STOPPERS for x in texts):
            continue
        if any(x.startswith("PAYG_") for x in texts):
            continue  # the status macros consume the value
        if "=" in texts and "(void)" not in "".join(texts[:3]):
            # Assignment captures the value — except a leading (void) cast,
            # which is exactly the dropped form.
            if not (len(texts) >= 3 and texts[0] == "(" and
                    texts[1] == "void" and texts[2] == ")"):
                continue
        pdepth = 0
        for k, s in enumerate(stmt):
            if s.text == "(":
                pdepth += 1
            elif s.text == ")":
                pdepth -= 1
            # Only a call at statement top level is a drop: nested inside
            # another call's argument list the value is consumed. A leading
            # `(void)` cast closes before the call, so it stays top-level.
            if s.kind == "ident" and s.text in status_fns and \
                    k + 1 < len(stmt) and stmt[k + 1].text == "(" and \
                    pdepth == 0:
                prev = stmt[k - 1].text if k > 0 else ""
                if prev == "&":  # taking the address, not calling
                    continue
                findings.append(
                    (unit.path, s.line, "status-swallow",
                     f"in {unit.name}: result of {s.text}() "
                     "(Status/Result) is dropped in statement position — "
                     "propagate it or justify with "
                     "analyzer:allow(status-swallow)"))
                break


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

RULES = ("lock-order", "pin-escape", "wire-bounds", "status-swallow")


def analyze(root, engine, status_fns):
    findings = []
    for path in sorted(root.rglob("*")):
        if path.suffix != ".cc" or not path.is_file():
            continue
        text = path.read_text()
        allows = collect_allows(text)
        try:
            units = engine.functions(path, text)
        except Exception as e:
            if engine.name == "cindex":
                units = TokenEngine().functions(path, text)
                print(f"payg_analyzer: cindex failed on {path.name} ({e}); "
                      "token engine used for this file", file=sys.stderr)
            else:
                raise
        raw = []
        for unit in units:
            check_lock_order(unit, raw)
            check_pin_escape(unit, raw)
            check_wire_bounds(unit, raw)
            check_status_swallow(unit, status_fns, raw)
        for path_, line, rule, msg in raw:
            if not is_allowed(allows, line, rule):
                findings.append((path_.relative_to(REPO), line, rule, msg))
    return findings


def self_test(engine):
    status_fns = harvest_status_functions(FIXTURES)
    # Every seeded (file, rule) pair must be flagged; clean.cc must stay
    # clean; no rule may fire on a fixture seeded for a different rule.
    expected = {
        ("fixture_lock_order.cc", "lock-order"),
        ("fixture_pin_escape.cc", "pin-escape"),
        ("fixture_wire_bounds.cc", "wire-bounds"),
        ("fixture_status_swallow.cc", "status-swallow"),
    }
    findings = analyze(FIXTURES, engine, status_fns)
    got = {(f[0].name, f[2]) for f in findings}
    missing = expected - got
    unexpected = {g for g in got if g not in expected and g[0] != "clean.cc"}
    clean_hits = [f for f in findings if f[0].name == "clean.cc"]
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    ok = not missing and not unexpected and not clean_hits
    if missing:
        print(f"self-test FAILED: seeded violations not flagged: "
              f"{sorted(missing)}")
    if unexpected:
        print(f"self-test FAILED: unexpected findings: {sorted(unexpected)}")
    if clean_hits:
        print("self-test FAILED: clean.cc was flagged")
    print(f"self-test ({engine.name} engine) " + ("OK" if ok else "FAILED"))
    return 0 if ok else 1


def main():
    engine_choice = "auto"
    for arg in sys.argv[1:]:
        if arg.startswith("--engine="):
            engine_choice = arg.split("=", 1)[1]
    engine = make_engine(engine_choice)

    if "--self-test" in sys.argv:
        return self_test(engine)

    status_fns = harvest_status_functions(SRC)
    findings = analyze(SRC, engine, status_fns)
    for rel, line, rule, msg in findings:
        print(f"{rel}:{line}: [{rule}] {msg}")
    if findings:
        print(f"payg_analyzer.py: {len(findings)} finding(s) "
              f"({engine.name} engine)")
        return 1
    print(f"payg_analyzer.py: clean ({engine.name} engine)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
