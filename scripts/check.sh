#!/usr/bin/env bash
# Full verification: regular build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive suites (the
# resource manager's striped touch buffers, the partition-parallel
# executor, the lock-free metrics/trace ring, and the page cache's
# asynchronous prefetch pool).
# Usage: scripts/check.sh [build-dir-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

echo "== regular build + full test suite =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== TSan build: buffer + exec + obs + paged suites =="
cmake -B "$BUILD-tsan" -S . -DPAYG_SANITIZE=thread >/dev/null
cmake --build "$BUILD-tsan" -j --target buffer_test exec_test obs_test paged_test
"$BUILD-tsan"/tests/buffer_test
"$BUILD-tsan"/tests/exec_test
"$BUILD-tsan"/tests/obs_test
"$BUILD-tsan"/tests/paged_test

echo "check.sh: all green"
