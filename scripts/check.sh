#!/usr/bin/env bash
# Full verification: project lint gate first (cheapest signal), then the
# regular build + complete test suite, then a
# ThreadSanitizer build running the concurrency-sensitive suites (the
# resource manager's lock-free pin path and striped touch buffers, the
# partition-parallel executor, the lock-free metrics/trace ring, the
# query-profile capture and slow-query ring, the page cache's asynchronous
# prefetch pool, and the sharded-cache stress suite), then an ASan+UBSan
# build of the buffer, cache stress, codec and profile suites.
# Usage: scripts/check.sh [build-dir-prefix]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"

echo "== project lint (scripts/lint.py) =="
python3 scripts/lint.py
python3 scripts/lint.py --self-test

echo "== regular build + full test suite =="
cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo "== I/O backend legs: storage + cache + paged suites under sync and uring =="
# The uring leg is skip-not-fail on hosts without io_uring: backend
# selection falls back to sync (one-time stderr note) and the
# uring-parameterized storage tests GTEST_SKIP, so the leg still passes.
for backend in sync uring; do
  echo "-- PAYG_IO_BACKEND=$backend"
  env PAYG_IO_BACKEND="$backend" ctest --test-dir "$BUILD" \
    --output-on-failure -j "$(nproc)" -R "Storage|Cache|Paged|Prefetch|Exec"
done

echo "== TSan build: buffer + exec + obs + profile + paged + cache-stress suites =="
cmake -B "$BUILD-tsan" -S . -DPAYG_SANITIZE=thread >/dev/null
cmake --build "$BUILD-tsan" -j --target buffer_test exec_test obs_test profile_test paged_test cache_stress_test
"$BUILD-tsan"/tests/buffer_test
"$BUILD-tsan"/tests/exec_test
"$BUILD-tsan"/tests/obs_test
"$BUILD-tsan"/tests/profile_test
"$BUILD-tsan"/tests/paged_test
"$BUILD-tsan"/tests/cache_stress_test

echo "== ASan+UBSan build: buffer + cache-stress + codec + profile suites =="
cmake -B "$BUILD-asan" -S . -DPAYG_SANITIZE=address+undefined >/dev/null
cmake --build "$BUILD-asan" -j --target buffer_test cache_stress_test codec_test profile_test
"$BUILD-asan"/tests/buffer_test
"$BUILD-asan"/tests/cache_stress_test
"$BUILD-asan"/tests/codec_test
"$BUILD-asan"/tests/profile_test

echo "check.sh: all green"
