// Closed-loop throughput/latency benchmark of the S25 network front door —
// the repo's first end-to-end (client → wire → admission → executor)
// benchmark. N client threads each run connect → request → think in a loop
// against payg_server's wire protocol; every request is timed client-side,
// so percentiles include queueing and the wire, not just the engine.
//
// Phases (self-hosted mode):
//   sweep    — clients ∈ {1, 8, 16} × {unbatched (PAYG_SERVER_MAX_BATCH=1
//              semantics), batched} point-lookup load on one table. The
//              lookup column is page loadable and unindexed, so each probe
//              costs a full (paged) scan — the regime where coalescing
//              same-partition probes into one search_in dispatch pays.
//              The acceptance signal: batched qps > unbatched qps and
//              batched p95 < unbatched p95 at >= 8 clients.
//   overload — undersized queue (4) + 1 worker + zero think time: the
//              admission layer must shed (fast kOverloaded responses,
//              bounded p99 for the survivors) instead of queueing
//              unboundedly.
//
// With PAYG_SERVER_CONNECT=<unix socket path> the bench instead drives an
// already-running payg_server (CI smoke does this) and runs a single sweep;
// shed is then counted from client-observed kOverloaded responses.
//
// Knobs: PAYG_BENCH_ROWS (500000), PAYG_BENCH_WORKERS (2),
// PAYG_BENCH_DURATION_MS (1500 per setting), PAYG_BENCH_CLIENTS
// ("1,8,16"), PAYG_THINK_US (100), PAYG_LATENCY_US (0), PAYG_BENCH_JSON
// (BENCH_server.json), PAYG_EXPECT_SHED (unset = record only; "0" = exit 1
// if the sweep shed, "1" = exit 1 unless shedding was observed).
//
// The default worker count is deliberately below the peak client count:
// batching only has something to coalesce once the admission queue builds,
// i.e. when the worker pool — not the client — is the bottleneck. Both
// variants run with the identical pool, so the comparison stays fair.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/column_store.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/seed.h"
#include "server/server.h"

namespace {

using namespace payg;
using namespace payg::server;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

struct PhaseResult {
  uint64_t completed = 0;
  uint64_t shed = 0;    // client-observed kOverloaded
  uint64_t errors = 0;  // anything else non-OK
  double qps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double mean_batch = 0;  // server-side batch_size mean (self-host only)
};

double Percentile(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(idx, sorted.size() - 1)]);
}

// One closed-loop phase: `clients` threads of CountByValue lookups with
// `think_us` pause between requests, for `duration_ms` after a short
// warmup. Returns client-side stats.
PhaseResult RunPhase(const std::string& socket_path, uint32_t clients,
                     uint64_t duration_ms, uint64_t think_us,
                     uint64_t key_space) {
  PhaseResult result;
  std::atomic<bool> warm{true};
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> samples(clients);
  std::vector<uint64_t> sheds(clients, 0), errors(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  for (uint32_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::ConnectUnix(socket_path);
      if (!client.ok()) {
        errors[t] += 1;
        return;
      }
      std::mt19937_64 rng(0x5EED5EEDull + t);
      samples[t].reserve(1 << 16);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto key = static_cast<int64_t>(rng() % key_space);
        const auto t0 = std::chrono::steady_clock::now();
        auto count = (*client)->CountByValue("T", "k", Value(key));
        const auto us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        if (!warm.load(std::memory_order_relaxed)) {
          if (count.ok()) {
            samples[t].push_back(us);
          } else if ((*client)->last_code() == wire::Code::kOverloaded) {
            sheds[t] += 1;
          } else {
            errors[t] += 1;
          }
        }
        if (think_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(think_us));
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warmup
  warm.store(false);
  const auto begin = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  std::vector<uint64_t> all;
  for (uint32_t t = 0; t < clients; ++t) {
    all.insert(all.end(), samples[t].begin(), samples[t].end());
    result.shed += sheds[t];
    result.errors += errors[t];
  }
  std::sort(all.begin(), all.end());
  result.completed = all.size();
  result.qps = secs > 0 ? static_cast<double>(all.size()) / secs : 0;
  result.p50_us = Percentile(all, 0.50);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

void PrintPhase(const char* label, uint32_t clients, const PhaseResult& r) {
  std::printf(
      "%-10s clients=%2u qps=%9.0f p50=%7.0fus p95=%7.0fus p99=%7.0fus "
      "completed=%8llu shed=%llu errors=%llu mean_batch=%.2f\n",
      label, clients, r.qps, r.p50_us, r.p95_us, r.p99_us,
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.errors), r.mean_batch);
  std::fflush(stdout);
}

void JsonArray(std::ofstream& out, const char* key,
               const std::vector<double>& values, const char* fmt) {
  out << "\"" << key << "\":[";
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof buf, fmt, values[i]);
    out << (i > 0 ? "," : "") << buf;
  }
  out << "]";
}

}  // namespace

int main() {
  const uint64_t rows = EnvU64("PAYG_BENCH_ROWS", 500000);
  const auto sweep_workers =
      static_cast<uint32_t>(EnvU64("PAYG_BENCH_WORKERS", 2));
  const uint64_t key_space = rows >= 8 ? rows / 8 : 1;
  const uint64_t duration_ms = EnvU64("PAYG_BENCH_DURATION_MS", 1500);
  const uint64_t think_us = EnvU64("PAYG_THINK_US", 100);
  const auto latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_LATENCY_US", 0));

  std::vector<uint32_t> client_counts;
  {
    const char* spec = std::getenv("PAYG_BENCH_CLIENTS");
    std::string s = spec != nullptr ? spec : "1,8,16";
    size_t pos = 0;
    while (pos < s.size()) {
      client_counts.push_back(
          static_cast<uint32_t>(std::strtoul(s.c_str() + pos, nullptr, 10)));
      pos = s.find(',', pos);
      if (pos == std::string::npos) break;
      ++pos;
    }
  }

  const char* connect_path = std::getenv("PAYG_SERVER_CONNECT");
  const char* expect_shed = std::getenv("PAYG_EXPECT_SHED");

  std::vector<double> unbatched_qps, unbatched_p50, unbatched_p95,
      unbatched_p99;
  std::vector<double> batched_qps, batched_p50, batched_p95, batched_p99,
      batched_mean_batch;
  PhaseResult overload;
  uint64_t sweep_shed = 0;
  bool ran_overload = false;

  std::unique_ptr<ColumnStore> store;
  std::string dir;

  if (connect_path != nullptr) {
    // Drive an external payg_server: one sweep, client-side stats only.
    std::printf("# bench_server: connect mode, socket=%s\n", connect_path);
    for (uint32_t clients : client_counts) {
      PhaseResult r =
          RunPhase(connect_path, clients, duration_ms, think_us, key_space);
      PrintPhase("connect", clients, r);
      batched_qps.push_back(r.qps);
      batched_p50.push_back(r.p50_us);
      batched_p95.push_back(r.p95_us);
      batched_p99.push_back(r.p99_us);
      sweep_shed += r.shed;
      overload = r;  // last setting doubles as the shed probe in CI smoke
      ran_overload = true;
    }
  } else {
    dir = std::filesystem::temp_directory_path().string() + "/payg_bench_server";
    std::filesystem::remove_all(dir);
    ColumnStoreOptions store_options;
    store_options.directory = dir + "/data";
    store_options.storage.page_size = 8 * 1024;
    store_options.storage.dict_page_size = 32 * 1024;
    store_options.storage.simulated_read_latency_us = latency_us;
    auto opened = ColumnStore::Open(store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
    Status seeded = SeedDemoTable(store.get(), {.rows = rows,
                                                .key_space = key_space});
    if (!seeded.ok()) {
      std::fprintf(stderr, "seed: %s\n", seeded.ToString().c_str());
      return 1;
    }
    std::printf("# bench_server: selfhost, rows=%llu key_space=%llu "
                "think=%lluus duration=%llums\n",
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(key_space),
                static_cast<unsigned long long>(think_us),
                static_cast<unsigned long long>(duration_ms));

    auto* batch_size_hist =
        obs::MetricsRegistry::Global().histogram("server.batch_size");

    // Sweep: unbatched vs batched at each client count, fresh server per
    // variant so max_batch differs while everything else is equal load.
    for (const bool batched : {false, true}) {
      for (uint32_t clients : client_counts) {
        ServerOptions options;
        options.unix_path = dir + "/sock";
        options.worker_threads = sweep_workers;
        options.max_batch = batched ? 64 : 1;
        Server server(store.get(), options);
        Status started = server.Start();
        if (!started.ok()) {
          std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
          return 1;
        }
        const uint64_t size0 = batch_size_hist->sum();
        const uint64_t cnt0 = batch_size_hist->count();
        PhaseResult r = RunPhase(options.unix_path, clients, duration_ms,
                                 think_us, key_space);
        const uint64_t batches = batch_size_hist->count() - cnt0;
        r.mean_batch = batches > 0
                           ? static_cast<double>(batch_size_hist->sum() - size0) /
                                 static_cast<double>(batches)
                           : 0;
        server.Stop();
        PrintPhase(batched ? "batched" : "unbatched", clients, r);
        sweep_shed += r.shed;
        if (batched) {
          batched_qps.push_back(r.qps);
          batched_p50.push_back(r.p50_us);
          batched_p95.push_back(r.p95_us);
          batched_p99.push_back(r.p99_us);
          batched_mean_batch.push_back(r.mean_batch);
        } else {
          unbatched_qps.push_back(r.qps);
          unbatched_p50.push_back(r.p50_us);
          unbatched_p95.push_back(r.p95_us);
          unbatched_p99.push_back(r.p99_us);
        }
      }
    }

    // Overload: undersized queue, one worker, no think time. The survivors'
    // p99 stays bounded because excess load is refused at admission.
    {
      ServerOptions options;
      options.unix_path = dir + "/sock";
      options.worker_threads = 1;
      options.queue_capacity = 4;
      options.max_batch = 64;
      Server server(store.get(), options);
      Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
        return 1;
      }
      overload = RunPhase(options.unix_path, 16, duration_ms,
                          /*think_us=*/0, key_space);
      server.Stop();
      ran_overload = true;
      PrintPhase("overload", 16, overload);
    }
  }

  const char* json_path = std::getenv("PAYG_BENCH_JSON");
  const std::string out_path =
      json_path != nullptr ? json_path : "BENCH_server.json";
  std::ofstream out(out_path);
  out << "{\"bench\":\"server\",\"mode\":\""
      << (connect_path != nullptr ? "connect" : "selfhost")
      << "\",\"rows\":" << rows << ",\"key_space\":" << key_space
      << ",\"duration_ms\":" << duration_ms << ",\"think_us\":" << think_us
      << ",\"latency_us\":" << latency_us << ",\"clients\":[";
  for (size_t i = 0; i < client_counts.size(); ++i) {
    out << (i > 0 ? "," : "") << client_counts[i];
  }
  out << "],\n";
  if (!unbatched_qps.empty()) {
    JsonArray(out, "unbatched_qps", unbatched_qps, "%.0f");
    out << ",";
    JsonArray(out, "unbatched_p50_us", unbatched_p50, "%.0f");
    out << ",";
    JsonArray(out, "unbatched_p95_us", unbatched_p95, "%.0f");
    out << ",";
    JsonArray(out, "unbatched_p99_us", unbatched_p99, "%.0f");
    out << ",\n";
  }
  JsonArray(out, "batched_qps", batched_qps, "%.0f");
  out << ",";
  JsonArray(out, "batched_p50_us", batched_p50, "%.0f");
  out << ",";
  JsonArray(out, "batched_p95_us", batched_p95, "%.0f");
  out << ",";
  JsonArray(out, "batched_p99_us", batched_p99, "%.0f");
  if (!batched_mean_batch.empty()) {
    out << ",";
    JsonArray(out, "batched_mean_batch", batched_mean_batch, "%.2f");
  }
  if (ran_overload) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  ",\n\"overload\":{\"clients\":16,\"queue\":4,"
                  "\"workers\":1,\"qps\":%.0f,\"p99_us\":%.0f,"
                  "\"completed\":%llu,\"shed\":%llu,\"errors\":%llu}",
                  overload.qps, overload.p99_us,
                  static_cast<unsigned long long>(overload.completed),
                  static_cast<unsigned long long>(overload.shed),
                  static_cast<unsigned long long>(overload.errors));
    out << buf;
  }
  out << ",\n\"note\":\"closed loop, client-side timing: latency includes "
         "queueing and the wire; unbatched = PAYG_SERVER_MAX_BATCH 1\"}\n";
  out.close();
  std::printf("# wrote %s\n", out_path.c_str());

  if (!dir.empty()) {
    store.reset();
    std::filesystem::remove_all(dir);
  }

  // CI smoke gates: shed must not happen at healthy load, and must happen
  // in the overload phase (or connect-mode probe) when demanded.
  if (expect_shed != nullptr) {
    if (std::strcmp(expect_shed, "0") == 0) {
      const uint64_t observed =
          connect_path != nullptr ? sweep_shed + overload.shed : sweep_shed;
      if (observed != 0) {
        std::fprintf(stderr,
                     "PAYG_EXPECT_SHED=0 but %llu requests were shed\n",
                     static_cast<unsigned long long>(observed));
        return 1;
      }
    } else {
      if (overload.shed == 0) {
        std::fprintf(stderr,
                     "PAYG_EXPECT_SHED=%s but the overload phase shed 0\n",
                     expect_shed);
        return 1;
      }
    }
  }
  return 0;
}
