// Ablation: the §5 eviction machinery. Sweeps the paged pool's upper/lower
// limits under a steady point-query stream on T_p and reports footprint,
// throughput, proactive eviction counts, and physical page re-reads — the
// performance/cost trade-off §4.1 describes for the tunable page pool.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("ablation_eviction");
  const uint64_t queries = std::min<uint64_t>(env.queries, 1000);
  std::printf("# Ablation — paged pool limits (Q_pk^str stream on T_p): "
              "rows=%llu queries=%llu latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(queries), env.latency_us);
  std::printf("ablation_eviction: rows (upper_mb, lower_mb, avg_query_us, "
              "final_pool_mb, proactive_evictions, pages_read)\n");

  // 0 = unlimited pool (no proactive sweep) as the baseline.
  const uint64_t upper_limits_mb[] = {0, 16, 8, 4, 2};
  for (uint64_t upper_mb : upper_limits_mb) {
    std::string subdir = "ev_" + std::to_string(upper_mb);
    ColumnStoreOptions options = StoreOptions(env, subdir);
    if (upper_mb > 0) {
      options.paged_pool_limits = {upper_mb * 1024 * 1024 / 2,
                                   upper_mb * 1024 * 1024};
    }
    auto store = ColumnStore::Open(options);
    BENCH_CHECK_OK(store);
    ErpConfig config = MakeConfig(env, TableVariant::kPagedAll, false);
    auto table = (*store)->CreateTable(MakeErpSchema(config, subdir));
    BENCH_CHECK_OK(table);
    auto populate = PopulateErpTable(*table, config);
    if (!populate.ok()) std::abort();
    (*table)->UnloadAll();
    (*store)->storage().io_stats().Reset();

    ErpWorkload w(config, 1301);
    Stopwatch timer;
    for (uint64_t q = 0; q < queries; ++q) {
      uint64_t row = w.RandomRow();
      int col = w.RandomColumnOfType(ValueType::kString, false);
      auto r = (*table)->SelectByValue("pk", w.PkOfRow(row),
                                       {w.columns()[col].name});
      BENCH_CHECK_OK(r);
    }
    double avg_us = timer.ElapsedMicros() / static_cast<double>(queries);
    (*store)->resource_manager().SweepNow();
    auto stats = (*store)->resource_manager().stats();
    std::printf("ablation_eviction,%llu,%llu,%.1f,%.2f,%llu,%llu\n",
                static_cast<unsigned long long>(upper_mb),
                static_cast<unsigned long long>(
                    options.paged_pool_limits.lower / (1024 * 1024)),
                avg_us,
                static_cast<double>(
                    (*store)->resource_manager().pool_bytes(
                        PoolId::kPagedPool)) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(stats.proactive_evictions),
                static_cast<unsigned long long>(
                    (*store)->storage().io_stats().pages_read.load()));
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
