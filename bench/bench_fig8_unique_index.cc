// Fig. 8: single read of the unique paged inverted index on the primary key.
// Workload Q_pk^rid — SELECT ROWID() FROM T WHERE C_pk = value — on T_pp
// (only the pk page loadable) vs. T_b (§6.2.3).
//
// For a unique column the paged index stores no directory; a pk search
// decodes exactly one posting, so the runtime stays close to the non-paged
// index (the paper reports ~29% average overhead), while the minimum memory
// footprint of the paged index is one page.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig8");
  std::printf("# Fig 8 — Q_pk^rid on T_b vs T_pp: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig8", env, TableVariant::kBase, TableVariant::kPagedPkOnly,
            /*with_indexes=*/false, /*query_seed=*/801,
            [](Table* table, ErpWorkload& w) {
              auto r = table->RowIdsByValue("pk", w.PkOfRow(w.RandomRow()));
              BENCH_CHECK_OK(r);
              if (r->size() != 1) std::abort();
            });
  return 0;
}
