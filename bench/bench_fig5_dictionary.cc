// Fig. 5: single read of a string column — paged dictionary (via value-id
// materialization) plus paged data vector. Workload Q_pk^str — SELECT C_str
// FROM T WHERE C_pk = value for random rows — on T_p vs. T_b (§6.2.2).
//
// Each query reads one vid from the paged data vector, probes the helper
// value-id directory, and materializes one string from one dictionary page.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig5");
  std::printf("# Fig 5 — Q_pk^str on T_b vs T_p: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig5", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/false, /*query_seed=*/501,
            [](Table* table, ErpWorkload& w) {
              uint64_t row = w.RandomRow();
              int col = w.RandomColumnOfType(ValueType::kString, false);
              auto r = table->SelectByValue("pk", w.PkOfRow(row),
                                            {w.columns()[col].name});
              BENCH_CHECK_OK(r);
              if (r->rows.size() != 1) std::abort();
            });
  return 0;
}
