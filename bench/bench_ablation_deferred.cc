// Ablation: adaptive/deferred index rebuild (§8). Compares three index
// regimes for a page loadable column over the same lifecycle — build (the
// delta-merge cost), first lookups (where the deferred regime pays its
// rebuild), and a steady lookup stream:
//
//   eager     index built during the merge (classic §3.3 behaviour)
//   deferred  index rebuilt from the data vector at the first lookup
//   none      every lookup is an Alg.-1 data vector scan
//
// §8's claim is that for rarely-point-queried columns the deferred regime
// saves the merge-time build without giving up index speed once queries
// arrive; "none" shows what skipping the index entirely costs.

#include "bench/bench_common.h"

#include "buffer/resource_manager.h"
#include "paged/paged_fragment.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("ablation_deferred");
  const uint64_t rows = env.rows;
  const uint64_t lookups = 200;
  const uint64_t cardinality = 1000;
  std::printf("# Ablation — deferred index rebuild (§8): rows=%llu "
              "lookups=%llu latency_us=%u\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(lookups), env.latency_us);
  std::printf("ablation_deferred: rows (mode, build_ms, first_lookup_ms, "
              "steady_avg_us)\n");

  // Shared column content.
  std::vector<Value> dict_values;
  for (uint64_t i = 0; i < cardinality; ++i) {
    dict_values.emplace_back(static_cast<int64_t>(i));
  }
  Random data_rng(7);
  std::vector<ValueId> vids;
  vids.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    vids.push_back(static_cast<ValueId>(data_rng.Uniform(cardinality)));
  }

  const struct {
    PagedFragment::IndexMode mode;
    const char* label;
  } modes[] = {{PagedFragment::IndexMode::kEager, "eager"},
               {PagedFragment::IndexMode::kDeferred, "deferred"},
               {PagedFragment::IndexMode::kNone, "none"}};

  for (const auto& m : modes) {
    ColumnStoreOptions options = StoreOptions(env, m.label);
    auto storage = StorageManager::Open(options.directory, options.storage);
    BENCH_CHECK_OK(storage);
    ResourceManager rm;

    Stopwatch build_timer;
    auto frag = PagedFragment::Build(storage->get(), &rm, PoolId::kPagedPool,
                                     "col", ValueType::kInt64, dict_values,
                                     vids, m.mode,
                                     /*index_build_threshold=*/1);
    BENCH_CHECK_OK(frag);
    double build_ms = build_timer.ElapsedMillis();

    (*frag)->Unload();
    auto reader = (*frag)->NewReader();
    BENCH_CHECK_OK(reader);

    Random rng(99);
    Stopwatch first_timer;
    std::vector<RowPos> out;
    {
      auto s = (*reader)->FindRows(
          static_cast<ValueId>(rng.Uniform(cardinality)), &out);
      if (!s.ok()) std::abort();
    }
    double first_ms = first_timer.ElapsedMillis();

    Stopwatch steady_timer;
    for (uint64_t q = 1; q < lookups; ++q) {
      out.clear();
      auto s = (*reader)->FindRows(
          static_cast<ValueId>(rng.Uniform(cardinality)), &out);
      if (!s.ok()) std::abort();
    }
    double steady_us =
        steady_timer.ElapsedMicros() / static_cast<double>(lookups - 1);

    std::printf("ablation_deferred,%s,%.1f,%.2f,%.1f\n", m.label, build_ms,
                first_ms, steady_us);
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
