// Fig. 7: multiple reads through the paged inverted index. Workload
// Q_num^count — SELECT COUNT(*) FROM T WHERE C_num = value — on T_b^i vs.
// T_p^i (one inverted index per column, §6.2.3).
//
// The numeric dictionary is resident, so each query exercises only the
// paged inverted index: one directory access plus postinglist reads. Most
// columns are sparse (low cardinality), so their paged index has a mixed
// page; each search needs at most two page accesses, putting the ratio
// between Fig. 4 (data vector) and Fig. 6 (dictionary search).

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig7");
  std::printf("# Fig 7 — Q_num^count on T_b^i vs T_p^i: rows=%llu "
              "queries=%llu latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig7", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/true, /*query_seed=*/701,
            [](Table* table, ErpWorkload& w) {
              // High-cardinality numeric columns keep result sets (and the
              // baseline count cost) small, isolating index access cost.
              bool high = !w.rng().OneIn(4);
              int col = w.RandomColumnOfType(ValueType::kInt64, high);
              if (col < 0) col = w.RandomColumnOfType(ValueType::kInt64,
                                                      false);
              auto r = table->CountByValue(w.columns()[col].name,
                                           w.RandomValueOf(col));
              BENCH_CHECK_OK(r);
            });
  return 0;
}
