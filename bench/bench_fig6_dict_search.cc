// Fig. 6: multiple reads of paged dictionaries through the findByValue path.
// Workload Q_str^count — SELECT COUNT(*) FROM T WHERE C_str = value for
// random string values — on T_p vs. T_b (§6.2.2).
//
// Each query probes the helper separator dictionary (ipDict_Value), loads
// one dictionary page to resolve the value identifier, then scans the data
// vector (no inverted indexes are defined on non-pk columns here). The paper
// observes a fast-rising memory footprint for the first few hundred queries
// and large early runtime ratios; the same burst appears at this scale.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig6");
  std::printf("# Fig 6 — Q_str^count on T_b vs T_p: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig6", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/false, /*query_seed=*/601,
            [](Table* table, ErpWorkload& w) {
              // Mix low- and high-cardinality string columns, as the random
              // workload of §6.2.2 does across the 128-column table.
              bool high = w.rng().OneIn(3);
              int col = w.RandomColumnOfType(ValueType::kString, high);
              if (col < 0) col = w.RandomColumnOfType(ValueType::kString,
                                                      false);
              auto r = table->CountByValue(w.columns()[col].name,
                                           w.RandomValueOf(col));
              BENCH_CHECK_OK(r);
            });
  return 0;
}
