// Ablation: page size of the paged chains. The paper fixes dictionary pages
// at 1 MB (§3.2.2) and stores an integral number of chunks per data-vector
// page; this sweep quantifies the trade-off behind those choices — larger
// pages amortize per-read latency but load more unnecessary bytes per point
// access (a larger mandatory footprint per touched page).
//
// Workload: random single-row point reads by primary key (Q_pk^str, the
// most page-sensitive path) against T_p at several page sizes.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("ablation_page_size");
  const uint64_t queries = std::min<uint64_t>(env.queries, 500);
  std::printf("# Ablation — page size sweep (Q_pk^str on T_p): rows=%llu "
              "queries=%llu latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(queries), env.latency_us);
  std::printf("ablation_page_size: rows (page_kb, dict_page_kb, avg_query_us, "
              "final_mem_mb, pages_read)\n");

  const uint32_t page_sizes[] = {16 * 1024, 64 * 1024, 256 * 1024,
                                 1024 * 1024};
  for (uint32_t page_size : page_sizes) {
    std::string subdir = "ps_" + std::to_string(page_size / 1024);
    ColumnStoreOptions options = StoreOptions(env, subdir);
    options.storage.page_size = page_size;
    options.storage.dict_page_size = page_size * 4;
    auto store = ColumnStore::Open(options);
    BENCH_CHECK_OK(store);
    ErpConfig config = MakeConfig(env, TableVariant::kPagedAll, false);
    auto table = (*store)->CreateTable(MakeErpSchema(config, subdir));
    BENCH_CHECK_OK(table);
    auto populate = PopulateErpTable(*table, config);
    if (!populate.ok()) std::abort();
    (*table)->UnloadAll();
    (*store)->storage().io_stats().Reset();

    ErpWorkload w(config, 1201);
    Stopwatch timer;
    for (uint64_t q = 0; q < queries; ++q) {
      uint64_t row = w.RandomRow();
      int col = w.RandomColumnOfType(ValueType::kString, false);
      auto r = (*table)->SelectByValue("pk", w.PkOfRow(row),
                                       {w.columns()[col].name});
      BENCH_CHECK_OK(r);
    }
    double avg_us = timer.ElapsedMicros() / static_cast<double>(queries);
    std::printf("ablation_page_size,%u,%u,%.1f,%.2f,%llu\n", page_size / 1024,
                options.storage.dict_page_size / 1024, avg_us,
                static_cast<double>((*store)->MemoryFootprint()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(
                    (*store)->storage().io_stats().pages_read.load()));
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
