#ifndef PAYG_BENCH_BENCH_COMMON_H_
#define PAYG_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/column_store.h"
#include "obs/metrics.h"
#include "workload/erp.h"

namespace payg::bench {

// Scale knobs. The paper runs 100M rows × 128 columns × 10,000 queries on a
// 256 GB server; the defaults here reproduce the *shape* of every figure at
// workstation scale. Override with PAYG_ROWS / PAYG_QUERIES /
// PAYG_LATENCY_US to scale up.
struct BenchEnv {
  // Chosen so that pages-per-column ≈ queries-per-column, the regime the
  // paper's figures run in (100M rows, 10k queries, ~350 pages/column):
  // 1M rows at 8 KiB pages gives ~110 data pages per low-card column and
  // ~115 random queries per column.
  uint64_t rows = 500000;
  uint64_t queries = 1500;
  // Simulated per-page read latency (µs), standing in for the paper's real
  // cold reads from enterprise storage (see DESIGN.md, substitutions).
  uint32_t latency_us = 50;
  // Modeled per-query cost of the SQL front end (parsing, session, plan) —
  // identical for both variants, as in the paper's end-to-end measurements,
  // where a point query costs ~1ms through the full HANA stack. Without it,
  // this engine's raw µs-scale point reads would exaggerate every runtime
  // ratio. Set PAYG_SESSION_US=0 to measure raw engine ratios.
  uint32_t session_us = 250;
  std::string dir;
};

inline uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

inline BenchEnv ReadEnv(const std::string& bench_name) {
  BenchEnv env;
  env.rows = EnvU64("PAYG_ROWS", env.rows);
  env.queries = EnvU64("PAYG_QUERIES", env.queries);
  env.latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_LATENCY_US", env.latency_us));
  env.session_us =
      static_cast<uint32_t>(EnvU64("PAYG_SESSION_US", env.session_us));
  env.dir = std::filesystem::temp_directory_path().string() + "/payg_bench_" +
            bench_name;
  std::filesystem::remove_all(env.dir);
  return env;
}

inline ColumnStoreOptions StoreOptions(const BenchEnv& env,
                                       const std::string& subdir) {
  ColumnStoreOptions options;
  options.directory = env.dir + "/" + subdir;
  options.storage.page_size =
      static_cast<uint32_t>(EnvU64("PAYG_PAGE_SIZE", 8 * 1024));
  options.storage.dict_page_size =
      static_cast<uint32_t>(EnvU64("PAYG_DICT_PAGE_SIZE", 32 * 1024));
  options.storage.simulated_read_latency_us = env.latency_us;
  return options;
}

inline ErpConfig MakeConfig(const BenchEnv& env, TableVariant variant,
                            bool with_indexes) {
  ErpConfig config;
  config.rows = env.rows;
  config.variant = variant;
  config.with_indexes = with_indexes;
  return config;
}

// Builds one table variant in its own store (own resource manager, so the
// memory series of base and paged runs don't mix) and drops all resident
// memory afterwards — every bench starts from a cold system (§6.1).
struct VariantInstance {
  std::unique_ptr<ColumnStore> store;
  Table* table = nullptr;

  uint64_t MemoryFootprint() const { return store->MemoryFootprint(); }
};

inline VariantInstance BuildVariant(const BenchEnv& env,
                                    const std::string& subdir,
                                    TableVariant variant, bool with_indexes) {
  VariantInstance inst;
  auto store = ColumnStore::Open(StoreOptions(env, subdir));
  if (!store.ok()) {
    std::fprintf(stderr, "open store: %s\n", store.status().ToString().c_str());
    std::abort();
  }
  inst.store = std::move(*store);
  ErpConfig config = MakeConfig(env, variant, with_indexes);
  auto table = inst.store->CreateTable(MakeErpSchema(config, subdir));
  if (!table.ok()) {
    std::fprintf(stderr, "create table: %s\n",
                 table.status().ToString().c_str());
    std::abort();
  }
  inst.table = *table;
  auto s = PopulateErpTable(inst.table, config);
  if (!s.ok()) {
    std::fprintf(stderr, "populate: %s\n", s.ToString().c_str());
    std::abort();
  }
  // Cold start: building leaves nothing resident for paged fragments, but
  // make it explicit for both variants.
  inst.table->UnloadAll();
  return inst;
}

// Prints the engine-side registry view of one run: page-cache behaviour,
// physical read latency quantiles, and eviction work. Pair with
// MetricsRegistry::ResetAll() at the start of the measured phase so the
// numbers cover exactly that phase.
inline void PrintMetricsSnapshot(const std::string& tag) {
  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t hits = reg.counter("cache.hits")->value();
  const uint64_t misses = reg.counter("cache.misses")->value();
  const uint64_t lookups = hits + misses;
  const auto read = reg.histogram("storage.read.latency_us")->snapshot();
  const uint64_t evictions = reg.counter("rm.evictions.reactive")->value() +
                             reg.counter("rm.evictions.proactive")->value();
  const double evicted_mb =
      static_cast<double>(reg.counter("rm.evicted.bytes")->value()) /
      (1024.0 * 1024.0);
  std::printf(
      "%s: metrics cache_hit_ratio=%.3f (hits=%llu misses=%llu) "
      "read_latency_us p50=%.0f p95=%.0f p99=%.0f reads=%llu "
      "evictions=%llu evicted_mb=%.1f\n",
      tag.c_str(),
      lookups == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups),
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), read.p50(), read.p95(),
      read.p99(), static_cast<unsigned long long>(read.count),
      static_cast<unsigned long long>(evictions), evicted_mb);
}

// Mean and 90% confidence half-width (1.645 σ — the spread measure the
// paper quotes, e.g. "average 1.07 with 90% confidence interval of 0.29").
struct RatioSummary {
  double mean = 0;
  double ci90 = 0;
};

inline RatioSummary Summarize(const std::vector<double>& ratios) {
  RatioSummary s;
  if (ratios.empty()) return s;
  double sum = 0;
  for (double r : ratios) sum += r;
  s.mean = sum / static_cast<double>(ratios.size());
  double var = 0;
  for (double r : ratios) var += (r - s.mean) * (r - s.mean);
  var /= static_cast<double>(ratios.size());
  s.ci90 = 1.645 * std::sqrt(var);
  return s;
}

// Prints the per-query series the paper plots: memory footprint of both
// variants (subplot a) and the per-query runtime ratio paged/base
// (subplot b), downsampled to ~50 lines.
inline void PrintSeries(const std::string& fig,
                        const std::vector<uint64_t>& mem_base,
                        const std::vector<uint64_t>& mem_paged,
                        const std::vector<double>& t_base,
                        const std::vector<double>& t_paged) {
  const size_t n = mem_base.size();
  const size_t step = std::max<size_t>(1, n / 50);
  std::printf("%s: series (query_idx, mem_base_mb, mem_paged_mb, "
              "runtime_ratio)\n",
              fig.c_str());
  for (size_t i = 0; i < n; i += step) {
    std::printf("%s,%zu,%.2f,%.2f,%.3f\n", fig.c_str(), i,
                static_cast<double>(mem_base[i]) / (1024.0 * 1024.0),
                static_cast<double>(mem_paged[i]) / (1024.0 * 1024.0),
                t_paged[i] / std::max(t_base[i], 1e-9));
  }
  std::vector<double> ratios(n);
  for (size_t i = 0; i < n; ++i) {
    ratios[i] = t_paged[i] / std::max(t_base[i], 1e-9);
  }
  RatioSummary s = Summarize(ratios);
  std::printf("%s: avg_runtime_ratio=%.3f ci90=%.3f final_mem_base_mb=%.2f "
              "final_mem_paged_mb=%.2f\n",
              fig.c_str(), s.mean, s.ci90,
              static_cast<double>(mem_base.back()) / (1024.0 * 1024.0),
              static_cast<double>(mem_paged.back()) / (1024.0 * 1024.0));
}

// Runs one §6 figure experiment: the same deterministic query stream
// against the base variant and the paged variant (each in its own store,
// cold-started), recording per-query latency and the system memory
// footprint after each query — exactly the two series each figure plots.
template <typename QueryFn>
void RunFigure(const std::string& fig, const BenchEnv& env,
               TableVariant base_variant, TableVariant paged_variant,
               bool with_indexes, uint64_t query_seed, const QueryFn& run) {
  std::vector<uint64_t> mem_base, mem_paged;
  std::vector<double> t_base, t_paged;

  struct Run {
    TableVariant variant;
    std::string subdir;
    std::vector<uint64_t>* mem;
    std::vector<double>* t;
  };
  const Run runs[2] = {
      {base_variant, fig + "_base", &mem_base, &t_base},
      {paged_variant, fig + "_paged", &mem_paged, &t_paged},
  };
  for (const Run& r : runs) {
    VariantInstance inst = BuildVariant(env, r.subdir, r.variant,
                                        with_indexes);
    ErpConfig config = MakeConfig(env, r.variant, with_indexes);
    ErpWorkload workload(config, query_seed);
    r.mem->reserve(env.queries);
    r.t->reserve(env.queries);
    // Scope the registry to the measured query stream (not the build).
    obs::MetricsRegistry::Global().ResetAll();
    for (uint64_t q = 0; q < env.queries; ++q) {
      Stopwatch timer;
      SpinWaitMicros(env.session_us);  // modeled SQL-stack cost per query
      run(inst.table, workload);
      r.t->push_back(timer.ElapsedMicros());
      r.mem->push_back(inst.MemoryFootprint());
    }
    PrintMetricsSnapshot(r.subdir);
  }
  PrintSeries(fig, mem_base, mem_paged, t_base, t_paged);
  std::filesystem::remove_all(env.dir);
}

#define BENCH_CHECK_OK(expr)                                              \
  do {                                                                    \
    auto&& _s = (expr);                                                   \
    if (!_s.ok()) {                                                       \
      std::fprintf(stderr, "%s failed: %s\n", #expr,                      \
                   _s.status().ToString().c_str());                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace payg::bench

#endif  // PAYG_BENCH_BENCH_COMMON_H_
