// Fig. 9: everything together — single read of a random full row, the data
// auditing scenario on aged data. Workload Q_pk^* — SELECT * FROM T WHERE
// C_pk = value — on T_p^i vs. T_b^i (§6.3).
//
// Each query performs a single read of the (paged) unique pk index and, to
// construct the result set, a single read of every column's paged dictionary
// and paged data vector. The runtime ratio approaches 1 once the hot pages
// are resident.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig9");
  std::printf("# Fig 9 — Q_pk^* on T_b^i vs T_p^i: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig9", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/true, /*query_seed=*/901,
            [](Table* table, ErpWorkload& w) {
              auto r = table->SelectByValue("pk", w.PkOfRow(w.RandomRow()),
                                            /*select all columns=*/{});
              BENCH_CHECK_OK(r);
              if (r->rows.size() != 1) std::abort();
            });
  return 0;
}
