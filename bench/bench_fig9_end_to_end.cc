// Fig. 9: everything together — single read of a random full row, the data
// auditing scenario on aged data. Workload Q_pk^* — SELECT * FROM T WHERE
// C_pk = value — on T_p^i vs. T_b^i (§6.3).
//
// Each query performs a single read of the (paged) unique pk index and, to
// construct the result set, a single read of every column's paged dictionary
// and paged data vector. The runtime ratio approaches 1 once the hot pages
// are resident.
//
// After the figure, a profiler phase reruns the paged-variant query stream
// warm, once without an ExecContext (profiler off) and once with a
// per-query ExecContext (profiler on), printing both per-query costs and
// the overhead — then the p99 slow-query profile from the ring. Set
// PAYG_PROFILE_JSON=<path> to also write that profile as JSON (used by
// scripts/bench_snapshot.sh).

#include <fstream>

#include "bench/bench_common.h"
#include "exec/exec_context.h"
#include "obs/slow_query_ring.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig9");
  std::printf("# Fig 9 — Q_pk^* on T_b^i vs T_p^i: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig9", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/true, /*query_seed=*/901,
            [](Table* table, ErpWorkload& w) {
              auto r = table->SelectByValue("pk", w.PkOfRow(w.RandomRow()),
                                            /*select all columns=*/{});
              BENCH_CHECK_OK(r);
              if (r->rows.size() != 1) std::abort();
            });

  // --- Profiler overhead + p99 slow-query profile ------------------------
  {
    VariantInstance inst = BuildVariant(env, "fig9_profile",
                                        TableVariant::kPagedAll,
                                        /*with_indexes=*/true);
    ErpConfig config = MakeConfig(env, TableVariant::kPagedAll, true);
    const uint64_t q_count = std::min<uint64_t>(env.queries, 500);

    // Same deterministic stream each pass; `profiled` decides whether each
    // query carries a fresh ExecContext (id mint + counter deltas + profile
    // capture + ring admission) or a null context (the profiler-off path).
    auto run_pass = [&](bool profiled) -> double {
      ErpWorkload w(config, /*seed=*/901);
      Stopwatch timer;
      for (uint64_t q = 0; q < q_count; ++q) {
        const Value pk = w.PkOfRow(w.RandomRow());
        if (profiled) {
          ExecContext ctx;
          auto r = inst.table->SelectByValue("pk", pk, {}, &ctx);
          BENCH_CHECK_OK(r);
        } else {
          auto r = inst.table->SelectByValue("pk", pk, {});
          BENCH_CHECK_OK(r);
        }
      }
      return timer.ElapsedMicros();
    };

    // Warm the pages first: against cold reads the simulated device latency
    // would swamp any bookkeeping cost, and the question this phase answers
    // is what the profiler adds to an already-fast query.
    run_pass(false);
    const double off_us = run_pass(false);
    obs::SlowQueryRing::Global().Reset();
    const double on_us = run_pass(true);

    const double off_per_q = off_us / static_cast<double>(q_count);
    const double on_per_q = on_us / static_cast<double>(q_count);
    std::printf("fig9: profiler_overhead queries=%llu "
                "off_us_per_query=%.2f on_us_per_query=%.2f "
                "overhead_pct=%.2f\n",
                static_cast<unsigned long long>(q_count), off_per_q, on_per_q,
                off_per_q <= 0 ? 0.0
                               : (on_per_q - off_per_q) / off_per_q * 100.0);

    // Worst profiles (slowest first) were admitted during the profiled
    // pass; index q_count/100 is the stream's p99 query.
    auto worst = obs::SlowQueryRing::Global().Snapshot();
    if (!worst.empty()) {
      const size_t p99 = std::min(worst.size() - 1,
                                  static_cast<size_t>(q_count / 100));
      std::printf("fig9: p99_slow_query %s\n", worst[p99].ToText().c_str());
      if (const char* path = std::getenv("PAYG_PROFILE_JSON")) {
        std::ofstream out(path);
        out << worst[p99].ToJson() << "\n";
      }
    }
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
