// Concurrency scaling of the buffer hot path (sharded PageCache +
// lock-free pin/unpin): 1, 2, 4 and 8 client threads hammer GetPage on one
// page chain, measured in two regimes.
//
//   hot  — every page resident, unlimited budget: pure pin/touch/unpin on
//          the warm path. Before the sharding this serialized on two
//          process-wide mutexes; now a hit takes one shard mutex (which is
//          uncontended unless two threads collide on the same shard) and a
//          lock-free CAS pin. The "cache.lock_wait" histogram in the
//          per-setting output is the direct contention witness — near-zero
//          waits on a warm scan is the acceptance signal.
//   cold — tight budget plus simulated read latency: the miss path
//          (striped registration, reactive eviction, physical reads).
//
// Writes the committed BENCH_exec_scaling.json. The JSON carries a "cores"
// field: wall-clock speedup is bounded by physical parallelism, so on a
// single-core container the hot sweep shows contention *overhead* (flat or
// slightly declining ops/s with more threads) rather than speedup — the
// lock_wait histogram, not wall clock, is the meaningful signal there. See
// README, "reading the scaling bench".
//
// Knobs: PAYG_SCALE_PAGES (256), PAYG_SCALE_HOT_OPS (total GetPage calls
// per setting, 200000), PAYG_SCALE_COLD_OPS (4000), PAYG_LATENCY_US (50,
// cold phase only), PAYG_BENCH_JSON (output path).

#include <atomic>
#include <fstream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "buffer/resource_manager.h"
#include "paged/page_cache.h"
#include "storage/page_file.h"

namespace {

using namespace payg;
using namespace payg::bench;

struct Sweep {
  std::vector<double> ops_per_sec;
  std::vector<double> speedup_vs_1;
  std::vector<uint64_t> lock_waits;
  std::vector<double> lock_wait_p95_us;
  std::vector<double> hit_ratio;
};

constexpr uint32_t kWorkerCounts[] = {1, 2, 4, 8};

// Runs `total_ops` GetPage calls split evenly over `workers` threads, all
// released from a spin barrier so the measured window is fully concurrent.
double RunSetting(PageCache* cache, uint64_t pages, uint32_t workers,
                  uint64_t total_ops, uint64_t seed) {
  std::atomic<bool> go{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const uint64_t per_thread = total_ops / workers;
  for (uint32_t t = 0; t < workers; ++t) {
    threads.emplace_back([&, t] {
      Random rng(seed + t);
      while (!go.load(std::memory_order_acquire)) {
      }
      uint64_t local = 0;
      for (uint64_t i = 0; i < per_thread; ++i) {
        const LogicalPageNo lpn = rng.Uniform(pages);
        auto ref = cache->GetPage(lpn);
        if (!ref.ok()) {
          std::fprintf(stderr, "GetPage(%llu): %s\n",
                       static_cast<unsigned long long>(lpn),
                       ref.status().ToString().c_str());
          std::abort();
        }
        local += ref->page().header()->logical_page_no;
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  Stopwatch timer;
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double secs = timer.ElapsedMicros() / 1e6;
  return static_cast<double>(per_thread * workers) / secs;
}

void RecordSetting(Sweep* sweep, double ops_per_sec) {
  auto& reg = obs::MetricsRegistry::Global();
  const auto lock_wait = reg.histogram("cache.lock_wait")->snapshot();
  const uint64_t hits = reg.counter("cache.hits")->value();
  const uint64_t misses = reg.counter("cache.misses")->value();
  sweep->ops_per_sec.push_back(ops_per_sec);
  sweep->speedup_vs_1.push_back(ops_per_sec / sweep->ops_per_sec.front());
  sweep->lock_waits.push_back(lock_wait.count);
  sweep->lock_wait_p95_us.push_back(lock_wait.p95());
  sweep->hit_ratio.push_back(
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses));
}

void PrintSweep(const char* name, const Sweep& s) {
  std::printf("%s: workers,ops_per_sec,speedup_vs_1,lock_waits,"
              "lock_wait_p95_us,hit_ratio\n",
              name);
  for (size_t i = 0; i < s.ops_per_sec.size(); ++i) {
    std::printf("%s,%u,%.0f,%.2f,%llu,%.1f,%.4f\n", name, kWorkerCounts[i],
                s.ops_per_sec[i], s.speedup_vs_1[i],
                static_cast<unsigned long long>(s.lock_waits[i]),
                s.lock_wait_p95_us[i], s.hit_ratio[i]);
  }
}

void JsonArray(std::ofstream& out, const char* key,
               const std::vector<double>& v, const char* fmt) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < v.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v[i]);
    out << (i ? "," : "") << buf;
  }
  out << "]";
}

void JsonArray(std::ofstream& out, const char* key,
               const std::vector<uint64_t>& v) {
  out << "\"" << key << "\":[";
  for (size_t i = 0; i < v.size(); ++i) {
    out << (i ? "," : "") << v[i];
  }
  out << "]";
}

}  // namespace

int main() {
  const uint64_t pages = EnvU64("PAYG_SCALE_PAGES", 256);
  const uint64_t hot_ops = EnvU64("PAYG_SCALE_HOT_OPS", 200000);
  const uint64_t cold_ops = EnvU64("PAYG_SCALE_COLD_OPS", 4000);
  const uint32_t latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_LATENCY_US", 50));
  const uint32_t page_size = 8 * 1024;
  const unsigned cores = std::thread::hardware_concurrency();
  const uint32_t shards = DefaultCacheShards();

  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/payg_bench_scaling";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::printf("# exec_scaling — GetPage throughput vs client threads: "
              "pages=%llu page_size=%u shards=%u cores=%u\n",
              static_cast<unsigned long long>(pages), page_size, shards,
              cores);

  StorageOptions opts;
  opts.page_size = page_size;
  auto file = PageFile::Create(dir + "/chain", page_size, opts, nullptr);
  BENCH_CHECK_OK(file);
  for (uint64_t i = 0; i < pages; ++i) {
    Page page(page_size);
    page.header()->type = static_cast<uint16_t>(PageType::kDataVector);
    BENCH_CHECK_OK((*file)->AppendPage(&page));
  }

  // Hot sweep: everything resident (unlimited budget), prewarmed once, so
  // every measured GetPage is a warm hit.
  Sweep hot;
  {
    ResourceManager rm;
    PageCache cache(file->get(), &rm, PoolId::kPagedPool, "scaling_hot");
    for (uint64_t i = 0; i < pages; ++i) {
      auto ref = cache.GetPage(i);
      BENCH_CHECK_OK(ref);
    }
    for (uint32_t workers : kWorkerCounts) {
      obs::MetricsRegistry::Global().ResetAll();
      const double ops =
          RunSetting(&cache, pages, workers, hot_ops, /*seed=*/900 + workers);
      RecordSetting(&hot, ops);
    }
  }
  PrintSweep("hot", hot);

  // Cold sweep: simulated read latency plus a budget of pages/8, so most
  // accesses take the miss path (read, striped registration, reactive
  // eviction). A fresh latency-carrying PageFile view of the same chain.
  Sweep cold;
  {
    StorageOptions cold_opts;
    cold_opts.page_size = page_size;
    cold_opts.simulated_read_latency_us = latency_us;
    auto cold_file =
        PageFile::Open(dir + "/chain", page_size, cold_opts, nullptr);
    BENCH_CHECK_OK(cold_file);
    ResourceManager rm;
    rm.SetGlobalBudget(pages / 8 * page_size);
    PageCache cache(cold_file->get(), &rm, PoolId::kPagedPool, "scaling_cold");
    for (uint32_t workers : kWorkerCounts) {
      cache.DropAll();
      obs::MetricsRegistry::Global().ResetAll();
      const double ops =
          RunSetting(&cache, pages, workers, cold_ops, /*seed=*/700 + workers);
      RecordSetting(&cold, ops);
    }
  }
  PrintSweep("cold", cold);

  const char* json_path = std::getenv("PAYG_BENCH_JSON");
  const std::string out_path =
      json_path != nullptr ? json_path : "BENCH_exec_scaling.json";
  std::ofstream out(out_path);
  out << "{\"bench\":\"exec_scaling\",\"cores\":" << cores
      << ",\"shards\":" << shards << ",\"pages\":" << pages
      << ",\"page_size\":" << page_size << ",\"hot_ops\":" << hot_ops
      << ",\"cold_ops\":" << cold_ops << ",\"latency_us\":" << latency_us
      << ",\"workers\":[1,2,4,8],\n";
  JsonArray(out, "hot_ops_per_sec", hot.ops_per_sec, "%.0f");
  out << ",";
  JsonArray(out, "hot_speedup_vs_1", hot.speedup_vs_1, "%.3f");
  out << ",";
  JsonArray(out, "hot_lock_waits", hot.lock_waits);
  out << ",";
  JsonArray(out, "hot_lock_wait_p95_us", hot.lock_wait_p95_us, "%.1f");
  out << ",";
  JsonArray(out, "hot_hit_ratio", hot.hit_ratio, "%.4f");
  out << ",\n";
  JsonArray(out, "cold_ops_per_sec", cold.ops_per_sec, "%.0f");
  out << ",";
  JsonArray(out, "cold_speedup_vs_1", cold.speedup_vs_1, "%.3f");
  out << ",";
  JsonArray(out, "cold_lock_waits", cold.lock_waits);
  out << ",";
  JsonArray(out, "cold_hit_ratio", cold.hit_ratio, "%.4f");
  out << ",\n\"note\":\"speedup_vs_1 is bounded by 'cores'; on a "
         "single-core host read lock_waits (contention), not wall clock\"}\n";
  out.close();
  std::printf("# wrote %s (cores=%u)\n", out_path.c_str(), cores);

  std::filesystem::remove_all(dir);
  return 0;
}
