// Ablation: Storage Class Memory for non-critical structures (§8). The
// paper proposes moving latency-sensitive, rebuildable structures — the
// inverted indexes and the dictionary helper indexes — to SCM and accessing
// them directly. This sweep runs the Fig-7 workload (COUNT via the paged
// inverted index) and the Fig-6 workload (findByValue through the helper
// dictionaries) with those chains at disk latency vs. SCM latency.

#include "bench/bench_common.h"

namespace payg::bench {
namespace {

struct Phase {
  double cold_avg_us;  // first 10% of the queries
  double warm_avg_us;  // the rest
};

Phase RunWorkload(Table* table, const ErpConfig& config, uint64_t queries,
                  uint32_t session_us, bool string_workload) {
  ErpWorkload w(config, 1401);
  const uint64_t cold_n = std::max<uint64_t>(1, queries / 10);
  double cold = 0, warm = 0;
  for (uint64_t q = 0; q < queries; ++q) {
    Stopwatch timer;
    SpinWaitMicros(session_us);
    int col = string_workload
                  ? w.RandomColumnOfType(ValueType::kString, w.rng().OneIn(3))
                  : w.RandomNumericColumn();
    if (col < 0) col = w.RandomColumnOfType(ValueType::kString, false);
    auto r = table->CountByValue(w.columns()[col].name, w.RandomValueOf(col));
    BENCH_CHECK_OK(r);
    (q < cold_n ? cold : warm) += timer.ElapsedMicros();
  }
  return {cold / static_cast<double>(cold_n),
          warm / static_cast<double>(queries - cold_n)};
}

}  // namespace
}  // namespace payg::bench

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("ablation_scm");
  const uint64_t queries = std::min<uint64_t>(env.queries, 1000);
  std::printf("# Ablation — SCM for non-critical structures (§8): rows=%llu "
              "queries=%llu disk_latency_us=%u scm_latency_us=2\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(queries), env.latency_us);
  std::printf("ablation_scm: rows (workload, tier, cold_avg_us, "
              "warm_avg_us)\n");

  for (bool scm : {false, true}) {
    for (bool string_workload : {false, true}) {
      std::string subdir = std::string(scm ? "scm" : "disk") +
                           (string_workload ? "_str" : "_num");
      ColumnStoreOptions options = StoreOptions(env, subdir);
      options.storage.scm_for_noncritical = scm;
      options.storage.scm_read_latency_us = 2;
      auto store = ColumnStore::Open(options);
      BENCH_CHECK_OK(store);
      ErpConfig config = MakeConfig(env, TableVariant::kPagedAll,
                                    /*with_indexes=*/!string_workload);
      auto table = (*store)->CreateTable(MakeErpSchema(config, subdir));
      BENCH_CHECK_OK(table);
      if (!PopulateErpTable(*table, config).ok()) std::abort();
      (*table)->UnloadAll();
      Phase p = RunWorkload(*table, config, queries, env.session_us,
                            string_workload);
      std::printf("ablation_scm,%s,%s,%.1f,%.1f\n",
                  string_workload ? "dict_search" : "index_count",
                  scm ? "scm" : "disk", p.cold_avg_us, p.warm_avg_us);
    }
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
