// Fig. 1: average time (ns) per symbol for the mget and search primitives
// over n-bit packed data vectors, for every bit case n = 1..32 (§3.1.3).
//
// The paper measures SIMD kernels on a Xeon E5-2697 v3; here every kernel
// tier the build and CPU provide (scalar / sse42 / avx2) is measured side by
// side, so the scalar-vs-SIMD speedup per bit width is part of the recorded
// trajectory (scripts/bench_snapshot.sh → BENCH_fig1.json). Benchmark names
// are <kernel>/<tier>/<bits>; the dispatch-selected tier for normal callers
// is recorded in the context as "simd_level".

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "encoding/bit_packing.h"
#include "encoding/codec.h"
#include "encoding/simd_dispatch.h"

namespace payg {
namespace {

constexpr uint64_t kSymbols = 1 << 22;  // 4M symbols per measurement

PackedVector MakeVector(uint32_t bits) {
  Random rng(bits);
  PackedVector pv(bits);
  const uint64_t mask = LowMask(bits);
  for (uint64_t i = 0; i < kSymbols; ++i) {
    // Reserve the all-ones code as the search probe so the search
    // measurement is a pure scan (result-set cost excluded), as in the
    // paper's micro benchmark.
    uint64_t v = rng.Next() & mask;
    if (v == mask) v = 0;
    pv.Append(v);
  }
  return pv;
}

void SetRate(benchmark::State& state) {
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSymbols),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_MGet(benchmark::State& state, const PackedKernels* k, uint32_t bits) {
  PackedVector pv = MakeVector(bits);
  std::vector<uint32_t> out(kSymbols);
  for (auto _ : state) {
    k->mget[bits](pv.words(), 0, kSymbols, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

void BM_SearchEq(benchmark::State& state, const PackedKernels* k,
                 uint32_t bits) {
  PackedVector pv = MakeVector(bits);
  // Probe for a rare value so the output stays small and the measurement is
  // dominated by the scan, as in the paper's micro benchmark.
  const uint64_t probe = LowMask(bits);
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    k->search_eq[bits](pv.words(), 0, kSymbols, probe, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

void BM_SearchRange(benchmark::State& state, const PackedKernels* k,
                    uint32_t bits) {
  PackedVector pv = MakeVector(bits);
  const uint64_t hi = LowMask(bits);
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    k->search_range[bits](pv.words(), 0, kSymbols, hi, hi, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

void BM_SearchIn(benchmark::State& state, const PackedKernels* k,
                 uint32_t bits) {
  PackedVector pv = MakeVector(bits);
  // A small set around the (absent) all-ones probe: the band prefilter
  // passes occasionally, the set membership rarely.
  const uint64_t mask = LowMask(bits);
  std::vector<ValueId> vids;
  for (uint64_t v = mask; v != 0 && vids.size() < 4; v -= (mask / 7) + 1) {
    vids.push_back(static_cast<ValueId>(v));
  }
  std::sort(vids.begin(), vids.end());
  vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    k->search_in[bits](pv.words(), 0, kSymbols, vids, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

// --- codec kernels (S22) ---------------------------------------------------
// The same primitives dispatched through the codec layer, once per codec,
// over data with run structure (average run ≈ 12) and a nonzero floor so
// FOR subtracts a real base and RLE's run catalog pays off. Names are
// codec_<kernel>/<codec>/<tier>/<bits>.

std::vector<ValueId> MakeCodecValues(uint32_t bits) {
  Random rng(bits * 7 + 1);
  const uint64_t mask = LowMask(bits);
  const ValueId floor = static_cast<ValueId>(mask / 3);
  const uint64_t span = mask - floor + 1;
  std::vector<ValueId> v;
  v.reserve(kSymbols);
  while (v.size() < kSymbols) {
    const uint64_t len = 1 + rng.Uniform(23);
    ValueId val = floor + static_cast<ValueId>(rng.Uniform(span));
    if (val == mask) val = floor;  // keep all-ones as the absent probe
    for (uint64_t j = 0; j < len && v.size() < kSymbols; ++j) {
      v.push_back(val);
    }
  }
  return v;
}

struct CodecBuffer {
  std::vector<uint64_t> words;
  CodecChoice choice;
  uint32_t aux2 = 0;
};

CodecBuffer EncodeAll(CodecId id, const std::vector<ValueId>& values,
                      uint32_t bits) {
  CodecBuffer b;
  b.choice = MakeCodecChoice(id, values);
  // Plain payload size is the upper bound for every codec (RLE escapes to
  // plain when its catalog would overflow).
  const uint32_t capacity = static_cast<uint32_t>(
      CeilDiv(kSymbols, kChunkValues) * ChunkBytes(bits) + 8);
  b.words.assign(capacity / 8, 0);
  CodecEncodePage(b.choice, values.data(), values.size(),
                  reinterpret_cast<uint8_t*>(b.words.data()), capacity,
                  &b.aux2);
  return b;
}

void BM_CodecMGet(benchmark::State& state, CodecId id, const PackedKernels* k,
                  uint32_t bits) {
  const auto values = MakeCodecValues(bits);
  const CodecBuffer buf = EncodeAll(id, values, bits);
  CodecPageView view{buf.words.data(), kSymbols, buf.aux2, buf.choice.params,
                     k};
  CodecStats stats;
  std::vector<uint32_t> out(kSymbols);
  for (auto _ : state) {
    CodecMGet(id, view, 0, kSymbols, out.data(), &stats);
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

void BM_CodecSearchEq(benchmark::State& state, CodecId id,
                      const PackedKernels* k, uint32_t bits) {
  const auto values = MakeCodecValues(bits);
  const CodecBuffer buf = EncodeAll(id, values, bits);
  CodecPageView view{buf.words.data(), kSymbols, buf.aux2, buf.choice.params,
                     k};
  CodecStats stats;
  const ValueId probe = static_cast<ValueId>(LowMask(bits));  // absent
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    CodecSearchEq(id, view, 0, kSymbols, probe, 0, &out, &stats);
    benchmark::DoNotOptimize(out.data());
  }
  SetRate(state);
}

void RegisterAll() {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    const PackedKernels* k = KernelsFor(level);
    if (k == nullptr) continue;
    const std::string tier = SimdLevelName(level);
    for (uint32_t bits = 1; bits <= 32; ++bits) {
      const std::string suffix = tier + "/" + std::to_string(bits);
      benchmark::RegisterBenchmark(("mget/" + suffix).c_str(), BM_MGet, k,
                                   bits)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("search_eq/" + suffix).c_str(),
                                   BM_SearchEq, k, bits)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("search_range/" + suffix).c_str(),
                                   BM_SearchRange, k, bits)
          ->Unit(benchmark::kMillisecond);
      benchmark::RegisterBenchmark(("search_in/" + suffix).c_str(),
                                   BM_SearchIn, k, bits)
          ->Unit(benchmark::kMillisecond);
    }
    // Codec rows at two representative widths: a byte-ish code and the
    // common dictionary-heavy width. All 32 widths are covered by the
    // kernels above; here the codec dispatch overhead and the RLE
    // run-catalog advantage are the measurement.
    for (uint32_t bits : {8u, 16u}) {
      for (CodecId id :
           {CodecId::kPlain, CodecId::kFor, CodecId::kRle}) {
        const std::string suffix = std::string(CodecName(id)) + "/" + tier +
                                   "/" + std::to_string(bits);
        benchmark::RegisterBenchmark(("codec_mget/" + suffix).c_str(),
                                     BM_CodecMGet, id, k, bits)
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(("codec_search_eq/" + suffix).c_str(),
                                     BM_CodecSearchEq, id, k, bits)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace
}  // namespace payg

int main(int argc, char** argv) {
  payg::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "simd_level", payg::SimdLevelName(payg::ActiveSimdLevel()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
