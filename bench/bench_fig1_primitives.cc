// Fig. 1: average time (ns) per symbol for the mget and search primitives
// over n-bit packed data vectors, for every bit case n = 1..32 (§3.1.3).
//
// The paper measures SIMD kernels on a Xeon E5-2697 v3; here the portable
// word-parallel kernels are measured. The expected shape — cost growing with
// the bit width, search at least as expensive as mget — is what this bench
// verifies.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/random.h"
#include "encoding/bit_packing.h"

namespace payg {
namespace {

constexpr uint64_t kSymbols = 1 << 22;  // 4M symbols per measurement

PackedVector MakeVector(uint32_t bits) {
  Random rng(bits);
  PackedVector pv(bits);
  const uint64_t mask = LowMask(bits);
  for (uint64_t i = 0; i < kSymbols; ++i) {
    // Reserve the all-ones code as the search probe so the search
    // measurement is a pure scan (result-set cost excluded), as in the
    // paper's micro benchmark.
    uint64_t v = rng.Next() & mask;
    if (v == mask) v = 0;
    pv.Append(v);
  }
  return pv;
}

void BM_MGet(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  PackedVector pv = MakeVector(bits);
  std::vector<uint32_t> out(kSymbols);
  for (auto _ : state) {
    pv.MGet(0, kSymbols, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSymbols),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_Search(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  PackedVector pv = MakeVector(bits);
  // Probe for a rare value so the output stays small and the measurement is
  // dominated by the scan, as in the paper's micro benchmark.
  const uint64_t probe = LowMask(bits);
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    PackedSearchEq(pv.words(), bits, 0, kSymbols, probe, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSymbols),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BM_SearchRange(benchmark::State& state) {
  const uint32_t bits = static_cast<uint32_t>(state.range(0));
  PackedVector pv = MakeVector(bits);
  const uint64_t hi = LowMask(bits);
  std::vector<RowPos> out;
  for (auto _ : state) {
    out.clear();
    PackedSearchRange(pv.words(), bits, 0, kSymbols, hi, hi, 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["ns_per_symbol"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(kSymbols),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

void BitCases(benchmark::internal::Benchmark* b) {
  for (int n = 1; n <= 32; ++n) b->Arg(n);
}

BENCHMARK(BM_MGet)->Apply(BitCases)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Search)->Apply(BitCases)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SearchRange)->Apply(BitCases)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace payg

BENCHMARK_MAIN();
