// Partition-parallel execution: the §6 ERP table aged into hot + 3 cold
// partitions, then the same mixed query stream (pk point lookup, full-column
// count, date-range sum) replayed at worker_threads = 0 (the serial
// baseline), 1, 2, 4 and 8. Reports throughput per setting plus the
// aggregated ExecContext counters, which are identical across settings —
// parallelism changes wall clock, not work done.

#include <fstream>

#include "bench/bench_common.h"
#include "exec/exec_context.h"
#include "obs/trace.h"

namespace {

#define BENCH_CHECK_STATUS(expr)                                          \
  do {                                                                    \
    payg::Status _st = (expr);                                            \
    if (!_st.ok()) {                                                      \
      std::fprintf(stderr, "%s failed: %s\n", #expr,                      \
                   _st.ToString().c_str());                               \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

}  // namespace

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("exec_parallel");
  std::printf("# exec_parallel — mixed query stream over hot + 3 cold "
              "partitions: rows=%llu queries=%llu latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);

  VariantInstance inst =
      BuildVariant(env, "exec", TableVariant::kPagedAll, /*with_indexes=*/true);
  ErpConfig config = MakeConfig(env, TableVariant::kPagedAll, true);
  Table* table = inst.table;

  // Age the oldest three quarters of the table into three cold partitions
  // (dates correlate with row order, so each wave moves ~rows/4).
  const ErpColumnSpec date = MakeErpColumns(config)[1];
  for (uint64_t wave = 1; wave <= 3; ++wave) {
    BENCH_CHECK_STATUS(table->AddColdPartition());
    auto moved =
        table->AgeRows(date.ValueAt(date.cardinality * wave / 4 - 1));
    BENCH_CHECK_OK(moved);
    BENCH_CHECK_STATUS(table->MergeAll());
  }
  std::printf("partitions=%llu\n",
              static_cast<unsigned long long>(table->partition_count()));

  const Value date_lo = date.ValueAt(date.cardinality / 8);
  const Value date_hi = date.ValueAt((date.cardinality * 7) / 8);

  // Tracing is on by default (PAYG_TRACE=0 turns it off, e.g. to measure
  // the disabled-path overhead). The ring keeps the newest 64k spans, so
  // the dump below shows the last worker setting's execution in detail.
  const bool tracing = EnvU64("PAYG_TRACE", 1) != 0;
  if (tracing) obs::Tracer::Global().Enable(1 << 16);

  std::printf("workers,queries,seconds,qps,pages_pinned,pages_read,"
              "bytes_read,rows_scanned,index_lookups,vector_scans,"
              "partitions_visited\n");
  for (uint32_t workers : {0u, 1u, 2u, 4u, 8u}) {
    table->set_exec_options(ExecOptions{workers});
    table->UnloadAll();  // identical cold start for every setting
    obs::MetricsRegistry::Global().ResetAll();  // registry scoped per setting
    ErpWorkload workload(config, /*seed=*/7001);
    ExecContext ctx;
    Stopwatch timer;
    for (uint64_t q = 0; q < env.queries; ++q) {
      switch (q % 3) {
        case 0: {  // Q_pk: point lookup through the pk index
          auto r = table->SelectByValue("pk", workload.PkOfRow(
                                                  workload.RandomRow()),
                                        {"pk", "aging_date"}, &ctx);
          BENCH_CHECK_OK(r);
          break;
        }
        case 1: {  // Q_cnt: count over a random low-card column value
          int col = workload.RandomColumnOfType(ValueType::kString,
                                                /*high_cardinality=*/false);
          auto r = table->CountByValue(workload.columns()[col].name,
                                       workload.RandomValueOf(col), &ctx);
          BENCH_CHECK_OK(r);
          break;
        }
        default: {  // Q_sum: date-range sum over a random numeric column
          int col = workload.RandomNumericColumn();
          auto r = table->SumRange("aging_date", date_lo, date_hi,
                                   workload.columns()[col].name, &ctx);
          BENCH_CHECK_OK(r);
          break;
        }
      }
    }
    const double secs = timer.ElapsedMicros() / 1e6;
    const QueryStats::Snapshot s = ctx.stats.snapshot();
    std::printf("%u,%llu,%.3f,%.1f,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n",
                workers, static_cast<unsigned long long>(env.queries), secs,
                static_cast<double>(env.queries) / secs,
                static_cast<unsigned long long>(s.pages_pinned),
                static_cast<unsigned long long>(s.pages_read),
                static_cast<unsigned long long>(s.bytes_read),
                static_cast<unsigned long long>(s.rows_scanned),
                static_cast<unsigned long long>(s.index_lookups),
                static_cast<unsigned long long>(s.vector_scans),
                static_cast<unsigned long long>(s.partitions_visited));
    char tag[32];
    std::snprintf(tag, sizeof(tag), "workers=%u", workers);
    PrintMetricsSnapshot(tag);
  }

  if (tracing) {
    obs::Tracer::Global().Disable();
    const std::string trace_path = "exec_parallel.trace.json";
    std::ofstream out(trace_path);
    out << obs::Tracer::Global().DumpChromeTrace();
    out.close();
    std::printf("# trace: %llu spans recorded (%llu dropped), newest %u "
                "written to %s — load in Perfetto / chrome://tracing\n",
                static_cast<unsigned long long>(obs::Tracer::Global().recorded()),
                static_cast<unsigned long long>(obs::Tracer::Global().dropped()),
                1u << 16, trace_path.c_str());
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
