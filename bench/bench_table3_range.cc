// Table 3: memory saving and average run-time ratio for range queries on the
// primary key at selectivities {1 row, 0.01%, 0.1%, 1%} — workloads Q*_σpk
// (SELECT *) and Q^sum_σpk (SELECT SUM(C_num)) on T_b^i vs. T_p^i (§6.3).
//
// Protocol per cell, as in the paper: a cold run of the query set right
// after a restart (all columns unloaded), followed by hot repetitions of
// exactly the same queries. The table reports the memory footprint
// reduction of the paged variant and the average hot run-time ratio.

#include "bench/bench_common.h"

namespace payg::bench {
namespace {

struct CellResult {
  double mem_reduction_mb = 0;
  double avg_hot_ratio = 0;
  double cold_ratio = 0;
};

enum class Workload { kSelectStar, kSum };

// Runs one (workload, selectivity) cell on one variant; returns
// {cold_micros, hot_micros_avg, final_footprint}.
struct VariantCell {
  double cold_micros = 0;
  double hot_micros = 0;
  uint64_t footprint = 0;
};

VariantCell RunVariantCell(VariantInstance* inst, const ErpConfig& config,
                           Workload workload, double selectivity,
                           uint64_t n_queries, uint64_t reps, uint64_t seed,
                           uint32_t session_us) {
  // Cold restart: drop everything resident.
  inst->table->UnloadAll();

  // Pre-generate the query set; every run replays exactly these queries.
  ErpWorkload w(config, seed);
  std::vector<std::pair<Value, Value>> ranges;
  ranges.reserve(n_queries);
  for (uint64_t q = 0; q < n_queries; ++q) {
    ranges.push_back(w.RandomPkRange(selectivity));
  }
  int sum_col = w.RandomColumnOfType(ValueType::kInt64, false);

  auto run_once = [&]() -> double {
    Stopwatch timer;
    for (const auto& [lo, hi] : ranges) {
      SpinWaitMicros(session_us);  // modeled SQL-stack cost per query
      if (workload == Workload::kSelectStar) {
        auto r = inst->table->SelectRange("pk", lo, hi, {});
        BENCH_CHECK_OK(r);
      } else {
        auto r = inst->table->SumRange("pk", lo, hi,
                                       w.columns()[sum_col].name);
        BENCH_CHECK_OK(r);
      }
    }
    return timer.ElapsedMicros();
  };

  VariantCell cell;
  cell.cold_micros = run_once();
  double hot_total = 0;
  for (uint64_t rep = 0; rep < reps; ++rep) hot_total += run_once();
  cell.hot_micros = hot_total / static_cast<double>(reps);
  cell.footprint = inst->MemoryFootprint();
  return cell;
}

}  // namespace
}  // namespace payg::bench

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("table3");
  const uint64_t n_queries = EnvU64("PAYG_T3_QUERIES", 50);
  const uint64_t reps = EnvU64("PAYG_T3_REPS", 5);
  std::printf("# Table 3 — Q*_σpk and Q^sum_σpk on T_b^i vs T_p^i: rows=%llu "
              "queries/cell=%llu hot_reps=%llu latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(n_queries),
              static_cast<unsigned long long>(reps), env.latency_us);

  VariantInstance base =
      BuildVariant(env, "t3_base", TableVariant::kBase, /*with_indexes=*/true);
  VariantInstance paged = BuildVariant(env, "t3_paged", TableVariant::kPagedAll,
                                       /*with_indexes=*/true);
  ErpConfig base_cfg = MakeConfig(env, TableVariant::kBase, true);
  ErpConfig paged_cfg = MakeConfig(env, TableVariant::kPagedAll, true);

  const double one_row = 1.0 / static_cast<double>(env.rows);
  struct Sel {
    const char* label;
    double value;
  };
  const Sel selectivities[] = {
      {"1row", one_row}, {"0.01%", 0.0001}, {"0.1%", 0.001}, {"1%", 0.01}};
  const struct {
    Workload w;
    const char* label;
  } workloads[] = {{Workload::kSelectStar, "select_star"},
                   {Workload::kSum, "sum"}};

  std::printf("table3: rows (workload, selectivity, mem_reduction_mb, "
              "cold_ratio, avg_hot_ratio)\n");
  for (const auto& wl : workloads) {
    for (const auto& sel : selectivities) {
      uint64_t seed = 3000 + static_cast<uint64_t>(sel.value * 1e6) +
                      (wl.w == Workload::kSum ? 7 : 0);
      VariantCell b = RunVariantCell(&base, base_cfg, wl.w, sel.value,
                                     n_queries, reps, seed, env.session_us);
      VariantCell p = RunVariantCell(&paged, paged_cfg, wl.w, sel.value,
                                     n_queries, reps, seed, env.session_us);
      double reduction_mb =
          (static_cast<double>(b.footprint) - static_cast<double>(p.footprint)) /
          (1024.0 * 1024.0);
      std::printf("table3,%s,%s,%.2f,%.3f,%.3f\n", wl.label, sel.label,
                  reduction_mb, p.cold_micros / b.cold_micros,
                  p.hot_micros / b.hot_micros);
    }
  }
  std::filesystem::remove_all(env.dir);
  return 0;
}
