// Fig. 4: single read of a numeric column through the paged data vector.
// Workload Q_pk^num — SELECT C_num FROM T WHERE C_pk = value for random
// rows — on T_p (all non-pk columns page loadable) vs. T_b (§6.2.1).
//
// The query exercises only the paged data vector code path: the pk (not
// paged in T_p) is probed through its index, then one vid of the numeric
// column is decoded; the numeric dictionary is memory resident.

#include "bench/bench_common.h"

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig4");
  std::printf("# Fig 4 — Q_pk^num on T_b vs T_p: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig4", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/false, /*query_seed=*/401,
            [](Table* table, ErpWorkload& w) {
              uint64_t row = w.RandomRow();
              int col = w.RandomNumericColumn();
              auto r = table->SelectByValue("pk", w.PkOfRow(row),
                                            {w.columns()[col].name});
              BENCH_CHECK_OK(r);
              if (r->rows.size() != 1) std::abort();
            });
  return 0;
}
