// Fig. 4: single read of a numeric column through the paged data vector.
// Workload Q_pk^num — SELECT C_num FROM T WHERE C_pk = value for random
// rows — on T_p (all non-pk columns page loadable) vs. T_b (§6.2.1).
//
// The query exercises only the paged data vector code path: the pk (not
// paged in T_p) is probed through its index, then one vid of the numeric
// column is decoded; the numeric dictionary is memory resident.
//
// Cold-scan section: a full-column mget over a cold paged data vector with
// iterator readahead off vs. on, at a simulated page latency high enough
// that the PageFile sleeps (≥1 ms) and the prefetch pool can overlap I/O
// with decode. scripts/bench_snapshot.sh records this as BENCH_fig4.json;
// PAYG_SCAN_ONLY=1 skips the (slower) Q_pk^num figure run.

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "buffer/resource_manager.h"
#include "common/random.h"
#include "encoding/codec.h"
#include "exec/exec_context.h"
#include "paged/page_cache.h"
#include "paged/paged_data_vector.h"
#include "storage/io_backend.h"

namespace payg::bench {
namespace {

struct ScanStats {
  std::vector<double> ms;
  double mean_ms = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
};

ScanStats ColdScan(PagedDataVector* dv, uint32_t readahead, int reps) {
  ScanStats st;
  const RowPos rows = static_cast<RowPos>(dv->row_count());
  for (int r = 0; r < reps; ++r) {
    dv->Unload();  // cold: every data page pays the simulated read latency
    ExecContext ctx;
    PagedDataVectorIterator it(dv, &ctx);
    it.set_readahead(readahead);
    std::vector<ValueId> out;
    out.reserve(rows);
    Stopwatch timer;
    Status s = it.MGet(0, rows, &out);
    if (!s.ok() || out.size() != rows) {
      std::fprintf(stderr, "cold scan failed: %s\n", s.ToString().c_str());
      std::abort();
    }
    st.ms.push_back(timer.ElapsedMillis());
  }
  dv->cache()->WaitForPrefetchIdle();
  st.mean_ms = Summarize(st.ms).mean;
  st.prefetch_issued = dv->cache()->prefetch_issued_count();
  st.prefetch_hits = dv->cache()->prefetch_hit_count();
  st.prefetch_wasted = dv->cache()->prefetch_wasted_count();
  return st;
}

void AppendJsonRuns(std::string* out, const ScanStats& st) {
  char buf[64];
  out->append("[");
  for (size_t i = 0; i < st.ms.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.3f", i == 0 ? "" : ", ", st.ms[i]);
    out->append(buf);
  }
  out->append("]");
}

// Compressed-scan section (S22): the same cold full-column scan once per
// storage codec, over a column whose vid stream has both run structure
// (runs of ~12) and a high floor (no vid below 2^16 occurs), so FOR cuts
// the packed width and RLE cuts the decoded work. Records bytes on disk
// (meta + data pages) and the cold scan time per codec; returns the
// "codec_scan" JSON array for the committed BENCH_fig4.json.
std::string RunCodecScanComparison(const BenchEnv& env) {
  const uint32_t latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_SCAN_LATENCY_US", 1000));
  const int reps = static_cast<int>(EnvU64("PAYG_SCAN_REPS", 5));
  const uint32_t window = DefaultReadaheadWindow();

  StorageOptions opts;
  opts.page_size = static_cast<uint32_t>(EnvU64("PAYG_PAGE_SIZE", 8 * 1024));
  opts.simulated_read_latency_us = latency_us;
  const std::string dir = env.dir + "_codec";
  std::filesystem::remove_all(dir);
  auto storage = StorageManager::Open(dir, opts);
  BENCH_CHECK_OK(storage);
  ResourceManager rm;

  std::vector<ValueId> vids(env.rows);
  for (uint64_t i = 0; i < env.rows; ++i) {
    vids[i] = static_cast<ValueId>((1u << 16) + (i / 12) % 1000);
  }

  std::printf("# fig4 codec scan — rows=%llu latency_us=%u "
              "readahead_window=%u reps=%d\n",
              static_cast<unsigned long long>(env.rows), latency_us, window,
              reps);
  std::string json = "[";
  for (CodecId id : {CodecId::kPlain, CodecId::kFor, CodecId::kRle}) {
    const CodecChoice choice = MakeCodecChoice(id, vids);
    auto dv = PagedDataVector::Build(storage->get(), &rm, PoolId::kPagedPool,
                                     std::string("codec_col_") + CodecName(id),
                                     vids, choice);
    BENCH_CHECK_OK(dv);
    const uint64_t pages = (*dv)->data_page_count();
    const uint64_t bytes = (1 + pages) * opts.page_size;
    ScanStats st = ColdScan(dv->get(), window, reps);
    std::printf("fig4_codec: %-5s bits=%u pages=%llu bytes_on_disk=%llu "
                "mean_ms=%.2f\n",
                CodecName(id), choice.params.bits,
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(bytes), st.mean_ms);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"codec\": \"%s\", \"bits\": %u, "
                  "\"data_pages\": %llu, \"bytes_on_disk\": %llu, "
                  "\"scan_ms\": ",
                  id == CodecId::kPlain ? "" : ",", CodecName(id),
                  choice.params.bits, static_cast<unsigned long long>(pages),
                  static_cast<unsigned long long>(bytes));
    json += buf;
    AppendJsonRuns(&json, st);
    std::snprintf(buf, sizeof(buf), ", \"mean_ms\": %.3f}", st.mean_ms);
    json += buf;
  }
  json += "\n  ]";

  storage->reset();
  std::filesystem::remove_all(dir);
  return json;
}

// I/O backend sweep (S24): the same cold sequential scan swept over
// backend × readahead window × queue depth at a simulated latency of one
// device round trip per... round trip. The sync backend charges one round
// trip per page no matter how the batch is shaped, so its depth legs are
// flat; the uring backend charges one per submission wave (up to
// PAYG_IO_DEPTH vectored commands in flight), so wide windows and deep
// queues collapse many page latencies into one. Each uring row records its
// speedup over the sync row with the same window and depth; returns the
// "io_sweep" JSON array for the committed BENCH_fig4.json.
std::string RunIoSweep(const BenchEnv& env) {
  const uint32_t latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_SCAN_LATENCY_US", 1000));
  const int reps = static_cast<int>(EnvU64("PAYG_SCAN_REPS", 5));

  StorageOptions opts;
  opts.page_size = static_cast<uint32_t>(EnvU64("PAYG_PAGE_SIZE", 8 * 1024));
  opts.simulated_read_latency_us = latency_us;
  const std::string dir = env.dir + "_io";
  std::filesystem::remove_all(dir);
  auto storage = StorageManager::Open(dir, opts);
  BENCH_CHECK_OK(storage);
  ResourceManager rm;

  Random rng(505);
  std::vector<ValueId> vids(env.rows);
  for (uint64_t i = 0; i < env.rows; ++i) {
    vids[i] = static_cast<ValueId>(rng.Uniform(1000));
  }
  auto dv = PagedDataVector::Build(storage->get(), &rm, PoolId::kPagedPool,
                                   "io_col", vids);
  BENCH_CHECK_OK(dv);

  const std::string prev_backend = CurrentIoBackend()->name();
  const uint32_t prev_depth = IoQueueDepth();
  const bool have_uring = IoUringAvailable();
  std::printf("# fig4 io sweep — rows=%llu pages=%llu latency_us=%u reps=%d "
              "uring_available=%d\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>((*dv)->data_page_count()),
              latency_us, reps, have_uring ? 1 : 0);

  struct Leg {
    const char* backend;
    uint32_t window;
    uint32_t depth;
  };
  std::vector<Leg> legs;
  for (const char* backend : {"sync", "uring"}) {
    if (!have_uring && std::string(backend) == "uring") continue;
    for (uint32_t window : {4u, 16u}) {
      for (uint32_t depth : {1u, 8u}) {
        legs.push_back({backend, window, depth});
      }
    }
  }

  std::map<std::pair<uint32_t, uint32_t>, double> sync_mean;
  std::string json = "[";
  bool first = true;
  for (const Leg& leg : legs) {
    (*dv)->cache()->WaitForPrefetchIdle();
    Status s = SetIoBackend(leg.backend);
    if (!s.ok()) {
      std::fprintf(stderr, "SetIoBackend(%s): %s\n", leg.backend,
                   s.ToString().c_str());
      std::abort();
    }
    SetIoQueueDepth(leg.depth);
    ScanStats st = ColdScan(dv->get(), leg.window, reps);
    double speedup;
    if (std::string(leg.backend) == "sync") {
      sync_mean[{leg.window, leg.depth}] = st.mean_ms;
      speedup = 1.0;
    } else {
      const double base = sync_mean[{leg.window, leg.depth}];
      speedup = st.mean_ms > 0 ? base / st.mean_ms : 0;
    }
    std::printf("fig4_io: backend=%-5s readahead=%-2u depth=%-3u "
                "mean_ms=%.2f speedup_vs_sync=%.2fx\n",
                leg.backend, leg.window, leg.depth, st.mean_ms, speedup);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"backend\": \"%s\", \"readahead\": %u, "
                  "\"depth\": %u, \"scan_ms\": ",
                  first ? "" : ",", leg.backend, leg.window, leg.depth);
    first = false;
    json += buf;
    AppendJsonRuns(&json, st);
    std::snprintf(buf, sizeof(buf),
                  ", \"mean_ms\": %.3f, \"speedup_vs_sync\": %.3f}",
                  st.mean_ms, speedup);
    json += buf;
  }
  json += "\n  ]";

  if (!SetIoBackend(prev_backend.c_str()).ok()) std::abort();
  SetIoQueueDepth(prev_depth);
  dv->reset();
  storage->reset();
  std::filesystem::remove_all(dir);
  return json;
}

void RunColdScanComparison(const BenchEnv& env, const std::string& codec_json,
                           const std::string& io_json) {
  // Run this section at a latency where PageFile sleeps instead of spinning
  // (1 ms threshold) so prefetch reads genuinely overlap with decode even on
  // small machines; overridable for experiments on faster "devices".
  const uint32_t latency_us =
      static_cast<uint32_t>(EnvU64("PAYG_SCAN_LATENCY_US", 1000));
  const int reps = static_cast<int>(EnvU64("PAYG_SCAN_REPS", 5));
  const uint32_t window = DefaultReadaheadWindow();

  StorageOptions opts;
  opts.page_size = static_cast<uint32_t>(EnvU64("PAYG_PAGE_SIZE", 8 * 1024));
  opts.simulated_read_latency_us = latency_us;
  const std::string dir = env.dir + "_scan";
  std::filesystem::remove_all(dir);
  auto storage = StorageManager::Open(dir, opts);
  BENCH_CHECK_OK(storage);
  ResourceManager rm;

  Random rng(404);
  std::vector<ValueId> vids(env.rows);
  for (uint64_t i = 0; i < env.rows; ++i) {
    vids[i] = static_cast<ValueId>(rng.Uniform(1000));  // 10-bit column
  }
  auto dv = PagedDataVector::Build(storage->get(), &rm, PoolId::kPagedPool,
                                   "scan_col", vids);
  BENCH_CHECK_OK(dv);

  std::printf("# fig4 cold scan — rows=%llu pages=%llu latency_us=%u "
              "readahead_window=%u reps=%d\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>((*dv)->data_page_count()),
              latency_us, window, reps);
  ScanStats off = ColdScan(dv->get(), 0, reps);
  ScanStats on = ColdScan(dv->get(), window, reps);
  const double speedup = on.mean_ms > 0 ? off.mean_ms / on.mean_ms : 0;
  std::printf("fig4_scan: readahead_off mean_ms=%.2f\n", off.mean_ms);
  std::printf("fig4_scan: readahead_on  mean_ms=%.2f prefetch_issued=%llu "
              "hits=%llu wasted=%llu\n",
              on.mean_ms, static_cast<unsigned long long>(on.prefetch_issued),
              static_cast<unsigned long long>(on.prefetch_hits),
              static_cast<unsigned long long>(on.prefetch_wasted));
  std::printf("fig4_scan: cold_scan_speedup=%.2fx\n", speedup);

  // Machine-readable snapshot for the committed BENCH_fig4.json.
  if (const char* path = std::getenv("PAYG_BENCH_JSON")) {
    std::string json = "{\n  \"bench\": \"fig4_cold_scan\",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"rows\": %llu,\n  \"data_pages\": %llu,\n"
                  "  \"page_size\": %u,\n  \"latency_us\": %u,\n"
                  "  \"readahead_window\": %u,\n",
                  static_cast<unsigned long long>(env.rows),
                  static_cast<unsigned long long>((*dv)->data_page_count()),
                  opts.page_size, latency_us, window);
    json += buf;
    json += "  \"readahead_off_ms\": ";
    AppendJsonRuns(&json, off);
    json += ",\n  \"readahead_on_ms\": ";
    AppendJsonRuns(&json, on);
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"mean_off_ms\": %.3f,\n  \"mean_on_ms\": %.3f,\n"
                  "  \"speedup\": %.3f,\n"
                  "  \"prefetch_issued\": %llu,\n  \"prefetch_hits\": %llu,\n"
                  "  \"prefetch_wasted\": %llu,\n",
                  off.mean_ms, on.mean_ms, speedup,
                  static_cast<unsigned long long>(on.prefetch_issued),
                  static_cast<unsigned long long>(on.prefetch_hits),
                  static_cast<unsigned long long>(on.prefetch_wasted));
    json += buf;
    json += "  \"io_sweep\": " + io_json + ",\n";
    json += "  \"codec_scan\": " + codec_json + "\n}\n";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path);
      std::abort();
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("fig4_scan: wrote %s\n", path);
  }

  dv->reset();
  storage->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace payg::bench

int main() {
  using namespace payg;
  using namespace payg::bench;
  BenchEnv env = ReadEnv("fig4");
  std::string io_json = RunIoSweep(env);
  // The legacy sections run pinned to the sync backend so their numbers
  // stay comparable with snapshots taken before the backend existed; the
  // sweep above is where the backends face each other.
  if (!SetIoBackend("sync").ok()) std::abort();
  std::string codec_json = RunCodecScanComparison(env);
  RunColdScanComparison(env, codec_json, io_json);
  if (EnvU64("PAYG_SCAN_ONLY", 0) != 0) return 0;
  std::printf("# Fig 4 — Q_pk^num on T_b vs T_p: rows=%llu queries=%llu "
              "latency_us=%u\n",
              static_cast<unsigned long long>(env.rows),
              static_cast<unsigned long long>(env.queries), env.latency_us);
  RunFigure("fig4", env, TableVariant::kBase, TableVariant::kPagedAll,
            /*with_indexes=*/false, /*query_seed=*/401,
            [](Table* table, ErpWorkload& w) {
              uint64_t row = w.RandomRow();
              int col = w.RandomNumericColumn();
              auto r = table->SelectByValue("pk", w.PkOfRow(row),
                                            {w.columns()[col].name});
              BENCH_CHECK_OK(r);
              if (r->rows.size() != 1) std::abort();
            });
  return 0;
}
