// Cold-data audit (§6.3's motivating scenario): random single-row reads on
// aged data. Compares the same audit on a fully resident table vs. a page
// loadable table — the paper's T_b vs T_p — reporting first-access latency
// and the memory each approach keeps resident.
//
//   ./cold_audit [directory]

#include <cstdio>

#include "common/stopwatch.h"
#include "core/column_store.h"
#include "workload/erp.h"

using namespace payg;

namespace {

struct AuditResult {
  double first_access_ms = 0;  // the "long wait on first access" effect
  double avg_query_us = 0;
  double footprint_mb = 0;
};

AuditResult RunAudit(ColumnStore* store, Table* table, ErpConfig config) {
  table->UnloadAll();  // cold restart
  ErpWorkload workload(config, 4242);

  AuditResult out;
  Stopwatch first;
  auto r = table->SelectByValue("pk", workload.PkOfRow(workload.RandomRow()),
                                {});
  out.first_access_ms = first.ElapsedMillis();
  if (!r.ok() || r->rows.size() != 1) {
    std::fprintf(stderr, "audit query failed\n");
    std::abort();
  }

  const int kQueries = 300;
  Stopwatch rest;
  for (int q = 0; q < kQueries; ++q) {
    auto row = table->SelectByValue(
        "pk", workload.PkOfRow(workload.RandomRow()), {});
    if (!row.ok() || row->rows.size() != 1) std::abort();
  }
  out.avg_query_us = rest.ElapsedMicros() / kQueries;
  out.footprint_mb = static_cast<double>(store->MemoryFootprint()) / 1048576.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/payg_cold_audit";

  ErpConfig config;
  config.rows = 200000;
  config.low_card_int_cols = 12;
  config.low_card_str_cols = 12;
  config.decimal_cols = 2;
  config.double_cols = 2;
  config.high_card_int_cols = 2;
  config.high_card_str_cols = 2;
  config.with_indexes = true;

  AuditResult results[2];
  const char* labels[2] = {"fully resident (T_b)", "page loadable (T_p)"};
  for (int variant = 0; variant < 2; ++variant) {
    ColumnStoreOptions options;
    options.directory = dir + (variant == 0 ? "/base" : "/paged");
    // Model cold storage: every physical page read costs ~100µs.
    options.storage.simulated_read_latency_us = 100;
    options.storage.page_size = 16 * 1024;
    options.storage.dict_page_size = 64 * 1024;
    auto store = ColumnStore::Open(options);
    if (!store.ok()) return 1;
    config.variant =
        variant == 0 ? TableVariant::kBase : TableVariant::kPagedAll;
    auto table = (*store)->CreateTable(MakeErpSchema(config, "audit"));
    if (!table.ok()) return 1;
    if (!PopulateErpTable(*table, config).ok()) return 1;
    results[variant] = RunAudit(store->get(), *table, config);
  }

  std::printf("%-24s %18s %14s %14s\n", "variant", "first_access_ms",
              "avg_query_us", "footprint_mb");
  for (int v = 0; v < 2; ++v) {
    std::printf("%-24s %18.2f %14.1f %14.2f\n", labels[v],
                results[v].first_access_ms, results[v].avg_query_us,
                results[v].footprint_mb);
  }
  std::printf("\nfirst cold access: %.1fx faster with page loadable columns; "
              "resident memory: %.1fx smaller\n",
              results[0].first_access_ms /
                  std::max(results[1].first_access_ms, 1e-9),
              results[0].footprint_mb /
                  std::max(results[1].footprint_mb, 1e-9));
  return 0;
}
