// Memory management (§5): a global memory budget with reactive eviction,
// paged-pool lower/upper limits with proactive eviction, and the weighted
// LRU over whole columns. Watch the footprint stay bounded while a query
// stream sweeps a table larger than the budget.
//
//   ./memory_budget [directory]

#include <cstdio>

#include "common/random.h"
#include "core/column_store.h"
#include "workload/erp.h"

using namespace payg;

int main(int argc, char** argv) {
  ColumnStoreOptions options;
  options.directory = argc > 1 ? argv[1] : "/tmp/payg_memory_budget";
  options.memory_budget = 16 << 20;          // 16 MiB for everything
  options.paged_pool_limits = {1 << 20, 3 << 20};  // lower=1MiB upper=3MiB

  auto store = ColumnStore::Open(options);
  if (!store.ok()) return 1;

  // An ERP-like table (≈30 columns here) with every non-pk column page
  // loadable.
  ErpConfig config;
  config.rows = 200000;
  config.low_card_int_cols = 10;
  config.low_card_str_cols = 10;
  config.decimal_cols = 2;
  config.double_cols = 2;
  config.high_card_int_cols = 2;
  config.high_card_str_cols = 2;
  config.variant = TableVariant::kPagedAll;
  auto table = (*store)->CreateTable(MakeErpSchema(config, "erp"));
  if (!table.ok()) return 1;
  if (!PopulateErpTable(*table, config).ok()) return 1;
  (*table)->UnloadAll();

  std::printf("budget=%.0f MB, paged pool lower/upper = %.0f/%.0f MB\n",
              options.memory_budget / 1048576.0,
              options.paged_pool_limits.lower / 1048576.0,
              options.paged_pool_limits.upper / 1048576.0);
  std::printf("query_batch, footprint_mb, paged_pool_mb, reactive_evictions, "
              "proactive_evictions\n");

  ErpWorkload workload(config, 99);
  for (int batch = 0; batch < 10; ++batch) {
    for (int q = 0; q < 200; ++q) {
      uint64_t row = workload.RandomRow();
      int col = workload.RandomNumericColumn();
      auto r = (*table)->SelectByValue("pk", workload.PkOfRow(row),
                                       {workload.columns()[col].name});
      if (!r.ok() || r->rows.size() != 1) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    auto stats = (*store)->resource_manager().stats();
    std::printf("%d, %.2f, %.2f, %llu, %llu\n", batch,
                static_cast<double>(stats.total_bytes) / 1048576.0,
                static_cast<double>(
                    stats.pool_bytes[static_cast<int>(PoolId::kPagedPool)]) /
                    1048576.0,
                static_cast<unsigned long long>(stats.reactive_evictions),
                static_cast<unsigned long long>(stats.proactive_evictions));
  }

  // Despite sweeping far more data than the budget, the footprint stayed
  // bounded: pages were evicted LRU-first, and whole resident columns (the
  // pk) were only evicted when the paged pools alone could not satisfy the
  // budget.
  auto final_stats = (*store)->resource_manager().stats();
  std::printf("final footprint: %.2f MB (budget %.0f MB)\n",
              static_cast<double>(final_stats.total_bytes) / 1048576.0,
              options.memory_budget / 1048576.0);
  return final_stats.total_bytes <= options.memory_budget * 2 ? 0 : 1;
}
