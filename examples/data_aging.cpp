// Data aging (§4): business objects cool down over time; closed objects are
// moved from the hot partition to a cold partition whose columns are page
// loadable. Cold data stays SQL-visible in the same table, but its memory
// footprint shrinks to the pages queries actually touch.
//
//   ./data_aging [directory]

#include <cstdio>

#include "core/column_store.h"

using namespace payg;

namespace {

std::vector<Value> Order(int id, int64_t close_date, const char* status) {
  char key[32];
  std::snprintf(key, sizeof(key), "SO%09d", id);
  return {Value(std::string(key)), Value(close_date),
          Value(std::string(status)), Value(int64_t{id} * 7)};
}

}  // namespace

int main(int argc, char** argv) {
  ColumnStoreOptions options;
  options.directory = argc > 1 ? argv[1] : "/tmp/payg_data_aging";
  // Cold pages live in their own pool with tunable bounds (§4.1): when the
  // pool exceeds 8 MiB, the proactive sweeper shrinks it back to 4 MiB.
  options.cold_paged_pool_limits = {4 << 20, 8 << 20};

  auto store = ColumnStore::Open(options);
  if (!store.ok()) return 1;

  // An aging-aware table: "closed_on" is the artificial temperature column
  // the application maintains; cold partitions use page loadable columns.
  TableSchema schema;
  schema.name = "sales_orders";
  schema.columns.push_back({.name = "id",
                            .type = ValueType::kString,
                            .page_loadable = true,
                            .with_index = true,
                            .primary_key = true});
  schema.columns.push_back(
      {.name = "closed_on", .type = ValueType::kInt64, .page_loadable = true});
  schema.columns.push_back(
      {.name = "status", .type = ValueType::kString, .page_loadable = true});
  schema.columns.push_back(
      {.name = "value", .type = ValueType::kInt64, .page_loadable = true});
  schema.temperature_column = 1;

  auto table = (*store)->CreateTable(schema);
  if (!table.ok()) return 1;

  // Day 0..99: orders arrive; most close soon after.
  for (int i = 0; i < 50000; ++i) {
    int64_t close_day = i / 500;  // orders close in arrival order
    const char* status = close_day < 80 ? "CLOSED" : "OPEN";
    if (!(*table)->Insert(Order(i, close_day, status)).ok()) return 1;
  }
  if (!(*table)->MergeAll().ok()) return 1;
  std::printf("loaded %llu orders, hot partition only\n",
              static_cast<unsigned long long>((*table)->row_count()));

  // Age everything closed before day 80: ADD PARTITION, then the move —
  // an ordinary update of the temperature column, i.e. delete-from-hot +
  // insert-into-cold-delta. No downtime, no blocking of other DML.
  if (!(*table)->AddColdPartition().ok()) return 1;
  auto moved = (*table)->AgeRows(Value(int64_t{79}));
  if (!moved.ok()) {
    std::fprintf(stderr, "aging failed: %s\n",
                 moved.status().ToString().c_str());
    return 1;
  }
  std::printf("aged %llu closed orders into the cold partition\n",
              static_cast<unsigned long long>(*moved));

  // The asynchronous delta merge persists the cold main fragment as page
  // loadable structures.
  if (!(*table)->MergeAll().ok()) return 1;
  std::printf("after merge: hot=%llu rows, cold=%llu rows\n",
              static_cast<unsigned long long>(
                  (*table)->hot()->main_row_count()),
              static_cast<unsigned long long>(
                  (*table)->partition(1)->main_row_count()));

  (*table)->UnloadAll();  // cold restart

  // An audit touches a handful of old orders: the first access to the cold
  // partition loads single pages, not whole columns.
  for (int id : {123, 4567, 20111, 33333}) {
    auto row = (*table)->SelectByValue("id", Order(id, 0, "")[0], {"value"});
    if (!row.ok() || row->rows.size() != 1) {
      std::fprintf(stderr, "audit lookup failed for %d\n", id);
      return 1;
    }
    std::printf("order %d -> value=%lld\n", id,
                static_cast<long long>(row->rows[0][0].AsInt64()));
  }
  std::printf("cold paged pool: %.2f MB; total footprint: %.2f MB\n",
              static_cast<double>((*store)->resource_manager().pool_bytes(
                  PoolId::kColdPagedPool)) /
                  1048576.0,
              static_cast<double>((*store)->MemoryFootprint()) / 1048576.0);

  // Analytics over hot + cold remain one SQL surface.
  auto sum = (*table)->SumRange("closed_on", Value(int64_t{0}),
                                Value(int64_t{99}), "value");
  if (!sum.ok()) return 1;
  std::printf("SUM(value) across hot and cold partitions = %.0f\n", *sum);
  return 0;
}
