// Quickstart: create a store, define a table mixing fully resident and page
// loadable columns, insert rows, run the delta merge, and query.
//
//   ./quickstart [directory]

#include <cstdio>

#include "core/column_store.h"

using namespace payg;

int main(int argc, char** argv) {
  ColumnStoreOptions options;
  options.directory = argc > 1 ? argv[1] : "/tmp/payg_quickstart";

  auto store = ColumnStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  // DDL: the loading behaviour is a per-column property chosen at creation
  // time. "note" is PAGE LOADABLE — its dictionary, data vector and pages
  // load on demand; the others are classic fully resident columns.
  TableSchema schema;
  schema.name = "orders";
  schema.columns.push_back({.name = "id",
                            .type = ValueType::kString,
                            .page_loadable = false,
                            .with_index = true,
                            .primary_key = true});
  schema.columns.push_back({.name = "amount", .type = ValueType::kInt64});
  schema.columns.push_back({.name = "note",
                            .type = ValueType::kString,
                            .page_loadable = true});

  auto table = (*store)->CreateTable(schema);
  if (!table.ok()) {
    std::fprintf(stderr, "create table failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  // Inserts append to the write-optimized delta fragment.
  for (int i = 0; i < 10000; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "ORD%08d", i);
    std::string note = "order number " + std::to_string(i) +
                       (i % 3 == 0 ? " (priority)" : "");
    auto s = (*table)->Insert(
        {Value(std::string(id)), Value(int64_t{i * 10}), Value(note)});
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("inserted %llu rows into the delta fragment\n",
              static_cast<unsigned long long>((*table)->row_count()));

  // The delta merge builds the read-optimized main fragments: sorted
  // order-preserving dictionaries, n-bit packed data vectors, inverted
  // indexes — paged or resident per the DDL above.
  auto s = (*table)->MergeAll();
  if (!s.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("delta merge done: %llu rows in the main fragment\n",
              static_cast<unsigned long long>(
                  (*table)->hot()->main_row_count()));

  // Point query by primary key (index lookup + late materialization).
  auto row = (*table)->SelectByValue("id", Value(std::string("ORD00000042")),
                                     {"amount", "note"});
  if (!row.ok() || row->rows.size() != 1) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  std::printf("ORD00000042 -> amount=%lld note=\"%s\"\n",
              static_cast<long long>(row->rows[0][0].AsInt64()),
              row->rows[0][1].AsString().c_str());

  // Aggregate over a key range.
  auto sum = (*table)->SumRange("id", Value(std::string("ORD00000100")),
                                Value(std::string("ORD00000199")), "amount");
  if (!sum.ok()) return 1;
  std::printf("SUM(amount) for ORD00000100..199 = %.0f\n", *sum);

  std::printf("memory footprint: %.2f MB (paged columns load only the pages "
              "these queries touched)\n",
              static_cast<double>((*store)->MemoryFootprint()) / 1048576.0);
  return 0;
}
