#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace payg::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (objects, arrays, strings, numbers, literals)
// used to validate the machine-readable expositions without a JSON library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Literal(const char* word) {
    SkipWs();
    size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool Object() {
    if (!Eat('{')) return false;
    if (Eat('}')) return true;
    do {
      if (!String() || !Eat(':') || !Value()) return false;
    } while (Eat(','));
    return Eat('}');
  }

  bool Array() {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    do {
      if (!Value()) return false;
    } while (Eat(','));
    return Eat(']');
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;  // accept any escaped char (enough for our dumps)
      }
    }
    return false;
  }

  bool Number() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counters, gauges, registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.Set(100);
  g.Add(-30);
  EXPECT_EQ(g.value(), 70);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  auto& reg = MetricsRegistry::Global();
  Counter* a = reg.counter("obs_test.stable");
  Counter* b = reg.counter("obs_test.stable");
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(b->value(), 7u);
  // Reset zeroes values but keeps registrations (cached pointers survive).
  reg.ResetAll();
  EXPECT_EQ(a->value(), 0u);
  EXPECT_EQ(reg.counter("obs_test.stable"), a);
}

TEST(MetricsTest, TextDumpListsEveryKind) {
  auto& reg = MetricsRegistry::Global();
  reg.counter("obs_test.dump.counter")->Add(3);
  reg.gauge("obs_test.dump.gauge")->Set(-5);
  reg.histogram("obs_test.dump.hist")->Record(100);
  std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("obs_test.dump.counter"), std::string::npos);
  EXPECT_NE(dump.find("obs_test.dump.gauge"), std::string::npos);
  EXPECT_NE(dump.find("obs_test.dump.hist"), std::string::npos);
  EXPECT_NE(dump.find("p99"), std::string::npos);
}

TEST(MetricsTest, JsonDumpIsValidJson) {
  auto& reg = MetricsRegistry::Global();
  reg.counter("obs_test.json.counter")->Add(1);
  reg.gauge("obs_test.json.gauge")->Set(-17);
  Histogram* h = reg.histogram("obs_test.json.hist");
  for (uint64_t v = 1; v <= 300; ++v) h->Record(v);
  std::string json = reg.JsonDump();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"obs_test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(PrometheusTest, DottedNamesMangleToPrefixedUnderscores) {
  auto& reg = MetricsRegistry::Global();
  reg.counter("obs_test.prom.requests")->Add(5);
  reg.gauge("obs_test.prom.level")->Set(-3);
  std::string prom = reg.PrometheusDump();
  // Counter family: TYPE line on the dotted-to-underscore name, sample with
  // the _total suffix; gauges keep their bare mangled name.
  EXPECT_NE(prom.find("# TYPE payg_obs_test_prom_requests counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("payg_obs_test_prom_requests_total 5"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE payg_obs_test_prom_level gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("payg_obs_test_prom_level -3"), std::string::npos);
  // No dotted metric name leaks into a sample line.
  std::istringstream in(prom);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::string name = line.substr(0, line.find_first_of("{ "));
    EXPECT_EQ(name.find('.'), std::string::npos) << line;
  }
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithMonotoneLe) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.histogram("obs_test.prom.hist_us");
  h->Reset();
  for (uint64_t v : {0ull, 1ull, 3ull, 7ull, 100ull, 5000ull}) h->Record(v);
  std::string prom = reg.PrometheusDump();

  // Walk this family's _bucket lines: le strictly increasing, counts
  // non-decreasing, +Inf last and equal to _count.
  const std::string bucket_prefix = "payg_obs_test_prom_hist_us_bucket{le=\"";
  double last_le = -1;
  uint64_t last_count = 0;
  uint64_t inf_count = 0;
  bool saw_inf = false;
  std::istringstream in(prom);
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, bucket_prefix.size(), bucket_prefix) != 0) continue;
    const size_t le_start = bucket_prefix.size();
    const size_t le_end = line.find('"', le_start);
    ASSERT_NE(le_end, std::string::npos);
    const std::string le_str = line.substr(le_start, le_end - le_start);
    const uint64_t count =
        std::strtoull(line.c_str() + line.rfind(' ') + 1, nullptr, 10);
    EXPECT_GE(count, last_count) << line;
    last_count = count;
    if (le_str == "+Inf") {
      saw_inf = true;
      inf_count = count;
    } else {
      const double le = std::strtod(le_str.c_str(), nullptr);
      EXPECT_GT(le, last_le) << line;
      last_le = le;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(inf_count, 6u);
  EXPECT_NE(prom.find("payg_obs_test_prom_hist_us_count 6"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("payg_obs_test_prom_hist_us_sum 5111"),
            std::string::npos)
      << prom;
}

TEST(PrometheusTest, AgreesWithJsonDump) {
  auto& reg = MetricsRegistry::Global();
  reg.counter("obs_test.prom.consistency")->Add(17);
  std::string prom = reg.PrometheusDump();
  std::string json = reg.JsonDump();
  // Same value through both expositions.
  EXPECT_NE(prom.find("payg_obs_test_prom_consistency_total 17"),
            std::string::npos);
  EXPECT_NE(json.find("\"obs_test.prom.consistency\":17"), std::string::npos)
      << json;
}

TEST(PrometheusTest, ScrapeWhileRecordingStaysSelfConsistent) {
  auto& reg = MetricsRegistry::Global();
  Histogram* h = reg.histogram("obs_test.prom.concurrent_us");
  Counter* c = reg.counter("obs_test.prom.concurrent");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop, h, c] {
      uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        h->Record(v++ % 4096);
        c->Inc();
      }
    });
  }
  // Scrape concurrently: every dump must stay parseable, and the histogram
  // family self-consistent (+Inf == _count is derived from one bucket walk,
  // so torn count/sum loads cannot produce an impossible exposition).
  for (int i = 0; i < 50; ++i) {
    std::string prom = reg.PrometheusDump();
    EXPECT_NE(prom.find("payg_obs_test_prom_concurrent_total"),
              std::string::npos);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  std::string prom = reg.PrometheusDump();
  EXPECT_TRUE(JsonChecker(reg.JsonDump()).Valid());
  EXPECT_NE(prom.find("payg_obs_test_prom_concurrent_us_bucket"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram buckets and quantiles
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  Histogram h;
  // Bucket i holds values of bit width i: {0} | {1} | [2,3] | [4,7] | [8,15].
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(4);
  h.Record(7);
  h.Record(8);
  h.Record(15);
  h.Record(16);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.buckets[4], 2u);
  EXPECT_EQ(s.buckets[5], 1u);
  EXPECT_EQ(s.count, 9u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + 15 + 16);
}

TEST(HistogramTest, LargeValuesLandInTopBuckets) {
  Histogram h;
  h.Record(~uint64_t{0});  // bit width 64
  h.Record(uint64_t{1} << 63);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.buckets[64], 2u);
}

TEST(HistogramTest, QuantileSingleValue) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(10);
  Histogram::Snapshot s = h.snapshot();
  // Everything sits in bucket [8, 16); every quantile must stay inside it.
  for (double q : {0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(s.Quantile(q), 8.0);
    EXPECT_LE(s.Quantile(q), 16.0);
  }
  EXPECT_EQ(s.Quantile(0.0), s.Quantile(0.001));  // clamped, not crashing
}

TEST(HistogramTest, QuantileUniformDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1024; ++v) h.Record(v);
  Histogram::Snapshot s = h.snapshot();
  // True p50 is 512; log2 bucketing bounds the estimate by the bucket ends.
  EXPECT_GE(s.p50(), 256.0);
  EXPECT_LE(s.p50(), 1024.0);
  EXPECT_GE(s.p95(), 512.0);
  EXPECT_LE(s.p95(), 1024.0);
  EXPECT_GE(s.p99(), 512.0);
  EXPECT_LE(s.p99(), 1100.0);
  // Quantiles are monotone in q.
  EXPECT_LE(s.p50(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
  EXPECT_DOUBLE_EQ(s.mean(), (1024.0 + 1.0) / 2.0);
}

TEST(HistogramTest, EmptyHistogramQuantilesAreZero) {
  Histogram h;
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.p50(), 0.0);
  EXPECT_EQ(s.p99(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(i % 1024);
    });
  }
  for (auto& t : threads) t.join();
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  uint64_t expect_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) expect_sum += i % 1024;
  EXPECT_EQ(s.sum, kThreads * expect_sum);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Global().Disable();
  uint64_t before = Tracer::Global().recorded();
  { TraceSpan span("test", "noop", 1); }
  EXPECT_EQ(Tracer::Global().recorded(), before);
}

TEST(TraceTest, SpansAppearWithTimingAndArgs) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  {
    TraceSpan outer("test", "outer", 7);
    TraceSpan inner("test", "inner", 8);
  }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  // Inner started later but ends first; Collect sorts by start time.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_EQ(events[1].arg, 8u);
  EXPECT_GE(events[0].dur_ns, events[1].dur_ns);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
}

TEST(TraceTest, RingWrapsKeepingNewestEvents) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(8);  // tiny ring
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < 20; ++i) {
    tracer.RecordSpan("test", "wrap", start, i);
  }
  tracer.Disable();
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 0u);  // single writer never contends
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 8u);
  // The ring overwrote the oldest 12; args 12..19 survive.
  uint64_t seen = 0;
  for (const TraceEvent& e : events) seen |= uint64_t{1} << e.arg;
  EXPECT_EQ(seen, 0xFF000ull);
}

TEST(TraceTest, ConcurrentWritersKeepTheRingConsistent) {
  Tracer& tracer = Tracer::Global();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  // Ring bigger than the total event count: nothing gets lapped, so every
  // event must either land in a slot or be counted as dropped (contention).
  tracer.Enable(1 << 14);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("test", "mt", static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  tracer.Disable();
  EXPECT_EQ(tracer.recorded(), uint64_t{kThreads} * kPerThread);
  std::vector<TraceEvent> events = tracer.Collect();
  EXPECT_EQ(events.size() + tracer.dropped(), uint64_t{kThreads} * kPerThread);
  uint64_t per_thread[kThreads] = {};
  for (const TraceEvent& e : events) {
    ASSERT_LT(e.arg, static_cast<uint64_t>(kThreads));
    EXPECT_STREQ(e.name, "mt");
    ++per_thread[e.arg];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_LE(per_thread[t], static_cast<uint64_t>(kPerThread));
  }
}

TEST(TraceTest, ChromeDumpIsValidJson) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(256);
  {
    TraceSpan a("exec", "query", 1);
    TraceSpan b("io", "page_read", 42);
  }
  tracer.Disable();
  std::string json = tracer.DumpChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"page_read\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"io\""), std::string::npos);
}

TEST(TraceTest, NestedSpansFormAParentChildTree) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  {
    TraceSpan outer("test", "tree_outer", 1);
    const uint64_t outer_id = outer.span_id();
    EXPECT_NE(outer_id, 0u);
    EXPECT_EQ(CurrentSpanId(), outer_id);
    TraceSpan inner("test", "tree_inner", 2);
    EXPECT_EQ(CurrentSpanId(), inner.span_id());
  }
  EXPECT_EQ(CurrentSpanId(), 0u);  // stack fully unwound
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& outer_ev = events[0];
  const TraceEvent& inner_ev = events[1];
  EXPECT_STREQ(outer_ev.name, "tree_outer");
  EXPECT_STREQ(inner_ev.name, "tree_inner");
  EXPECT_NE(outer_ev.span_id, 0u);
  EXPECT_EQ(inner_ev.parent_id, outer_ev.span_id);
  // Distinct spans get distinct ids.
  EXPECT_NE(inner_ev.span_id, outer_ev.span_id);
}

TEST(TraceTest, TaskScopePropagatesQueryIdAndParent) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  EXPECT_EQ(CurrentQueryId(), 0u);
  uint64_t parent_span = 0;
  {
    TraceSpan query("exec", "qscope", 0);
    parent_span = query.span_id();
    // Simulate a worker thread picking up this query's task: the scope
    // installs the query id and re-parents spans under the query span.
    std::thread worker([parent_span] {
      TraceTaskScope scope(/*query_id=*/77, parent_span);
      EXPECT_EQ(CurrentQueryId(), 77u);
      TraceSpan span("exec", "partition", 3);
    });
    worker.join();
  }
  EXPECT_EQ(CurrentQueryId(), 0u);  // scope restored on the worker only
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* part = nullptr;
  for (const TraceEvent& e : events) {
    if (std::strcmp(e.name, "partition") == 0) part = &e;
  }
  ASSERT_NE(part, nullptr);
  EXPECT_EQ(part->query_id, 77u);
  EXPECT_EQ(part->parent_id, parent_span);
}

TEST(TraceTest, DirectRecordSpanParentsUnderCurrentSpan) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  {
    TraceSpan outer("test", "direct_outer", 0);
    // The RecordSpan(category, name, start, arg) form — used by the sweep
    // path — mints an id and parents under the enclosing span.
    tracer.RecordSpan("buffer", "sweep", std::chrono::steady_clock::now(), 4);
    const TraceEvent* sweep = nullptr;
    std::vector<TraceEvent> mid = tracer.Collect();
    for (const TraceEvent& e : mid) {
      if (std::strcmp(e.name, "sweep") == 0) sweep = &e;
    }
    ASSERT_NE(sweep, nullptr);
    EXPECT_NE(sweep->span_id, 0u);
    EXPECT_EQ(sweep->parent_id, outer.span_id());
  }
  tracer.Disable();
}

TEST(TraceTest, ChromeDumpCarriesMetadataAndQueryIds) {
  Tracer& tracer = Tracer::Global();
  Tracer::SetCurrentThreadName("obs-test-main");
  tracer.Enable(64);
  {
    TraceTaskScope scope(/*query_id=*/123);
    TraceSpan span("exec", "query", 9);
  }
  tracer.Disable();
  std::string json = tracer.DumpChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Metadata events label the process and the recording thread.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("obs-test-main"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos) << json;
  // The span carries its query id and tree links as Perfetto-visible args.
  EXPECT_NE(json.find("\"qid\":123"), std::string::npos) << json;
  EXPECT_NE(json.find("\"span\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parent\":"), std::string::npos) << json;
}

TEST(TraceTest, ReenableStartsFreshRing) {
  Tracer& tracer = Tracer::Global();
  tracer.Enable(64);
  { TraceSpan span("test", "old", 1); }
  tracer.Enable(64);  // fresh ring, old events gone
  { TraceSpan span("test", "new", 2); }
  tracer.Disable();
  std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new");
}

}  // namespace
}  // namespace payg::obs
