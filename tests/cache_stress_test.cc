// Concurrency stress for the sharded PageCache + lock-free pin path: many
// readers hammer GetPage/Prefetch on overlapping page ranges while the
// resource manager applies constant eviction pressure. The suite is part of
// the TSan and ASan+UBSan legs of scripts/check.sh and CI, where the
// "TryPin/Unpin take no mutex" claim is actually checked.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "buffer/resource_manager.h"
#include "common/random.h"
#include "paged/page_cache.h"
#include "storage/page_file.h"

namespace payg {
namespace {

class CacheStressTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kPageSize = 4096;
  static constexpr uint64_t kPages = 48;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_cache_stress_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  // A page chain of kPages pages; ReadPage verifies magic + checksum, and
  // each returned page carries its logical page number in the header, so a
  // reader can assert it got the bytes it asked for.
  void CreateFile(uint32_t read_latency_us = 0) {
    StorageOptions opts;
    opts.page_size = kPageSize;
    opts.simulated_read_latency_us = read_latency_us;
    auto file = PageFile::Create(dir_ + "/chain", kPageSize, opts, nullptr);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    file_ = std::move(*file);
    for (uint64_t i = 0; i < kPages; ++i) {
      Page page(kPageSize);
      page.header()->type = static_cast<uint16_t>(PageType::kDataVector);
      auto lpn = file_->AppendPage(&page);
      ASSERT_TRUE(lpn.ok());
      ASSERT_EQ(*lpn, i);
    }
  }

  // The prefetch invariant, checked at a full quiesce point (no concurrent
  // issuance, WaitForPrefetchIdle done, cache emptied so no loaded-but-
  // never-touched prefetched page is still waiting for its first touch to
  // pick a bucket): issued == hits + wasted + inflight, with inflight == 0.
  void ExpectPrefetchInvariant(const PageCache& cache) {
    EXPECT_EQ(cache.prefetch_inflight_count(), 0u);
    EXPECT_EQ(cache.prefetch_issued_count(),
              cache.prefetch_hit_count() + cache.prefetch_wasted_count());
  }

  std::string dir_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(CacheStressTest, ConcurrentReadersUnderEvictionPressure) {
  CreateFile();
  ResourceManager rm;
  // Budget of 12 pages over a 48-page working set: every few misses push
  // the total over budget and reactively evict, so pins race eviction all
  // the time. The pool sweep adds proactive churn on top.
  rm.SetGlobalBudget(12 * kPageSize);
  rm.SetPoolLimits(PoolId::kPagedPool,
                   {/*lower=*/6 * kPageSize, /*upper=*/10 * kPageSize});
  PageCache cache(file_.get(), &rm, PoolId::kPagedPool, "stress");

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 1500;
  std::atomic<uint64_t> gets{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Random rng(0x5eed + t);
      // A small ring of held refs keeps a few pages pinned at any time, so
      // eviction constantly meets pinned entries it must skip.
      std::deque<PageRef> held;
      for (int i = 0; i < kItersPerThread; ++i) {
        const LogicalPageNo lpn = rng.Uniform(kPages);
        const uint64_t dice = rng.Uniform(100);
        if (dice < 60) {
          auto ref = cache.GetPage(lpn);
          if (!ref.ok()) {
            failures.fetch_add(1);
            continue;
          }
          gets.fetch_add(1, std::memory_order_relaxed);
          if (ref->page().header()->logical_page_no != lpn) {
            failures.fetch_add(1);
          }
          held.push_back(std::move(*ref));
          if (held.size() > 4) held.pop_front();
        } else if (dice < 90) {
          const uint64_t window = rng.UniformRange(1, 3);
          for (uint64_t w = 0; w < window; ++w) {
            cache.Prefetch((lpn + w) % kPages);
          }
        } else {
          // Racy stat probes must stay safe against concurrent mutation.
          (void)cache.IsLoaded(lpn);
          (void)cache.loaded_page_count();
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  cache.WaitForPrefetchIdle();
  EXPECT_EQ(cache.prefetch_inflight_count(), 0u);
  // Prefetched pages still resident and untouched have not picked a bucket
  // yet, so mid-run the equality is only a lower bound.
  EXPECT_GE(cache.prefetch_issued_count(),
            cache.prefetch_hit_count() + cache.prefetch_wasted_count());
  EXPECT_EQ(cache.hit_count() + cache.miss_count(), gets.load());

  // No lost pins: with every ref released and the pool floor removed, a
  // 1-byte budget must be able to evict every remaining page. A leaked pin
  // would leave its resource behind (pinned entries are never victims).
  rm.SetPoolLimits(PoolId::kPagedPool, {/*lower=*/0, /*upper=*/0});
  rm.SetGlobalBudget(1);
  EXPECT_EQ(cache.loaded_page_count(), 0u);
  EXPECT_EQ(rm.stats().resource_count, 0u);
  EXPECT_EQ(rm.total_bytes(), 0u);
  ExpectPrefetchInvariant(cache);
}

// Regression for the sharded DropAll protocol: DropAll drains one shard at
// a time and must never block a prefetch task publishing to another shard
// (or to the same shard — the cv wait releases the lock). Run the worst
// case (1 shard, everything serializes on it) and the opposite extreme
// (more shards than pages, so every page lives alone in its shard and
// DropAll's drain position races the publisher's shard choice).
class CacheDropAllRaceTest : public CacheStressTest,
                             public ::testing::WithParamInterface<uint32_t> {};

TEST_P(CacheDropAllRaceTest, DropAllDoesNotDeadlockWithPrefetchPublish) {
  // Simulated read latency keeps loads in flight long enough for DropAll
  // to overlap the publish window.
  CreateFile(/*read_latency_us=*/200);
  ResourceManager rm;
  PageCache cache(file_.get(), &rm, PoolId::kPagedPool, "droprace",
                  /*shard_count=*/GetParam());
  ASSERT_EQ(cache.shard_count(), GetParam());

  // The publisher is bounded (not stop-flag driven) so DropAll's per-shard
  // drain always terminates: a free-running publisher could keep a shard's
  // in-flight set permanently nonempty, which would stall the test itself
  // rather than exercise the deadlock.
  std::thread publisher([&] {
    Random rng(0xd06);
    for (int i = 0; i < 2000; ++i) {
      cache.Prefetch(rng.Uniform(kPages));
    }
  });
  for (int round = 0; round < 50; ++round) {
    cache.DropAll();
  }
  publisher.join();

  cache.WaitForPrefetchIdle();
  cache.DropAll();
  ExpectPrefetchInvariant(cache);
  EXPECT_EQ(cache.loaded_page_count(), 0u);
  EXPECT_EQ(rm.stats().resource_count, 0u);
  EXPECT_EQ(rm.total_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ShardExtremes, CacheDropAllRaceTest,
                         ::testing::Values(1u, 64u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace payg
