#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "buffer/resource_manager.h"

namespace payg {
namespace {

TEST(DispositionTest, WeightsAreOrdered) {
  EXPECT_LT(DispositionWeight(Disposition::kTemporary),
            DispositionWeight(Disposition::kShortTerm));
  EXPECT_LT(DispositionWeight(Disposition::kShortTerm),
            DispositionWeight(Disposition::kMidTerm));
  EXPECT_LT(DispositionWeight(Disposition::kMidTerm),
            DispositionWeight(Disposition::kLongTerm));
  EXPECT_LT(DispositionWeight(Disposition::kLongTerm),
            DispositionWeight(Disposition::kNonSwappable));
}

TEST(ResourceManagerTest, TracksBytesPerPool) {
  ResourceManager rm;
  rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  rm.Register("b", 50, Disposition::kPagedAttribute, PoolId::kPagedPool,
              nullptr);
  rm.Register("c", 25, Disposition::kPagedAttribute, PoolId::kColdPagedPool,
              nullptr);
  EXPECT_EQ(rm.total_bytes(), 175u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kGeneral), 100u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kPagedPool), 50u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kColdPagedPool), 25u);
}

TEST(ResourceManagerTest, UnregisterReleasesBytes) {
  ResourceManager rm;
  ResourceId id =
      rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  EXPECT_TRUE(rm.Unregister(id));
  EXPECT_EQ(rm.total_bytes(), 0u);
  EXPECT_FALSE(rm.Unregister(id));  // second time: already gone
}

TEST(ResourceManagerTest, ReactiveEvictionEnforcesGlobalBudget) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetGlobalBudget(250);
  for (int i = 0; i < 5; ++i) {
    rm.Register("r" + std::to_string(i), 100, Disposition::kMidTerm,
                PoolId::kGeneral, [&] { evicted++; });
  }
  // 5 x 100 bytes against a 250 budget: at least 3 evictions.
  EXPECT_LE(rm.total_bytes(), 250u);
  EXPECT_GE(evicted.load(), 3);
  EXPECT_GE(rm.stats().reactive_evictions, 3u);
}

TEST(ResourceManagerTest, LruPrefersOldUntouchedResources) {
  ResourceManager rm;
  std::vector<int> evicted;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rm.Register("r" + std::to_string(i), 100,
                              Disposition::kMidTerm, PoolId::kGeneral,
                              [&evicted, i] { evicted.push_back(i); }));
  }
  // Touch 0 and 1 so 2 becomes the coldest.
  rm.Touch(ids[0]);
  rm.Touch(ids[1]);
  rm.SetGlobalBudget(350);  // forces exactly one eviction
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
}

TEST(ResourceManagerTest, WeightedLruEvictsLowWeightFirst) {
  ResourceManager rm;
  std::vector<std::string> evicted;
  // Same age, different dispositions: the temporary resource must go first
  // (t/w ordering with smaller w → larger score).
  rm.Register("long", 100, Disposition::kLongTerm, PoolId::kGeneral,
              [&] { evicted.push_back("long"); });
  rm.Register("tmp", 100, Disposition::kTemporary, PoolId::kGeneral,
              [&] { evicted.push_back("tmp"); });
  rm.SetGlobalBudget(150);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "tmp");
}

TEST(ResourceManagerTest, NonSwappableIsNeverEvicted) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.Register("pinned-by-policy", 100, Disposition::kNonSwappable,
              PoolId::kGeneral, [&] { evicted++; });
  rm.SetGlobalBudget(10);
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.total_bytes(), 100u);  // budget is overrun rather than violated
}

TEST(ResourceManagerTest, PinnedResourcesSurviveEviction) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  ResourceId id = rm.Register("hot", 100, Disposition::kTemporary,
                              PoolId::kGeneral, [&] { evicted++; });
  ASSERT_TRUE(rm.Pin(id));
  rm.SetGlobalBudget(10);
  EXPECT_EQ(evicted.load(), 0);
  rm.Unpin(id);
  rm.SetGlobalBudget(10);  // re-trigger
  EXPECT_EQ(evicted.load(), 1);
}

TEST(ResourceManagerTest, PinFailsForUnknownResource) {
  ResourceManager rm;
  EXPECT_FALSE(rm.Pin(12345));
  PinnedResource p = PinnedResource::TryPin(&rm, 12345);
  EXPECT_FALSE(p.valid());
}

TEST(ResourceManagerTest, RegisterPinnedStartsPinned) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  ResourceId id = rm.RegisterPinned("page", 100, Disposition::kPagedAttribute,
                                    PoolId::kPagedPool, [&] { evicted++; });
  rm.SetPoolLimits(PoolId::kPagedPool, {0, 10});
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 0);  // pinned: sweep skips it
  rm.Unpin(id);
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 1);
}

TEST(ResourceManagerTest, ProactiveSweepShrinksToLowerLimit) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetPoolLimits(PoolId::kPagedPool, {200, 1000});
  for (int i = 0; i < 15; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  rm.SweepNow();
  // 1500 bytes > upper 1000 → shrink to lower limit 200.
  EXPECT_LE(rm.pool_bytes(PoolId::kPagedPool), 200u);
  EXPECT_GE(evicted.load(), 13);
  EXPECT_GE(rm.stats().proactive_evictions, 13u);
}

TEST(ResourceManagerTest, ProactiveSweepIgnoresPoolBelowUpperLimit) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetPoolLimits(PoolId::kPagedPool, {200, 1000});
  for (int i = 0; i < 5; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.pool_bytes(PoolId::kPagedPool), 500u);
}

TEST(ResourceManagerTest, PagedPoolEvictedInLruOrderIgnoringWeight) {
  ResourceManager rm;
  std::vector<int> order;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rm.Register("pg" + std::to_string(i), 100,
                              Disposition::kPagedAttribute, PoolId::kPagedPool,
                              [&order, i] { order.push_back(i); }));
  }
  rm.Touch(ids[0]);  // 0 becomes most recent; LRU order 1,2,3,0
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 150});
  rm.SweepNow();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ResourceManagerTest, ReactivePathDrainsPagedPoolBeforeColumns) {
  ResourceManager rm;
  std::vector<std::string> order;
  rm.SetPoolLimits(PoolId::kPagedPool, {0, 0});  // no proactive limits
  rm.Register("column", 100, Disposition::kMidTerm, PoolId::kGeneral,
              [&] { order.push_back("column"); });
  for (int i = 0; i < 3; ++i) {
    rm.Register("page" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool,
                [&, i] { order.push_back("page" + std::to_string(i)); });
  }
  // Budget forces evicting 300 bytes; all pages must go before the column.
  rm.SetGlobalBudget(100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].substr(0, 4), "page");
  EXPECT_EQ(order[1].substr(0, 4), "page");
  EXPECT_EQ(order[2].substr(0, 4), "page");
  EXPECT_EQ(rm.total_bytes(), 100u);  // the column survived
}

TEST(ResourceManagerTest, BackgroundSweeperRunsAsynchronously) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 300});
  for (int i = 0; i < 10; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  // The background thread wakes within ~20ms; give it some slack.
  for (int i = 0; i < 100 && rm.pool_bytes(PoolId::kPagedPool) > 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rm.pool_bytes(PoolId::kPagedPool), 100u);
  EXPECT_GE(evicted.load(), 9);
}

TEST(ResourceManagerTest, StatsSnapshotIsConsistent) {
  ResourceManager rm;
  rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  rm.Register("b", 200, Disposition::kPagedAttribute, PoolId::kPagedPool,
              nullptr);
  auto s = rm.stats();
  EXPECT_EQ(s.total_bytes, 300u);
  EXPECT_EQ(s.resource_count, 2u);
  EXPECT_EQ(s.pool_bytes[static_cast<int>(PoolId::kGeneral)], 100u);
  EXPECT_EQ(s.pool_bytes[static_cast<int>(PoolId::kPagedPool)], 200u);
  EXPECT_EQ(s.reactive_evictions, 0u);
  EXPECT_EQ(s.proactive_evictions, 0u);
  EXPECT_EQ(s.evicted_bytes, 0u);

  rm.SetGlobalBudget(150);  // evicts the paged resource first (reactive)
  s = rm.stats();
  EXPECT_EQ(s.total_bytes, 100u);
  EXPECT_EQ(s.evicted_bytes, 200u);
  EXPECT_EQ(s.reactive_evictions, 1u);
}

TEST(ResourceManagerTest, TouchRevivesEvictionOrder) {
  ResourceManager rm;
  std::vector<int> order;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(rm.Register("pg" + std::to_string(i), 100,
                              Disposition::kPagedAttribute, PoolId::kPagedPool,
                              [&order, i] { order.push_back(i); }));
  }
  // Touch in reverse: LRU order becomes 2, 1, 0.
  rm.Touch(ids[2]);
  rm.Touch(ids[1]);
  rm.Touch(ids[0]);
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 200});
  rm.SweepNow();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(ResourceManagerTest, ZeroBudgetMeansUnlimited) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  for (int i = 0; i < 20; ++i) {
    rm.Register("r" + std::to_string(i), 1 << 20, Disposition::kTemporary,
                PoolId::kGeneral, [&] { evicted++; });
  }
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.total_bytes(), 20u << 20);
}

TEST(ResourceManagerTest, EvictionCallbackRunsOutsideLock) {
  // A callback that calls back into the manager must not deadlock.
  ResourceManager rm;
  std::atomic<bool> reentered{false};
  rm.Register("outer", 100, Disposition::kTemporary, PoolId::kGeneral, [&] {
    // Registration from inside an eviction callback.
    rm.Register("inner", 1, Disposition::kTemporary, PoolId::kGeneral,
                nullptr);
    reentered = true;
  });
  rm.SetGlobalBudget(50);
  EXPECT_TRUE(reentered.load());
}

TEST(PinnedResourceTest, MoveTransfersOwnership) {
  ResourceManager rm;
  ResourceId id =
      rm.Register("r", 10, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  PinnedResource a = PinnedResource::TryPin(&rm, id);
  ASSERT_TRUE(a.valid());
  PinnedResource b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_FALSE(b.valid());
  // After release the resource must be evictable again.
  std::atomic<int> evicted{0};
  rm.SetGlobalBudget(1);
  EXPECT_EQ(rm.total_bytes(), 0u);
  (void)evicted;
}

}  // namespace
}  // namespace payg
