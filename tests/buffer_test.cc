#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "buffer/resource_manager.h"

namespace payg {
namespace {

TEST(DispositionTest, WeightsAreOrdered) {
  EXPECT_LT(DispositionWeight(Disposition::kTemporary),
            DispositionWeight(Disposition::kShortTerm));
  EXPECT_LT(DispositionWeight(Disposition::kShortTerm),
            DispositionWeight(Disposition::kMidTerm));
  EXPECT_LT(DispositionWeight(Disposition::kMidTerm),
            DispositionWeight(Disposition::kLongTerm));
  EXPECT_LT(DispositionWeight(Disposition::kLongTerm),
            DispositionWeight(Disposition::kNonSwappable));
}

TEST(ResourceManagerTest, TracksBytesPerPool) {
  ResourceManager rm;
  rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  rm.Register("b", 50, Disposition::kPagedAttribute, PoolId::kPagedPool,
              nullptr);
  rm.Register("c", 25, Disposition::kPagedAttribute, PoolId::kColdPagedPool,
              nullptr);
  EXPECT_EQ(rm.total_bytes(), 175u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kGeneral), 100u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kPagedPool), 50u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kColdPagedPool), 25u);
}

TEST(ResourceManagerTest, UnregisterReleasesBytes) {
  ResourceManager rm;
  ResourceId id =
      rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  EXPECT_TRUE(rm.Unregister(id));
  EXPECT_EQ(rm.total_bytes(), 0u);
  EXPECT_FALSE(rm.Unregister(id));  // second time: already gone
}

TEST(ResourceManagerTest, ReactiveEvictionEnforcesGlobalBudget) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetGlobalBudget(250);
  for (int i = 0; i < 5; ++i) {
    rm.Register("r" + std::to_string(i), 100, Disposition::kMidTerm,
                PoolId::kGeneral, [&] { evicted++; });
  }
  // 5 x 100 bytes against a 250 budget: at least 3 evictions.
  EXPECT_LE(rm.total_bytes(), 250u);
  EXPECT_GE(evicted.load(), 3);
  EXPECT_GE(rm.stats().reactive_evictions, 3u);
}

TEST(ResourceManagerTest, LruPrefersOldUntouchedResources) {
  ResourceManager rm;
  std::vector<int> evicted;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rm.Register("r" + std::to_string(i), 100,
                              Disposition::kMidTerm, PoolId::kGeneral,
                              [&evicted, i] { evicted.push_back(i); }));
  }
  // Touch 0 and 1 so 2 becomes the coldest.
  rm.Touch(ids[0]);
  rm.Touch(ids[1]);
  rm.SetGlobalBudget(350);  // forces exactly one eviction
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2);
}

TEST(ResourceManagerTest, WeightedLruEvictsLowWeightFirst) {
  ResourceManager rm;
  std::vector<std::string> evicted;
  // Same age, different dispositions: the temporary resource must go first
  // (t/w ordering with smaller w → larger score).
  rm.Register("long", 100, Disposition::kLongTerm, PoolId::kGeneral,
              [&] { evicted.push_back("long"); });
  rm.Register("tmp", 100, Disposition::kTemporary, PoolId::kGeneral,
              [&] { evicted.push_back("tmp"); });
  rm.SetGlobalBudget(150);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "tmp");
}

TEST(ResourceManagerTest, NonSwappableIsNeverEvicted) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.Register("pinned-by-policy", 100, Disposition::kNonSwappable,
              PoolId::kGeneral, [&] { evicted++; });
  rm.SetGlobalBudget(10);
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.total_bytes(), 100u);  // budget is overrun rather than violated
}

TEST(ResourceManagerTest, PinnedResourcesSurviveEviction) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  ResourceId id = rm.Register("hot", 100, Disposition::kTemporary,
                              PoolId::kGeneral, [&] { evicted++; });
  ASSERT_TRUE(rm.Pin(id));
  rm.SetGlobalBudget(10);
  EXPECT_EQ(evicted.load(), 0);
  rm.Unpin(id);
  rm.SetGlobalBudget(10);  // re-trigger
  EXPECT_EQ(evicted.load(), 1);
}

TEST(ResourceManagerTest, PinFailsForUnknownResource) {
  ResourceManager rm;
  EXPECT_FALSE(rm.Pin(12345));
  PinnedResource p = PinnedResource::TryPin(&rm, 12345);
  EXPECT_FALSE(p.valid());
}

TEST(ResourceManagerTest, RegisterPinnedStartsPinned) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  ResourceId id = rm.RegisterPinned("page", 100, Disposition::kPagedAttribute,
                                    PoolId::kPagedPool, [&] { evicted++; });
  rm.SetPoolLimits(PoolId::kPagedPool, {0, 10});
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 0);  // pinned: sweep skips it
  rm.Unpin(id);
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 1);
}

TEST(ResourceManagerTest, ProactiveSweepShrinksToLowerLimit) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  for (int i = 0; i < 15; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  // Limits set after registration: whichever sweep runs first (this call or
  // the background sweeper's periodic wake) sees all 1500 bytes, so the
  // assertions hold under any interleaving.
  rm.SetPoolLimits(PoolId::kPagedPool, {200, 1000});
  rm.SweepNow();
  // 1500 bytes > upper 1000 → shrink to lower limit 200.
  EXPECT_LE(rm.pool_bytes(PoolId::kPagedPool), 200u);
  EXPECT_GE(evicted.load(), 13);
  EXPECT_GE(rm.stats().proactive_evictions, 13u);
}

TEST(ResourceManagerTest, ProactiveSweepIgnoresPoolBelowUpperLimit) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetPoolLimits(PoolId::kPagedPool, {200, 1000});
  for (int i = 0; i < 5; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  rm.SweepNow();
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.pool_bytes(PoolId::kPagedPool), 500u);
}

TEST(ResourceManagerTest, PagedPoolEvictedInLruOrderIgnoringWeight) {
  ResourceManager rm;
  std::vector<int> order;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(rm.Register("pg" + std::to_string(i), 100,
                              Disposition::kPagedAttribute, PoolId::kPagedPool,
                              [&order, i] { order.push_back(i); }));
  }
  rm.Touch(ids[0]);  // 0 becomes most recent; LRU order 1,2,3,0
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 150});
  rm.SweepNow();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ResourceManagerTest, ReactivePathDrainsPagedPoolBeforeColumns) {
  ResourceManager rm;
  std::vector<std::string> order;
  rm.SetPoolLimits(PoolId::kPagedPool, {0, 0});  // no proactive limits
  rm.Register("column", 100, Disposition::kMidTerm, PoolId::kGeneral,
              [&] { order.push_back("column"); });
  for (int i = 0; i < 3; ++i) {
    rm.Register("page" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool,
                [&, i] { order.push_back("page" + std::to_string(i)); });
  }
  // Budget forces evicting 300 bytes; all pages must go before the column.
  rm.SetGlobalBudget(100);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].substr(0, 4), "page");
  EXPECT_EQ(order[1].substr(0, 4), "page");
  EXPECT_EQ(order[2].substr(0, 4), "page");
  EXPECT_EQ(rm.total_bytes(), 100u);  // the column survived
}

TEST(ResourceManagerTest, BackgroundSweeperRunsAsynchronously) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 300});
  for (int i = 0; i < 10; ++i) {
    rm.Register("pg" + std::to_string(i), 100, Disposition::kPagedAttribute,
                PoolId::kPagedPool, [&] { evicted++; });
  }
  // The background thread wakes within ~20ms; give it some slack.
  for (int i = 0; i < 100 && rm.pool_bytes(PoolId::kPagedPool) > 100; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_LE(rm.pool_bytes(PoolId::kPagedPool), 100u);
  EXPECT_GE(evicted.load(), 9);
}

TEST(ResourceManagerTest, StatsSnapshotIsConsistent) {
  ResourceManager rm;
  rm.Register("a", 100, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  rm.Register("b", 200, Disposition::kPagedAttribute, PoolId::kPagedPool,
              nullptr);
  auto s = rm.stats();
  EXPECT_EQ(s.total_bytes, 300u);
  EXPECT_EQ(s.resource_count, 2u);
  EXPECT_EQ(s.pool_bytes[static_cast<int>(PoolId::kGeneral)], 100u);
  EXPECT_EQ(s.pool_bytes[static_cast<int>(PoolId::kPagedPool)], 200u);
  EXPECT_EQ(s.reactive_evictions, 0u);
  EXPECT_EQ(s.proactive_evictions, 0u);
  EXPECT_EQ(s.evicted_bytes, 0u);

  rm.SetGlobalBudget(150);  // evicts the paged resource first (reactive)
  s = rm.stats();
  EXPECT_EQ(s.total_bytes, 100u);
  EXPECT_EQ(s.evicted_bytes, 200u);
  EXPECT_EQ(s.reactive_evictions, 1u);
}

TEST(ResourceManagerTest, TouchRevivesEvictionOrder) {
  ResourceManager rm;
  std::vector<int> order;
  std::vector<ResourceId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(rm.Register("pg" + std::to_string(i), 100,
                              Disposition::kPagedAttribute, PoolId::kPagedPool,
                              [&order, i] { order.push_back(i); }));
  }
  // Touch in reverse: LRU order becomes 2, 1, 0.
  rm.Touch(ids[2]);
  rm.Touch(ids[1]);
  rm.Touch(ids[0]);
  rm.SetPoolLimits(PoolId::kPagedPool, {100, 200});
  rm.SweepNow();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(ResourceManagerTest, ZeroBudgetMeansUnlimited) {
  ResourceManager rm;
  std::atomic<int> evicted{0};
  for (int i = 0; i < 20; ++i) {
    rm.Register("r" + std::to_string(i), 1 << 20, Disposition::kTemporary,
                PoolId::kGeneral, [&] { evicted++; });
  }
  EXPECT_EQ(evicted.load(), 0);
  EXPECT_EQ(rm.total_bytes(), 20u << 20);
}

TEST(ResourceManagerTest, EvictionCallbackRunsOutsideLock) {
  // A callback that calls back into the manager must not deadlock.
  ResourceManager rm;
  std::atomic<bool> reentered{false};
  rm.Register("outer", 100, Disposition::kTemporary, PoolId::kGeneral, [&] {
    // Registration from inside an eviction callback.
    rm.Register("inner", 1, Disposition::kTemporary, PoolId::kGeneral,
                nullptr);
    reentered = true;
  });
  rm.SetGlobalBudget(50);
  EXPECT_TRUE(reentered.load());
}

TEST(PinnedResourceTest, MoveTransfersOwnership) {
  ResourceManager rm;
  ResourceId id =
      rm.Register("r", 10, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  PinnedResource a = PinnedResource::TryPin(&rm, id);
  ASSERT_TRUE(a.valid());
  PinnedResource b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  b.Release();
  EXPECT_FALSE(b.valid());
  // After release the resource must be evictable again.
  std::atomic<int> evicted{0};
  rm.SetGlobalBudget(1);
  EXPECT_EQ(rm.total_bytes(), 0u);
  (void)evicted;
}

TEST(PinnedResourceTest, SelfMoveKeepsPin) {
  ResourceManager rm;
  ResourceId id =
      rm.Register("r", 10, Disposition::kMidTerm, PoolId::kGeneral, nullptr);
  PinnedResource a = PinnedResource::TryPin(&rm, id);
  ASSERT_TRUE(a.valid());
  // A self-move must be a no-op: the old implementation released the pin
  // first and then "transferred" from the already-cleared object, silently
  // dropping the protection.
  PinnedResource& alias = a;
  a = std::move(alias);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.id(), id);
  // The resource is still pinned: a tight budget cannot evict it.
  std::atomic<int> evicted{0};
  rm.Register("victim", 10, Disposition::kTemporary, PoolId::kGeneral,
              [&] { evicted.fetch_add(1); });
  rm.SetGlobalBudget(5);
  EXPECT_EQ(rm.total_bytes(), 10u);  // only the pinned survivor remains
  a.Release();
  rm.SetGlobalBudget(5);
  EXPECT_EQ(rm.total_bytes(), 0u);
}

TEST(ResourceManagerStressTest, ConcurrentPinTouchUnregister) {
  // N threads register/pin/touch/unregister against a tight budget while
  // the sweeper evicts: every resource must be released exactly once
  // (registered = evicted + unregistered), byte accounting must return to
  // zero, and no entry may be double-evicted.
  ResourceManager rm;
  rm.SetGlobalBudget(64 * 100);  // roughly half the peak working set
  rm.SetPoolLimits(PoolId::kPagedPool,
                   ResourceManager::Limits{32 * 100, 48 * 100});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> unregistered{0};
  std::atomic<uint64_t> double_evictions{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<ResourceId> mine;
      std::vector<std::shared_ptr<std::atomic<int>>> flags;
      for (int i = 0; i < kPerThread; ++i) {
        auto flag = std::make_shared<std::atomic<int>>(0);
        ResourceId id = rm.RegisterPinned(
            "s" + std::to_string(t) + "_" + std::to_string(i), 100,
            Disposition::kPagedAttribute, PoolId::kPagedPool, [flag, &evictions,
                                                               &double_evictions] {
              if (flag->fetch_add(1) != 0) double_evictions.fetch_add(1);
              evictions.fetch_add(1);
            });
        mine.push_back(id);
        flags.push_back(flag);
        rm.Unpin(id);  // release the registration pin; now evictable
        rm.Touch(id);
        // Re-pin and unpin a few of the survivors to stir the LRU.
        if (i % 3 == 0 && rm.Pin(id)) {
          rm.Touch(id);
          rm.Unpin(id);
        }
        if (i % 7 == 0) {
          // Voluntarily drop an older resource; false means it was already
          // evicted, in which case its callback must have run instead.
          size_t victim = mine.size() / 2;
          if (rm.Unregister(mine[victim])) {
            unregistered.fetch_add(1);
            if (flags[victim]->fetch_add(1) != 0) double_evictions.fetch_add(1);
          }
        }
      }
      // Drop everything that is still registered.
      for (size_t i = 0; i < mine.size(); ++i) {
        if (rm.Unregister(mine[i])) {
          unregistered.fetch_add(1);
          if (flags[i]->fetch_add(1) != 0) double_evictions.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  rm.SweepNow();

  EXPECT_EQ(double_evictions.load(), 0u);
  EXPECT_EQ(evictions.load() + unregistered.load(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(rm.total_bytes(), 0u);
  EXPECT_EQ(rm.pool_bytes(PoolId::kPagedPool), 0u);
  EXPECT_EQ(rm.stats().resource_count, 0u);
}

}  // namespace
}  // namespace payg
