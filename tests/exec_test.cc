#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "exec/exec_context.h"
#include "exec/query_executor.h"
#include "exec/thread_pool.h"
#include "table/table.h"

namespace payg {
namespace {

// --- ThreadPool / QueryExecutor -------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // The destructor drains the queue before joining.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(QueryExecutorTest, SerialModeRunsInlineInOrder) {
  QueryExecutor exec(ExecOptions{/*worker_threads=*/0});
  EXPECT_FALSE(exec.parallel());
  std::vector<size_t> order;
  ASSERT_TRUE(exec.ForEach(nullptr, 5,
                           [&order](size_t i) {
                             order.push_back(i);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(QueryExecutorTest, ParallelModeRunsEveryTask) {
  QueryExecutor exec(ExecOptions{/*worker_threads=*/4});
  EXPECT_TRUE(exec.parallel());
  std::atomic<uint64_t> sum{0};
  ASSERT_TRUE(exec.ForEach(nullptr, 64,
                           [&sum](size_t i) {
                             sum.fetch_add(i + 1, std::memory_order_relaxed);
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(sum.load(), 64u * 65u / 2);
}

TEST(QueryExecutorTest, ReportsFirstErrorInIndexOrder) {
  for (uint32_t workers : {0u, 4u}) {
    QueryExecutor exec(ExecOptions{workers});
    Status s = exec.ForEach(nullptr, 8, [](size_t i) -> Status {
      if (i == 2) return Status::InvalidArgument("task 2");
      if (i == 5) return Status::Internal("task 5");
      return Status::OK();
    });
    ASSERT_FALSE(s.ok());
    // Index order, not completion order: task 2's error wins.
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "workers=" << workers;
  }
}

TEST(QueryExecutorTest, ExpiredDeadlineFailsFanOut) {
  for (uint32_t workers : {0u, 4u}) {
    QueryExecutor exec(ExecOptions{workers});
    ExecContext ctx;
    ctx.deadline = ExecContext::Clock::now() - std::chrono::seconds(1);
    std::atomic<int> ran{0};
    Status s = exec.ForEach(&ctx, 4, [&ran](size_t) {
      ran.fetch_add(1);
      return Status::OK();
    });
    EXPECT_TRUE(s.IsDeadlineExceeded()) << "workers=" << workers;
    EXPECT_EQ(ran.load(), 0) << "workers=" << workers;
  }
}

// --- Table-level parallel execution ---------------------------------------

TableSchema OrdersSchema(const std::string& name = "orders") {
  TableSchema schema;
  schema.name = name;
  schema.columns.push_back({"id", ValueType::kString, /*page_loadable=*/true,
                            /*with_index=*/true, /*primary_key=*/true});
  schema.columns.push_back(
      {"aging_date", ValueType::kInt64, true, false, false});
  schema.columns.push_back({"status", ValueType::kString, true, false, false});
  schema.columns.push_back({"amount", ValueType::kInt64, true, false, false});
  schema.temperature_column = 1;
  return schema;
}

std::vector<Value> OrderRow(uint64_t id, int64_t date,
                            const std::string& status, int64_t amount) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ORD%08llu",
                static_cast<unsigned long long>(id));
  return {Value(std::string(buf)), Value(date), Value(status), Value(amount)};
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_exec_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 8192;
    opts.dict_page_size = 8192;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Hot partition (dates 200..299) plus two merged cold partitions
  // (0..99 and 100..199), all columns page loadable, nothing resident.
  std::unique_ptr<Table> MakeAgedOrders(int rows = 300) {
    auto table =
        std::make_unique<Table>(OrdersSchema(), storage_.get(), rm_.get());
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(
          table
              ->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
              .ok());
    }
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_TRUE(table->AddColdPartition().ok());
    auto moved1 = table->AgeRows(Value(int64_t{99}));
    EXPECT_TRUE(moved1.ok());
    EXPECT_EQ(*moved1, 100u);
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_TRUE(table->AddColdPartition().ok());
    auto moved2 = table->AgeRows(Value(int64_t{199}));
    EXPECT_TRUE(moved2.ok());
    EXPECT_EQ(*moved2, 100u);
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_EQ(table->partition_count(), 3u);
    table->UnloadAll();  // every query starts against cold partitions
    return table;
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

// Runs `query` once with worker_threads = 0 and once with 4 workers and
// requires the exact same result (QueryResult rows, counts, row ids, and —
// because partials merge in partition order — even SUM doubles).
template <typename Fn>
void ExpectSerialParallelEqual(Table* table, const char* label, Fn query) {
  table->set_exec_options(ExecOptions{/*worker_threads=*/0});
  auto serial = query();
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
  table->set_exec_options(ExecOptions{/*worker_threads=*/4});
  auto parallel = query();
  ASSERT_TRUE(parallel.ok()) << label << ": " << parallel.status().ToString();
  EXPECT_EQ(*serial, *parallel) << label;
  table->set_exec_options(ExecOptions{/*worker_threads=*/0});
}

TEST_F(ExecTest, ParallelMatchesSerialOnEveryTemplate) {
  auto table = MakeAgedOrders();
  Table* t = table.get();
  const std::vector<std::string> all_cols = {};  // empty = all columns

  ExpectSerialParallelEqual(t, "SelectByValue(status)", [t, &all_cols] {
    return t->SelectByValue("status", Value(std::string("S3")), all_cols);
  });
  ExpectSerialParallelEqual(t, "SelectByValue(id)", [t, &all_cols] {
    return t->SelectByValue("id", OrderRow(142, 0, "", 0)[0], all_cols);
  });
  ExpectSerialParallelEqual(t, "CountByValue", [t] {
    return t->CountByValue("status", Value(std::string("S1")));
  });
  ExpectSerialParallelEqual(t, "RowIdsByValue", [t] {
    return t->RowIdsByValue("status", Value(std::string("S2")));
  });
  ExpectSerialParallelEqual(t, "SelectRange", [t, &all_cols] {
    return t->SelectRange("aging_date", Value(int64_t{50}), Value(int64_t{250}),
                          all_cols);
  });
  ExpectSerialParallelEqual(t, "SumRange", [t] {
    return t->SumRange("aging_date", Value(int64_t{10}), Value(int64_t{290}),
                       "amount");
  });
  ExpectSerialParallelEqual(t, "SelectIn", [t, &all_cols] {
    return t->SelectIn(
        "id",
        {OrderRow(7, 0, "", 0)[0], OrderRow(107, 0, "", 0)[0],
         OrderRow(207, 0, "", 0)[0]},
        all_cols);
  });
  ExpectSerialParallelEqual(t, "CountIn", [t] {
    return t->CountIn("status",
                      {Value(std::string("S0")), Value(std::string("S4"))});
  });
  ExpectSerialParallelEqual(t, "SelectPrefix", [t, &all_cols] {
    return t->SelectPrefix("id", "ORD000001", all_cols);
  });
  ExpectSerialParallelEqual(t, "CountPrefix",
                            [t] { return t->CountPrefix("id", "ORD0000"); });
  ExpectSerialParallelEqual(t, "SelectWhere", [t, &all_cols] {
    return t->SelectWhere(
        {Predicate::Eq("status", Value(std::string("S3"))),
         Predicate::Between("aging_date", Value(int64_t{20}),
                            Value(int64_t{280}))},
        all_cols);
  });
  ExpectSerialParallelEqual(t, "CountWhere", [t] {
    return t->CountWhere({Predicate::Between("aging_date", Value(int64_t{0}),
                                             Value(int64_t{299})),
                          Predicate::Eq("status", Value(std::string("S0")))});
  });
}

TEST_F(ExecTest, RowIdsIdentifyPartitionsInBothModes) {
  auto table = MakeAgedOrders();
  for (uint32_t workers : {0u, 4u}) {
    table->set_exec_options(ExecOptions{workers});
    // Date 150 lives in cold partition 2 (second aging wave).
    auto ids = table->RowIdsByValue("aging_date", Value(int64_t{150}));
    ASSERT_TRUE(ids.ok());
    ASSERT_EQ(ids->size(), 1u) << "workers=" << workers;
    EXPECT_EQ((*ids)[0].partition, 2u) << "workers=" << workers;
  }
}

TEST_F(ExecTest, SelectByValueCountersPopulated) {
  auto table = MakeAgedOrders();
  for (uint32_t workers : {0u, 4u}) {
    table->set_exec_options(ExecOptions{workers});
    table->UnloadAll();

    // Unindexed string column: served by data-vector scans.
    ExecContext scan_ctx;
    auto rows =
        table->SelectByValue("status", Value(std::string("S3")), {}, &scan_ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 60u);
    auto s = scan_ctx.stats.snapshot();
    EXPECT_EQ(s.partitions_visited, 3u) << "workers=" << workers;
    EXPECT_GT(s.pages_pinned, 0u) << "workers=" << workers;
    EXPECT_GT(s.pages_read, 0u) << "workers=" << workers;
    EXPECT_GT(s.bytes_read, 0u) << "workers=" << workers;
    EXPECT_GT(s.rows_scanned, 0u) << "workers=" << workers;
    EXPECT_GT(s.vector_scans, 0u) << "workers=" << workers;

    // Indexed pk column: served by inverted-index lookups.
    ExecContext idx_ctx;
    auto row =
        table->SelectByValue("id", OrderRow(42, 0, "", 0)[0], {}, &idx_ctx);
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->rows.size(), 1u);
    EXPECT_GT(idx_ctx.stats.snapshot().index_lookups, 0u)
        << "workers=" << workers;
  }
}

TEST_F(ExecTest, SelectRangeCountersPopulated) {
  auto table = MakeAgedOrders();
  for (uint32_t workers : {0u, 4u}) {
    table->set_exec_options(ExecOptions{workers});
    table->UnloadAll();
    ExecContext ctx;
    auto rows = table->SelectRange("aging_date", Value(int64_t{80}),
                                   Value(int64_t{220}), {}, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 141u);
    auto s = ctx.stats.snapshot();
    EXPECT_EQ(s.partitions_visited, 3u) << "workers=" << workers;
    EXPECT_GT(s.pages_pinned, 0u) << "workers=" << workers;
    EXPECT_GT(s.rows_scanned, 0u) << "workers=" << workers;
  }
}

TEST_F(ExecTest, SelectWhereCountersPopulated) {
  auto table = MakeAgedOrders();
  for (uint32_t workers : {0u, 4u}) {
    table->set_exec_options(ExecOptions{workers});
    table->UnloadAll();
    ExecContext ctx;
    auto rows = table->SelectWhere(
        {Predicate::Eq("status", Value(std::string("S2"))),
         Predicate::Between("aging_date", Value(int64_t{0}),
                            Value(int64_t{299}))},
        {}, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_EQ(rows->rows.size(), 60u);
    auto s = ctx.stats.snapshot();
    EXPECT_EQ(s.partitions_visited, 3u) << "workers=" << workers;
    EXPECT_GT(s.pages_pinned, 0u) << "workers=" << workers;
    EXPECT_GT(s.rows_scanned, 0u) << "workers=" << workers;
  }
}

TEST_F(ExecTest, ExpiredDeadlineCancelsQueryInBothModes) {
  auto table = MakeAgedOrders();
  for (uint32_t workers : {0u, 4u}) {
    table->set_exec_options(ExecOptions{workers});
    ExecContext ctx;
    ctx.deadline = ExecContext::Clock::now() - std::chrono::seconds(1);
    auto rows =
        table->SelectByValue("status", Value(std::string("S3")), {}, &ctx);
    ASSERT_FALSE(rows.ok()) << "workers=" << workers;
    EXPECT_TRUE(rows.status().IsDeadlineExceeded()) << "workers=" << workers;
  }
}

TEST_F(ExecTest, ZeroWorkerOptionKeepsSerialExecutor) {
  Table table(OrdersSchema("serial"), storage_.get(), rm_.get(),
              ExecOptions{/*worker_threads=*/0});
  EXPECT_EQ(table.exec_options().worker_threads, 0u);
  Table par(OrdersSchema("par"), storage_.get(), rm_.get(),
            ExecOptions{/*worker_threads=*/2});
  EXPECT_EQ(par.exec_options().worker_threads, 2u);
}

}  // namespace
}  // namespace payg
