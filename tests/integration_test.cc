// Cross-module integration, concurrency-under-eviction, fault injection,
// and a randomized reference-model equivalence suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>

#include "common/random.h"
#include "core/column_store.h"
#include "workload/erp.h"

namespace payg {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_integration_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  ColumnStoreOptions Options() {
    ColumnStoreOptions options;
    options.directory = dir_;
    options.storage.page_size = 8192;
    options.storage.dict_page_size = 16 * 1024;
    return options;
  }

  std::string dir_;
};

TableSchema KvSchema(const std::string& name, bool paged) {
  TableSchema schema;
  schema.name = name;
  schema.columns.push_back({"k", ValueType::kString, paged, true, true});
  schema.columns.push_back({"v", ValueType::kInt64, paged, false, false});
  schema.columns.push_back({"tag", ValueType::kString, paged, false, false});
  return schema;
}

std::vector<Value> KvRow(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "K%06d", i);
  return {Value(std::string(buf)), Value(int64_t{i}),
          Value("tag_" + std::to_string(i % 7))};
}

// ---------------------------------------------------------------------------
// IN-list and prefix queries
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, InListQueries) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 300; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  // A few rows stay in the delta.
  for (int i = 300; i < 320; ++i) {
    ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  }

  std::vector<Value> probes{Value(int64_t{5}), Value(int64_t{150}),
                            Value(int64_t{310}), Value(int64_t{9999})};
  auto count = (*table)->CountIn("v", probes);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 3u);  // 9999 does not exist
  auto rows = (*table)->SelectIn("v", probes, {"k", "v"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 3u);
  std::vector<int64_t> got;
  for (const auto& row : rows->rows) got.push_back(row[1].AsInt64());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<int64_t>{5, 150, 310}));

  // IN on the string tag column: tags repeat, counts add up.
  auto tag_count = (*table)->CountIn(
      "tag", {Value(std::string("tag_0")), Value(std::string("tag_3"))});
  ASSERT_TRUE(tag_count.ok());
  uint64_t expect = 0;
  for (int i = 0; i < 320; ++i) {
    if (i % 7 == 0 || i % 7 == 3) ++expect;
  }
  EXPECT_EQ(*tag_count, expect);
}

TEST_F(IntegrationTest, PrefixQueries) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 250; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  for (int i = 250; i < 260; ++i) {
    ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  }

  // K00012 matches K000120..K000129.
  auto count = (*table)->CountPrefix("k", "K00012");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 10u);
  auto rows = (*table)->SelectPrefix("k", "K00025", {"v"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 10u);  // 250..259, all in the delta
  auto none = (*table)->CountPrefix("k", "Z");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
  auto all = (*table)->CountPrefix("k", "");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, 260u);
  // Prefix on a numeric column is rejected.
  EXPECT_FALSE((*table)->CountPrefix("v", "1").ok());
}

// ---------------------------------------------------------------------------
// Conjunctive predicates (AND of several columns)
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, ConjunctiveQueriesMatchScalarEvaluation) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 400; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  for (int i = 400; i < 450; ++i) {
    ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());  // delta portion
  }

  // v BETWEEN 100 AND 430 AND tag = 'tag_2'
  std::vector<Predicate> conjuncts{
      Predicate::Between("v", Value(int64_t{100}), Value(int64_t{430})),
      Predicate::Eq("tag", Value(std::string("tag_2")))};
  auto count = (*table)->CountWhere(conjuncts);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  uint64_t expect = 0;
  for (int i = 100; i <= 430; ++i) {
    if (i % 7 == 2) ++expect;
  }
  EXPECT_EQ(*count, expect);

  auto rows = (*table)->SelectWhere(conjuncts, {"v"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), expect);
  for (const auto& row : rows->rows) {
    int64_t v = row[0].AsInt64();
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 430);
    EXPECT_EQ(v % 7, 2);
  }

  // Three conjuncts including a prefix and an IN-list.
  std::vector<Predicate> three{
      Predicate::Prefix("k", "K0001"),  // rows 100..199
      Predicate::In("tag", {Value(std::string("tag_1")),
                            Value(std::string("tag_5"))}),
      Predicate::Between("v", Value(int64_t{120}), Value(int64_t{180}))};
  auto c3 = (*table)->CountWhere(three);
  ASSERT_TRUE(c3.ok());
  expect = 0;
  for (int i = 120; i <= 180; ++i) {
    if (i % 7 == 1 || i % 7 == 5) ++expect;
  }
  EXPECT_EQ(*c3, expect);

  // Conjunct order must not change the result.
  std::reverse(three.begin(), three.end());
  auto c3r = (*table)->CountWhere(three);
  ASSERT_TRUE(c3r.ok());
  EXPECT_EQ(*c3r, expect);

  // Empty conjunct list is rejected; unknown column is rejected.
  EXPECT_FALSE((*table)->CountWhere({}).ok());
  EXPECT_FALSE(
      (*table)->CountWhere({Predicate::Eq("zzz", Value(int64_t{1}))}).ok());
}

// ---------------------------------------------------------------------------
// Delta inverted index
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, DeltaIndexAnswersWithoutScan) {
  DeltaFragment delta(ValueType::kInt64);
  delta.EnableIndex();
  EXPECT_TRUE(delta.has_index());
  for (int i = 0; i < 1000; ++i) {
    delta.Append(Value(int64_t{i % 13}));
  }
  std::vector<RowPos> rows;
  delta.FindRows(Value(int64_t{4}), &rows);
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < 1000; ++r) {
    if (r % 13 == 4) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
  // Clear keeps the index enabled and consistent for reuse.
  delta.Clear();
  delta.Append(Value(int64_t{7}));
  rows.clear();
  delta.FindRows(Value(int64_t{7}), &rows);
  EXPECT_EQ(rows, (std::vector<RowPos>{0}));
}

TEST_F(IntegrationTest, IndexedAndUnindexedDeltaAgree) {
  DeltaFragment indexed(ValueType::kString), plain(ValueType::kString);
  indexed.EnableIndex();
  Random rng(77);
  for (int i = 0; i < 500; ++i) {
    Value v(std::string("s" + std::to_string(rng.Uniform(20))));
    indexed.Append(v);
    plain.Append(v);
  }
  for (int probe = 0; probe < 20; ++probe) {
    Value v(std::string("s" + std::to_string(probe)));
    std::vector<RowPos> a, b;
    indexed.FindRows(v, &a);
    plain.FindRows(v, &b);
    EXPECT_EQ(a, b) << "probe " << probe;
  }
}

// ---------------------------------------------------------------------------
// Concurrency under aggressive eviction
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, ConcurrentQueriesUnderEvictionPressure) {
  auto options = Options();
  // Pool so small that pages churn constantly while queries run.
  options.paged_pool_limits = {32 * 1024, 64 * 1024};
  auto store = ColumnStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  (*table)->UnloadAll();

  std::atomic<int> failures{0};
  auto worker = [&](int seed) {
    Random rng(seed);
    for (int q = 0; q < 150; ++q) {
      int i = static_cast<int>(rng.Uniform(3000));
      auto r = (*table)->SelectByValue("k", KvRow(i)[0], {"v", "tag"});
      if (!r.ok() || r->rows.size() != 1 ||
          r->rows[0][0].AsInt64() != i ||
          r->rows[0][1].AsString() != "tag_" + std::to_string(i % 7)) {
        ++failures;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, 1000 + t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The proactive sweeper was actually exercising the pool meanwhile.
  (*store)->resource_manager().SweepNow();
  EXPECT_LE((*store)->resource_manager().pool_bytes(PoolId::kPagedPool),
            options.paged_pool_limits.upper);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST_F(IntegrationTest, CorruptDataVectorPageSurfacesAsCorruption) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  (*table)->UnloadAll();

  // Flip bytes in the middle of the v-column data vector chain.
  std::string victim;
  for (auto& e : std::filesystem::directory_iterator(dir_)) {
    std::string f = e.path().filename().string();
    if (f.find("_c1_") != std::string::npos && f.size() > 3 &&
        f.substr(f.size() - 3) == ".dv") {
      victim = e.path().string();
    }
  }
  ASSERT_FALSE(victim.empty());
  {
    FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 8192 + 200, SEEK_SET), 0);  // page 1 payload
    for (int i = 0; i < 16; ++i) std::fputc(0x5A, f);
    std::fclose(f);
  }

  // A full scan over the corrupted column must fail loudly, not return
  // wrong data.
  auto r = (*table)->CountByValue("v", Value(int64_t{123}));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption()) << r.status().ToString();
}

TEST_F(IntegrationTest, TruncatedChainSurfacesAsError) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(KvSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 2000; ++i) ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
  ASSERT_TRUE((*table)->MergeAll().ok());
  (*table)->UnloadAll();

  std::string victim;
  for (auto& e : std::filesystem::directory_iterator(dir_)) {
    std::string f = e.path().filename().string();
    if (f.find("_c1_") != std::string::npos && f.size() > 3 &&
        f.substr(f.size() - 3) == ".dv") {
      victim = e.path().string();
    }
  }
  ASSERT_FALSE(victim.empty());
  std::filesystem::resize_file(victim, 8192);  // only the meta page remains

  auto r = (*table)->CountByValue("v", Value(int64_t{42}));
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Randomized reference-model equivalence
// ---------------------------------------------------------------------------

// A naive row-store model of the same table.
struct ReferenceModel {
  struct Row {
    std::string k;
    int64_t v;
    std::string tag;
  };
  std::vector<Row> rows;

  uint64_t CountV(int64_t v) const {
    uint64_t n = 0;
    for (const auto& r : rows) n += r.v == v;
    return n;
  }
  uint64_t CountRangeV(int64_t lo, int64_t hi) const {
    uint64_t n = 0;
    for (const auto& r : rows) n += r.v >= lo && r.v <= hi;
    return n;
  }
  double SumRangeByK(const std::string& lo, const std::string& hi) const {
    double s = 0;
    for (const auto& r : rows) {
      if (r.k >= lo && r.k <= hi) s += static_cast<double>(r.v);
    }
    return s;
  }
};

class ReferenceModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReferenceModelTest, RandomOpsMatchModel) {
  std::string dir = ::testing::TempDir() + "/payg_model_" +
                    std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  ColumnStoreOptions options;
  options.directory = dir;
  options.storage.page_size = 8192;
  options.storage.dict_page_size = 16 * 1024;
  auto store = ColumnStore::Open(options);
  ASSERT_TRUE(store.ok());
  // Odd seeds use page loadable columns, even seeds fully resident: the
  // model must hold for both.
  auto table =
      (*store)->CreateTable(KvSchema("t", GetParam() % 2 == 1));
  ASSERT_TRUE(table.ok());

  Random rng(GetParam());
  ReferenceModel model;
  int next_key = 0;
  for (int step = 0; step < 400; ++step) {
    uint64_t op = rng.Uniform(10);
    if (op < 6 || model.rows.empty()) {
      // Insert.
      int i = next_key++;
      ASSERT_TRUE((*table)->Insert(KvRow(i)).ok());
      model.rows.push_back(
          {KvRow(i)[0].AsString(), i, "tag_" + std::to_string(i % 7)});
    } else if (op < 7) {
      // Merge.
      ASSERT_TRUE((*table)->MergeAll().ok());
    } else if (op < 8 && !model.rows.empty()) {
      // Point count on v.
      int64_t v = model.rows[rng.Uniform(model.rows.size())].v;
      auto got = (*table)->CountByValue("v", Value(v));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, model.CountV(v)) << "step " << step;
    } else if (op < 9) {
      // Range count on v.
      int64_t lo = static_cast<int64_t>(rng.Uniform(next_key + 1));
      int64_t hi = lo + static_cast<int64_t>(rng.Uniform(50));
      auto got = (*table)->SelectRange("v", Value(lo), Value(hi), {"v"});
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got->rows.size(), model.CountRangeV(lo, hi))
          << "step " << step;
    } else {
      // Sum over a pk range.
      int a = static_cast<int>(rng.Uniform(next_key + 1));
      int b = a + static_cast<int>(rng.Uniform(40));
      std::string lo = KvRow(a)[0].AsString();
      std::string hi = KvRow(b)[0].AsString();
      auto got = (*table)->SumRange("k", Value(lo), Value(hi), "v");
      ASSERT_TRUE(got.ok());
      EXPECT_DOUBLE_EQ(*got, model.SumRangeByK(lo, hi)) << "step " << step;
    }
  }
  // Final full verification.
  ASSERT_TRUE((*table)->MergeAll().ok());
  for (int i = 0; i < next_key; i += std::max(1, next_key / 37)) {
    auto r = (*table)->SelectByValue("k", KvRow(i)[0], {"v"});
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].AsInt64(), i);
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceModelTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace payg
