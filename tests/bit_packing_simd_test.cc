#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "encoding/bit_packing.h"
#include "encoding/packed_scan_internal.h"
#include "encoding/simd_dispatch.h"
#include "encoding/types.h"

namespace payg {
namespace {

// Property tests: every SIMD tier available in this process must produce
// byte-identical output to the scalar reference kernels, for every bit width
// 1..32, over ranges that hit the unaligned head/tail paths, the vector
// safe-limit cutoff, and chunk-aligned sub-buffers (the paged page-decode
// shape). CI runs this binary twice — once as built and once with
// PAYG_FORCE_SCALAR=1 — so both dispatch outcomes stay covered.

struct Tier {
  SimdLevel level;
  const PackedKernels* kernels;
};

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    const PackedKernels* k = KernelsFor(level);
    if (k != nullptr) tiers.push_back(Tier{level, k});
  }
  return tiers;
}

// Random values exercising the full width: a mix of uniform values, all-ones,
// and zero runs.
std::vector<ValueId> MakeValues(uint32_t bits, uint64_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const uint64_t mask = LowMask(bits);
  std::vector<ValueId> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    switch (rng() % 8) {
      case 0:
        values[i] = static_cast<ValueId>(mask);
        break;
      case 1:
        values[i] = 0;
        break;
      default:
        values[i] = static_cast<ValueId>(rng() & mask);
    }
  }
  return values;
}

// Ranges covering: full buffer, empty, head/tail misalignment in every
// residue class, and ranges ending near the buffer end (vector safe-limit
// cutoff).
std::vector<std::pair<uint64_t, uint64_t>> MakeRanges(uint64_t n,
                                                      uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {0, n}, {0, 0}, {n, n}, {n / 2, n / 2 + 1}, {n - 1, n}, {0, 1}};
  for (uint64_t r = 0; r < 64; ++r) {
    uint64_t a = rng() % (n + 1);
    uint64_t b = rng() % (n + 1);
    if (a > b) std::swap(a, b);
    ranges.emplace_back(a, b);
  }
  // Every (from % 8, near-end) combination: the vector loop's scalar head
  // runs 0..7 iterations and the tail is cut by the overread safe limit.
  for (uint64_t h = 0; h < 8; ++h) {
    for (uint64_t t = 0; t < 12 && h + t <= n; ++t) {
      ranges.emplace_back(h, n - t);
    }
  }
  return ranges;
}

class PackedSimdTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedSimdTest, MGetMatchesScalarOnAllTiers) {
  const uint32_t bits = GetParam();
  const uint64_t n = 3000;
  PackedVector pv(bits);
  for (ValueId v : MakeValues(bits, n, 17 * bits)) pv.Append(v);

  constexpr uint32_t kCanary = 0xDEADBEEFu;
  for (const auto& [from, to] : MakeRanges(n, 100 + bits)) {
    std::vector<uint32_t> expect(to - from + 16, kCanary);
    std::vector<uint32_t> got(to - from + 16, kCanary);
    PackedMGetScalar(pv.words(), bits, from, to, expect.data());
    for (const Tier& tier : AvailableTiers()) {
      std::fill(got.begin(), got.end(), kCanary);
      tier.kernels->mget[bits](pv.words(), from, to, got.data());
      ASSERT_EQ(got, expect) << "tier=" << SimdLevelName(tier.level)
                             << " bits=" << bits << " [" << from << ", " << to
                             << ")";
    }
  }
}

TEST_P(PackedSimdTest, SearchKernelsMatchScalarOnAllTiers) {
  const uint32_t bits = GetParam();
  const uint64_t n = 3000;
  const uint64_t mask = LowMask(bits);
  const auto values = MakeValues(bits, n, 23 * bits);
  PackedVector pv(bits);
  for (ValueId v : values) pv.Append(v);

  std::mt19937_64 rng(900 + bits);
  const RowPos base = 1000000;
  for (const auto& [from, to] : MakeRanges(n, 200 + bits)) {
    // Eq: a value known to occur in range (when non-empty) and a random one.
    std::vector<uint64_t> probes = {rng() & mask};
    if (from < to) probes.push_back(values[from + rng() % (to - from)]);
    for (uint64_t vid : probes) {
      std::vector<RowPos> expect, got;
      PackedSearchEqScalar(pv.words(), bits, from, to, vid, base, &expect);
      for (const Tier& tier : AvailableTiers()) {
        got.clear();
        tier.kernels->search_eq[bits](pv.words(), from, to, vid, base, &got);
        ASSERT_EQ(got, expect) << "eq tier=" << SimdLevelName(tier.level)
                               << " bits=" << bits << " vid=" << vid << " ["
                               << from << ", " << to << ")";
      }
    }

    // Range: random band (sometimes empty, sometimes full-width).
    uint64_t lo = rng() & mask;
    uint64_t hi = rng() & mask;
    if (lo > hi) std::swap(lo, hi);
    std::vector<RowPos> expect, got;
    PackedSearchRangeScalar(pv.words(), bits, from, to, lo, hi, base,
                            &expect);
    for (const Tier& tier : AvailableTiers()) {
      got.clear();
      tier.kernels->search_range[bits](pv.words(), from, to, lo, hi, base,
                                       &got);
      ASSERT_EQ(got, expect) << "range tier=" << SimdLevelName(tier.level)
                             << " bits=" << bits << " [" << lo << ", " << hi
                             << "]";
    }

    // In: random sorted set, including values present in the data.
    std::vector<ValueId> vids;
    for (int i = 0; i < 9; ++i) {
      vids.push_back(static_cast<ValueId>(rng() & mask));
    }
    if (from < to) vids.push_back(values[from + rng() % (to - from)]);
    std::sort(vids.begin(), vids.end());
    vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
    expect.clear();
    PackedSearchInScalar(pv.words(), bits, from, to, vids, base, &expect);
    for (const Tier& tier : AvailableTiers()) {
      got.clear();
      tier.kernels->search_in[bits](pv.words(), from, to, vids, base, &got);
      ASSERT_EQ(got, expect) << "in tier=" << SimdLevelName(tier.level)
                             << " bits=" << bits;
    }
  }
}

// The paged data vector decodes single pages by pointing the kernels at a
// chunk-aligned sub-buffer. Replay that shape: scan chunk suffixes so the
// word pointer itself moves (the "page boundary" case).
TEST_P(PackedSimdTest, ChunkAlignedSubBufferMatchesScalar) {
  const uint32_t bits = GetParam();
  const uint64_t n = 2048;  // 32 chunks
  PackedVector pv(bits);
  for (ValueId v : MakeValues(bits, n, 31 * bits)) pv.Append(v);

  std::mt19937_64 rng(300 + bits);
  for (uint64_t chunk : {uint64_t{1}, uint64_t{7}, uint64_t{30}}) {
    const uint64_t* sub = pv.words() + chunk * ChunkWords(bits);
    const uint64_t sub_n = n - chunk * kChunkValues;
    for (int rep = 0; rep < 8; ++rep) {
      uint64_t a = rng() % (sub_n + 1);
      uint64_t b = rng() % (sub_n + 1);
      if (a > b) std::swap(a, b);
      std::vector<uint32_t> expect(b - a), got(b - a);
      PackedMGetScalar(sub, bits, a, b, expect.data());
      for (const Tier& tier : AvailableTiers()) {
        tier.kernels->mget[bits](sub, a, b, got.data());
        ASSERT_EQ(got, expect)
            << "tier=" << SimdLevelName(tier.level) << " bits=" << bits
            << " chunk=" << chunk << " [" << a << ", " << b << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackedSimdTest,
                         ::testing::Range(1u, 33u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Bits" + std::to_string(info.param);
                         });

// Satellite regression: PackedGet at bits=31 — the width class whose
// unaligned 8-byte window has the thinnest margin — must round-trip every
// shift residue (31 is odd, so idx*31 mod 8 cycles through all residues and
// idx*31 mod 64 crosses word boundaries in every alignment).
TEST(PackedGetTest, TwoWordFallbackRoundTripsAtBits31) {
  const uint32_t bits = 31;
  const uint64_t n = 4096;
  const auto values = MakeValues(bits, n, 424242);
  PackedVector pv(bits);
  for (ValueId v : values) pv.Append(v);
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(PackedGet(pv.words(), bits, i), values[i]) << "idx=" << i;
    // And the aligned two-word decode the SIMD head/tail paths use.
    ASSERT_EQ(detail::GetOneAligned<31>(pv.words(), i), values[i])
        << "idx=" << i;
  }
}

TEST(SimdDispatchTest, ForceScalarPinsScalarTier) {
  const char* force = std::getenv("PAYG_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1') {
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  } else {
    // Whatever was picked must be a tier this process can actually run.
    EXPECT_NE(KernelsFor(ActiveSimdLevel()), nullptr);
  }
  EXPECT_EQ(&ActiveKernels(), KernelsFor(ActiveSimdLevel()));
}

TEST(SimdDispatchTest, ScalarTierAlwaysPresent) {
  const PackedKernels* k = KernelsFor(SimdLevel::kScalar);
  ASSERT_NE(k, nullptr);
  for (uint32_t bits = 1; bits <= 32; ++bits) {
    EXPECT_NE(k->mget[bits], nullptr);
    EXPECT_NE(k->search_eq[bits], nullptr);
    EXPECT_NE(k->search_range[bits], nullptr);
    EXPECT_NE(k->search_in[bits], nullptr);
  }
}

}  // namespace
}  // namespace payg
