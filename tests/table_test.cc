#include <gtest/gtest.h>

#include <filesystem>

#include "buffer/resource_manager.h"
#include "common/random.h"
#include "table/table.h"

namespace payg {
namespace {

TableSchema OrdersSchema(bool paged_cold_columns,
                         const std::string& name = "orders") {
  TableSchema schema;
  schema.name = name;
  schema.columns.push_back({"id", ValueType::kString, paged_cold_columns,
                            /*with_index=*/true, /*primary_key=*/true});
  schema.columns.push_back(
      {"aging_date", ValueType::kInt64, paged_cold_columns, false, false});
  schema.columns.push_back(
      {"status", ValueType::kString, paged_cold_columns, false, false});
  schema.columns.push_back(
      {"amount", ValueType::kInt64, paged_cold_columns, false, false});
  schema.temperature_column = 1;
  return schema;
}

std::vector<Value> OrderRow(uint64_t id, int64_t date,
                            const std::string& status, int64_t amount) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ORD%08llu",
                static_cast<unsigned long long>(id));
  return {Value(std::string(buf)), Value(date), Value(status), Value(amount)};
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_table_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 8192;
    opts.dict_page_size = 8192;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Table> MakeOrders(bool paged, int rows,
                                    const std::string& name = "orders") {
    auto table = std::make_unique<Table>(OrdersSchema(paged, name),
                                         storage_.get(), rm_.get());
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(table
                      ->Insert(OrderRow(i, /*date=*/i, "S" + std::to_string(i % 5),
                                        i * 100))
                      .ok());
    }
    return table;
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

TEST_F(TableTest, InsertsLandInDelta) {
  auto table = MakeOrders(false, 10);
  EXPECT_EQ(table->row_count(), 10u);
  EXPECT_EQ(table->hot()->delta_row_count(), 10u);
  EXPECT_EQ(table->hot()->main_row_count(), 0u);
}

TEST_F(TableTest, InsertValidatesShape) {
  auto table = MakeOrders(false, 0);
  EXPECT_FALSE(table->Insert({Value(int64_t{1})}).ok());  // wrong width
  EXPECT_FALSE(table
                   ->Insert({Value(int64_t{1}), Value(int64_t{2}),
                             Value(int64_t{3}), Value(int64_t{4})})
                   .ok());  // wrong type in col 0
}

TEST_F(TableTest, QueriesSeeDeltaRows) {
  auto table = MakeOrders(false, 100);
  auto count = table->CountByValue("status", Value(std::string("S3")));
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 20u);
  auto rows = table->SelectByValue("id", OrderRow(42, 0, "", 0)[0], {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][3].AsInt64(), 4200);
}

TEST_F(TableTest, MergeMovesDeltaToMain) {
  auto table = MakeOrders(false, 100);
  ASSERT_TRUE(table->MergeAll().ok());
  EXPECT_EQ(table->hot()->delta_row_count(), 0u);
  EXPECT_EQ(table->hot()->main_row_count(), 100u);
  // Queries still see everything.
  auto count = table->CountByValue("status", Value(std::string("S3")));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
  auto rows = table->SelectByValue("id", OrderRow(42, 0, "", 0)[0], {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][3].AsInt64(), 4200);
}

TEST_F(TableTest, QueriesSpanMainAndDelta) {
  auto table = MakeOrders(false, 50);
  ASSERT_TRUE(table->MergeAll().ok());
  // New rows after the merge land in the delta again.
  for (int i = 50; i < 80; ++i) {
    ASSERT_TRUE(
        table->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
            .ok());
  }
  auto count = table->CountByValue("status", Value(std::string("S0")));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 16u);  // 10 in main (0..49), 6 in delta (50..79)
}

TEST_F(TableTest, SecondMergeCombinesOldMainAndNewDelta) {
  auto table = MakeOrders(false, 50);
  ASSERT_TRUE(table->MergeAll().ok());
  for (int i = 50; i < 80; ++i) {
    ASSERT_TRUE(
        table->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
            .ok());
  }
  ASSERT_TRUE(table->MergeAll().ok());
  EXPECT_EQ(table->hot()->main_row_count(), 80u);
  for (int id : {0, 49, 50, 79}) {
    auto rows = table->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), 1u) << "id " << id;
    EXPECT_EQ(rows->rows[0][3].AsInt64(), id * 100);
  }
}

TEST_F(TableTest, RangeQueries) {
  auto table = MakeOrders(false, 200);
  ASSERT_TRUE(table->MergeAll().ok());
  auto rows = table->SelectRange("id", OrderRow(10, 0, "", 0)[0],
                                 OrderRow(19, 0, "", 0)[0], {"amount"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 10u);
  auto sum = table->SumRange("id", OrderRow(10, 0, "", 0)[0],
                             OrderRow(19, 0, "", 0)[0], "amount");
  ASSERT_TRUE(sum.ok());
  double expect = 0;
  for (int i = 10; i <= 19; ++i) expect += i * 100;
  EXPECT_DOUBLE_EQ(*sum, expect);
}

TEST_F(TableTest, RangeQuerySpansMainAndDelta) {
  auto table = MakeOrders(false, 30);
  ASSERT_TRUE(table->MergeAll().ok());
  for (int i = 30; i < 40; ++i) {
    ASSERT_TRUE(table->Insert(OrderRow(i, i, "S0", i * 100)).ok());
  }
  auto sum = table->SumRange("id", OrderRow(25, 0, "", 0)[0],
                             OrderRow(34, 0, "", 0)[0], "amount");
  ASSERT_TRUE(sum.ok());
  double expect = 0;
  for (int i = 25; i <= 34; ++i) expect += i * 100;
  EXPECT_DOUBLE_EQ(*sum, expect);
}

TEST_F(TableTest, RowIdsByValue) {
  auto table = MakeOrders(false, 20);
  ASSERT_TRUE(table->MergeAll().ok());
  auto ids = table->RowIdsByValue("id", OrderRow(7, 0, "", 0)[0]);
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ((*ids)[0].partition, 0u);
}

TEST_F(TableTest, AgingMovesRowsToColdPartition) {
  auto table = MakeOrders(false, 100);
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->AddColdPartition().ok());
  // Age rows with date <= 39 (the 40 oldest).
  auto moved = table->AgeRows(Value(int64_t{39}));
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_EQ(*moved, 40u);
  // The move is ordinary DML: rows sit in the cold delta, hot rows are
  // deletion-marked, and total visible rows stay constant.
  EXPECT_EQ(table->partition(1)->delta_row_count(), 40u);
  EXPECT_EQ(table->hot()->visible_row_count(), 60u);
  EXPECT_EQ(table->visible_row_count(), 100u);
  // Queries still return exactly one row per id, even mid-move.
  auto rows = table->SelectByValue("id", OrderRow(5, 0, "", 0)[0], {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][3].AsInt64(), 500);
}

TEST_F(TableTest, AgingThenMergePersistsColdMain) {
  auto table = MakeOrders(true, 100);  // page loadable columns
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->AddColdPartition().ok());
  ASSERT_TRUE(table->AgeRows(Value(int64_t{49})).ok());
  ASSERT_TRUE(table->MergeAll().ok());
  // Hot kept 50 visible rows, cold got 50, deltas are empty.
  EXPECT_EQ(table->hot()->main_row_count(), 50u);
  EXPECT_EQ(table->partition(1)->main_row_count(), 50u);
  EXPECT_EQ(table->partition(1)->delta_row_count(), 0u);
  // Cold rows are served from page loadable main fragments.
  EXPECT_TRUE(table->partition(1)->main(0)->is_paged());
  for (int id : {0, 49, 50, 99}) {
    auto rows = table->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    ASSERT_EQ(rows->rows.size(), 1u) << "id " << id;
    EXPECT_EQ(rows->rows[0][3].AsInt64(), id * 100);
  }
  // Cold pages go to the cold paged pool.
  EXPECT_GT(rm_->pool_bytes(PoolId::kColdPagedPool), 0u);
}

TEST_F(TableTest, AgingRequiresColdPartition) {
  auto table = MakeOrders(false, 10);
  auto moved = table->AgeRows(Value(int64_t{5}));
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TableTest, AgingRequiresTemperatureColumn) {
  TableSchema schema;
  schema.name = "noage";
  schema.columns.push_back({"k", ValueType::kInt64, false, false, true});
  Table table(schema, storage_.get(), rm_.get());
  ASSERT_TRUE(table.AddColdPartition().ok());
  auto moved = table.AgeRows(Value(int64_t{5}));
  EXPECT_FALSE(moved.ok());
}

TEST_F(TableTest, DeletedRowsAreInvisibleAndCompactedByMerge) {
  auto table = MakeOrders(false, 10);
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->hot()->MarkDeleted(3).ok());
  ASSERT_TRUE(table->hot()->MarkDeleted(7).ok());
  EXPECT_EQ(table->visible_row_count(), 8u);
  auto rows = table->SelectByValue("id", OrderRow(3, 0, "", 0)[0], {});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->rows.empty());
  ASSERT_TRUE(table->MergeAll().ok());
  EXPECT_EQ(table->hot()->main_row_count(), 8u);
  EXPECT_EQ(table->visible_row_count(), 8u);
  // Survivors keep their values.
  auto r4 = table->SelectByValue("id", OrderRow(4, 0, "", 0)[0], {});
  ASSERT_TRUE(r4.ok());
  ASSERT_EQ(r4->rows.size(), 1u);
  EXPECT_EQ(r4->rows[0][3].AsInt64(), 400);
}

TEST_F(TableTest, PagedVariantAnswersSameAsBase) {
  auto base = MakeOrders(false, 300, "orders_b");
  auto paged = MakeOrders(true, 300, "orders_p");
  ASSERT_TRUE(base->MergeAll().ok());
  ASSERT_TRUE(paged->MergeAll().ok());
  Random rng(3);
  for (int i = 0; i < 20; ++i) {
    int id = static_cast<int>(rng.Uniform(300));
    auto a = base->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    auto b = paged->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->rows.size(), 1u);
    ASSERT_EQ(b->rows.size(), 1u);
    for (size_t c = 0; c < a->rows[0].size(); ++c) {
      EXPECT_TRUE(a->rows[0][c] == b->rows[0][c]);
    }
  }
}

TEST_F(TableTest, UnloadAllReleasesMemory) {
  auto table = MakeOrders(true, 500);
  ASSERT_TRUE(table->MergeAll().ok());
  auto rows = table->SelectByValue("id", OrderRow(100, 0, "", 0)[0], {});
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(table->ResidentBytes(), 0u);
  table->UnloadAll();
  EXPECT_EQ(table->ResidentBytes(), 0u);
  // Still queryable afterwards.
  auto again = table->SelectByValue("id", OrderRow(100, 0, "", 0)[0], {});
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->rows.size(), 1u);
}

TEST_F(TableTest, SelectColumnsSubset) {
  auto table = MakeOrders(false, 10);
  ASSERT_TRUE(table->MergeAll().ok());
  auto rows =
      table->SelectByValue("id", OrderRow(5, 0, "", 0)[0], {"amount", "status"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  ASSERT_EQ(rows->rows[0].size(), 2u);
  EXPECT_EQ(rows->rows[0][0].AsInt64(), 500);
  EXPECT_EQ(rows->rows[0][1].AsString(), "S0");
}

TEST_F(TableTest, UnknownColumnsAreRejected) {
  auto table = MakeOrders(false, 5);
  EXPECT_FALSE(table->CountByValue("nope", Value(int64_t{1})).ok());
  EXPECT_FALSE(
      table->SelectByValue("id", Value(std::string("x")), {"nope"}).ok());
  EXPECT_FALSE(table
                   ->SumRange("id", Value(std::string("a")),
                              Value(std::string("b")), "status")
                   .ok());  // SUM over string
}

TEST_F(TableTest, MergeVacuumsReplacedChains) {
  auto table = MakeOrders(true, 50, "vac");
  ASSERT_TRUE(table->MergeAll().ok());
  auto count_files = [&] {
    size_t n = 0;
    for (auto& e : std::filesystem::directory_iterator(dir_)) {
      if (e.path().filename().string().rfind("vac_", 0) == 0) ++n;
    }
    return n;
  };
  size_t after_first = count_files();
  ASSERT_GT(after_first, 0u);
  // More inserts and repeated merges must not accumulate chain files: each
  // merge replaces and vacuums the previous generation.
  for (int gen = 0; gen < 3; ++gen) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          table->Insert(OrderRow(1000 + gen * 10 + i, i, "S1", i)).ok());
    }
    ASSERT_TRUE(table->MergeAll().ok());
  }
  EXPECT_EQ(count_files(), after_first);
}

TEST_F(TableTest, DeferredIndexColumnThroughTable) {
  TableSchema schema;
  schema.name = "lazy";
  schema.columns.push_back({"k", ValueType::kString, true, true, true});
  schema.columns.push_back({.name = "v",
                            .type = ValueType::kInt64,
                            .page_loadable = true,
                            .with_index = true,
                            .primary_key = false,
                            .defer_index = true});
  Table table(schema, storage_.get(), rm_.get());
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%04d", i);
    ASSERT_TRUE(
        table.Insert({Value(std::string(buf)), Value(int64_t{i % 10})}).ok());
  }
  ASSERT_TRUE(table.MergeAll().ok());
  EXPECT_FALSE(table.hot()->main(1)->has_index());
  // The first value lookup triggers the workload-driven rebuild.
  auto count = table.CountByValue("v", Value(int64_t{3}));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 20u);
  EXPECT_TRUE(table.hot()->main(1)->has_index());
}

TEST_F(TableTest, MultipleColdPartitionsAgeIncrementally) {
  auto table = MakeOrders(true, 90);
  ASSERT_TRUE(table->MergeAll().ok());
  // First aging wave into cold partition 1.
  ASSERT_TRUE(table->AddColdPartition().ok());
  auto moved1 = table->AgeRows(Value(int64_t{29}));
  ASSERT_TRUE(moved1.ok());
  EXPECT_EQ(*moved1, 30u);
  ASSERT_TRUE(table->MergeAll().ok());
  // Second wave into a NEW cold partition (AgeRows targets the newest).
  ASSERT_TRUE(table->AddColdPartition().ok());
  auto moved2 = table->AgeRows(Value(int64_t{59}));
  ASSERT_TRUE(moved2.ok());
  EXPECT_EQ(*moved2, 30u);
  ASSERT_TRUE(table->MergeAll().ok());

  EXPECT_EQ(table->partition_count(), 3u);
  EXPECT_EQ(table->hot()->main_row_count(), 30u);
  EXPECT_EQ(table->partition(1)->main_row_count(), 30u);
  EXPECT_EQ(table->partition(2)->main_row_count(), 30u);
  // Every row remains reachable exactly once.
  for (int id = 0; id < 90; id += 7) {
    auto rows = table->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), 1u) << "id " << id;
  }
  // Re-aging with the same threshold moves nothing (already cold).
  auto moved3 = table->AgeRows(Value(int64_t{59}));
  ASSERT_TRUE(moved3.ok());
  EXPECT_EQ(*moved3, 0u);
}

TEST_F(TableTest, AgingMovesUnmergedDeltaRowsToo) {
  // Rows that are still in the hot delta when aging runs must move as well:
  // the aging predicate is evaluated across main AND delta (§4.2 — the move
  // is ordinary DML, independent of merge state).
  auto table = MakeOrders(true, 40);
  ASSERT_TRUE(table->MergeAll().ok());
  for (int i = 40; i < 60; ++i) {
    ASSERT_TRUE(
        table->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
            .ok());
  }
  ASSERT_TRUE(table->AddColdPartition().ok());
  // Threshold 49 covers 40 merged rows and 10 delta rows.
  auto moved = table->AgeRows(Value(int64_t{49}));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 50u);
  ASSERT_TRUE(table->MergeAll().ok());
  EXPECT_EQ(table->hot()->main_row_count(), 10u);
  EXPECT_EQ(table->partition(1)->main_row_count(), 50u);
  for (int id : {0, 39, 45, 49, 50, 59}) {
    auto rows = table->SelectByValue("id", OrderRow(id, 0, "", 0)[0], {});
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->rows.size(), 1u) << "id " << id;
    EXPECT_EQ(rows->rows[0][3].AsInt64(), id * 100);
  }
}

TEST_F(TableTest, SumRangeSkipsDeletedRows) {
  auto table = MakeOrders(false, 20);
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->hot()->MarkDeleted(5).ok());
  auto sum = table->SumRange("id", OrderRow(0, 0, "", 0)[0],
                             OrderRow(9, 0, "", 0)[0], "amount");
  ASSERT_TRUE(sum.ok());
  double expect = 0;
  for (int i = 0; i <= 9; ++i) {
    if (i != 5) expect += i * 100;
  }
  EXPECT_DOUBLE_EQ(*sum, expect);
}

TEST_F(TableTest, ColumnStatsView) {
  auto table = MakeOrders(true, 100);
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->AddColdPartition().ok());
  ASSERT_TRUE(table->AgeRows(Value(int64_t{49})).ok());
  ASSERT_TRUE(table->MergeAll().ok());

  auto stats = table->CollectColumnStats();
  // 2 partitions × 4 columns.
  ASSERT_EQ(stats.size(), 8u);
  uint64_t hot_rows = 0, cold_rows = 0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.table, "orders");
    EXPECT_EQ(s.delta_rows, 0u);  // merged
    if (s.partition == 0) {
      EXPECT_FALSE(s.cold);
      hot_rows = s.main_rows;
    } else {
      EXPECT_TRUE(s.cold);
      cold_rows = s.main_rows;
    }
    if (s.column == "id") EXPECT_TRUE(s.has_index);
    EXPECT_GT(s.dict_size, 0u);
  }
  EXPECT_EQ(hot_rows, 50u);
  EXPECT_EQ(cold_rows, 50u);

  // After a query, the touched columns report resident bytes.
  auto r = table->SelectByValue("id", OrderRow(10, 0, "", 0)[0], {"amount"});
  ASSERT_TRUE(r.ok());
  uint64_t resident = 0;
  for (const auto& s : table->CollectColumnStats()) {
    resident += s.resident_bytes;
  }
  EXPECT_GT(resident, 0u);
}

TEST_F(TableTest, BulkLoadMatchesInsertPath) {
  TableSchema schema;
  schema.name = "bulk";
  schema.columns.push_back({"k", ValueType::kInt64, false, true, true});
  schema.columns.push_back({"v", ValueType::kInt64, true, false, false});
  Table table(schema, storage_.get(), rm_.get());
  std::vector<Value> dict_k, dict_v;
  for (int64_t i = 0; i < 100; ++i) dict_k.emplace_back(i);
  for (int64_t i = 0; i < 10; ++i) dict_v.emplace_back(i * 5);
  std::vector<ValueId> vids_k, vids_v;
  for (ValueId i = 0; i < 100; ++i) {
    vids_k.push_back(i);
    vids_v.push_back(i % 10);
  }
  ASSERT_TRUE(table.hot()->BulkLoadColumn(0, dict_k, vids_k).ok());
  ASSERT_TRUE(table.hot()->BulkLoadColumn(1, dict_v, vids_v).ok());
  EXPECT_EQ(table.row_count(), 100u);
  auto rows = table.SelectByValue("k", Value(int64_t{42}), {"v"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt64(), (42 % 10) * 5);
}

// S25 multi-probe path: element i of Multi{Select,Count}ByValue must equal
// the i-th individual lookup, over a table with a paged main, a cold
// partition and live delta rows. The CI codec matrix re-runs this test
// with PAYG_FORCE_CODEC=plain/for/rle, which is what proves equivalence on
// all three codecs (the knob is parsed once per process).
TEST_F(TableTest, MultiSelectByValueMatchesIndividualLookups) {
  auto table = MakeOrders(true, 300);
  ASSERT_TRUE(table->MergeAll().ok());
  ASSERT_TRUE(table->AddColdPartition().ok());
  ASSERT_TRUE(table->AgeRows(Value(int64_t{99})).ok());
  ASSERT_TRUE(table->MergeAll().ok());
  // Fresh delta rows on top of both mains.
  for (int i = 300; i < 330; ++i) {
    ASSERT_TRUE(
        table->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
            .ok());
  }

  // Duplicates, absent values and an indexed unique column probe mix.
  std::vector<Value> probes;
  for (const char* s : {"S3", "S0", "S3", "S9", "S4", "S1", "S0"}) {
    probes.emplace_back(std::string(s));
  }
  auto multi = table->MultiSelectByValue("status", probes, {"id", "amount"});
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    auto single = table->SelectByValue("status", probes[i], {"id", "amount"});
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    EXPECT_EQ((*multi)[i], *single) << "probe " << i;
  }

  auto counts = table->MultiCountByValue("status", probes);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  ASSERT_EQ(counts->size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    auto single = table->CountByValue("status", probes[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*counts)[i], *single) << "probe " << i;
  }

  // The unique indexed column works through the same path.
  std::vector<Value> id_probes = {OrderRow(7, 0, "", 0)[0],
                                  OrderRow(310, 0, "", 0)[0],
                                  OrderRow(7, 0, "", 0)[0],
                                  Value(std::string("ORD99999999"))};
  auto by_id = table->MultiSelectByValue("id", id_probes, {"amount"});
  ASSERT_TRUE(by_id.ok()) << by_id.status().ToString();
  ASSERT_EQ((*by_id)[0].rows.size(), 1u);
  EXPECT_EQ((*by_id)[0].rows[0][0].AsInt64(), 700);
  ASSERT_EQ((*by_id)[1].rows.size(), 1u);
  EXPECT_EQ((*by_id)[1].rows[0][0].AsInt64(), 31000);
  EXPECT_EQ((*by_id)[2], (*by_id)[0]);
  EXPECT_TRUE((*by_id)[3].rows.empty());

  // A mistyped probe is rejected at the API boundary, not asserted deeper.
  auto bad = table->MultiCountByValue("status", {Value(int64_t{3})});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Empty probe set is a no-op, not an error.
  auto empty = table->MultiCountByValue("status", {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

}  // namespace
}  // namespace payg
