#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <functional>

#include "buffer/resource_manager.h"
#include "common/random.h"
#include "exec/exec_context.h"
#include "paged/fragment_factory.h"
#include "paged/page_cache.h"
#include "paged/paged_data_vector.h"
#include "paged/paged_dictionary.h"
#include "paged/paged_fragment.h"
#include "paged/paged_inverted_index.h"

namespace payg {
namespace {

class PagedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_paged_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 4096;        // tiny pages force multi-page structures
    opts.dict_page_size = 8192;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::vector<ValueId> RandomVids(uint64_t rows, uint64_t cardinality,
                                  uint64_t seed) {
    Random rng(seed);
    std::vector<ValueId> vids;
    vids.reserve(rows);
    for (uint64_t i = 0; i < rows; ++i) {
      vids.push_back(static_cast<ValueId>(rng.Uniform(cardinality)));
    }
    return vids;
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

// ---------------------------------------------------------------------------
// PagedDataVector
// ---------------------------------------------------------------------------

TEST_F(PagedTest, DataVectorSpansMultiplePages) {
  auto vids = RandomVids(100000, 1000, 1);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv1", vids);
  ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  EXPECT_EQ((*dv)->row_count(), vids.size());
  EXPECT_EQ((*dv)->bits(), 10u);
  EXPECT_GT((*dv)->data_page_count(), 3u);
}

TEST_F(PagedTest, DataVectorGetMatchesSource) {
  auto vids = RandomVids(50000, 300, 2);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv2", vids);
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  Random rng(3);
  for (int i = 0; i < 500; ++i) {
    RowPos r = static_cast<RowPos>(rng.Uniform(vids.size()));
    auto vid = it.Get(r);
    ASSERT_TRUE(vid.ok());
    EXPECT_EQ(*vid, vids[r]);
  }
  EXPECT_TRUE(it.Get(vids.size()).status().IsOutOfRange());
}

TEST_F(PagedTest, DataVectorMGetCrossesPageBoundaries) {
  auto vids = RandomVids(50000, 64, 4);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv3", vids);
  ASSERT_TRUE(dv.ok());
  uint64_t per_page = (*dv)->values_per_page();
  PagedDataVectorIterator it(dv->get());
  // Range straddling a page boundary.
  RowPos from = static_cast<RowPos>(per_page - 100);
  RowPos to = static_cast<RowPos>(per_page + 100);
  std::vector<ValueId> got;
  ASSERT_TRUE(it.MGet(from, to, &got).ok());
  ASSERT_EQ(got.size(), 200u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], vids[from + i]);
}

TEST_F(PagedTest, DataVectorLoadsOnlyNeededPages) {
  auto vids = RandomVids(100000, 1000, 5);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv4", vids);
  ASSERT_TRUE(dv.ok());
  // Fresh structure: nothing resident.
  EXPECT_EQ((*dv)->cache()->loaded_page_count(), 0u);
  PagedDataVectorIterator it(dv->get());
  ASSERT_TRUE(it.Get(10).ok());
  EXPECT_EQ((*dv)->cache()->loaded_page_count(), 1u);
  // A second read on the same page must not load another page.
  ASSERT_TRUE(it.Get(11).ok());
  EXPECT_EQ((*dv)->cache()->load_count(), 1u);
  // A far-away read loads exactly one more page.
  ASSERT_TRUE(it.Get(static_cast<RowPos>(vids.size() - 1)).ok());
  EXPECT_EQ((*dv)->cache()->load_count(), 2u);
}

TEST_F(PagedTest, PageCacheHitRatioHotVsCold) {
  auto vids = RandomVids(100000, 1000, 50);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv_hit", vids);
  ASSERT_TRUE(dv.ok());
  PageCache* cache = (*dv)->cache();
  const uint64_t hits0 = cache->hit_count();
  const uint64_t misses0 = cache->miss_count();

  const RowPos near = 10;
  const RowPos far = static_cast<RowPos>(vids.size() - 1);
  {
    PagedDataVectorIterator it(dv->get());
    // The iterator holds one pinned page, so alternating between two
    // far-apart rows forces one GetPage per switch. Cold pass: both pages
    // miss. Hot passes: both pages are resident, every switch hits.
    for (int round = 0; round < 5; ++round) {
      ASSERT_TRUE(it.Get(near).ok());
      ASSERT_TRUE(it.Get(far).ok());
    }
  }
  EXPECT_EQ(cache->miss_count() - misses0, 2u);
  EXPECT_EQ(cache->hit_count() - hits0, 8u);
  double hot_ratio =
      static_cast<double>(cache->hit_count() - hits0) /
      static_cast<double>((cache->hit_count() - hits0) +
                          (cache->miss_count() - misses0));
  EXPECT_DOUBLE_EQ(hot_ratio, 0.8);

  // Cold again: shrink the paged pool to nothing and sweep (the iterator and
  // its pin are gone), then re-read — the page must be loaded anew.
  rm_->SetPoolLimits(PoolId::kPagedPool, {/*lower=*/0, /*upper=*/1});
  rm_->SweepNow();
  EXPECT_EQ(cache->loaded_page_count(), 0u);
  {
    PagedDataVectorIterator it(dv->get());
    ASSERT_TRUE(it.Get(near).ok());
  }
  EXPECT_EQ(cache->miss_count() - misses0, 3u);
  EXPECT_EQ(cache->hit_count() - hits0, 8u);
}

TEST_F(PagedTest, DataVectorSearchMatchesScalar) {
  auto vids = RandomVids(30000, 50, 6);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv5", vids);
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 17, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 17u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);

  rows.clear();
  ASSERT_TRUE(it.SearchRange(1000, 20000, 10, 20, &rows).ok());
  expect.clear();
  for (RowPos r = 1000; r < 20000; ++r) {
    if (vids[r] >= 10 && vids[r] <= 20) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);

  rows.clear();
  ASSERT_TRUE(it.SearchIn(0, 5000, {3, 30, 44}, &rows).ok());
  expect.clear();
  for (RowPos r = 0; r < 5000; ++r) {
    if (vids[r] == 3 || vids[r] == 30 || vids[r] == 44) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);

  rows.clear();
  std::vector<RowPos> probe{5, 500, 5000, 25000};
  ASSERT_TRUE(it.SearchRowsRange(probe, 0, 25, &rows).ok());
  expect.clear();
  for (RowPos r : probe) {
    if (vids[r] <= 25) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, DataVectorEvictedPageReloadsTransparently) {
  auto vids = RandomVids(100000, 1000, 7);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv6", vids);
  ASSERT_TRUE(dv.ok());
  {
    PagedDataVectorIterator it(dv->get());
    ASSERT_TRUE(it.Get(0).ok());
    ASSERT_TRUE(it.Get(static_cast<RowPos>(vids.size() / 2)).ok());
  }  // iterator gone → pins released
  EXPECT_EQ((*dv)->cache()->loaded_page_count(), 2u);
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 1});
  rm_->SweepNow();
  EXPECT_EQ((*dv)->cache()->loaded_page_count(), 0u);
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 0});
  PagedDataVectorIterator it(dv->get());
  auto vid = it.Get(42);
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, vids[42]);
}

TEST_F(PagedTest, DataVectorPinnedPageSurvivesSweep) {
  auto vids = RandomVids(100000, 1000, 8);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "dv7", vids);
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  ASSERT_TRUE(it.Get(0).ok());  // iterator keeps the page pinned
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 1});
  rm_->SweepNow();
  EXPECT_EQ((*dv)->cache()->loaded_page_count(), 1u);
  // And reads keep working without reload.
  uint64_t loads = (*dv)->cache()->load_count();
  ASSERT_TRUE(it.Get(1).ok());
  EXPECT_EQ((*dv)->cache()->load_count(), loads);
}

TEST_F(PagedTest, DataVectorReopen) {
  auto vids = RandomVids(20000, 128, 9);
  {
    auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "dv8", vids);
    ASSERT_TRUE(dv.ok());
  }
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv8");
  ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  EXPECT_EQ((*dv)->row_count(), vids.size());
  PagedDataVectorIterator it(dv->get());
  for (RowPos r : {0u, 777u, 19999u}) {
    auto vid = it.Get(r);
    ASSERT_TRUE(vid.ok());
    EXPECT_EQ(*vid, vids[r]);
  }
}

// ---------------------------------------------------------------------------
// Meta-page compatibility (S22). Version-0 chains (pre-codec, 24-byte meta
// payload) must keep opening and scanning as plain; malformed meta pages
// must be rejected with a clear Status instead of decoding garbage.
// ---------------------------------------------------------------------------

// Hand-writes a `<name>.dv` chain whose meta page is produced by `fill`
// (which must also set the payload size). No data pages unless appended by
// the caller afterwards — Open() reads only the meta page.
void WriteRawMetaChain(StorageManager* storage, const std::string& name,
                       const std::function<void(Page*)>& fill) {
  const uint32_t page_size = storage->options().page_size;
  auto file = storage->CreateChain(name + ".dv", page_size);
  ASSERT_TRUE(file.ok());
  Page meta(page_size);
  meta.set_type(PageType::kMeta);
  fill(&meta);
  ASSERT_TRUE((*file)->AppendPage(&meta).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

TEST_F(PagedTest, DataVectorVersionZeroChainOpensAsPlain) {
  // Replicate the exact pre-codec on-disk layout: a 24-byte meta payload
  // (bits @0, row_count @8, values_per_page @16 — no version word, no codec
  // byte) followed by uniformly n-bit-packed data pages.
  auto vids = RandomVids(20000, 500, 77);
  CodecChoice plain = MakeCodecChoice(CodecId::kPlain, vids);
  const uint32_t page_size = storage_->options().page_size;
  const uint64_t vpp = CodecValuesPerPage(Page(page_size).capacity(), plain);
  {
    auto file = storage_->CreateChain("dv_v0.dv", page_size);
    ASSERT_TRUE(file.ok());
    Page meta(page_size);
    meta.set_type(PageType::kMeta);
    uint8_t* p = meta.payload();
    const uint64_t row_count = vids.size();
    std::memcpy(p, &plain.params.bits, sizeof(plain.params.bits));
    std::memcpy(p + 8, &row_count, sizeof(row_count));
    std::memcpy(p + 16, &vpp, sizeof(vpp));
    meta.set_payload_size(24);
    ASSERT_TRUE((*file)->AppendPage(&meta).ok());
    Page page(page_size);
    page.set_type(PageType::kDataVector);
    for (uint64_t first = 0; first < vids.size(); first += vpp) {
      const uint64_t n = std::min<uint64_t>(vpp, vids.size() - first);
      uint32_t aux2 = 0;
      page.set_payload_size(CodecEncodePage(plain, vids.data() + first, n,
                                            page.payload(), page.capacity(),
                                            &aux2));
      page.header()->aux = static_cast<uint32_t>(n);
      page.header()->aux2 = aux2;
      ASSERT_TRUE((*file)->AppendPage(&page).ok());
    }
    ASSERT_TRUE((*file)->Sync().ok());
  }

  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_v0");
  ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  EXPECT_EQ((*dv)->codec_id(), CodecId::kPlain);
  EXPECT_EQ((*dv)->row_count(), vids.size());
  EXPECT_EQ((*dv)->values_per_page(), vpp);

  PagedDataVectorIterator it(dv->get());
  std::vector<ValueId> got;
  ASSERT_TRUE(it.MGet(0, static_cast<RowPos>(vids.size()), &got).ok());
  EXPECT_EQ(got, vids);
  std::vector<RowPos> rows, expect;
  ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 42, &rows)
                  .ok());
  for (uint64_t r = 0; r < vids.size(); ++r) {
    if (vids[r] == 42) expect.push_back(static_cast<RowPos>(r));
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, DataVectorUnknownMetaVersionRejected) {
  WriteRawMetaChain(storage_.get(), "dv_badver", [](Page* meta) {
    uint8_t* p = meta->payload();
    const uint32_t version = 7;  // a future format this build cannot read
    std::memcpy(p, &version, sizeof(version));
    meta->set_payload_size(36);
  });
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_badver");
  ASSERT_FALSE(dv.ok());
  EXPECT_NE(dv.status().ToString().find("unsupported meta format version 7"),
            std::string::npos)
      << dv.status().ToString();
}

TEST_F(PagedTest, DataVectorUnknownCodecIdRejected) {
  WriteRawMetaChain(storage_.get(), "dv_badcodec", [](Page* meta) {
    uint8_t* p = meta->payload();
    const uint32_t version = 1;
    const uint32_t bits = 8;
    const uint64_t rows = 64, vpp = 64;
    std::memcpy(p, &version, sizeof(version));
    std::memcpy(p + 4, &bits, sizeof(bits));
    std::memcpy(p + 8, &rows, sizeof(rows));
    std::memcpy(p + 16, &vpp, sizeof(vpp));
    p[24] = 9;  // no such codec
    meta->set_payload_size(36);
  });
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_badcodec");
  ASSERT_FALSE(dv.ok());
  EXPECT_NE(dv.status().ToString().find("unknown codec id 9"),
            std::string::npos)
      << dv.status().ToString();
}

TEST_F(PagedTest, DataVectorBadBitsRejected) {
  WriteRawMetaChain(storage_.get(), "dv_badbits", [](Page* meta) {
    uint8_t* p = meta->payload();
    const uint32_t bits = 77;  // packed width cannot exceed 32
    const uint64_t rows = 64, vpp = 64;
    std::memcpy(p, &bits, sizeof(bits));
    std::memcpy(p + 8, &rows, sizeof(rows));
    std::memcpy(p + 16, &vpp, sizeof(vpp));
    meta->set_payload_size(24);
  });
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_badbits");
  ASSERT_FALSE(dv.ok());
  EXPECT_NE(dv.status().ToString().find("bits out of range"),
            std::string::npos)
      << dv.status().ToString();
}

TEST_F(PagedTest, DataVectorUnrecognizedMetaSizeRejected) {
  WriteRawMetaChain(storage_.get(), "dv_badsize", [](Page* meta) {
    meta->set_payload_size(28);  // neither the v0 nor the v1 layout
  });
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_badsize");
  ASSERT_FALSE(dv.ok());
  EXPECT_NE(dv.status().ToString().find("unrecognized payload size 28"),
            std::string::npos)
      << dv.status().ToString();
}

TEST_F(PagedTest, DataVectorForBaseWrapRejected) {
  // A hostile FOR base that would wrap residual+base past u32 makes decode
  // disagree with the searches' residual-space translation; the meta parse
  // is the one place the base enters the system, so it must die there.
  WriteRawMetaChain(storage_.get(), "dv_forwrap", [](Page* meta) {
    uint8_t* p = meta->payload();
    const uint32_t version = 1;
    const uint32_t bits = 8;
    const uint64_t rows = 64, vpp = 64;
    std::memcpy(p, &version, sizeof(version));
    std::memcpy(p + 4, &bits, sizeof(bits));
    std::memcpy(p + 8, &rows, sizeof(rows));
    std::memcpy(p + 16, &vpp, sizeof(vpp));
    p[24] = static_cast<uint8_t>(CodecId::kFor);
    const uint32_t base = 0xFFFFFF01;  // base + 0xFF residual wraps
    std::memcpy(p + 28, &base, sizeof(base));
    meta->set_payload_size(36);
  });
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_forwrap");
  ASSERT_FALSE(dv.ok());
  EXPECT_NE(dv.status().ToString().find("overflows the 32-bit vid space"),
            std::string::npos)
      << dv.status().ToString();
}

TEST_F(PagedTest, ParseDataVectorMetaBoundaries) {
  // Direct unit coverage of the parser the fuzz_meta_page target drives.
  uint8_t buf[36] = {};
  const uint32_t version = 1;
  const uint32_t bits = 8;
  const uint64_t rows = 128, vpp = 64;
  std::memcpy(buf, &version, sizeof(version));
  std::memcpy(buf + 4, &bits, sizeof(bits));
  std::memcpy(buf + 8, &rows, sizeof(rows));
  std::memcpy(buf + 16, &vpp, sizeof(vpp));
  buf[24] = static_cast<uint8_t>(CodecId::kFor);

  // Largest base that cannot wrap at 8 bits: 0xFFFFFFFF - 0xFF.
  uint32_t base = 0xFFFFFF00;
  std::memcpy(buf + 28, &base, sizeof(base));
  DataVectorMeta meta;
  ASSERT_TRUE(ParseDataVectorMeta(buf, sizeof(buf), &meta).ok());
  EXPECT_EQ(meta.codec.id, CodecId::kFor);
  EXPECT_EQ(meta.codec.params.for_base, base);
  EXPECT_EQ(meta.row_count, rows);
  EXPECT_EQ(meta.values_per_page, vpp);

  base = 0xFFFFFF01;  // one past the boundary
  std::memcpy(buf + 28, &base, sizeof(base));
  EXPECT_TRUE(ParseDataVectorMeta(buf, sizeof(buf), &meta).IsCorruption());

  // The v0 layout parses as plain with no base.
  uint8_t v0[24] = {};
  std::memcpy(v0, &bits, sizeof(bits));
  std::memcpy(v0 + 8, &rows, sizeof(rows));
  std::memcpy(v0 + 16, &vpp, sizeof(vpp));
  ASSERT_TRUE(ParseDataVectorMeta(v0, sizeof(v0), &meta).ok());
  EXPECT_EQ(meta.codec.id, CodecId::kPlain);
  EXPECT_EQ(meta.codec.params.for_base, 0u);
}

TEST_F(PagedTest, DataVectorOverclaimedPageRowCountRejected) {
  auto vids = RandomVids(20000, 500, 11);
  {
    auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "dv_auxlie", vids);
    ASSERT_TRUE(dv.ok()) << dv.status().ToString();
  }
  storage_.reset();
  // Patch the first data page's header `aux` (rows in page) to claim more
  // rows than values_per_page allows. The header sits outside the payload
  // CRC, so only the paged layer's own bound can catch the lie.
  {
    const std::string path = dir_ + "/dv_auxlie.dv";
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const uint32_t lie = 0x00FFFFFF;
    ASSERT_EQ(std::fseek(f, 4096 + 28, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&lie, sizeof(lie), 1, f), 1u);
    std::fclose(f);
  }
  StorageOptions opts;
  opts.page_size = 4096;
  opts.dict_page_size = 8192;
  auto sm = StorageManager::Open(dir_, opts);
  ASSERT_TRUE(sm.ok());
  storage_ = std::move(*sm);

  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "dv_auxlie");
  Status s;
  if (dv.ok()) {
    PagedDataVectorIterator it(dv->get());
    std::vector<ValueId> got;
    s = it.MGet(0, 100, &got);
  } else {
    s = dv.status();
  }
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// ---------------------------------------------------------------------------
// PagedDictionary
// ---------------------------------------------------------------------------

std::vector<std::string> MakeSortedStrings(uint64_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "value_%08llu",
                  static_cast<unsigned long long>(i));
    out.emplace_back(buf);
  }
  return out;
}

TEST_F(PagedTest, DictionaryLookupBothDirections) {
  auto values = MakeSortedStrings(5000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d1", values);
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_EQ((*dict)->size(), values.size());
  EXPECT_GT((*dict)->dict_page_count(), 1u);

  PagedDictionaryIterator it(dict->get());
  Random rng(10);
  for (int i = 0; i < 200; ++i) {
    ValueId vid = static_cast<ValueId>(rng.Uniform(values.size()));
    auto value = it.FindByValueId(vid);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(*value, values[vid]);
    auto back = it.FindByValue(values[vid]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, vid);
  }
}

TEST_F(PagedTest, DictionaryMissingValue) {
  auto values = MakeSortedStrings(1000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d2", values);
  ASSERT_TRUE(dict.ok());
  PagedDictionaryIterator it(dict->get());
  auto missing = it.FindByValue("value_00000500x");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, kInvalidValueId);
  auto before_all = it.FindByValue("aaa");
  ASSERT_TRUE(before_all.ok());
  EXPECT_EQ(*before_all, kInvalidValueId);
  auto after_all = it.FindByValue("zzz");
  ASSERT_TRUE(after_all.ok());
  EXPECT_EQ(*after_all, kInvalidValueId);
  EXPECT_TRUE(it.FindByValueId(1000).status().IsOutOfRange());
}

TEST_F(PagedTest, DictionaryBounds) {
  auto values = MakeSortedStrings(1000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d3", values);
  ASSERT_TRUE(dict.ok());
  PagedDictionaryIterator it(dict->get());
  EXPECT_EQ(*it.LowerBound("value_00000500"), 500u);
  EXPECT_EQ(*it.UpperBound("value_00000500"), 501u);
  EXPECT_EQ(*it.LowerBound("value_000005"), 500u);   // between 499 and 500
  EXPECT_EQ(*it.UpperBound("value_000005"), 500u);
  EXPECT_EQ(*it.LowerBound("aaa"), 0u);
  EXPECT_EQ(*it.LowerBound("zzz"), 1000u);
}

TEST_F(PagedTest, DictionaryHelpersPreloadOnFirstAccess) {
  auto values = MakeSortedStrings(3000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d4", values);
  ASSERT_TRUE(dict.ok());
  EXPECT_FALSE((*dict)->helpers_loaded());
  PagedDictionaryIterator it(dict->get());
  ASSERT_TRUE(it.FindByValueId(100).ok());
  EXPECT_TRUE((*dict)->helpers_loaded());
}

TEST_F(PagedTest, DictionaryIteratorHandleCacheAvoidsReloads) {
  auto values = MakeSortedStrings(5000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d5", values);
  ASSERT_TRUE(dict.ok());
  PagedDictionaryIterator it(dict->get());
  ASSERT_TRUE(it.FindByValueId(10).ok());
  uint64_t loads_after_first = (*dict)->cache()->load_count();
  // Repeated lookups on the same page: no further page loads.
  for (ValueId v = 0; v < 50; ++v) ASSERT_TRUE(it.FindByValueId(v).ok());
  EXPECT_EQ((*dict)->cache()->load_count(), loads_after_first);
}

TEST_F(PagedTest, DictionaryLargeStringsSpillToOverflowPages) {
  std::vector<std::string> values;
  for (int i = 0; i < 20; ++i) {
    // ~20 KiB strings against 8 KiB dictionary pages → guaranteed spill.
    values.push_back("key_" + std::to_string(1000 + i) + "_" +
                     std::string(20000, static_cast<char>('a' + i)));
  }
  std::sort(values.begin(), values.end());
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "d6", values);
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  PagedDictionaryIterator it(dict->get());
  for (uint32_t i = 0; i < values.size(); ++i) {
    auto v = it.FindByValueId(i);
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(*v, values[i]);
    auto vid = it.FindByValue(values[i]);
    ASSERT_TRUE(vid.ok());
    EXPECT_EQ(*vid, i);
  }
}

TEST_F(PagedTest, DictionaryReopen) {
  auto values = MakeSortedStrings(2500);
  {
    auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "d7", values);
    ASSERT_TRUE(dict.ok());
  }
  auto dict = PagedDictionary::Open(storage_.get(), rm_.get(),
                                    PoolId::kPagedPool, "d7");
  ASSERT_TRUE(dict.ok()) << dict.status().ToString();
  EXPECT_EQ((*dict)->size(), values.size());
  PagedDictionaryIterator it(dict->get());
  EXPECT_EQ(*it.FindByValueId(1234), values[1234]);
  EXPECT_EQ(*it.FindByValue(values[42]), 42u);
}

TEST_F(PagedTest, DictionaryPageBoundaryLookups) {
  auto values = MakeSortedStrings(5000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "dbound", values);
  ASSERT_TRUE(dict.ok());
  ASSERT_GT((*dict)->dict_page_count(), 2u);
  // Exercise the exact first and last vid of every dictionary page: the
  // helper binary searches must route to the right page at the boundaries.
  PagedDictionaryIterator it(dict->get());
  // Find the page-boundary vids by walking all vids and recording where the
  // page ordinal changes (uses the public API only: lookups must succeed).
  for (ValueId vid : {0u, 15u, 16u, 4999u}) {
    auto v = it.FindByValueId(vid);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, values[vid]);
  }
  Random rng(71);
  for (int i = 0; i < 300; ++i) {
    ValueId vid = static_cast<ValueId>(rng.Uniform(values.size()));
    auto v = it.FindByValueId(vid);
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(*v, values[vid]);
    auto back = it.FindByValue(values[vid]);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, vid);
  }
}

TEST_F(PagedTest, DictionaryPinnedPagesSurviveSweepDuringIterator) {
  auto values = MakeSortedStrings(5000);
  auto dict = PagedDictionary::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "dpin", values);
  ASSERT_TRUE(dict.ok());
  PagedDictionaryIterator it(dict->get());
  ASSERT_TRUE(it.FindByValueId(100).ok());
  uint64_t loads_before = (*dict)->cache()->load_count();
  // The iterator's handle cache pins its pages: an aggressive sweep must
  // not evict them, and the repeat lookup must not reload.
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 1});
  rm_->SweepNow();
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 0});
  ASSERT_TRUE(it.FindByValueId(101).ok());
  EXPECT_EQ((*dict)->cache()->load_count(), loads_before);
}

// ---------------------------------------------------------------------------
// PagedInvertedIndex
// ---------------------------------------------------------------------------

TEST_F(PagedTest, InvertedIndexLookupMatchesScalar) {
  auto vids = RandomVids(60000, 37, 11);
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "i1", vids, 37);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  EXPECT_FALSE((*idx)->unique());
  for (ValueId v : {0u, 17u, 36u}) {
    PagedIndexIterator it(idx->get());
    std::vector<RowPos> rows;
    ASSERT_TRUE(it.Lookup(v, &rows).ok());
    std::vector<RowPos> expect;
    for (RowPos r = 0; r < vids.size(); ++r) {
      if (vids[r] == v) expect.push_back(r);
    }
    EXPECT_EQ(rows, expect) << "vid " << v;
  }
}

TEST_F(PagedTest, InvertedIndexStepwiseIteration) {
  auto vids = RandomVids(10000, 5, 12);
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "i2", vids, 5);
  ASSERT_TRUE(idx.ok());
  PagedIndexIterator it(idx->get());
  auto first = it.GetFirstRowPos(2);
  ASSERT_TRUE(first.ok());
  std::vector<RowPos> rows{*first};
  while (it.HasNext()) {
    auto next = it.GetNextRowPos();
    ASSERT_TRUE(next.ok());
    rows.push_back(*next);
  }
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 2u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, InvertedIndexUniqueHasNoDirectory) {
  // A permutation → unique index.
  std::vector<ValueId> vids(20000);
  for (size_t i = 0; i < vids.size(); ++i) {
    vids[i] = static_cast<ValueId>(vids.size() - 1 - i);
  }
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "i3", vids,
                                       vids.size());
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE((*idx)->unique());
  EXPECT_FALSE((*idx)->has_mixed_page());
  PagedIndexIterator it(idx->get());
  for (ValueId v : {0u, 9999u, 19999u}) {
    auto r = it.GetFirstRowPos(v);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(vids[*r], v);
    EXPECT_FALSE(it.HasNext());
  }
}

TEST_F(PagedTest, InvertedIndexMixedPageWhenRemainder) {
  // Small row count with low cardinality: postings + directory share pages.
  auto vids = RandomVids(1000, 8, 13);
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "i4", vids, 8);
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE((*idx)->has_mixed_page());
  PagedIndexIterator it(idx->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.Lookup(3, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 3u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
  // A point lookup on a mixed page touches exactly one page.
  EXPECT_LE(it.pages_touched(), 2u);
}

TEST_F(PagedTest, InvertedIndexDirectorySpillsToDirectoryPages) {
  // Huge cardinality → directory larger than the mixed page.
  auto vids = RandomVids(50000, 20000, 14);
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "i5", vids, 20000);
  ASSERT_TRUE(idx.ok());
  PagedIndexIterator it(idx->get());
  Random rng(15);
  for (int i = 0; i < 100; ++i) {
    ValueId v = static_cast<ValueId>(rng.Uniform(20000));
    std::vector<RowPos> rows;
    ASSERT_TRUE(it.Lookup(v, &rows).ok());
    std::vector<RowPos> expect;
    for (RowPos r = 0; r < vids.size(); ++r) {
      if (vids[r] == v) expect.push_back(r);
    }
    EXPECT_EQ(rows, expect) << "vid " << v;
  }
}

TEST_F(PagedTest, InvertedIndexReopen) {
  auto vids = RandomVids(30000, 100, 16);
  {
    auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                         PoolId::kPagedPool, "i6", vids, 100);
    ASSERT_TRUE(idx.ok());
  }
  auto idx = PagedInvertedIndex::Open(storage_.get(), rm_.get(),
                                      PoolId::kPagedPool, "i6");
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();
  PagedIndexIterator it(idx->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.Lookup(55, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 55u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

// ---------------------------------------------------------------------------
// PagedFragment end-to-end
// ---------------------------------------------------------------------------

TEST_F(PagedTest, PagedFragmentNumericColumn) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 200; ++i) dict_values.emplace_back(i * 7);
  auto vids = RandomVids(40000, 200, 17);
  auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "pf1",
                                   ValueType::kInt64, dict_values, vids, true);
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_TRUE((*frag)->is_paged());
  EXPECT_TRUE((*frag)->has_index());

  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto vid = (*reader)->GetVid(1234);
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, vids[1234]);
  auto val = (*reader)->GetValueForVid(*vid);
  ASSERT_TRUE(val.ok());
  EXPECT_EQ(val->AsInt64(), static_cast<int64_t>(vids[1234]) * 7);

  auto found = (*reader)->FindValueId(Value(int64_t{70}));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 10u);
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(10, &rows).ok());
  for (RowPos r : rows) EXPECT_EQ(vids[r], 10u);
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 10u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, PagedFragmentStringColumn) {
  auto strings = MakeSortedStrings(800);
  std::vector<Value> dict_values;
  for (const auto& s : strings) dict_values.emplace_back(s);
  auto vids = RandomVids(20000, 800, 18);
  auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "pf2",
                                   ValueType::kString, dict_values, vids,
                                   false);
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  auto vid = (*reader)->GetVid(9999);
  ASSERT_TRUE(vid.ok());
  auto val = (*reader)->GetValueForVid(*vid);
  ASSERT_TRUE(val.ok());
  EXPECT_EQ(val->AsString(), strings[*vid]);
  auto found = (*reader)->FindValueId(Value(strings[123]));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 123u);
  // Without an index FindRows falls back to an Alg.-1 data vector scan.
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(123, &rows).ok());
  for (RowPos r : rows) EXPECT_EQ(vids[r], 123u);
}

TEST_F(PagedTest, PagedFragmentResidentBytesTrackLoads) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 100; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(100000, 100, 19);
  auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "pf3",
                                   ValueType::kInt64, dict_values, vids,
                                   false);
  ASSERT_TRUE(frag.ok());
  (*frag)->Unload();
  uint64_t before = (*frag)->ResidentBytes();
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->GetVid(0).ok());
  // One data page + the numeric dictionary.
  EXPECT_GT((*frag)->ResidentBytes(), before);
  uint64_t partial = (*frag)->ResidentBytes();
  // Touch a far row: one more page.
  ASSERT_TRUE((*reader)->GetVid(static_cast<RowPos>(vids.size() - 1)).ok());
  EXPECT_GT((*frag)->ResidentBytes(), partial);
}

TEST_F(PagedTest, PagedFragmentUnloadDropsEverything) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 100; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(50000, 100, 20);
  auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "pf4",
                                   ValueType::kInt64, dict_values, vids, true);
  ASSERT_TRUE(frag.ok());
  {
    auto reader = (*frag)->NewReader();
    ASSERT_TRUE(reader.ok());
    ASSERT_TRUE((*reader)->GetVid(5).ok());
    std::vector<RowPos> rows;
    ASSERT_TRUE((*reader)->FindRows(3, &rows).ok());
  }
  EXPECT_GT((*frag)->ResidentBytes(), 0u);
  (*frag)->Unload();
  EXPECT_EQ((*frag)->ResidentBytes(), 0u);
  EXPECT_EQ(rm_->pool_bytes(PoolId::kPagedPool), 0u);
}

TEST_F(PagedTest, PagedFragmentReopen) {
  auto strings = MakeSortedStrings(500);
  std::vector<Value> dict_values;
  for (const auto& s : strings) dict_values.emplace_back(s);
  auto vids = RandomVids(10000, 500, 21);
  {
    auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "pf5",
                                     ValueType::kString, dict_values, vids,
                                     true);
    ASSERT_TRUE(frag.ok());
  }
  auto frag = PagedFragment::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "pf5");
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_EQ((*frag)->row_count(), 10000u);
  EXPECT_EQ((*frag)->dict_size(), 500u);
  EXPECT_TRUE((*frag)->has_index());
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(77, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 77u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, FragmentFactoryDispatches) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 10; ++i) dict_values.emplace_back(i);
  std::vector<ValueId> vids{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  FragmentSpec paged_spec{.page_loadable = true, .with_index = false,
                          .pool = PoolId::kColdPagedPool};
  auto paged = BuildMainFragment(storage_.get(), rm_.get(), "ff1",
                                 ValueType::kInt64, dict_values, vids,
                                 paged_spec);
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE((*paged)->is_paged());
  FragmentSpec resident_spec{.page_loadable = false, .with_index = true,
                             .pool = PoolId::kGeneral};
  auto resident = BuildMainFragment(storage_.get(), rm_.get(), "ff2",
                                    ValueType::kInt64, dict_values, vids,
                                    resident_spec);
  ASSERT_TRUE(resident.ok());
  EXPECT_FALSE((*resident)->is_paged());
}

// ---------------------------------------------------------------------------
// Min/max page summary (§3.3's alternative to the inverted index)
// ---------------------------------------------------------------------------

TEST_F(PagedTest, SummaryPrunesPagesOnClusteredData) {
  // Values correlate with row order → per-page [min,max] ranges are compact
  // and most pages can be skipped without loading.
  std::vector<ValueId> vids(100000);
  for (size_t i = 0; i < vids.size(); ++i) {
    vids[i] = static_cast<ValueId>(i / 100);  // 1000 distinct, clustered
  }
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "sum1", vids);
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 500, &rows)
                  .ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 500u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
  EXPECT_GT(it.pages_pruned(), 0u);
  // Only the page(s) containing vid 500 were physically loaded.
  EXPECT_LE(it.pages_touched(), 2u);
  EXPECT_EQ(it.pages_pruned() + it.pages_touched(),
            (*dv)->data_page_count());
}

TEST_F(PagedTest, SummaryNeverPrunesMatchingPages) {
  // Random data: summary ranges cover everything, nothing can be pruned,
  // and results must stay identical with the summary on and off.
  auto vids = RandomVids(50000, 40, 23);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "sum2", vids);
  ASSERT_TRUE(dv.ok());
  std::vector<RowPos> with_summary, without_summary;
  {
    PagedDataVectorIterator it(dv->get());
    ASSERT_TRUE(
        it.SearchRange(0, static_cast<RowPos>(vids.size()), 5, 9,
                       &with_summary)
            .ok());
  }
  {
    PagedDataVectorIterator it(dv->get());
    it.set_use_summary(false);
    ASSERT_TRUE(
        it.SearchRange(0, static_cast<RowPos>(vids.size()), 5, 9,
                       &without_summary)
            .ok());
    EXPECT_EQ(it.pages_pruned(), 0u);
  }
  EXPECT_EQ(with_summary, without_summary);
}

TEST_F(PagedTest, SummarySurvivesReopen) {
  std::vector<ValueId> vids(50000);
  for (size_t i = 0; i < vids.size(); ++i) {
    vids[i] = static_cast<ValueId>(i / 500);
  }
  {
    auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, "sum3", vids);
    ASSERT_TRUE(dv.ok());
  }
  auto dv = PagedDataVector::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "sum3");
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 42, &rows)
                  .ok());
  EXPECT_EQ(rows.size(), 500u);
  EXPECT_GT(it.pages_pruned(), 0u);
}

TEST_F(PagedTest, SummaryEvictionIsTransparent) {
  std::vector<ValueId> vids(50000);
  for (size_t i = 0; i < vids.size(); ++i) {
    vids[i] = static_cast<ValueId>(i / 500);
  }
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "sum4", vids);
  ASSERT_TRUE(dv.ok());
  {
    PagedDataVectorIterator it(dv->get());
    std::vector<RowPos> rows;
    ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 3, &rows)
                    .ok());
  }
  // Evict everything (including the summary resource), then search again.
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 1});
  rm_->SweepNow();
  rm_->SetPoolLimits(PoolId::kPagedPool, {0, 0});
  PagedDataVectorIterator it(dv->get());
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(vids.size()), 3, &rows).ok());
  EXPECT_EQ(rows.size(), 500u);
}

// ---------------------------------------------------------------------------
// Deferred (workload-driven) index rebuild — §8
// ---------------------------------------------------------------------------

TEST_F(PagedTest, DeferredIndexBuildsAfterThreshold) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 50; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(30000, 50, 31);
  auto frag = PagedFragment::Build(
      storage_.get(), rm_.get(), PoolId::kPagedPool, "def1",
      ValueType::kInt64, dict_values, vids,
      PagedFragment::IndexMode::kDeferred, /*index_build_threshold=*/3);
  ASSERT_TRUE(frag.ok()) << frag.status().ToString();
  EXPECT_FALSE((*frag)->has_index());  // nothing built at merge time

  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 7u) expect.push_back(r);
  }
  // Lookups 1 and 2 are served by the Alg.-1 scan.
  for (int i = 0; i < 2; ++i) {
    std::vector<RowPos> rows;
    ASSERT_TRUE((*reader)->FindRows(7, &rows).ok());
    EXPECT_EQ(rows, expect);
    EXPECT_FALSE((*frag)->has_index());
  }
  // Lookup 3 crosses the threshold: the index is rebuilt from the data
  // vector and used from then on.
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(7, &rows).ok());
  EXPECT_EQ(rows, expect);
  EXPECT_TRUE((*frag)->has_index());
  EXPECT_EQ((*frag)->point_lookup_count(), 3u);
}

TEST_F(PagedTest, DeferredIndexPersistsAcrossReopen) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 20; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(10000, 20, 32);
  {
    auto frag = PagedFragment::Build(
        storage_.get(), rm_.get(), PoolId::kPagedPool, "def2",
        ValueType::kInt64, dict_values, vids,
        PagedFragment::IndexMode::kDeferred, /*index_build_threshold=*/1);
    ASSERT_TRUE(frag.ok());
    auto reader = (*frag)->NewReader();
    ASSERT_TRUE(reader.ok());
    std::vector<RowPos> rows;
    ASSERT_TRUE((*reader)->FindRows(5, &rows).ok());
    EXPECT_TRUE((*frag)->has_index());
  }
  // Reopen: the lazily built index chain is found and used immediately.
  auto frag = PagedFragment::Open(storage_.get(), rm_.get(),
                                  PoolId::kPagedPool, "def2");
  ASSERT_TRUE(frag.ok());
  EXPECT_TRUE((*frag)->has_index());
  EXPECT_EQ((*frag)->index_mode(), PagedFragment::IndexMode::kDeferred);
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(5, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 5u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(PagedTest, RebuildIndexNowIsIdempotent) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 10; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(5000, 10, 33);
  auto frag = PagedFragment::Build(
      storage_.get(), rm_.get(), PoolId::kPagedPool, "def3",
      ValueType::kInt64, dict_values, vids,
      PagedFragment::IndexMode::kDeferred, /*index_build_threshold=*/100);
  ASSERT_TRUE(frag.ok());
  ASSERT_TRUE((*frag)->RebuildIndexNow().ok());
  ASSERT_TRUE((*frag)->RebuildIndexNow().ok());
  EXPECT_TRUE((*frag)->has_index());
}

// ---------------------------------------------------------------------------
// Page readahead
// ---------------------------------------------------------------------------

TEST_F(PagedTest, PrefetchCountersReconcileAfterSequentialScan) {
  auto vids = RandomVids(100000, 500, 71);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "ra1", vids);
  ASSERT_TRUE(dv.ok());
  ASSERT_GT((*dv)->data_page_count(), 4u);

  ExecContext ctx;
  PagedDataVectorIterator it(dv->get(), &ctx);
  it.set_readahead(2);
  std::vector<ValueId> out;
  ASSERT_TRUE(it.MGet(0, static_cast<RowPos>(vids.size()), &out).ok());
  EXPECT_EQ(out, vids);  // readahead must not change results

  PageCache* cache = (*dv)->cache();
  cache->WaitForPrefetchIdle();
  // Invariant: issued == hits + wasted + inflight, and after the idle wait
  // inflight == 0.
  EXPECT_GT(cache->prefetch_issued_count(), 0u);
  EXPECT_EQ(cache->prefetch_issued_count(),
            cache->prefetch_hit_count() + cache->prefetch_wasted_count() +
                cache->prefetch_inflight_count());
  // Sequential scan with an unconstrained pool: everything we asked for
  // should have been used.
  EXPECT_GT(cache->prefetch_hit_count(), 0u);
  // The issue (not the background read) is attributed to the query.
  EXPECT_EQ(ctx.stats.prefetch_issued.load(),
            cache->prefetch_issued_count());
  EXPECT_EQ(ctx.stats.prefetch_hits.load(), cache->prefetch_hit_count());
}

TEST_F(PagedTest, ReadaheadZeroIssuesNoPrefetch) {
  auto vids = RandomVids(60000, 300, 72);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "ra2", vids);
  ASSERT_TRUE(dv.ok());
  PagedDataVectorIterator it(dv->get());
  it.set_readahead(0);
  std::vector<ValueId> out;
  ASSERT_TRUE(it.MGet(0, static_cast<RowPos>(vids.size()), &out).ok());
  EXPECT_EQ(out, vids);
  EXPECT_EQ((*dv)->cache()->prefetch_issued_count(), 0u);
}

TEST_F(PagedTest, PrefetchedPageCountsAsHitOnFirstTouch) {
  auto vids = RandomVids(60000, 300, 73);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "ra3", vids);
  ASSERT_TRUE(dv.ok());
  PageCache* cache = (*dv)->cache();

  cache->Prefetch(1);
  cache->WaitForPrefetchIdle();
  EXPECT_TRUE(cache->IsLoaded(1));
  EXPECT_EQ(cache->prefetch_issued_count(), 1u);
  EXPECT_EQ(cache->prefetch_hit_count(), 0u);

  auto ref = cache->GetPage(1);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(cache->prefetch_hit_count(), 1u);
  ref->Release();

  // Only the first touch is a prefetch hit; later pins are ordinary hits.
  auto again = cache->GetPage(1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache->prefetch_hit_count(), 1u);
  again->Release();

  // Re-prefetching a resident page is a no-op.
  cache->Prefetch(1);
  EXPECT_EQ(cache->prefetch_issued_count(), 1u);
}

TEST_F(PagedTest, UntouchedPrefetchCountsAsWastedOnDrop) {
  auto vids = RandomVids(60000, 300, 74);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "ra4", vids);
  ASSERT_TRUE(dv.ok());
  PageCache* cache = (*dv)->cache();

  cache->Prefetch(1);
  cache->Prefetch(2);
  cache->WaitForPrefetchIdle();
  (*dv)->Unload();
  EXPECT_EQ(cache->prefetch_issued_count(), 2u);
  EXPECT_EQ(cache->prefetch_wasted_count(), 2u);
  EXPECT_EQ(cache->prefetch_issued_count(),
            cache->prefetch_hit_count() + cache->prefetch_wasted_count() +
                cache->prefetch_inflight_count());
}

TEST_F(PagedTest, PrefetchRangeBatchesDedupAndReconcile) {
  auto vids = RandomVids(100000, 500, 75);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "ra5", vids);
  ASSERT_TRUE(dv.ok());
  ASSERT_GT((*dv)->data_page_count(), 6u);
  PageCache* cache = (*dv)->cache();

  // One batched submission covering pages 1..4 of the chain.
  ExecContext ctx;
  cache->PrefetchRange(1, 4, &ctx);
  EXPECT_EQ(cache->prefetch_issued_count(), 4u);
  EXPECT_EQ(ctx.stats.io_batches.load(), 1u);
  cache->WaitForPrefetchIdle();
  for (LogicalPageNo lpn = 1; lpn <= 4; ++lpn) {
    EXPECT_TRUE(cache->IsLoaded(lpn)) << "lpn " << lpn;
  }

  // Overlapping range: resident pages drop out, only 5 and 6 are issued.
  cache->PrefetchRange(1, 6, &ctx);
  cache->WaitForPrefetchIdle();
  EXPECT_EQ(cache->prefetch_issued_count(), 6u);
  EXPECT_EQ(ctx.stats.io_batches.load(), 2u);

  // Fully-covered range: nothing left to issue, no batch submitted.
  cache->PrefetchRange(2, 3, &ctx);
  EXPECT_EQ(cache->prefetch_issued_count(), 6u);
  EXPECT_EQ(ctx.stats.io_batches.load(), 2u);

  // A range reaching past the end of the chain is clamped to page_count.
  const LogicalPageNo last = cache->file()->page_count() - 1;
  cache->PrefetchRange(last, 1000, &ctx);
  cache->WaitForPrefetchIdle();
  EXPECT_EQ(cache->prefetch_issued_count(), 7u);

  // Batched prefetches count as prefetch hits on first touch like any
  // other prefetch; once every issued page is touched the accounting
  // invariant issued == hits + wasted + inflight reconciles exactly.
  for (LogicalPageNo lpn : {LogicalPageNo{1}, LogicalPageNo{2},
                            LogicalPageNo{3}, LogicalPageNo{4},
                            LogicalPageNo{5}, LogicalPageNo{6}, last}) {
    auto ref = cache->GetPage(lpn);
    ASSERT_TRUE(ref.ok()) << "lpn " << lpn;
    ref->Release();
  }
  EXPECT_EQ(cache->prefetch_hit_count(), 7u);
  EXPECT_EQ(cache->prefetch_issued_count(),
            cache->prefetch_hit_count() + cache->prefetch_wasted_count() +
                cache->prefetch_inflight_count());
}

TEST_F(PagedTest, IndexIteratorPrefetchesAcrossPostingPages) {
  // One vid dominating the column makes its postinglist span several pages.
  std::vector<ValueId> vids(120000, 3);
  for (size_t i = 0; i < vids.size(); i += 100) {
    vids[i] = static_cast<ValueId>(1 + (i / 100) % 2 * 4);
  }
  auto idx = PagedInvertedIndex::Build(storage_.get(), rm_.get(),
                                       PoolId::kPagedPool, "rai", vids, 8);
  ASSERT_TRUE(idx.ok());
  PagedIndexIterator it(idx->get());
  it.set_readahead(2);
  std::vector<RowPos> rows;
  ASSERT_TRUE(it.Lookup(3, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 3) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);

  PageCache* cache = (*idx)->cache();
  cache->WaitForPrefetchIdle();
  EXPECT_GT(cache->prefetch_issued_count(), 0u);
  EXPECT_EQ(cache->prefetch_issued_count(),
            cache->prefetch_hit_count() + cache->prefetch_wasted_count() +
                cache->prefetch_inflight_count());
}

TEST_F(PagedTest, ColdPoolPagesAreAccountedSeparately) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 50; ++i) dict_values.emplace_back(i);
  auto vids = RandomVids(50000, 50, 22);
  auto frag = PagedFragment::Build(storage_.get(), rm_.get(),
                                   PoolId::kColdPagedPool, "cold1",
                                   ValueType::kInt64, dict_values, vids,
                                   false);
  ASSERT_TRUE(frag.ok());
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->GetVid(0).ok());
  EXPECT_GT(rm_->pool_bytes(PoolId::kColdPagedPool), 0u);
  EXPECT_EQ(rm_->pool_bytes(PoolId::kPagedPool), 0u);
}

}  // namespace
}  // namespace payg
