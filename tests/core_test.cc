#include <gtest/gtest.h>

#include <filesystem>

#include "core/column_store.h"
#include "workload/erp.h"

namespace payg {
namespace {

class ColumnStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_core_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override { std::filesystem::remove_all(dir_); }

  ColumnStoreOptions Options() {
    ColumnStoreOptions options;
    options.directory = dir_;
    options.storage.page_size = 16 * 1024;
    options.storage.dict_page_size = 32 * 1024;
    return options;
  }

  TableSchema SimpleSchema(const std::string& name, bool paged) {
    TableSchema schema;
    schema.name = name;
    schema.columns.push_back({"k", ValueType::kString, paged, true, true});
    schema.columns.push_back({"v", ValueType::kInt64, paged, false, false});
    return schema;
  }

  std::string dir_;
};

TEST_F(ColumnStoreTest, OpenCreatesDirectory) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(dir_));
  EXPECT_EQ((*store)->MemoryFootprint(), 0u);
}

TEST_F(ColumnStoreTest, TableLifecycle) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(SimpleSchema("t1", false));
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*store)->CreateTable(SimpleSchema("t1", false)).status()
                  .code() == StatusCode::kAlreadyExists);
  auto fetched = (*store)->GetTable("t1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(*fetched, *table);
  EXPECT_FALSE((*store)->GetTable("nope").ok());
  ASSERT_TRUE((*store)->DropTable("t1").ok());
  EXPECT_FALSE((*store)->GetTable("t1").ok());
  EXPECT_FALSE((*store)->DropTable("t1").ok());
}

TEST_F(ColumnStoreTest, EmptySchemaRejected) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  TableSchema empty;
  empty.name = "e";
  EXPECT_FALSE((*store)->CreateTable(empty).ok());
}

TEST_F(ColumnStoreTest, EndToEndInsertMergeQuery) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(SimpleSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 500; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", i);
    ASSERT_TRUE(
        (*table)->Insert({Value(std::string(buf)), Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE((*table)->MergeAll().ok());
  auto result = (*table)->SelectByValue("k", Value(std::string("K000123")),
                                        {"v"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].AsInt64(), 123);
  EXPECT_GT((*store)->MemoryFootprint(), 0u);
}

TEST_F(ColumnStoreTest, MemoryBudgetTriggersEviction) {
  auto options = Options();
  options.memory_budget = 64 * 1024;  // tight budget
  auto store = ColumnStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(SimpleSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 2000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", i);
    ASSERT_TRUE(
        (*table)->Insert({Value(std::string(buf)), Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE((*table)->MergeAll().ok());
  // Run a bunch of point queries; the budget keeps the footprint bounded
  // (pins make small transient overshoots possible).
  for (int i = 0; i < 50; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", (i * 37) % 2000);
    auto result = (*table)->SelectByValue("k", Value(std::string(buf)), {"v"});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->rows.size(), 1u);
  }
  EXPECT_LE((*store)->MemoryFootprint(), options.memory_budget * 2);
  EXPECT_GT((*store)->resource_manager().stats().reactive_evictions, 0u);
}

TEST_F(ColumnStoreTest, PagedPoolLimitsBoundColdFootprint) {
  auto options = Options();
  options.paged_pool_limits = {32 * 1024, 96 * 1024};
  auto store = ColumnStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto table = (*store)->CreateTable(SimpleSchema("t", true));
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 3000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", i);
    ASSERT_TRUE(
        (*table)->Insert({Value(std::string(buf)), Value(int64_t{i})}).ok());
  }
  ASSERT_TRUE((*table)->MergeAll().ok());
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", (i * 17) % 3000);
    auto result = (*table)->SelectByValue("k", Value(std::string(buf)), {"v"});
    ASSERT_TRUE(result.ok());
  }
  (*store)->resource_manager().SweepNow();
  EXPECT_LE((*store)->resource_manager().pool_bytes(PoolId::kPagedPool),
            options.paged_pool_limits.upper);
}

TEST_F(ColumnStoreTest, CheckpointAndReopen) {
  // Phase 1: create a store with hot/cold data, checkpoint, close.
  {
    auto store = ColumnStore::Open(Options());
    ASSERT_TRUE(store.ok());
    TableSchema schema = SimpleSchema("persist", true);
    schema.columns.push_back(
        {"age_date", ValueType::kInt64, true, false, false});
    schema.temperature_column = 2;
    auto table = (*store)->CreateTable(schema);
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 400; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "K%06d", i);
      ASSERT_TRUE((*table)
                      ->Insert({Value(std::string(buf)), Value(int64_t{i}),
                                Value(int64_t{i / 10})})
                      .ok());
    }
    ASSERT_TRUE((*table)->MergeAll().ok());
    ASSERT_TRUE((*table)->AddColdPartition().ok());
    ASSERT_TRUE((*table)->AgeRows(Value(int64_t{19})).ok());  // 200 rows
    ASSERT_TRUE((*store)->Checkpoint().ok());
  }

  // Phase 2: reopen; the table, both partitions and all data must be back.
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto table = (*store)->GetTable("persist");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->partition_count(), 2u);
  EXPECT_EQ((*table)->visible_row_count(), 400u);
  EXPECT_EQ((*table)->hot()->main_row_count(), 200u);
  EXPECT_EQ((*table)->partition(1)->main_row_count(), 200u);
  EXPECT_TRUE((*table)->partition(1)->cold());
  for (int i : {0, 150, 199, 200, 399}) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "K%06d", i);
    auto r = (*table)->SelectByValue("k", Value(std::string(buf)), {"v"});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->rows.size(), 1u) << "key " << i;
    EXPECT_EQ(r->rows[0][0].AsInt64(), i);
  }
  // And the reopened store keeps working: new inserts + another checkpoint.
  ASSERT_TRUE((*table)
                  ->Insert({Value(std::string("K999999")),
                            Value(int64_t{999999}), Value(int64_t{99})})
                  .ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());
  auto r = (*table)->SelectByValue("k", Value(std::string("K999999")), {"v"});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
}

TEST_F(ColumnStoreTest, FreshDirectoryHasNoCatalog) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  EXPECT_FALSE((*store)->GetTable("anything").ok());
}

TEST_F(ColumnStoreTest, ErpWorkloadThroughFacade) {
  auto store = ColumnStore::Open(Options());
  ASSERT_TRUE(store.ok());
  ErpConfig config;
  config.rows = 2000;
  config.variant = TableVariant::kPagedAll;
  auto table = (*store)->CreateTable(MakeErpSchema(config, "erp"));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(PopulateErpTable(*table, config).ok());
  ErpWorkload workload(config, 23);
  auto result =
      (*table)->SelectByValue("pk", workload.PkOfRow(workload.RandomRow()), {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace payg
