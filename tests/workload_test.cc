#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "buffer/resource_manager.h"
#include "workload/erp.h"

namespace payg {
namespace {

ErpConfig SmallConfig(TableVariant variant, bool indexes) {
  ErpConfig config;
  config.rows = 5000;
  config.variant = variant;
  config.with_indexes = indexes;
  return config;
}

TEST(ErpColumnsTest, LayoutMatchesConfig) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  auto cols = MakeErpColumns(config);
  EXPECT_EQ(cols.size(), config.column_count());
  EXPECT_EQ(cols[0].name, "pk");
  EXPECT_TRUE(cols[0].unique);
  EXPECT_EQ(cols[0].cardinality, config.rows);
  EXPECT_EQ(cols[1].name, "aging_date");
  // Cardinality mix per §6.1: most columns < 100 distinct, the high-card
  // ones > 1000.
  uint32_t low = 0, high = 0;
  for (size_t i = 2; i < cols.size(); ++i) {
    if (cols[i].cardinality < 100) {
      ++low;
    } else if (cols[i].cardinality > 1000) {
      ++high;
    }
  }
  EXPECT_EQ(low, config.low_card_int_cols + config.low_card_str_cols +
                     config.decimal_cols + config.double_cols);
  EXPECT_EQ(high, config.high_card_int_cols + config.high_card_str_cols);
}

TEST(ErpColumnsTest, ValuesAreMonotoneInK) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  for (const auto& col : MakeErpColumns(config)) {
    uint64_t probe = std::min<uint64_t>(col.cardinality, 200);
    for (uint64_t k = 1; k < probe; ++k) {
      EXPECT_LT(col.ValueAt(k - 1).Compare(col.ValueAt(k)), 0)
          << col.name << " k=" << k;
    }
  }
}

TEST(ErpSchemaTest, VariantsSetPagedFlags) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  auto base = MakeErpSchema(config, "tb");
  for (const auto& c : base.columns) EXPECT_FALSE(c.page_loadable);

  config.variant = TableVariant::kPagedAll;
  auto paged = MakeErpSchema(config, "tp");
  for (const auto& c : paged.columns) {
    EXPECT_EQ(c.page_loadable, !c.primary_key) << c.name;
  }

  config.variant = TableVariant::kPagedPkOnly;
  auto pk_only = MakeErpSchema(config, "tpp");
  for (const auto& c : pk_only.columns) {
    EXPECT_EQ(c.page_loadable, c.primary_key) << c.name;
  }
}

TEST(ErpSchemaTest, IndexFlags) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  auto schema = MakeErpSchema(config, "t");
  for (const auto& c : schema.columns) {
    EXPECT_EQ(c.with_index, c.primary_key) << c.name;
  }
  config.with_indexes = true;
  auto indexed = MakeErpSchema(config, "ti");
  for (const auto& c : indexed.columns) EXPECT_TRUE(c.with_index) << c.name;
  EXPECT_EQ(schema.temperature_column, 1);
}

class ErpPopulateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_erp_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 16 * 1024;
    opts.dict_page_size = 32 * 1024;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

TEST_F(ErpPopulateTest, PopulatedTableAnswersPkQueries) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  Table table(MakeErpSchema(config, "tb"), storage_.get(), rm_.get());
  ASSERT_TRUE(PopulateErpTable(&table, config).ok());
  EXPECT_EQ(table.row_count(), config.rows);

  ErpWorkload workload(config, 7);
  for (int i = 0; i < 10; ++i) {
    uint64_t row = workload.RandomRow();
    auto result = table.SelectByValue("pk", workload.PkOfRow(row), {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->rows.size(), 1u) << "row " << row;
    EXPECT_TRUE(result->rows[0][0] == workload.PkOfRow(row));
  }
}

TEST_F(ErpPopulateTest, PagedAndBaseVariantsAgree) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  Table base(MakeErpSchema(config, "tb"), storage_.get(), rm_.get());
  ASSERT_TRUE(PopulateErpTable(&base, config).ok());
  config.variant = TableVariant::kPagedAll;
  Table paged(MakeErpSchema(config, "tp"), storage_.get(), rm_.get());
  ASSERT_TRUE(PopulateErpTable(&paged, config).ok());

  ErpWorkload workload(config, 11);
  for (int i = 0; i < 10; ++i) {
    uint64_t row = workload.RandomRow();
    auto a = base.SelectByValue("pk", workload.PkOfRow(row), {});
    auto b = paged.SelectByValue("pk", workload.PkOfRow(row), {});
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->rows.size(), 1u);
    ASSERT_EQ(b->rows.size(), 1u);
    for (size_t c = 0; c < a->rows[0].size(); ++c) {
      EXPECT_TRUE(a->rows[0][c] == b->rows[0][c]) << "col " << c;
    }
  }
  // COUNT queries agree too.
  ErpWorkload w2(config, 13);
  int col = w2.RandomColumnOfType(ValueType::kInt64, false);
  ASSERT_GE(col, 0);
  const std::string& name = w2.columns()[col].name;
  Value v = w2.RandomValueOf(col);
  auto ca = base.CountByValue(name, v);
  auto cb = paged.CountByValue(name, v);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(*ca, *cb);
  EXPECT_GT(*ca, 0u);
}

TEST_F(ErpPopulateTest, AgingDateCorrelatesWithRowOrder) {
  ErpConfig config = SmallConfig(TableVariant::kBase, false);
  Table table(MakeErpSchema(config, "tb"), storage_.get(), rm_.get());
  ASSERT_TRUE(PopulateErpTable(&table, config).ok());
  // The oldest ~20% of rows have the smallest dates: a range count on the
  // temperature column returns about rows/5.
  auto cols = MakeErpColumns(config);
  int64_t threshold =
      cols[1].ValueAt(cols[1].cardinality / 5).AsInt64();
  auto result = table.SelectRange("aging_date", Value(int64_t{0}),
                                  Value(threshold), {"aging_date"});
  ASSERT_TRUE(result.ok());
  double frac =
      static_cast<double>(result->rows.size()) / static_cast<double>(config.rows);
  EXPECT_GT(frac, 0.15);
  EXPECT_LT(frac, 0.25);
}

TEST(ErpWorkloadTest, DeterministicAndInRange) {
  ErpConfig config;
  config.rows = 1000;
  ErpWorkload a(config, 5), b(config, 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.RandomRow(), b.RandomRow());
  }
  ErpWorkload w(config, 9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(w.RandomRow(), config.rows);
  }
}

TEST(ErpWorkloadTest, RandomColumnOfTypeFilters) {
  ErpConfig config;
  config.rows = 50000;  // large enough that high-card columns exceed 1000
  ErpWorkload w(config, 3);
  std::set<int> low_int, high_str;
  for (int i = 0; i < 60; ++i) {
    int c1 = w.RandomColumnOfType(ValueType::kInt64, false);
    ASSERT_GE(c1, 0);
    EXPECT_LE(w.columns()[c1].cardinality, 1000u);
    EXPECT_EQ(w.columns()[c1].type, ValueType::kInt64);
    low_int.insert(c1);
    int c2 = w.RandomColumnOfType(ValueType::kString, true);
    ASSERT_GE(c2, 0);
    EXPECT_GT(w.columns()[c2].cardinality, 1000u);
    high_str.insert(c2);
  }
  EXPECT_GT(low_int.size(), 1u);  // picks among several candidates
}

TEST(ErpWorkloadTest, PkRangeRespectsSelectivity) {
  ErpConfig config;
  config.rows = 100000;
  ErpWorkload w(config, 17);
  for (double sel : {0.0001, 0.001, 0.01}) {
    auto [lo, hi] = w.RandomPkRange(sel);
    EXPECT_LT(lo.Compare(hi), sel >= 0.0001 ? 1 : 2);
    // Decode the span from the zero-padded doc numbers.
    uint64_t lo_n = std::stoull(lo.AsString().substr(3));
    uint64_t hi_n = std::stoull(hi.AsString().substr(3));
    EXPECT_EQ(hi_n - lo_n + 1,
              static_cast<uint64_t>(config.rows * sel));
  }
}

}  // namespace
}  // namespace payg
