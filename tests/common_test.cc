#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "common/bit_util.h"
#include "common/crc32.h"
#include "common/env.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace payg {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing column");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing column");
  EXPECT_EQ(s.ToString(), "NotFound: missing column");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_FALSE(Status::Corruption("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PAYG_ASSIGN_OR_RETURN(int h, Half(x));
  PAYG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2 = 3, second Half fails
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(BitUtilTest, BitsNeeded) {
  EXPECT_EQ(BitsNeeded(0), 1u);
  EXPECT_EQ(BitsNeeded(1), 1u);
  EXPECT_EQ(BitsNeeded(2), 2u);
  EXPECT_EQ(BitsNeeded(3), 2u);
  EXPECT_EQ(BitsNeeded(4), 3u);
  EXPECT_EQ(BitsNeeded(255), 8u);
  EXPECT_EQ(BitsNeeded(256), 9u);
  EXPECT_EQ(BitsNeeded(~uint64_t{0}), 64u);
}

TEST(BitUtilTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(32), 0xFFFFFFFFu);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(BitUtilTest, AlignAndCeil) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
  EXPECT_EQ(CeilDiv(0, 7), 0u);
  EXPECT_EQ(CeilDiv(1, 7), 1u);
  EXPECT_EQ(CeilDiv(7, 7), 1u);
  EXPECT_EQ(CeilDiv(8, 7), 2u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, CoversTheRange) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") is the classic check value 0xE3069283.
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32Test, SensitiveToEveryByte) {
  std::string a(128, 'a');
  uint32_t base = Crc32c(a.data(), a.size());
  for (size_t i = 0; i < a.size(); i += 17) {
    std::string b = a;
    b[i] ^= 1;
    EXPECT_NE(Crc32c(b.data(), b.size()), base) << "byte " << i;
  }
}

// Scoped setenv/unsetenv so env tests cannot leak into each other.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, /*overwrite=*/1);
    }
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(EnvTest, LongUnsetFallsBack) {
  ScopedEnv env("PAYG_TEST_KNOB", nullptr);
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 4);
}

TEST(EnvTest, LongParsesWellFormedValue) {
  ScopedEnv env("PAYG_TEST_KNOB", "7");
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 7);
}

TEST(EnvTest, LongEmptyFallsBack) {
  ScopedEnv env("PAYG_TEST_KNOB", "");
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 4);
}

TEST(EnvTest, LongGarbageFallsBack) {
  ScopedEnv env("PAYG_TEST_KNOB", "many");
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 4);
}

TEST(EnvTest, LongTrailingGarbageFallsBack) {
  ScopedEnv env("PAYG_TEST_KNOB", "7threads");
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 4);
}

TEST(EnvTest, LongOverflowFallsBack) {
  // Far past LONG_MAX: strtol reports ERANGE, so the fallback wins (the
  // value never half-parses to LONG_MAX and then clamps).
  ScopedEnv env("PAYG_TEST_KNOB", "99999999999999999999999999");
  EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 4);
}

TEST(EnvTest, LongClampsToRange) {
  {
    ScopedEnv env("PAYG_TEST_KNOB", "1000");
    EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 16);
  }
  {
    ScopedEnv env("PAYG_TEST_KNOB", "-3");
    EXPECT_EQ(EnvLong("PAYG_TEST_KNOB", 1, 16, 4), 1);
  }
}

TEST(EnvTest, FlagTrueOnlyWhenFirstCharIsOne) {
  {
    ScopedEnv env("PAYG_TEST_FLAG", "1");
    EXPECT_TRUE(EnvFlag("PAYG_TEST_FLAG"));
  }
  {
    ScopedEnv env("PAYG_TEST_FLAG", "0");
    EXPECT_FALSE(EnvFlag("PAYG_TEST_FLAG"));
  }
  {
    ScopedEnv env("PAYG_TEST_FLAG", "yes");
    EXPECT_FALSE(EnvFlag("PAYG_TEST_FLAG"));
  }
  {
    ScopedEnv env("PAYG_TEST_FLAG", nullptr);
    EXPECT_FALSE(EnvFlag("PAYG_TEST_FLAG"));
  }
}

TEST(EnvTest, RawReturnsValueOrNull) {
  {
    ScopedEnv env("PAYG_TEST_RAW", "avx2");
    ASSERT_NE(EnvRaw("PAYG_TEST_RAW"), nullptr);
    EXPECT_STREQ(EnvRaw("PAYG_TEST_RAW"), "avx2");
  }
  {
    ScopedEnv env("PAYG_TEST_RAW", nullptr);
    EXPECT_EQ(EnvRaw("PAYG_TEST_RAW"), nullptr);
  }
}

}  // namespace
}  // namespace payg
