#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/random.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "storage/byte_stream.h"
#include "storage/io_backend.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/storage_manager.h"

namespace payg {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_storage_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    auto sm = StorageManager::Open(dir_, StorageOptions());
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    storage_ = std::move(*sm);
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
};

TEST_F(StorageTest, PageHeaderIs64Bytes) {
  EXPECT_EQ(sizeof(PageHeader), 64u);
  Page p(4096);
  EXPECT_EQ(p.capacity(), 4096u - 64u);
}

TEST_F(StorageTest, PageChecksumRoundtrip) {
  Page p(4096);
  std::memcpy(p.payload(), "hello world", 11);
  p.set_payload_size(11);
  p.SealChecksum();
  EXPECT_TRUE(p.VerifyChecksum());
  p.payload()[3] ^= 0xFF;
  EXPECT_FALSE(p.VerifyChecksum());
}

TEST_F(StorageTest, AppendAndReadBack) {
  auto file = storage_->CreateChain("chain", 4096);
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 10; ++i) {
    Page p(4096);
    p.set_type(PageType::kDataVector);
    std::string content = "page " + std::to_string(i);
    std::memcpy(p.payload(), content.data(), content.size());
    p.set_payload_size(static_cast<uint32_t>(content.size()));
    auto lpn = (*file)->AppendPage(&p);
    ASSERT_TRUE(lpn.ok());
    EXPECT_EQ(*lpn, static_cast<LogicalPageNo>(i));
  }
  EXPECT_EQ((*file)->page_count(), 10u);
  Page p(4096);
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE((*file)->ReadPage(i, &p).ok());
    std::string expect = "page " + std::to_string(i);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(p.payload()),
                          p.payload_size()),
              expect);
    EXPECT_EQ(p.type(), PageType::kDataVector);
    EXPECT_EQ(p.header()->logical_page_no, static_cast<LogicalPageNo>(i));
  }
}

TEST_F(StorageTest, ReadPastEndFails) {
  auto file = storage_->CreateChain("chain", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  auto s = (*file)->ReadPage(0, &p);
  EXPECT_TRUE(s.IsOutOfRange());
}

TEST_F(StorageTest, ReopenExistingChain) {
  {
    auto file = storage_->CreateChain("persist", 4096);
    ASSERT_TRUE(file.ok());
    Page p(4096);
    p.set_payload_size(0);
    ASSERT_TRUE((*file)->AppendPage(&p).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto reopened = storage_->OpenChain("persist", 4096);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 1u);
}

TEST_F(StorageTest, OpenMissingChainFails) {
  auto r = storage_->OpenChain("does_not_exist", 4096);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(StorageTest, CorruptionIsDetected) {
  auto file = storage_->CreateChain("corrupt", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  std::memcpy(p.payload(), "sensitive", 9);
  p.set_payload_size(9);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  file->reset();

  // Flip a payload byte directly in the file.
  {
    std::string path = dir_ + "/corrupt";
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 2, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 64 + 2, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto reopened = storage_->OpenChain("corrupt", 4096);
  ASSERT_TRUE(reopened.ok());
  Page q(4096);
  auto s = (*reopened)->ReadPage(0, &q);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(StorageTest, OversizedPayloadSizeRejected) {
  // A header claiming more payload than the page holds must be rejected
  // before anything (the CRC walk included) strides payload_size bytes.
  auto file = storage_->CreateChain("oversize", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  std::memcpy(p.payload(), "payload", 7);
  p.set_payload_size(7);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  file->reset();

  // payload_size lives at header offset 24 (magic + version/type + lpn +
  // structure_id), outside the payload CRC.
  {
    std::string path = dir_ + "/oversize";
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const uint32_t huge = 0xFFFFFFF0u;
    ASSERT_EQ(std::fseek(f, 24, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(&huge, sizeof(huge), 1, f), 1u);
    std::fclose(f);
  }
  auto reopened = storage_->OpenChain("oversize", 4096);
  ASSERT_TRUE(reopened.ok());
  Page q(4096);
  auto s = (*reopened)->ReadPage(0, &q);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("exceeds page capacity"), std::string::npos)
      << s.ToString();
}

TEST_F(StorageTest, MismatchedPageSizeOnOpenFails) {
  {
    auto file = storage_->CreateChain("sized", 4096);
    ASSERT_TRUE(file.ok());
    Page p(4096);
    ASSERT_TRUE((*file)->AppendPage(&p).ok());
  }
  auto r = storage_->OpenChain("sized", 4096 * 3);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(StorageTest, IoStatsCountTraffic) {
  auto file = storage_->CreateChain("stats", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  ASSERT_TRUE((*file)->ReadPage(1, &p).ok());
  EXPECT_EQ(storage_->io_stats().pages_written.load(), 2u);
  EXPECT_EQ(storage_->io_stats().pages_read.load(), 1u);
  EXPECT_EQ(storage_->io_stats().bytes_written.load(), 2u * 4096u);
}

TEST_F(StorageTest, DropChainRemovesFile) {
  {
    auto file = storage_->CreateChain("gone", 4096);
    ASSERT_TRUE(file.ok());
  }
  ASSERT_TRUE(storage_->DropChain("gone").ok());
  EXPECT_FALSE(storage_->OpenChain("gone", 4096).ok());
}

TEST_F(StorageTest, ByteStreamRoundtripAcrossPages) {
  auto file = storage_->CreateChain("stream", 4096);
  ASSERT_TRUE(file.ok());
  Random rng(5);
  std::vector<uint64_t> numbers;
  std::vector<std::string> strings;
  {
    ChainByteWriter w(file->get());
    w.PutU8(0xAB);
    for (int i = 0; i < 2000; ++i) {  // well past one page
      uint64_t v = rng.Next();
      numbers.push_back(v);
      w.PutU64(v);
    }
    for (int i = 0; i < 50; ++i) {
      std::string s(rng.Uniform(300), static_cast<char>('a' + i % 26));
      strings.push_back(s);
      w.PutString(s);
    }
    w.PutI64(-123456789);
    w.PutDouble(3.5);
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_GT((*file)->page_count(), 3u);
  ChainByteReader r(file->get());
  auto u8 = r.GetU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 0xAB);
  for (uint64_t expect : numbers) {
    auto v = r.GetU64();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, expect);
  }
  for (const std::string& expect : strings) {
    auto s = r.GetString();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, expect);
  }
  auto i = r.GetI64();
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, -123456789);
  auto d = r.GetDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 3.5);
  // Stream exhausted now.
  EXPECT_TRUE(r.GetU64().status().IsOutOfRange());
}

TEST_F(StorageTest, ByteStreamEmptyStream) {
  auto file = storage_->CreateChain("empty", 4096);
  ASSERT_TRUE(file.ok());
  {
    ChainByteWriter w(file->get());
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_EQ((*file)->page_count(), 1u);  // one empty page marks the stream
  ChainByteReader r(file->get());
  EXPECT_TRUE(r.GetU8().status().IsOutOfRange());
}

TEST_F(StorageTest, NonCriticalChainsUseScmLatency) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 5000;  // "disk"
  opts.scm_for_noncritical = true;
  opts.scm_read_latency_us = 0;  // SCM modeled as free here
  auto sm = StorageManager::Open(dir_ + "/scm", opts);
  ASSERT_TRUE(sm.ok());

  auto disk_chain = (*sm)->CreateChain("critical", 4096);
  ASSERT_TRUE(disk_chain.ok());
  auto scm_chain = (*sm)->CreateNonCriticalChain("rebuildable", 4096);
  ASSERT_TRUE(scm_chain.ok());
  Page p(4096);
  ASSERT_TRUE((*disk_chain)->AppendPage(&p).ok());
  ASSERT_TRUE((*scm_chain)->AppendPage(&p).ok());

  Stopwatch disk_timer;
  ASSERT_TRUE((*disk_chain)->ReadPage(0, &p).ok());
  double disk_ms = disk_timer.ElapsedMillis();
  Stopwatch scm_timer;
  ASSERT_TRUE((*scm_chain)->ReadPage(0, &p).ok());
  double scm_ms = scm_timer.ElapsedMillis();
  EXPECT_GE(disk_ms, 4.0);
  EXPECT_LT(scm_ms, disk_ms / 4);
}

TEST_F(StorageTest, NonCriticalChainsMatchDiskWhenScmDisabled) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 2000;
  opts.scm_for_noncritical = false;
  auto sm = StorageManager::Open(dir_ + "/noscm", opts);
  ASSERT_TRUE(sm.ok());
  auto chain = (*sm)->CreateNonCriticalChain("x", 4096);
  ASSERT_TRUE(chain.ok());
  Page p(4096);
  ASSERT_TRUE((*chain)->AppendPage(&p).ok());
  Stopwatch timer;
  ASSERT_TRUE((*chain)->ReadPage(0, &p).ok());
  EXPECT_GE(timer.ElapsedMillis(), 1.5);
}

// Remaining EINTR injections; the hook is consulted before every read
// syscall on any backend, so a positive budget interrupts the next calls.
std::atomic<int> g_eintr_budget{0};
int EintrHook() { return g_eintr_budget.fetch_sub(1) > 0 ? EINTR : 0; }

// One-shot EIO injection.
std::atomic<int> g_eio_budget{0};
int EioHook() { return g_eio_budget.fetch_sub(1) > 0 ? EIO : 0; }

// Runs every batched-I/O test under both backends. The uring leg skips
// (not fails) on kernels without io_uring, which is what lets CI pin
// PAYG_IO_BACKEND=uring on hosts that may lack it.
class IoBackendTest : public StorageTest,
                      public ::testing::WithParamInterface<const char*> {
 protected:
  void SetUp() override {
    StorageTest::SetUp();
    if (std::strcmp(GetParam(), "uring") == 0 && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
    saved_backend_ = CurrentIoBackend()->name();
    ASSERT_TRUE(SetIoBackend(GetParam()).ok());
  }

  void TearDown() override {
    SetIoFaultHookForTest(nullptr);
    g_eintr_budget.store(0);
    g_eio_budget.store(0);
    if (saved_backend_ != nullptr) {
      ASSERT_TRUE(SetIoBackend(saved_backend_).ok());
    }
    StorageTest::TearDown();
  }

  // Move-only Page has no fill constructor.
  static std::vector<Page> MakePages(size_t n) {
    std::vector<Page> v;
    v.reserve(n);
    for (size_t i = 0; i < n; ++i) v.emplace_back(4096);
    return v;
  }

  // Appends `n` pages whose payload identifies their lpn.
  std::unique_ptr<PageFile> MakeChain(const std::string& name, int n) {
    auto file = storage_->CreateChain(name, 4096);
    EXPECT_TRUE(file.ok());
    for (int i = 0; i < n; ++i) {
      Page p(4096);
      std::string content = "batch page " + std::to_string(i);
      std::memcpy(p.payload(), content.data(), content.size());
      p.set_payload_size(static_cast<uint32_t>(content.size()));
      EXPECT_TRUE((*file)->AppendPage(&p).ok());
    }
    return std::move(*file);
  }

  const char* saved_backend_ = nullptr;
};

TEST_P(IoBackendTest, BatchRoundtripCallsDoneOncePerPage) {
  auto file = MakeChain("batch", 16);
  auto* batches = obs::MetricsRegistry::Global().counter("io.batches_submitted");
  const uint64_t batches_before = batches->value();

  // Mixed contiguous + scattered lpns: exercises run coalescing and the
  // multi-run submission path.
  std::vector<LogicalPageNo> lpns = {0, 1, 2, 3, 8, 9, 12, 5};
  const size_t n = lpns.size();
  std::vector<Page> pages = MakePages(n);
  std::vector<Page*> raw(n);
  for (size_t i = 0; i < n; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(n);
  std::vector<int> done_calls(n, 0);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), n, nullptr,
                  [&](size_t i) {
                    // The status must be final when the hook fires.
                    EXPECT_TRUE(sts[i].ok()) << sts[i].ToString();
                    ++done_calls[i];
                  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(sts[i].ok()) << "page " << lpns[i] << ": " << sts[i].ToString();
    EXPECT_EQ(done_calls[i], 1) << "page " << lpns[i];
    std::string expect = "batch page " + std::to_string(lpns[i]);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(pages[i].payload()),
                          pages[i].payload_size()),
              expect);
  }
  EXPECT_EQ(batches->value(), batches_before + 1);
}

TEST_P(IoBackendTest, OutOfRangePageFailsAlone) {
  auto file = MakeChain("oorange", 4);
  std::vector<LogicalPageNo> lpns = {0, 99, 2};
  std::vector<Page> pages = MakePages(3);
  std::vector<Page*> raw = {&pages[0], &pages[1], &pages[2]};
  std::vector<Status> sts(3);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), 3);
  EXPECT_TRUE(sts[0].ok()) << sts[0].ToString();
  EXPECT_TRUE(sts[1].IsOutOfRange()) << sts[1].ToString();
  EXPECT_TRUE(sts[2].ok()) << sts[2].ToString();
}

TEST_P(IoBackendTest, ShortReadMidBatchFailsOnlyTruncatedPages) {
  auto file = MakeChain("trunc", 8);
  // Chop the last two pages off the file underneath the open fd: the
  // page_count_ the reader believes in still says 8.
  std::filesystem::resize_file(dir_ + "/trunc", 6 * 4096);

  std::vector<LogicalPageNo> lpns = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<Page> pages = MakePages(8);
  std::vector<Page*> raw(8);
  for (size_t i = 0; i < 8; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(8);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), 8);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(sts[i].ok()) << "page " << i << ": " << sts[i].ToString();
  }
  for (size_t i = 6; i < 8; ++i) {
    EXPECT_TRUE(sts[i].IsIOError()) << "page " << i << ": " << sts[i].ToString();
  }
  // Restore the file so TearDown's temp-dir sweep has nothing odd to see.
}

TEST_P(IoBackendTest, EintrIsRetriedToCompletion) {
  auto file = MakeChain("eintr", 6);
  g_eintr_budget.store(3);
  SetIoFaultHookForTest(&EintrHook);
  std::vector<LogicalPageNo> lpns = {0, 1, 2, 3, 4, 5};
  std::vector<Page> pages = MakePages(6);
  std::vector<Page*> raw(6);
  for (size_t i = 0; i < 6; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(6);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), 6);
  SetIoFaultHookForTest(nullptr);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(sts[i].ok()) << "page " << i << ": " << sts[i].ToString();
  }
  // The single-page path retries through the same hook.
  g_eintr_budget.store(2);
  SetIoFaultHookForTest(&EintrHook);
  Page p(4096);
  EXPECT_TRUE(file->ReadPage(3, &p).ok());
  SetIoFaultHookForTest(nullptr);
}

TEST_P(IoBackendTest, HardFaultLeavesNoPageWithoutStatus) {
  auto file = MakeChain("eio", 8);
  g_eio_budget.store(1);
  SetIoFaultHookForTest(&EioHook);
  // Scattered pages: several independent runs, so a mid-batch device error
  // can only take down the run(s) it actually hit.
  std::vector<LogicalPageNo> lpns = {0, 2, 4, 6};
  std::vector<Page> pages = MakePages(4);
  std::vector<Page*> raw(4);
  for (size_t i = 0; i < 4; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(4);
  std::vector<int> done_calls(4, 0);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), 4, nullptr,
                  [&](size_t i) { ++done_calls[i]; });
  SetIoFaultHookForTest(nullptr);
  size_t failed = 0;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(done_calls[i], 1) << "page " << lpns[i];
    if (!sts[i].ok()) {
      EXPECT_TRUE(sts[i].IsIOError()) << sts[i].ToString();
      ++failed;
    }
  }
  EXPECT_GE(failed, 1u);
  // The backend recovers: the same batch succeeds once the fault clears.
  std::vector<Status> sts2(4);
  file->ReadPages(lpns.data(), raw.data(), sts2.data(), 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sts2[i].ok()) << "page " << lpns[i] << ": " << sts2[i].ToString();
  }
}

TEST_P(IoBackendTest, ChecksumFailureIsCountedAndIsolated) {
  auto file = MakeChain("cksum", 6);
  file.reset();
  {
    // Flip a payload byte of page 3 directly in the file.
    std::string path = dir_ + "/cksum";
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 3 * 4096 + 64 + 2, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 3 * 4096 + 64 + 2, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto reopened = storage_->OpenChain("cksum", 4096);
  ASSERT_TRUE(reopened.ok());
  auto* fails = obs::MetricsRegistry::Global().counter("io.checksum_fail");
  const uint64_t fails_before = fails->value();

  std::vector<LogicalPageNo> lpns = {0, 1, 2, 3, 4, 5};
  std::vector<Page> pages = MakePages(6);
  std::vector<Page*> raw(6);
  for (size_t i = 0; i < 6; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(6);
  (*reopened)->ReadPages(lpns.data(), raw.data(), sts.data(), 6);
  for (size_t i = 0; i < 6; ++i) {
    if (i == 3) {
      EXPECT_TRUE(sts[i].IsCorruption()) << sts[i].ToString();
    } else {
      EXPECT_TRUE(sts[i].ok()) << "page " << i << ": " << sts[i].ToString();
    }
  }
  EXPECT_EQ(fails->value(), fails_before + 1);
}

// Faults every read syscall from the second one onward: the first
// submission succeeds, so on the uring backend the hard failure strikes
// while SQEs are still in the kernel.
std::atomic<int> g_fault_call{0};
int SecondCallOnwardEioHook() {
  return g_fault_call.fetch_add(1) >= 1 ? EIO : 0;
}

TEST_P(IoBackendTest, HardFaultWithInflightIsDrainedAndIsolated) {
  auto file = MakeChain("drain", 16);
  const uint32_t saved_depth = IoQueueDepth();
  // 16 contiguous pages are 4 SQE-capped runs on uring; depth 2 forces at
  // least two submission waves, so the fault is guaranteed to strike a
  // batch with completed and in-flight runs on the ring. The backend must
  // reap the kernel-held SQEs before ReadPages returns — under ASan the
  // alternative is a completion landing in freed page buffers.
  SetIoQueueDepth(2);
  g_fault_call.store(0);
  SetIoFaultHookForTest(&SecondCallOnwardEioHook);
  const size_t n = 16;
  std::vector<LogicalPageNo> lpns(n);
  for (size_t i = 0; i < n; ++i) lpns[i] = static_cast<LogicalPageNo>(i);
  std::vector<Page> pages = MakePages(n);
  std::vector<Page*> raw(n);
  for (size_t i = 0; i < n; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(n);
  std::vector<int> done_calls(n, 0);
  file->ReadPages(lpns.data(), raw.data(), sts.data(), n, nullptr,
                  [&](size_t i) { ++done_calls[i]; });
  SetIoFaultHookForTest(nullptr);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(done_calls[i], 1) << "page " << i;
    if (sts[i].ok()) {
      // Pages drained as complete during the abort carry real data.
      std::string expect = "batch page " + std::to_string(i);
      EXPECT_EQ(std::string(reinterpret_cast<char*>(pages[i].payload()),
                            pages[i].payload_size()),
                expect);
    } else {
      EXPECT_TRUE(sts[i].IsIOError()) << "page " << i << ": "
                                      << sts[i].ToString();
    }
  }
  // Nothing stale survives the abort: the aborted batch's unsubmitted
  // SQEs must not be submitted by (or its leftover completions reaped
  // into) this next batch.
  std::vector<Status> sts2(n);
  file->ReadPages(lpns.data(), raw.data(), sts2.data(), n);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(sts2[i].ok()) << "page " << i << ": " << sts2[i].ToString();
    std::string expect = "batch page " + std::to_string(i);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(pages[i].payload()),
                          pages[i].payload_size()),
              expect);
  }
  SetIoQueueDepth(saved_depth);
}

int AlwaysEintrHook() { return EINTR; }

TEST_P(IoBackendTest, PersistentEintrFailsInsteadOfSpinning) {
  auto file = MakeChain("spin", 4);
  SetIoFaultHookForTest(&AlwaysEintrHook);
  std::vector<LogicalPageNo> lpns = {0, 1, 2, 3};
  std::vector<Page> pages = MakePages(4);
  std::vector<Page*> raw(4);
  for (size_t i = 0; i < 4; ++i) raw[i] = &pages[i];
  std::vector<Status> sts(4);
  // Both backends cap transient retries; an EINTR storm that never ends
  // must surface as per-page errors, not an infinite syscall loop.
  file->ReadPages(lpns.data(), raw.data(), sts.data(), 4);
  SetIoFaultHookForTest(nullptr);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sts[i].IsIOError()) << "page " << i << ": "
                                    << sts[i].ToString();
  }
  std::vector<Status> sts2(4);
  file->ReadPages(lpns.data(), raw.data(), sts2.data(), 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(sts2[i].ok()) << "page " << i << ": " << sts2[i].ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, IoBackendTest,
                         ::testing::Values("sync", "uring"));

TEST_F(StorageTest, SimulatedLatencySlowsReads) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 2000;
  auto slow_sm = StorageManager::Open(dir_ + "/slow", opts);
  ASSERT_TRUE(slow_sm.ok());
  auto file = (*slow_sm)->CreateChain("lat", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  Stopwatch timer;
  ASSERT_TRUE((*file)->ReadPage(0, &p).ok());
  EXPECT_GE(timer.ElapsedMicros(), 1500.0);
}

}  // namespace
}  // namespace payg
