#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "common/random.h"
#include "common/stopwatch.h"
#include "storage/byte_stream.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/storage_manager.h"

namespace payg {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_storage_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    auto sm = StorageManager::Open(dir_, StorageOptions());
    ASSERT_TRUE(sm.ok()) << sm.status().ToString();
    storage_ = std::move(*sm);
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
};

TEST_F(StorageTest, PageHeaderIs64Bytes) {
  EXPECT_EQ(sizeof(PageHeader), 64u);
  Page p(4096);
  EXPECT_EQ(p.capacity(), 4096u - 64u);
}

TEST_F(StorageTest, PageChecksumRoundtrip) {
  Page p(4096);
  std::memcpy(p.payload(), "hello world", 11);
  p.set_payload_size(11);
  p.SealChecksum();
  EXPECT_TRUE(p.VerifyChecksum());
  p.payload()[3] ^= 0xFF;
  EXPECT_FALSE(p.VerifyChecksum());
}

TEST_F(StorageTest, AppendAndReadBack) {
  auto file = storage_->CreateChain("chain", 4096);
  ASSERT_TRUE(file.ok());
  for (int i = 0; i < 10; ++i) {
    Page p(4096);
    p.set_type(PageType::kDataVector);
    std::string content = "page " + std::to_string(i);
    std::memcpy(p.payload(), content.data(), content.size());
    p.set_payload_size(static_cast<uint32_t>(content.size()));
    auto lpn = (*file)->AppendPage(&p);
    ASSERT_TRUE(lpn.ok());
    EXPECT_EQ(*lpn, static_cast<LogicalPageNo>(i));
  }
  EXPECT_EQ((*file)->page_count(), 10u);
  Page p(4096);
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE((*file)->ReadPage(i, &p).ok());
    std::string expect = "page " + std::to_string(i);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(p.payload()),
                          p.payload_size()),
              expect);
    EXPECT_EQ(p.type(), PageType::kDataVector);
    EXPECT_EQ(p.header()->logical_page_no, static_cast<LogicalPageNo>(i));
  }
}

TEST_F(StorageTest, ReadPastEndFails) {
  auto file = storage_->CreateChain("chain", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  auto s = (*file)->ReadPage(0, &p);
  EXPECT_TRUE(s.IsOutOfRange());
}

TEST_F(StorageTest, ReopenExistingChain) {
  {
    auto file = storage_->CreateChain("persist", 4096);
    ASSERT_TRUE(file.ok());
    Page p(4096);
    p.set_payload_size(0);
    ASSERT_TRUE((*file)->AppendPage(&p).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  auto reopened = storage_->OpenChain("persist", 4096);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 1u);
}

TEST_F(StorageTest, OpenMissingChainFails) {
  auto r = storage_->OpenChain("does_not_exist", 4096);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST_F(StorageTest, CorruptionIsDetected) {
  auto file = storage_->CreateChain("corrupt", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  std::memcpy(p.payload(), "sensitive", 9);
  p.set_payload_size(9);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  file->reset();

  // Flip a payload byte directly in the file.
  {
    std::string path = dir_ + "/corrupt";
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 64 + 2, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_EQ(std::fseek(f, 64 + 2, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto reopened = storage_->OpenChain("corrupt", 4096);
  ASSERT_TRUE(reopened.ok());
  Page q(4096);
  auto s = (*reopened)->ReadPage(0, &q);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(StorageTest, MismatchedPageSizeOnOpenFails) {
  {
    auto file = storage_->CreateChain("sized", 4096);
    ASSERT_TRUE(file.ok());
    Page p(4096);
    ASSERT_TRUE((*file)->AppendPage(&p).ok());
  }
  auto r = storage_->OpenChain("sized", 4096 * 3);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(StorageTest, IoStatsCountTraffic) {
  auto file = storage_->CreateChain("stats", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  ASSERT_TRUE((*file)->ReadPage(1, &p).ok());
  EXPECT_EQ(storage_->io_stats().pages_written.load(), 2u);
  EXPECT_EQ(storage_->io_stats().pages_read.load(), 1u);
  EXPECT_EQ(storage_->io_stats().bytes_written.load(), 2u * 4096u);
}

TEST_F(StorageTest, DropChainRemovesFile) {
  {
    auto file = storage_->CreateChain("gone", 4096);
    ASSERT_TRUE(file.ok());
  }
  ASSERT_TRUE(storage_->DropChain("gone").ok());
  EXPECT_FALSE(storage_->OpenChain("gone", 4096).ok());
}

TEST_F(StorageTest, ByteStreamRoundtripAcrossPages) {
  auto file = storage_->CreateChain("stream", 4096);
  ASSERT_TRUE(file.ok());
  Random rng(5);
  std::vector<uint64_t> numbers;
  std::vector<std::string> strings;
  {
    ChainByteWriter w(file->get());
    w.PutU8(0xAB);
    for (int i = 0; i < 2000; ++i) {  // well past one page
      uint64_t v = rng.Next();
      numbers.push_back(v);
      w.PutU64(v);
    }
    for (int i = 0; i < 50; ++i) {
      std::string s(rng.Uniform(300), static_cast<char>('a' + i % 26));
      strings.push_back(s);
      w.PutString(s);
    }
    w.PutI64(-123456789);
    w.PutDouble(3.5);
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_GT((*file)->page_count(), 3u);
  ChainByteReader r(file->get());
  auto u8 = r.GetU8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(*u8, 0xAB);
  for (uint64_t expect : numbers) {
    auto v = r.GetU64();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, expect);
  }
  for (const std::string& expect : strings) {
    auto s = r.GetString();
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, expect);
  }
  auto i = r.GetI64();
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, -123456789);
  auto d = r.GetDouble();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 3.5);
  // Stream exhausted now.
  EXPECT_TRUE(r.GetU64().status().IsOutOfRange());
}

TEST_F(StorageTest, ByteStreamEmptyStream) {
  auto file = storage_->CreateChain("empty", 4096);
  ASSERT_TRUE(file.ok());
  {
    ChainByteWriter w(file->get());
    ASSERT_TRUE(w.Finish().ok());
  }
  EXPECT_EQ((*file)->page_count(), 1u);  // one empty page marks the stream
  ChainByteReader r(file->get());
  EXPECT_TRUE(r.GetU8().status().IsOutOfRange());
}

TEST_F(StorageTest, NonCriticalChainsUseScmLatency) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 5000;  // "disk"
  opts.scm_for_noncritical = true;
  opts.scm_read_latency_us = 0;  // SCM modeled as free here
  auto sm = StorageManager::Open(dir_ + "/scm", opts);
  ASSERT_TRUE(sm.ok());

  auto disk_chain = (*sm)->CreateChain("critical", 4096);
  ASSERT_TRUE(disk_chain.ok());
  auto scm_chain = (*sm)->CreateNonCriticalChain("rebuildable", 4096);
  ASSERT_TRUE(scm_chain.ok());
  Page p(4096);
  ASSERT_TRUE((*disk_chain)->AppendPage(&p).ok());
  ASSERT_TRUE((*scm_chain)->AppendPage(&p).ok());

  Stopwatch disk_timer;
  ASSERT_TRUE((*disk_chain)->ReadPage(0, &p).ok());
  double disk_ms = disk_timer.ElapsedMillis();
  Stopwatch scm_timer;
  ASSERT_TRUE((*scm_chain)->ReadPage(0, &p).ok());
  double scm_ms = scm_timer.ElapsedMillis();
  EXPECT_GE(disk_ms, 4.0);
  EXPECT_LT(scm_ms, disk_ms / 4);
}

TEST_F(StorageTest, NonCriticalChainsMatchDiskWhenScmDisabled) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 2000;
  opts.scm_for_noncritical = false;
  auto sm = StorageManager::Open(dir_ + "/noscm", opts);
  ASSERT_TRUE(sm.ok());
  auto chain = (*sm)->CreateNonCriticalChain("x", 4096);
  ASSERT_TRUE(chain.ok());
  Page p(4096);
  ASSERT_TRUE((*chain)->AppendPage(&p).ok());
  Stopwatch timer;
  ASSERT_TRUE((*chain)->ReadPage(0, &p).ok());
  EXPECT_GE(timer.ElapsedMillis(), 1.5);
}

TEST_F(StorageTest, SimulatedLatencySlowsReads) {
  StorageOptions opts;
  opts.simulated_read_latency_us = 2000;
  auto slow_sm = StorageManager::Open(dir_ + "/slow", opts);
  ASSERT_TRUE(slow_sm.ok());
  auto file = (*slow_sm)->CreateChain("lat", 4096);
  ASSERT_TRUE(file.ok());
  Page p(4096);
  ASSERT_TRUE((*file)->AppendPage(&p).ok());
  Stopwatch timer;
  ASSERT_TRUE((*file)->ReadPage(0, &p).ok());
  EXPECT_GE(timer.ElapsedMicros(), 1500.0);
}

}  // namespace
}  // namespace payg
