#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "encoding/bit_packing.h"
#include "encoding/sparse_vector.h"
#include "encoding/string_block.h"
#include "encoding/types.h"

namespace payg {
namespace {

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

// Property sweep over every bit width the data vector can use.
class BitPackingWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackingWidthTest, RoundtripRandomValues) {
  const uint32_t bits = GetParam();
  Random rng(bits);
  const uint64_t mask = LowMask(bits);
  std::vector<uint64_t> expect;
  PackedVector pv(bits);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() & mask;
    expect.push_back(v);
    pv.Append(v);
  }
  ASSERT_EQ(pv.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(pv.Get(i), expect[i]) << "i=" << i << " bits=" << bits;
  }
}

TEST_P(BitPackingWidthTest, MGetMatchesGet) {
  const uint32_t bits = GetParam();
  Random rng(bits * 7 + 1);
  const uint64_t mask = LowMask(bits);
  PackedVector pv(bits);
  for (int i = 0; i < 513; ++i) pv.Append(rng.Next() & mask);
  std::vector<uint32_t> out(pv.size());
  pv.MGet(0, pv.size(), out.data());
  for (uint64_t i = 0; i < pv.size(); ++i) {
    EXPECT_EQ(out[i], pv.Get(i));
  }
  // Unaligned sub-ranges.
  for (auto [from, to] : {std::pair<uint64_t, uint64_t>{1, 2},
                          {63, 65},
                          {100, 300},
                          {511, 513}}) {
    std::vector<uint32_t> sub(to - from);
    pv.MGet(from, to, sub.data());
    for (uint64_t i = from; i < to; ++i) EXPECT_EQ(sub[i - from], pv.Get(i));
  }
}

TEST_P(BitPackingWidthTest, SearchEqFindsExactlyMatchingPositions) {
  const uint32_t bits = GetParam();
  Random rng(bits * 13 + 5);
  const uint64_t domain = std::min<uint64_t>(LowMask(bits), 30) + 1;
  std::vector<uint64_t> values;
  PackedVector pv(bits);
  for (int i = 0; i < 700; ++i) {
    uint64_t v = rng.Uniform(domain);
    values.push_back(v);
    pv.Append(v);
  }
  const uint64_t probe = domain / 2;
  std::vector<RowPos> got;
  PackedSearchEq(pv.words(), bits, 0, pv.size(), probe, 0, &got);
  std::vector<RowPos> expect;
  for (RowPos i = 0; i < values.size(); ++i) {
    if (values[i] == probe) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

TEST_P(BitPackingWidthTest, SearchRangeMatchesScalarFilter) {
  const uint32_t bits = GetParam();
  Random rng(bits * 31 + 7);
  const uint64_t domain = std::min<uint64_t>(LowMask(bits), 100) + 1;
  std::vector<uint64_t> values;
  PackedVector pv(bits);
  for (int i = 0; i < 700; ++i) {
    uint64_t v = rng.Uniform(domain);
    values.push_back(v);
    pv.Append(v);
  }
  uint64_t lo = domain / 4, hi = (3 * domain) / 4;
  std::vector<RowPos> got;
  PackedSearchRange(pv.words(), bits, 0, pv.size(), lo, hi, 0, &got);
  std::vector<RowPos> expect;
  for (RowPos i = 0; i < values.size(); ++i) {
    if (values[i] >= lo && values[i] <= hi) expect.push_back(i);
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitPackingWidthTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 11u, 13u,
                                           16u, 17u, 23u, 24u, 29u, 31u, 32u));

TEST(BitPackingTest, SearchWithBaseOffsetsPositions) {
  PackedVector pv(4);
  for (uint64_t v : {1, 2, 3, 2, 1}) pv.Append(v);
  std::vector<RowPos> got;
  PackedSearchEq(pv.words(), 4, 1, 4, 2, 100, &got);
  EXPECT_EQ(got, (std::vector<RowPos>{100, 102}));
}

TEST(BitPackingTest, SearchInHonorsSortedSet) {
  PackedVector pv(8);
  for (uint64_t v : {5, 9, 14, 20, 9, 5, 30}) pv.Append(v);
  std::vector<RowPos> got;
  PackedSearchIn(pv.words(), 8, 0, pv.size(), {9, 20}, 0, &got);
  EXPECT_EQ(got, (std::vector<RowPos>{1, 3, 4}));
  got.clear();
  PackedSearchIn(pv.words(), 8, 0, pv.size(), {}, 0, &got);
  EXPECT_TRUE(got.empty());
}

TEST(BitPackingTest, PackChoosesMinimalWidth) {
  PackedVector pv = PackedVector::Pack({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(pv.bits(), 3u);
  PackedVector pv2 = PackedVector::Pack({0, 0, 0});
  EXPECT_EQ(pv2.bits(), 1u);
  PackedVector pv3 = PackedVector::Pack({1023});
  EXPECT_EQ(pv3.bits(), 10u);
}

TEST(BitPackingTest, FromWordsRoundtrip) {
  PackedVector src(13);
  Random rng(3);
  for (int i = 0; i < 500; ++i) src.Append(rng.Next() & LowMask(13));
  std::vector<uint64_t> words(src.words(), src.words() + src.word_count());
  PackedVector dst = PackedVector::FromWords(13, src.size(), std::move(words));
  for (uint64_t i = 0; i < src.size(); ++i) EXPECT_EQ(dst.Get(i), src.Get(i));
}

TEST(BitPackingTest, ChunkGeometry) {
  // 64 n-bit values must be exactly n words for every n.
  for (uint32_t n = 1; n <= 32; ++n) {
    EXPECT_EQ(ChunkWords(n), n);
    EXPECT_EQ(ChunkBytes(n), n * 8);
    EXPECT_EQ(kChunkValues * n, ChunkWords(n) * 64u);
  }
}

// ---------------------------------------------------------------------------
// Sparse encoding
// ---------------------------------------------------------------------------

std::vector<ValueId> SkewedVids(uint64_t n, uint64_t cardinality,
                                double dominant_fraction, uint64_t seed) {
  Random rng(seed);
  std::vector<ValueId> vids;
  vids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < dominant_fraction) {
      vids.push_back(3);  // the dominant vid
    } else {
      vids.push_back(static_cast<ValueId>(rng.Uniform(cardinality)));
    }
  }
  return vids;
}

TEST(SparseVectorTest, DominantFractionAndShouldUse) {
  auto skewed = SkewedVids(10000, 50, 0.8, 1);
  ValueId dominant;
  double frac = SparseVector::DominantFraction(skewed, &dominant);
  EXPECT_EQ(dominant, 3u);
  EXPECT_GT(frac, 0.75);
  EXPECT_TRUE(SparseVector::ShouldUse(skewed));

  auto uniform = SkewedVids(10000, 50, 0.0, 2);
  EXPECT_FALSE(SparseVector::ShouldUse(uniform));
}

TEST(SparseVectorTest, GetMatchesSource) {
  auto vids = SkewedVids(20000, 30, 0.7, 3);
  SparseVector sv = SparseVector::Encode(vids);
  ASSERT_EQ(sv.size(), vids.size());
  for (uint64_t i = 0; i < vids.size(); ++i) {
    ASSERT_EQ(sv.Get(i), vids[i]) << "i=" << i;
  }
}

TEST(SparseVectorTest, MGetMatchesSourceOnSubranges) {
  auto vids = SkewedVids(5000, 20, 0.9, 4);
  SparseVector sv = SparseVector::Encode(vids);
  for (auto [from, to] : {std::pair<uint64_t, uint64_t>{0, 5000},
                          {1, 2},
                          {63, 129},
                          {100, 101},
                          {4990, 5000}}) {
    std::vector<ValueId> out(to - from);
    sv.MGet(from, to, out.data());
    for (uint64_t i = from; i < to; ++i) {
      EXPECT_EQ(out[i - from], vids[i]) << "i=" << i;
    }
  }
}

TEST(SparseVectorTest, SearchMatchesScalarFilter) {
  auto vids = SkewedVids(8000, 25, 0.8, 5);
  SparseVector sv = SparseVector::Encode(vids);
  // Probe the dominant value, a rare value, and ranges overlapping both.
  struct Probe {
    ValueId lo, hi;
  };
  for (Probe p : {Probe{3, 3}, {7, 7}, {0, 10}, {4, 24}, {20, 24}}) {
    std::vector<RowPos> got;
    sv.SearchRange(100, 7900, p.lo, p.hi, 100, &got);
    std::vector<RowPos> expect;
    for (RowPos r = 100; r < 7900; ++r) {
      if (vids[r] >= p.lo && vids[r] <= p.hi) expect.push_back(r);
    }
    EXPECT_EQ(got, expect) << "range [" << p.lo << "," << p.hi << "]";
  }
  std::vector<RowPos> got;
  sv.SearchIn(0, 8000, {3, 9, 24}, 0, &got);
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < 8000; ++r) {
    if (vids[r] == 3 || vids[r] == 9 || vids[r] == 24) expect.push_back(r);
  }
  EXPECT_EQ(got, expect);
}

TEST(SparseVectorTest, CompressesSkewedData) {
  auto vids = SkewedVids(100000, 60, 0.9, 6);
  SparseVector sv = SparseVector::Encode(vids);
  PackedVector pv = PackedVector::Pack(vids);
  // ~10% exceptions: bitmap (1 bit/row) + packed exceptions beat 6 bits/row.
  EXPECT_LT(sv.MemoryBytes(), pv.MemoryBytes() / 2);
}

TEST(SparseVectorTest, FromPartsRoundtrip) {
  auto vids = SkewedVids(3000, 15, 0.75, 7);
  SparseVector src = SparseVector::Encode(vids);
  std::vector<uint64_t> bitmap = src.exception_bitmap();
  std::vector<uint64_t> ex_words(
      src.exceptions().words(),
      src.exceptions().words() + src.exceptions().word_count());
  SparseVector dst = SparseVector::FromParts(
      src.size(), src.dominant(), src.bits(), std::move(bitmap),
      PackedVector::FromWords(src.bits(), src.exception_count(),
                              std::move(ex_words)));
  for (uint64_t i = 0; i < vids.size(); ++i) {
    ASSERT_EQ(dst.Get(i), vids[i]);
  }
}

TEST(SparseVectorTest, AllDominantEdgeCase) {
  std::vector<ValueId> vids(500, 9);
  SparseVector sv = SparseVector::Encode(vids);
  EXPECT_EQ(sv.exception_count(), 0u);
  for (uint64_t i = 0; i < vids.size(); ++i) EXPECT_EQ(sv.Get(i), 9u);
  std::vector<RowPos> got;
  sv.SearchEq(0, 500, 9, 0, &got);
  EXPECT_EQ(got.size(), 500u);
  got.clear();
  sv.SearchEq(0, 500, 8, 0, &got);
  EXPECT_TRUE(got.empty());
}

// Property sweep across sparsity levels.
class SparseVectorPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SparseVectorPropertyTest, EquivalentToPackedVector) {
  auto [sparsity_pct, seed] = GetParam();
  auto vids = SkewedVids(4000, 40, sparsity_pct / 100.0, seed);
  SparseVector sv = SparseVector::Encode(vids);
  Random rng(seed * 31);
  for (int i = 0; i < 50; ++i) {
    uint64_t a = rng.Uniform(vids.size());
    uint64_t b = a + rng.Uniform(vids.size() - a);
    ValueId lo = static_cast<ValueId>(rng.Uniform(40));
    ValueId hi = lo + static_cast<ValueId>(rng.Uniform(10));
    std::vector<RowPos> got, expect;
    sv.SearchRange(a, b, lo, hi, static_cast<RowPos>(a), &got);
    for (uint64_t r = a; r < b; ++r) {
      if (vids[r] >= lo && vids[r] <= hi) {
        expect.push_back(static_cast<RowPos>(r));
      }
    }
    ASSERT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sparsities, SparseVectorPropertyTest,
    ::testing::Values(std::pair{0, 11}, std::pair{50, 12}, std::pair{75, 13},
                      std::pair{90, 14}, std::pair{99, 15},
                      std::pair{100, 16}));

// ---------------------------------------------------------------------------
// String blocks
// ---------------------------------------------------------------------------

// In-memory stand-in for the overflow page chain.
struct FakeOverflow {
  std::map<OffpageRef, std::string> pages;
  OffpageRef next = 100;

  OffpageWriter writer() {
    return [this](std::string_view piece) -> Result<OffpageRef> {
      OffpageRef ref = next++;
      pages[ref] = std::string(piece);
      return ref;
    };
  }

  OffpageLoader loader() {
    return [this](OffpageRef ref) -> Result<std::string> {
      auto it = pages.find(ref);
      if (it == pages.end()) return Status::NotFound("overflow page");
      return it->second;
    };
  }
};

std::vector<std::string> SampleStrings() {
  return {"alpha",   "alphabet", "alphabetical", "beta",
          "betamax", "delta",    "gamma",        "gammaray"};
}

TEST(StringBlockTest, RoundtripWithPrefixCompression) {
  FakeOverflow ov;
  StringBlockBuilder builder(64, 128);
  auto values = SampleStrings();
  for (const auto& v : values) ASSERT_TRUE(builder.Add(v, ov.writer()).ok());
  auto bytes = builder.Finish();
  // Prefix compression must beat the raw concatenation for this input.
  size_t raw = 0;
  for (const auto& v : values) raw += v.size() + 7;
  EXPECT_LT(bytes.size(), raw);

  StringBlockReader reader(bytes.data(), bytes.size());
  ASSERT_EQ(reader.count(), values.size());
  for (uint32_t i = 0; i < values.size(); ++i) {
    auto s = reader.GetString(i, ov.loader());
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(*s, values[i]);
  }
}

TEST(StringBlockTest, FindLocatesExactAndInsertionPoint) {
  FakeOverflow ov;
  StringBlockBuilder builder(64, 128);
  auto values = SampleStrings();
  for (const auto& v : values) ASSERT_TRUE(builder.Add(v, ov.writer()).ok());
  auto bytes = builder.Finish();
  StringBlockReader reader(bytes.data(), bytes.size());

  for (uint32_t i = 0; i < values.size(); ++i) {
    uint32_t pos;
    bool found;
    ASSERT_TRUE(reader.Find(values[i], ov.loader(), &pos, &found).ok());
    EXPECT_TRUE(found) << values[i];
    EXPECT_EQ(pos, i);
  }
  uint32_t pos;
  bool found;
  ASSERT_TRUE(reader.Find("alpha0", ov.loader(), &pos, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_EQ(pos, 1u);  // between "alpha" and "alphabet"
  ASSERT_TRUE(reader.Find("zzz", ov.loader(), &pos, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_EQ(pos, values.size());
}

TEST(StringBlockTest, LargeStringsSpillOffPage) {
  FakeOverflow ov;
  StringBlockBuilder builder(/*max_onpage=*/16, /*piece=*/32);
  std::string big1 = "aaaa" + std::string(200, 'x') + "end1";
  std::string big2 = "aaab" + std::string(150, 'y') + "end2";
  ASSERT_TRUE(builder.Add(big1, ov.writer()).ok());
  ASSERT_TRUE(builder.Add(big2, ov.writer()).ok());
  ASSERT_TRUE(builder.Add("small", ov.writer()).ok());
  auto bytes = builder.Finish();
  EXPECT_GE(ov.pages.size(), 10u);  // both big strings spilled into pieces
  EXPECT_LT(bytes.size(), 200u);    // block itself stays small

  StringBlockReader reader(bytes.data(), bytes.size());
  auto s1 = reader.GetString(0, ov.loader());
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, big1);
  auto s2 = reader.GetString(1, ov.loader());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, big2);
  auto s3 = reader.GetString(2, ov.loader());
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, "small");

  // Find must compare correctly through the off-page pieces.
  uint32_t pos;
  bool found;
  ASSERT_TRUE(reader.Find(big2, ov.loader(), &pos, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(pos, 1u);
  ASSERT_TRUE(reader.Find(big2 + "!", ov.loader(), &pos, &found).ok());
  EXPECT_FALSE(found);
  EXPECT_EQ(pos, 2u);
}

TEST(StringBlockTest, BlockCapacityIs16) {
  FakeOverflow ov;
  StringBlockBuilder builder(64, 128);
  for (uint32_t i = 0; i < kStringsPerBlock; ++i) {
    EXPECT_FALSE(builder.full());
    std::string v = "v" + std::to_string(1000 + i);
    ASSERT_TRUE(builder.Add(v, ov.writer()).ok());
  }
  EXPECT_TRUE(builder.full());
  auto bytes = builder.Finish();
  EXPECT_FALSE(builder.full());  // reset
  StringBlockReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.count(), kStringsPerBlock);
}

TEST(StringBlockTest, EmptyStringAndDuplicatesOfPrefix) {
  FakeOverflow ov;
  StringBlockBuilder builder(64, 128);
  ASSERT_TRUE(builder.Add("", ov.writer()).ok());
  ASSERT_TRUE(builder.Add("a", ov.writer()).ok());
  ASSERT_TRUE(builder.Add("aa", ov.writer()).ok());
  ASSERT_TRUE(builder.Add("aaa", ov.writer()).ok());
  auto bytes = builder.Finish();
  StringBlockReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(*reader.GetString(0, ov.loader()), "");
  EXPECT_EQ(*reader.GetString(1, ov.loader()), "a");
  EXPECT_EQ(*reader.GetString(2, ov.loader()), "aa");
  EXPECT_EQ(*reader.GetString(3, ov.loader()), "aaa");
  uint32_t pos;
  bool found;
  ASSERT_TRUE(reader.Find("", ov.loader(), &pos, &found).ok());
  EXPECT_TRUE(found);
  EXPECT_EQ(pos, 0u);
}

// Property test: random sorted unique strings roundtrip through blocks.
class StringBlockPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StringBlockPropertyTest, RandomSortedRoundtrip) {
  Random rng(GetParam());
  std::vector<std::string> values;
  for (int i = 0; i < 16; ++i) {
    std::string s;
    uint64_t len = rng.Uniform(40);
    for (uint64_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.Uniform(6)));
    }
    values.push_back(s);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());

  FakeOverflow ov;
  StringBlockBuilder builder(12, 16);  // tiny limits force spills
  for (const auto& v : values) ASSERT_TRUE(builder.Add(v, ov.writer()).ok());
  auto bytes = builder.Finish();
  StringBlockReader reader(bytes.data(), bytes.size());
  ASSERT_EQ(reader.count(), values.size());
  for (uint32_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(*reader.GetString(i, ov.loader()), values[i]);
    uint32_t pos;
    bool found;
    ASSERT_TRUE(reader.Find(values[i], ov.loader(), &pos, &found).ok());
    EXPECT_TRUE(found);
    EXPECT_EQ(pos, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StringBlockPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace payg
