#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "exec/exec_context.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/slow_query_ring.h"
#include "obs/stats_dumper.h"
#include "table/table.h"

namespace payg {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON syntax checker (same shape as the one in obs_test.cc):
// validates the machine-readable dumps without a JSON library.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  bool Value() {
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Literal(const char* word) {
    SkipWs();
    size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool Object() {
    if (!Eat('{')) return false;
    if (Eat('}')) return true;
    do {
      if (!String() || !Eat(':') || !Value()) return false;
    } while (Eat(','));
    return Eat('}');
  }
  bool Array() {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    do {
      if (!Value()) return false;
    } while (Eat(','));
    return Eat(']');
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool Number() {
    SkipWs();
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(s_[pos_]))) digits = true;
      ++pos_;
    }
    return digits && pos_ > start;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Prometheus text exposition (v0.0.4) line-format validator. Checks, line by
// line, what a scraper's parser would reject:
//   - every line is `# TYPE <name> <kind>`, `# HELP ...`, blank, or a sample
//   - sample names are [a-zA-Z_:][a-zA-Z0-9_:]* and belong to a family whose
//     `# TYPE` line came first (counters via `_total`, histograms via
//     `_bucket`/`_sum`/`_count`)
//   - sample values parse as numbers (or +Inf/NaN)
//   - per histogram family: `le` labels strictly increase, cumulative bucket
//     counts never decrease, the final bucket is `+Inf` and equals `_count`
// ---------------------------------------------------------------------------

class PromChecker {
 public:
  explicit PromChecker(const std::string& text) : text_(text) {}

  // Returns true when every line validates; first problem lands in error().
  bool Valid() {
    std::istringstream in(text_);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      if (line[0] == '#') {
        if (!CheckComment(line, lineno)) return false;
        continue;
      }
      if (!CheckSample(line, lineno)) return false;
    }
    // Histogram family epilogue checks need the whole text.
    for (const auto& [family, hist] : histograms_) {
      if (hist.buckets.empty()) {
        return Fail(0, "histogram " + family + " has no _bucket samples");
      }
      if (!hist.saw_inf) {
        return Fail(0, "histogram " + family + " missing le=\"+Inf\" bucket");
      }
      if (hist.count_value != hist.inf_value) {
        return Fail(0, "histogram " + family + " _count != +Inf bucket");
      }
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  struct HistogramState {
    std::vector<double> bucket_les;
    std::vector<double> buckets;
    bool saw_inf = false;
    double inf_value = 0;
    double count_value = 0;
    bool saw_count = false;
  };

  bool Fail(int lineno, const std::string& msg) {
    error_ = "line " + std::to_string(lineno) + ": " + msg;
    return false;
  }

  static bool ValidName(const std::string& s) {
    if (s.empty()) return false;
    auto head = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
             c == ':';
    };
    if (!head(s[0])) return false;
    for (char c : s) {
      if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) {
        return false;
      }
    }
    return true;
  }

  static bool ParseValue(const std::string& s, double* out) {
    if (s == "+Inf") {
      *out = 1e308;
      return true;
    }
    if (s == "-Inf" || s == "NaN") {
      *out = 0;
      return true;
    }
    char* end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0' && end != s.c_str();
  }

  bool CheckComment(const std::string& line, int lineno) {
    std::istringstream ls(line);
    std::string hash, kind, name, rest;
    ls >> hash >> kind >> name;
    if (kind == "TYPE") {
      ls >> rest;
      if (!ValidName(name)) return Fail(lineno, "bad TYPE name: " + name);
      if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
          rest != "summary" && rest != "untyped") {
        return Fail(lineno, "bad TYPE kind: " + rest);
      }
      if (types_.count(name) > 0) {
        return Fail(lineno, "duplicate TYPE for " + name);
      }
      types_[name] = rest;
      return true;
    }
    if (kind == "HELP") {
      return ValidName(name) ? true : Fail(lineno, "bad HELP name: " + name);
    }
    return Fail(lineno, "unknown comment directive: " + kind);
  }

  bool CheckSample(const std::string& line, int lineno) {
    // <name>[{<labels>}] <value>
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      return Fail(lineno, "sample has no value: " + line);
    }
    const std::string name = line.substr(0, name_end);
    if (!ValidName(name)) return Fail(lineno, "bad sample name: " + name);

    std::string le_label;
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        return Fail(lineno, "unterminated label set");
      }
      const std::string labels = line.substr(name_end + 1,
                                             close - name_end - 1);
      if (!CheckLabels(labels, lineno, &le_label)) return false;
      value_start = close + 1;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    double value = 0;
    if (!ParseValue(line.substr(value_start), &value)) {
      return Fail(lineno, "bad sample value: " + line.substr(value_start));
    }

    // Resolve the family: `name` itself, or name minus a histogram/counter
    // suffix, must have a preceding TYPE line.
    std::string family = name;
    std::string suffix;
    for (const char* suf : {"_total", "_bucket", "_sum", "_count"}) {
      size_t n = std::strlen(suf);
      if (name.size() > n && name.compare(name.size() - n, n, suf) == 0) {
        const std::string base = name.substr(0, name.size() - n);
        if (types_.count(base) > 0) {
          family = base;
          suffix = suf;
          break;
        }
      }
    }
    auto it = types_.find(family);
    if (it == types_.end()) {
      return Fail(lineno, "sample " + name + " has no preceding # TYPE");
    }
    const std::string& kind = it->second;
    if (kind == "counter" && suffix != "_total") {
      return Fail(lineno, "counter sample " + name + " missing _total");
    }
    if (kind == "histogram") {
      HistogramState& h = histograms_[family];
      if (suffix == "_bucket") {
        if (le_label.empty()) {
          return Fail(lineno, "_bucket sample without le label");
        }
        double le = 0;
        if (!ParseValue(le_label, &le)) {
          return Fail(lineno, "bad le value: " + le_label);
        }
        if (!h.bucket_les.empty() && le <= h.bucket_les.back()) {
          return Fail(lineno, family + " le not strictly increasing");
        }
        if (!h.buckets.empty() && value < h.buckets.back()) {
          return Fail(lineno, family + " cumulative bucket count decreased");
        }
        h.bucket_les.push_back(le);
        h.buckets.push_back(value);
        if (le_label == "+Inf") {
          h.saw_inf = true;
          h.inf_value = value;
        }
      } else if (suffix == "_count") {
        h.count_value = value;
        h.saw_count = true;
      } else if (suffix != "_sum") {
        return Fail(lineno, "unexpected histogram sample " + name);
      }
    }
    return true;
  }

  bool CheckLabels(const std::string& labels, int lineno,
                   std::string* le_label) {
    // name="value"[,name="value"]*
    size_t pos = 0;
    while (pos < labels.size()) {
      size_t eq = labels.find('=', pos);
      if (eq == std::string::npos) return Fail(lineno, "label without =");
      const std::string lname = labels.substr(pos, eq - pos);
      if (!ValidName(lname)) return Fail(lineno, "bad label name " + lname);
      if (eq + 1 >= labels.size() || labels[eq + 1] != '"') {
        return Fail(lineno, "label value not quoted");
      }
      size_t close = labels.find('"', eq + 2);
      if (close == std::string::npos) {
        return Fail(lineno, "unterminated label value");
      }
      const std::string lvalue = labels.substr(eq + 2, close - eq - 2);
      if (lname == "le") *le_label = lvalue;
      pos = close + 1;
      if (pos < labels.size()) {
        if (labels[pos] != ',') return Fail(lineno, "junk after label");
        ++pos;
      }
    }
    return true;
  }

  const std::string& text_;
  std::string error_;
  std::map<std::string, std::string> types_;
  std::map<std::string, HistogramState> histograms_;
};

// ---------------------------------------------------------------------------
// Fixture: the aged orders table from exec_test, opened with a simulated
// device latency so cold page reads dominate query wall time — the stage
// accounting assertions then test attribution, not noise.
// ---------------------------------------------------------------------------

TableSchema OrdersSchema(const std::string& name = "orders") {
  TableSchema schema;
  schema.name = name;
  schema.columns.push_back({"id", ValueType::kString, /*page_loadable=*/true,
                            /*with_index=*/true, /*primary_key=*/true});
  schema.columns.push_back(
      {"aging_date", ValueType::kInt64, true, false, false});
  schema.columns.push_back({"status", ValueType::kString, true, false, false});
  schema.columns.push_back({"amount", ValueType::kInt64, true, false, false});
  schema.temperature_column = 1;
  return schema;
}

std::vector<Value> OrderRow(uint64_t id, int64_t date,
                            const std::string& status, int64_t amount) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ORD%08llu",
                static_cast<unsigned long long>(id));
  return {Value(std::string(buf)), Value(date), Value(status), Value(amount)};
}

class ProfileTest : public ::testing::Test {
 protected:
  // Per-page read latency. Large against per-page CPU work (so cold reads
  // dominate wall time) but small enough that the 3-partition query stays
  // well under a second.
  static constexpr uint32_t kReadLatencyUs = 100;

  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_profile_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 8192;
    opts.dict_page_size = 8192;
    // Baked into the options (not flipped later): page chains copy the
    // options at open, and Unload keeps chains open, so a post-build flip
    // would never reach the files the query reads.
    opts.simulated_read_latency_us = kReadLatencyUs;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Hot partition (dates 200..299) plus two merged cold partitions, all
  // columns page loadable, nothing resident. Built with zero simulated
  // latency; the caller flips it on before querying (chains opened by the
  // query's page loads pick up the new latency).
  std::unique_ptr<Table> MakeAgedOrders(int rows = 300) {
    auto table =
        std::make_unique<Table>(OrdersSchema(), storage_.get(), rm_.get());
    for (int i = 0; i < rows; ++i) {
      EXPECT_TRUE(
          table->Insert(OrderRow(i, i, "S" + std::to_string(i % 5), i * 100))
              .ok());
    }
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_TRUE(table->AddColdPartition().ok());
    EXPECT_TRUE(table->AgeRows(Value(int64_t{99})).ok());
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_TRUE(table->AddColdPartition().ok());
    EXPECT_TRUE(table->AgeRows(Value(int64_t{199})).ok());
    EXPECT_TRUE(table->MergeAll().ok());
    EXPECT_EQ(table->partition_count(), 3u);
    table->UnloadAll();
    return table;
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

// ---------------------------------------------------------------------------
// The end-to-end acceptance test: a multi-partition cold-cache query whose
// profile must account for its own wall time and reconcile exactly with the
// ExecContext counters, with the Prometheus exposition it feeds validating
// line by line.
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, ColdQueryProfileAccountsForWallTime) {
  auto table = MakeAgedOrders();
  table->set_exec_options(ExecOptions{/*worker_threads=*/0});

  ExecContext ctx;
  auto rows = table->SelectRange("aging_date", Value(int64_t{0}),
                                 Value(int64_t{299}), {}, &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows.size(), 300u);

  const obs::QueryProfile& p = ctx.profile;
  const QueryStats::Snapshot s = ctx.stats.snapshot();

  // Identity and shape.
  EXPECT_EQ(p.query_id, ctx.query_id);
  EXPECT_NE(p.query_id, 0u);
  EXPECT_EQ(p.partitions, 3u);
  ASSERT_EQ(p.partition_us.size(), 3u);
  EXPECT_FALSE(p.deadline_exceeded);

  // Acceptance: stage durations sum to within 20% of wall. Serial mode, so
  // queue wait is zero and the partition tasks are the only stage.
  EXPECT_EQ(p.queue_wait_us, 0u);
  const uint64_t stage_sum = p.queue_wait_us + p.scan_us;
  EXPECT_GT(p.wall_us, 0u);
  EXPECT_GE(stage_sum, p.wall_us * 8 / 10)
      << "stages " << stage_sum << "us vs wall " << p.wall_us << "us";
  EXPECT_LE(stage_sum, p.wall_us * 12 / 10)
      << "stages " << stage_sum << "us vs wall " << p.wall_us << "us";

  // scan_us is the sum of the per-partition slots.
  uint64_t part_sum = 0;
  for (uint64_t us : p.partition_us) part_sum += us;
  EXPECT_EQ(part_sum, p.scan_us);

  // Acceptance: the profile's page numbers equal the ExecContext counters.
  // Cold accesses are counted at GetPage, physical reads inside
  // PageFile::ReadPage — two independent code sites that must agree.
  EXPECT_GT(p.page_cold_count, 0u);
  EXPECT_EQ(p.page_cold_count, s.pages_read);
  EXPECT_EQ(p.page_cold_count, s.page_cold_count);
  EXPECT_EQ(p.page_hit_count, s.page_hit_count);
  EXPECT_EQ(p.page_cold_count + p.page_hit_count, s.pages_pinned);
  EXPECT_EQ(p.bytes_read, s.bytes_read);
  EXPECT_EQ(p.rows_scanned, s.rows_scanned);
  EXPECT_EQ(p.vector_scans, s.vector_scans);
  EXPECT_EQ(p.codec_native, s.codec_native);
  EXPECT_EQ(p.codec_fallback, s.codec_fallback);

  // Cold page waits happened inside partition tasks: the decomposition must
  // not exceed the stage it decomposes, and with the simulated latency the
  // cold wait is the dominant share.
  EXPECT_GE(p.page_cold_us, p.page_cold_count * kReadLatencyUs);
  EXPECT_LE(p.page_cold_us + p.page_hit_us, p.scan_us);

  // The profile renders both ways.
  const std::string text = p.ToText();
  EXPECT_NE(text.find("qid="), std::string::npos) << text;
  EXPECT_NE(text.find("wall_us="), std::string::npos) << text;
  EXPECT_NE(text.find("cold="), std::string::npos) << text;
  const std::string json = p.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"query_id\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"partition_us\""), std::string::npos) << json;

  // The default slow-query ring (threshold 0) admitted this query.
  bool in_ring = false;
  for (const obs::QueryProfile& q : obs::SlowQueryRing::Global().Snapshot()) {
    if (q.query_id == p.query_id) in_ring = true;
  }
  EXPECT_TRUE(in_ring);

  // Acceptance: the Prometheus exposition this query fed round-trips
  // through the line-format validator.
  const std::string prom = obs::MetricsRegistry::Global().PrometheusDump();
  PromChecker checker(prom);
  EXPECT_TRUE(checker.Valid()) << checker.error();
  EXPECT_NE(prom.find("payg_exec_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("payg_exec_query_latency_us_bucket"),
            std::string::npos);
}

TEST_F(ProfileTest, WarmRerunShiftsColdCountsToHits) {
  auto table = MakeAgedOrders();
  table->set_exec_options(ExecOptions{/*worker_threads=*/0});

  ExecContext cold_ctx;
  ASSERT_TRUE(table
                  ->SelectRange("aging_date", Value(int64_t{0}),
                                Value(int64_t{299}), {}, &cold_ctx)
                  .ok());
  const uint64_t cold_first = cold_ctx.profile.page_cold_count;
  EXPECT_GT(cold_first, 0u);

  // Same query against the now-resident pages: hits, not loads.
  ExecContext warm_ctx;
  ASSERT_TRUE(table
                  ->SelectRange("aging_date", Value(int64_t{0}),
                                Value(int64_t{299}), {}, &warm_ctx)
                  .ok());
  EXPECT_GT(warm_ctx.profile.page_hit_count, 0u);
  EXPECT_LT(warm_ctx.profile.page_cold_count, cold_first);
  EXPECT_NE(warm_ctx.profile.query_id, cold_ctx.profile.query_id);
}

TEST_F(ProfileTest, ParallelQueryAccountsQueueWaitSeparately) {
  auto table = MakeAgedOrders();
  table->set_exec_options(ExecOptions{/*worker_threads=*/4});

  ExecContext ctx;
  ASSERT_TRUE(table
                  ->SelectRange("aging_date", Value(int64_t{0}),
                                Value(int64_t{299}), {}, &ctx)
                  .ok());
  const obs::QueryProfile& p = ctx.profile;
  EXPECT_EQ(p.partitions, 3u);
  // Tasks overlap, so their summed time may exceed wall; each partition
  // slot is still individually filled.
  for (uint64_t us : p.partition_us) EXPECT_GT(us, 0u);
  EXPECT_EQ(p.page_cold_count, ctx.stats.snapshot().pages_read);
}

TEST_F(ProfileTest, QueryIdsAreProcessUnique) {
  ExecContext a;
  ExecContext b;
  EXPECT_NE(a.query_id, 0u);
  EXPECT_NE(b.query_id, 0u);
  EXPECT_NE(a.query_id, b.query_id);
}

// ---------------------------------------------------------------------------
// QueryProfile rendering on hand-built values (no engine involved).
// ---------------------------------------------------------------------------

TEST(QueryProfileTest, TextAndJsonCarryEveryStage) {
  obs::QueryProfile p;
  p.query_id = 42;
  p.wall_us = 1500;
  p.queue_wait_us = 30;
  p.scan_us = 1400;
  p.partition_us = {700, 700};
  p.page_cold_count = 5;
  p.page_cold_us = 1100;
  p.page_hit_count = 12;
  p.page_hit_us = 3;
  p.bytes_read = 8192;
  p.rows_scanned = 600;
  p.index_lookups = 1;
  p.vector_scans = 2;
  p.codec_native = 9;
  p.partitions = 2;

  const std::string text = p.ToText();
  EXPECT_NE(text.find("qid=42"), std::string::npos) << text;
  EXPECT_NE(text.find("wall_us=1500"), std::string::npos) << text;
  EXPECT_NE(text.find("cold=5/1100us"), std::string::npos) << text;
  EXPECT_NE(text.find("hit=12/3us"), std::string::npos) << text;

  const std::string json = p.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"query_id\":42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"partition_us\":[700,700]"), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Slow-query ring admission protocol.
// ---------------------------------------------------------------------------

obs::QueryProfile ProfileWithLatency(uint64_t qid, uint64_t wall_us) {
  obs::QueryProfile p;
  p.query_id = qid;
  p.wall_us = wall_us;
  return p;
}

TEST(SlowQueryRingTest, KeepsTheWorstProfiles) {
  obs::SlowQueryRing ring(/*capacity=*/2, /*threshold_us=*/0);
  ring.Observe(ProfileWithLatency(1, 10));
  ring.Observe(ProfileWithLatency(2, 30));
  ring.Observe(ProfileWithLatency(3, 20));
  ring.Observe(ProfileWithLatency(4, 5));  // faster than both: rejected
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].wall_us, 30u);  // slowest first
  EXPECT_EQ(snap[1].wall_us, 20u);
  EXPECT_EQ(snap[0].query_id, 2u);
  EXPECT_EQ(snap[1].query_id, 3u);
}

TEST(SlowQueryRingTest, ThresholdFiltersFastQueries) {
  obs::SlowQueryRing ring(/*capacity=*/4, /*threshold_us=*/100);
  EXPECT_EQ(ring.threshold_us(), 100u);
  ring.Observe(ProfileWithLatency(1, 50));
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Observe(ProfileWithLatency(2, 150));
  ASSERT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(ring.Snapshot()[0].query_id, 2u);
}

TEST(SlowQueryRingTest, ZeroLatencyProfilesNeverOccupySlots) {
  obs::SlowQueryRing ring(/*capacity=*/2, /*threshold_us=*/0);
  ring.Observe(ProfileWithLatency(1, 0));  // 0 is the empty-slot sentinel
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(SlowQueryRingTest, ResetEmptiesTheRing) {
  obs::SlowQueryRing ring(/*capacity=*/2, /*threshold_us=*/0);
  ring.Observe(ProfileWithLatency(1, 10));
  ASSERT_FALSE(ring.Snapshot().empty());
  ring.Reset();
  EXPECT_TRUE(ring.Snapshot().empty());
}

TEST(SlowQueryRingTest, DumpJsonIsValid) {
  obs::SlowQueryRing ring(/*capacity=*/3, /*threshold_us=*/7);
  ring.Observe(ProfileWithLatency(11, 400));
  ring.Observe(ProfileWithLatency(12, 200));
  const std::string json = ring.DumpJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"threshold_us\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"query_id\":11"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Stats dumper: one synchronous export writes all three files, each valid
// in its own format.
// ---------------------------------------------------------------------------

TEST(StatsDumperTest, DumpOnceWritesAllThreeFiles) {
  const std::string dir = ::testing::TempDir() + "/payg_stats_dump_test";
  std::filesystem::remove_all(dir);

  obs::MetricsRegistry::Global().counter("obs.dumper_test")->Add(3);
  obs::SlowQueryRing::Global().Observe(ProfileWithLatency(99, 123456));

  Status s = obs::StatsDumper::DumpOnce(dir);
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto slurp = [&dir](const char* name) {
    std::ifstream in(dir + "/" + name);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string metrics_json = slurp("metrics.json");
  const std::string metrics_prom = slurp("metrics.prom");
  const std::string slow_json = slurp("slow_queries.json");

  EXPECT_TRUE(JsonChecker(metrics_json).Valid());
  EXPECT_NE(metrics_json.find("\"obs.dumper_test\""), std::string::npos);

  PromChecker prom(metrics_prom);
  EXPECT_TRUE(prom.Valid()) << prom.error();
  EXPECT_NE(metrics_prom.find("payg_obs_dumper_test_total"),
            std::string::npos);

  EXPECT_TRUE(JsonChecker(slow_json).Valid());
  EXPECT_NE(slow_json.find("\"profiles\""), std::string::npos);

  // No temp files left behind: every write renamed into place.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_FALSE(entry.path().string().ends_with(".tmp"))
        << entry.path().string();
  }
  std::filesystem::remove_all(dir);
}

TEST(StatsDumperTest, StartAndStopAreIdempotent) {
  const std::string dir = ::testing::TempDir() + "/payg_stats_loop_test";
  std::filesystem::remove_all(dir);
  obs::StatsDumper dumper;
  EXPECT_FALSE(dumper.running());
  dumper.Start(/*period_secs=*/3600, dir);
  EXPECT_TRUE(dumper.running());
  dumper.Start(3600, dir);  // second start is a no-op
  EXPECT_TRUE(dumper.running());
  dumper.Stop();
  EXPECT_FALSE(dumper.running());
  dumper.Stop();  // stop when stopped is safe
  EXPECT_FALSE(dumper.running());
  // Stop flushed a final export even though the one-hour period never
  // elapsed: short-lived processes still leave a last snapshot behind.
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/metrics.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/slow_queries.json"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace payg
