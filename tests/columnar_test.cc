#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "buffer/resource_manager.h"
#include "columnar/delta_fragment.h"
#include "columnar/dictionary.h"
#include "columnar/inverted_index.h"
#include "columnar/resident_fragment.h"
#include "columnar/value.h"
#include "common/random.h"
#include "storage/storage_manager.h"

namespace payg {
namespace {

TEST(ValueTest, TypedAccessors) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s(std::string("abc"));
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, CompareWithinType) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(int64_t{2})), 0);
  EXPECT_GT(Value(int64_t{5}).Compare(Value(int64_t{2})), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value(int64_t{5})), 0);
  EXPECT_LT(Value(1.5).Compare(Value(2.5)), 0);
  EXPECT_LT(Value(std::string("a")).Compare(Value(std::string("b"))), 0);
  EXPECT_TRUE(Value(std::string("x")) == Value(std::string("x")));
  EXPECT_FALSE(Value(int64_t{1}) == Value(2.0));  // different types: unequal
}

TEST(ValueTest, EncodeKeyDistinguishesTypesAndValues) {
  EXPECT_NE(Value(int64_t{1}).EncodeKey(), Value(1.0).EncodeKey());
  EXPECT_NE(Value(int64_t{1}).EncodeKey(), Value(int64_t{2}).EncodeKey());
  EXPECT_EQ(Value(std::string("k")).EncodeKey(),
            Value(std::string("k")).EncodeKey());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
  EXPECT_EQ(Value(std::string("text")).ToString(), "text");
}

TEST(DictionaryTest, LookupAndBounds) {
  std::vector<Value> vals;
  for (int64_t v : {10, 20, 30, 40}) vals.emplace_back(v);
  Dictionary d = Dictionary::FromSorted(ValueType::kInt64, std::move(vals));
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.GetValue(2).AsInt64(), 30);
  EXPECT_EQ(*d.FindValueId(Value(int64_t{20})), 1u);
  EXPECT_FALSE(d.FindValueId(Value(int64_t{25})).has_value());
  EXPECT_EQ(d.LowerBound(Value(int64_t{25})), 2u);
  EXPECT_EQ(d.LowerBound(Value(int64_t{20})), 1u);
  EXPECT_EQ(d.UpperBound(Value(int64_t{20})), 2u);
  EXPECT_EQ(d.LowerBound(Value(int64_t{100})), 4u);
  EXPECT_EQ(d.LowerBound(Value(int64_t{0})), 0u);
}

TEST(DictionaryTest, StringOrderPreserving) {
  std::vector<Value> vals;
  for (const char* s : {"ant", "bee", "cat", "dog"}) {
    vals.emplace_back(std::string(s));
  }
  Dictionary d = Dictionary::FromSorted(ValueType::kString, std::move(vals));
  // Order-preserving property: vid order == value order.
  for (ValueId v = 0; v + 1 < d.size(); ++v) {
    EXPECT_LT(d.GetValue(v).Compare(d.GetValue(v + 1)), 0);
  }
}

TEST(InvertedIndexTest, DirectoryAndPostings) {
  //            rows: 0  1  2  3  4  5
  std::vector<ValueId> vids{2, 0, 2, 1, 0, 2};
  InvertedIndex idx = InvertedIndex::Build(vids, 3);
  EXPECT_FALSE(idx.unique());
  auto p0 = idx.Lookup(0);
  EXPECT_EQ(std::vector<RowPos>(p0.begin(), p0.end()),
            (std::vector<RowPos>{1, 4}));
  auto p1 = idx.Lookup(1);
  EXPECT_EQ(std::vector<RowPos>(p1.begin(), p1.end()),
            (std::vector<RowPos>{3}));
  auto p2 = idx.Lookup(2);
  EXPECT_EQ(std::vector<RowPos>(p2.begin(), p2.end()),
            (std::vector<RowPos>{0, 2, 5}));
}

TEST(InvertedIndexTest, UniqueDropsDirectory) {
  std::vector<ValueId> vids{3, 0, 2, 1};
  InvertedIndex idx = InvertedIndex::Build(vids, 4);
  EXPECT_TRUE(idx.unique());
  EXPECT_TRUE(idx.directory().empty());
  for (ValueId v = 0; v < 4; ++v) {
    auto p = idx.Lookup(v);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(vids[p[0]], v);
  }
}

TEST(InvertedIndexTest, PostingsAscendWithinVid) {
  Random rng(11);
  std::vector<ValueId> vids;
  for (int i = 0; i < 5000; ++i) {
    vids.push_back(static_cast<ValueId>(rng.Uniform(17)));
  }
  InvertedIndex idx = InvertedIndex::Build(vids, 17);
  uint64_t total = 0;
  for (ValueId v = 0; v < 17; ++v) {
    auto p = idx.Lookup(v);
    total += p.size();
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    for (RowPos r : p) EXPECT_EQ(vids[r], v);
  }
  EXPECT_EQ(total, vids.size());
}

TEST(DeltaFragmentTest, AppendInternsValues) {
  DeltaFragment delta(ValueType::kString);
  EXPECT_EQ(delta.Append(Value(std::string("x"))), 0u);
  EXPECT_EQ(delta.Append(Value(std::string("y"))), 1u);
  EXPECT_EQ(delta.Append(Value(std::string("x"))), 2u);
  EXPECT_EQ(delta.row_count(), 3u);
  EXPECT_EQ(delta.dict_size(), 2u);  // "x" interned once
  EXPECT_EQ(delta.GetVid(0), delta.GetVid(2));
  EXPECT_EQ(delta.GetValue(delta.GetVid(1)).AsString(), "y");
}

TEST(DeltaFragmentTest, DictionaryIsArrivalOrdered) {
  DeltaFragment delta(ValueType::kInt64);
  delta.Append(Value(int64_t{50}));
  delta.Append(Value(int64_t{10}));
  delta.Append(Value(int64_t{30}));
  // The delta dictionary is NOT order-preserving (write-optimized, §2).
  EXPECT_EQ(delta.GetValue(0).AsInt64(), 50);
  EXPECT_EQ(delta.GetValue(1).AsInt64(), 10);
  EXPECT_EQ(delta.GetValue(2).AsInt64(), 30);
}

TEST(DeltaFragmentTest, FindRowsAndRangeScan) {
  DeltaFragment delta(ValueType::kInt64);
  for (int64_t v : {5, 8, 5, 12, 8, 5}) delta.Append(Value(v));
  std::vector<RowPos> rows;
  delta.FindRows(Value(int64_t{5}), &rows);
  EXPECT_EQ(rows, (std::vector<RowPos>{0, 2, 5}));
  rows.clear();
  delta.FindRows(Value(int64_t{99}), &rows);
  EXPECT_TRUE(rows.empty());
  rows.clear();
  delta.FindRowsInRange(Value(int64_t{6}), Value(int64_t{12}), &rows);
  EXPECT_EQ(rows, (std::vector<RowPos>{1, 3, 4}));
}

TEST(DeltaFragmentTest, ClearResets) {
  DeltaFragment delta(ValueType::kInt64);
  delta.Append(Value(int64_t{1}));
  delta.Clear();
  EXPECT_EQ(delta.row_count(), 0u);
  EXPECT_EQ(delta.dict_size(), 0u);
  EXPECT_TRUE(delta.empty());
}

// ---------------------------------------------------------------------------
// FullyResidentFragment
// ---------------------------------------------------------------------------

class ResidentFragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_resident_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 16 * 1024;  // small pages → multi-page chains in tests
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  // An int64 column with `rows` rows over `cardinality` distinct values.
  std::unique_ptr<FullyResidentFragment> BuildIntFragment(
      const std::string& name, uint64_t rows, uint64_t cardinality,
      bool with_index) {
    std::vector<Value> dict_values;
    for (uint64_t i = 0; i < cardinality; ++i) {
      dict_values.emplace_back(static_cast<int64_t>(i * 10));
    }
    Random rng(42);
    std::vector<ValueId> vids;
    for (uint64_t i = 0; i < rows; ++i) {
      vids.push_back(static_cast<ValueId>(rng.Uniform(cardinality)));
    }
    vids_ = vids;
    auto frag = FullyResidentFragment::Build(storage_.get(), rm_.get(), name,
                                             ValueType::kInt64, dict_values,
                                             vids, with_index);
    EXPECT_TRUE(frag.ok()) << frag.status().ToString();
    return std::move(*frag);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
  std::vector<ValueId> vids_;
};

TEST_F(ResidentFragmentTest, BuildReportsMetadataWithoutLoading) {
  auto frag = BuildIntFragment("c1", 10000, 100, true);
  EXPECT_EQ(frag->row_count(), 10000u);
  EXPECT_EQ(frag->dict_size(), 100u);
  EXPECT_TRUE(frag->has_index());
  EXPECT_FALSE(frag->is_paged());
  EXPECT_EQ(frag->ResidentBytes(), 0u);  // not loaded yet
  EXPECT_EQ(frag->load_count(), 0u);
}

TEST_F(ResidentFragmentTest, FirstReaderTriggersFullLoad) {
  auto frag = BuildIntFragment("c1", 10000, 100, false);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(frag->load_count(), 1u);
  EXPECT_GT(frag->ResidentBytes(), 0u);
  EXPECT_GT(frag->last_load_nanos(), 0u);
  // Second reader: no reload.
  auto reader2 = frag->NewReader();
  ASSERT_TRUE(reader2.ok());
  EXPECT_EQ(frag->load_count(), 1u);
}

TEST_F(ResidentFragmentTest, ReadsMatchSourceData) {
  auto frag = BuildIntFragment("c1", 5000, 64, true);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  // Point gets.
  for (RowPos r : {0u, 1u, 999u, 4999u}) {
    auto vid = (*reader)->GetVid(r);
    ASSERT_TRUE(vid.ok());
    EXPECT_EQ(*vid, vids_[r]);
    auto val = (*reader)->GetValueForVid(*vid);
    ASSERT_TRUE(val.ok());
    EXPECT_EQ(val->AsInt64(), static_cast<int64_t>(vids_[r] * 10));
  }
  // MGet.
  std::vector<ValueId> got;
  ASSERT_TRUE((*reader)->MGetVids(100, 200, &got).ok());
  ASSERT_EQ(got.size(), 100u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], vids_[100 + i]);
  // FindRows via index.
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(7, &rows).ok());
  for (RowPos r : rows) EXPECT_EQ(vids_[r], 7u);
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids_.size(); ++r) {
    if (vids_[r] == 7u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(ResidentFragmentTest, FindRowsWithoutIndexScans) {
  auto frag = BuildIntFragment("c1", 3000, 32, false);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(3, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids_.size(); ++r) {
    if (vids_[r] == 3u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

TEST_F(ResidentFragmentTest, DictionarySearchApis) {
  auto frag = BuildIntFragment("c1", 1000, 50, false);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  auto vid = (*reader)->FindValueId(Value(int64_t{120}));
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, 12u);
  auto missing = (*reader)->FindValueId(Value(int64_t{121}));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, kInvalidValueId);
  EXPECT_EQ(*(*reader)->LowerBoundVid(Value(int64_t{121})), 13u);
  EXPECT_EQ(*(*reader)->UpperBoundVid(Value(int64_t{120})), 13u);
}

TEST_F(ResidentFragmentTest, UnloadAndReload) {
  auto frag = BuildIntFragment("c1", 10000, 100, true);
  {
    auto reader = frag->NewReader();
    ASSERT_TRUE(reader.ok());
  }
  EXPECT_GT(frag->ResidentBytes(), 0u);
  frag->Unload();
  EXPECT_EQ(frag->ResidentBytes(), 0u);
  EXPECT_EQ(rm_->total_bytes(), 0u);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(frag->load_count(), 2u);
  auto vid = (*reader)->GetVid(123);
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, vids_[123]);
}

TEST_F(ResidentFragmentTest, EvictionByBudgetUnloadsColumn) {
  auto frag = BuildIntFragment("c1", 10000, 100, false);
  {
    auto reader = frag->NewReader();
    ASSERT_TRUE(reader.ok());
    // Reader holds a pin: eviction pressure cannot unload the column now.
    rm_->SetGlobalBudget(1);
    EXPECT_GT(frag->ResidentBytes(), 0u);
  }
  // Pin released: the next pressure event unloads it.
  rm_->SetGlobalBudget(1);
  EXPECT_EQ(frag->ResidentBytes(), 0u);
  rm_->SetGlobalBudget(0);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(frag->load_count(), 2u);
}

TEST_F(ResidentFragmentTest, OpenExistingFragment) {
  BuildIntFragment("persisted", 2000, 16, true);
  auto reopened = FullyResidentFragment::Open(storage_.get(), rm_.get(),
                                              "persisted");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->row_count(), 2000u);
  EXPECT_EQ((*reopened)->dict_size(), 16u);
  EXPECT_TRUE((*reopened)->has_index());
  auto reader = (*reopened)->NewReader();
  ASSERT_TRUE(reader.ok());
  auto vid = (*reader)->GetVid(1500);
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, vids_[1500]);
}

TEST_F(ResidentFragmentTest, StringColumnRoundtrip) {
  std::vector<Value> dict_values;
  for (int i = 0; i < 26; ++i) {
    dict_values.emplace_back(std::string(3, static_cast<char>('a' + i)));
  }
  std::vector<ValueId> vids;
  Random rng(9);
  for (int i = 0; i < 2000; ++i) {
    vids.push_back(static_cast<ValueId>(rng.Uniform(26)));
  }
  auto frag = FullyResidentFragment::Build(storage_.get(), rm_.get(), "str",
                                           ValueType::kString, dict_values,
                                           vids, false);
  ASSERT_TRUE(frag.ok());
  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  auto v = (*reader)->GetValueForVid(2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "ccc");
  auto vid = (*reader)->FindValueId(Value(std::string("zzz")));
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, 25u);
}

TEST_F(ResidentFragmentTest, SparseCodecChosenForSkewedColumns) {
  // 80% of rows hold vid 0 → the build must pick sparse encoding, and every
  // read path must agree with the source data.
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 30; ++i) dict_values.emplace_back(i * 2);
  Random rng(55);
  std::vector<ValueId> vids;
  for (int i = 0; i < 20000; ++i) {
    vids.push_back(rng.NextDouble() < 0.8
                       ? 0
                       : static_cast<ValueId>(rng.Uniform(30)));
  }
  auto frag = FullyResidentFragment::Build(storage_.get(), rm_.get(),
                                           "skew", ValueType::kInt64,
                                           dict_values, vids, false);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ((*frag)->codec(), FullyResidentFragment::Codec::kSparse);

  auto reader = (*frag)->NewReader();
  ASSERT_TRUE(reader.ok());
  for (RowPos r : {0u, 63u, 64u, 9999u, 19999u}) {
    auto vid = (*reader)->GetVid(r);
    ASSERT_TRUE(vid.ok());
    EXPECT_EQ(*vid, vids[r]);
  }
  std::vector<ValueId> got;
  ASSERT_TRUE((*reader)->MGetVids(500, 1500, &got).ok());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], vids[500 + i]);
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->FindRows(0, &rows).ok());  // the dominant vid
  std::vector<RowPos> expect;
  for (RowPos r = 0; r < vids.size(); ++r) {
    if (vids[r] == 0u) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
  rows.clear();
  ASSERT_TRUE((*reader)->SearchVidRange(100, 15000, 5, 12, &rows).ok());
  expect.clear();
  for (RowPos r = 100; r < 15000; ++r) {
    if (vids[r] >= 5 && vids[r] <= 12) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);

  // Unload + reload through the sparse persistence path.
  (*frag)->Unload();
  auto reader2 = (*frag)->NewReader();
  ASSERT_TRUE(reader2.ok());
  auto vid = (*reader2)->GetVid(12345);
  ASSERT_TRUE(vid.ok());
  EXPECT_EQ(*vid, vids[12345]);
}

TEST_F(ResidentFragmentTest, PackedCodecChosenForUniformColumns) {
  auto frag = BuildIntFragment("uniform", 5000, 64, false);
  EXPECT_EQ(frag->codec(), FullyResidentFragment::Codec::kPacked);
}

TEST_F(ResidentFragmentTest, SearchVidRangeOnDataVector) {
  auto frag = BuildIntFragment("c1", 4000, 40, false);
  auto reader = frag->NewReader();
  ASSERT_TRUE(reader.ok());
  std::vector<RowPos> rows;
  ASSERT_TRUE((*reader)->SearchVidRange(500, 1500, 10, 19, &rows).ok());
  std::vector<RowPos> expect;
  for (RowPos r = 500; r < 1500; ++r) {
    if (vids_[r] >= 10 && vids_[r] <= 19) expect.push_back(r);
  }
  EXPECT_EQ(rows, expect);
}

}  // namespace
}  // namespace payg
