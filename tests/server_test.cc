// Tests of the S25 network front door: wire protocol round trips, the
// end-to-end query surface over a unix socket, the same-partition batcher,
// deadline shedding in the admission queue, overload shedding, and the
// stats-dump admin op.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/column_store.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/seed.h"
#include "server/server.h"

namespace payg::server {
namespace {

using obs::MetricsRegistry;

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().counter(name)->value();
}

// --- wire protocol unit tests ---------------------------------------------

TEST(WireTest, RequestRoundTripsEveryOp) {
  for (int op = 0; op <= static_cast<int>(wire::Op::kDumpStats); ++op) {
    wire::Request req;
    req.op = static_cast<wire::Op>(op);
    req.deadline_us = 12345;
    req.table = "T";
    req.column = "k";
    req.sum_column = "v";
    req.value = Value(int64_t{42});
    req.lo = Value(int64_t{-7});
    req.hi = Value(3.25);
    req.values = {Value(int64_t{1}), Value(std::string("x"))};
    req.prefix = "K00";
    req.predicates = {Predicate::Eq("k", Value(int64_t{5})),
                      Predicate::Between("v", Value(int64_t{0}),
                                         Value(int64_t{9})),
                      Predicate::In("k", {Value(int64_t{1})}),
                      Predicate::Prefix("tag", "K")};
    req.select_columns = {"k", "v"};

    wire::Request out;
    ASSERT_TRUE(wire::DecodeRequest(wire::EncodeRequest(req), &out).ok())
        << "op " << op;
    EXPECT_EQ(out.op, req.op);
    EXPECT_EQ(out.deadline_us, req.deadline_us);
    EXPECT_EQ(out.table, req.table);
    // Operand fields the opcode does not carry come back defaulted; check
    // a few representative per-op payloads instead of all fields.
    if (req.op == wire::Op::kSelectByValue) {
      EXPECT_EQ(out.column, "k");
      EXPECT_EQ(out.value, req.value);
      EXPECT_EQ(out.select_columns, req.select_columns);
    }
    if (req.op == wire::Op::kSumRange) {
      EXPECT_EQ(out.lo, req.lo);
      EXPECT_EQ(out.hi, req.hi);
      EXPECT_EQ(out.sum_column, "v");
    }
    if (req.op == wire::Op::kSelectWhere) {
      ASSERT_EQ(out.predicates.size(), 4u);
      EXPECT_EQ(out.predicates[3].prefix, "K");
    }
  }
}

TEST(WireTest, ResponseRoundTrips) {
  wire::Response resp;
  resp.query_id = 99;
  resp.result.rows = {{Value(int64_t{1}), Value(std::string("a"))},
                      {Value(2.5), Value(int64_t{-3})}};
  wire::Response out;
  ASSERT_TRUE(wire::DecodeResponse(wire::Op::kSelectByValue,
                                   wire::EncodeResponse(
                                       wire::Op::kSelectByValue, resp),
                                   &out)
                  .ok());
  EXPECT_EQ(out.query_id, 99u);
  EXPECT_EQ(out.result, resp.result);

  wire::Response err;
  err.code = wire::Code::kShedDeadline;
  err.message = "late";
  ASSERT_TRUE(wire::DecodeResponse(wire::Op::kCountByValue,
                                   wire::EncodeResponse(
                                       wire::Op::kCountByValue, err),
                                   &out)
                  .ok());
  EXPECT_EQ(out.code, wire::Code::kShedDeadline);
  EXPECT_EQ(out.message, "late");
}

TEST(WireTest, TruncatedPayloadIsRejected) {
  wire::Request req;
  req.op = wire::Op::kSelectByValue;
  req.table = "T";
  req.column = "k";
  req.value = Value(std::string("hello"));
  std::string enc = wire::EncodeRequest(req);
  wire::Request out;
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    EXPECT_FALSE(
        wire::DecodeRequest(std::string_view(enc).substr(0, cut), &out).ok())
        << "cut at " << cut;
  }
}

// --- end-to-end server tests ----------------------------------------------

constexpr uint64_t kRows = 4096;
constexpr uint64_t kKeySpace = kRows / 8;  // every key occurs 8 times

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    server_.reset();
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  // Opens a seeded store; latency_us > 0 simulates slow page reads so a
  // full-scan query reliably occupies a worker for tens of ms.
  void OpenStore(uint32_t latency_us) {
    dir_ = ::testing::TempDir() + "/payg_server_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    ColumnStoreOptions options;
    options.directory = dir_ + "/data";
    options.storage.page_size = 4096;
    options.storage.dict_page_size = 8192;
    options.storage.simulated_read_latency_us = latency_us;
    auto store = ColumnStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    store_ = std::move(*store);
    ASSERT_TRUE(
        SeedDemoTable(store_.get(), {.rows = kRows, .key_space = kKeySpace})
            .ok());
  }

  void StartServer(ServerOptions options) {
    options.unix_path = dir_ + "/sock";
    options.stats_dir = dir_ + "/stats";
    server_ = std::make_unique<Server>(store_.get(), std::move(options));
    Status s = server_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<Client> Connect() {
    auto client = Client::ConnectUnix(server_->unix_path());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  // Evicts every page so the next queries pay the simulated latency.
  void UnloadTable() { (*store_->GetTable("T"))->UnloadAll(); }

  // Runs a full-scan SumRange; with latency and unloaded pages this holds
  // one worker for (pages × latency) — the "slow query" of the shed tests.
  void RunSlowQuery(Client* client) {
    auto sum = client->SumRange("T", "k", Value(int64_t{0}),
                                Value(static_cast<int64_t>(kKeySpace)), "v");
    EXPECT_TRUE(sum.ok()) << sum.status().ToString();
  }

  std::string dir_;
  std::unique_ptr<ColumnStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, ServesEveryQueryShape) {
  OpenStore(/*latency_us=*/0);
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client->Ping().ok());

  Table* table = *store_->GetTable("T");
  const Value k7(int64_t{7});

  auto select = client->SelectByValue("T", "k", k7, {"v"});
  ASSERT_TRUE(select.ok()) << select.status().ToString();
  EXPECT_EQ(*select, *table->SelectByValue("k", k7, {"v"}));
  EXPECT_GT(select->rows.size(), 0u);
  EXPECT_GT(client->last_query_id(), 0u);

  auto count = client->CountByValue("T", "k", k7);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, *table->CountByValue("k", k7));
  EXPECT_EQ(*count, select->rows.size());

  auto row_ids = client->RowIdsByValue("T", "k", k7);
  ASSERT_TRUE(row_ids.ok());
  EXPECT_EQ(*row_ids, *table->RowIdsByValue("k", k7));

  auto range = client->SelectRange("T", "k", Value(int64_t{3}),
                                   Value(int64_t{5}), {"v"});
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(*range, *table->SelectRange("k", Value(int64_t{3}),
                                        Value(int64_t{5}), {"v"}));

  auto sum = client->SumRange("T", "k", Value(int64_t{0}),
                              Value(int64_t{10}), "v");
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(*sum, *table->SumRange("k", Value(int64_t{0}),
                                          Value(int64_t{10}), "v"));

  const std::vector<Value> in = {Value(int64_t{1}), Value(int64_t{9})};
  auto select_in = client->SelectIn("T", "k", in, {"v"});
  ASSERT_TRUE(select_in.ok());
  EXPECT_EQ(*select_in, *table->SelectIn("k", in, {"v"}));

  auto count_in = client->CountIn("T", "k", in);
  ASSERT_TRUE(count_in.ok());
  EXPECT_EQ(*count_in, *table->CountIn("k", in));
  EXPECT_EQ(*count_in, select_in->rows.size());

  auto prefix = client->SelectPrefix("T", "tag", "K00000", {"k"});
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, *table->SelectPrefix("tag", "K00000", {"k"}));

  auto count_prefix = client->CountPrefix("T", "tag", "K00000");
  ASSERT_TRUE(count_prefix.ok());
  EXPECT_EQ(*count_prefix, *table->CountPrefix("tag", "K00000"));
  EXPECT_GT(*count_prefix, 0u);  // keys K000000..K000009 all occur

  const std::vector<Predicate> where = {
      Predicate::Between("k", Value(int64_t{0}), Value(int64_t{3})),
      Predicate::Prefix("tag", "K000")};
  auto select_where = client->SelectWhere("T", where, {"v"});
  ASSERT_TRUE(select_where.ok());
  EXPECT_EQ(*select_where, *table->SelectWhere(where, {"v"}));

  auto count_where = client->CountWhere("T", where);
  ASSERT_TRUE(count_where.ok());
  EXPECT_EQ(*count_where, *table->CountWhere(where));
  EXPECT_EQ(*count_where, select_where->rows.size());
}

TEST_F(ServerTest, RejectsBadRequestsWithoutDroppingTheSession) {
  OpenStore(0);
  StartServer(ServerOptions{});
  auto client = Connect();

  // Unknown table / column / mistyped operand come back as engine codes.
  auto r1 = client->CountByValue("nope", "k", Value(int64_t{1}));
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);
  auto r2 = client->CountByValue("T", "nope", Value(int64_t{1}));
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
  auto r3 = client->CountByValue("T", "k", Value(std::string("seven")));
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
  auto r4 = client->SumRange("T", "k", Value(int64_t{0}), Value(int64_t{1}),
                             "tag");  // SUM over a string column
  EXPECT_FALSE(r4.ok());

  // A malformed frame gets kBadRequest and the connection survives.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server_->unix_path().c_str(),
               sizeof addr.sun_path - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  ASSERT_TRUE(wire::WriteFrame(fd, "\xff garbage").ok());
  std::string payload;
  ASSERT_TRUE(wire::ReadFrame(fd, &payload).ok());
  wire::Response resp;
  ASSERT_TRUE(wire::DecodeResponse(wire::Op::kPing, payload, &resp).ok());
  EXPECT_EQ(resp.code, wire::Code::kBadRequest);
  ::close(fd);

  // The original client still works.
  EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServerTest, BatchesConcurrentSamePartitionLookups) {
  OpenStore(0);
  ServerOptions options;
  options.worker_threads = 1;
  options.max_batch = 8;
  // A long window with max_batch == client count: the worker pops the
  // first lookup, then provably waits until all eight are coalesced (the
  // window only runs out if clients fail to arrive at all).
  options.batch_window_us = 2000000;
  StartServer(options);

  Table* table = *store_->GetTable("T");
  uint64_t expected[8];
  for (int t = 0; t < 8; ++t) {
    expected[t] = *table->CountByValue("k", Value(static_cast<int64_t>(t)));
  }

  const uint64_t batches0 = CounterValue("server.batches");
  const uint64_t size0 =
      MetricsRegistry::Global().histogram("server.batch_size")->sum();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, t, &failures, &expected] {
      auto client = Client::ConnectUnix(server_->unix_path());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto count =
          (*client)->CountByValue("T", "k", Value(static_cast<int64_t>(t)));
      if (!count.ok() || *count != expected[t]) failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // All eight lookups ran as exactly one merged executor task.
  EXPECT_EQ(CounterValue("server.batches") - batches0, 1u);
  EXPECT_EQ(
      MetricsRegistry::Global().histogram("server.batch_size")->sum() - size0,
      8u);
}

TEST_F(ServerTest, DeadlineExpiredInQueueIsShedBeforeTheExecutor) {
  OpenStore(/*latency_us=*/1000);
  ServerOptions options;
  options.worker_threads = 1;
  options.max_batch = 1;  // no batching: the shed path must stand alone
  StartServer(options);
  UnloadTable();

  const uint64_t exec0 = CounterValue("exec.queries");
  const uint64_t shed0 = CounterValue("server.shed");
  const uint64_t shed_deadline0 = CounterValue("server.shed_deadline");
  const uint64_t query_deadline0 = CounterValue("query.deadline_exceeded");

  // Hold the single worker on a cold full scan (hundreds of simulated-slow
  // page reads).
  std::thread slow([this] {
    auto client = Client::ConnectUnix(server_->unix_path());
    ASSERT_TRUE(client.ok());
    RunSlowQuery(client->get());
  });
  // Wait until the slow query reached the executor, so the next request
  // provably sits behind it in the queue.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (CounterValue("exec.queries") == exec0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(CounterValue("exec.queries"), exec0) << "slow query never ran";

  auto client = Connect();
  auto count =
      client->CountByValue("T", "k", Value(int64_t{1}), /*deadline_us=*/1);
  slow.join();

  // Shed with the distinct wire status, not executed-and-timed-out.
  ASSERT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsDeadlineExceeded());
  EXPECT_EQ(client->last_code(), wire::Code::kShedDeadline);
  EXPECT_EQ(CounterValue("server.shed") - shed0, 1u);
  EXPECT_EQ(CounterValue("server.shed_deadline") - shed_deadline0, 1u);
  EXPECT_EQ(CounterValue("query.deadline_exceeded") - query_deadline0, 1u);
  // Only the slow query reached the executor; the shed lookup never did.
  EXPECT_EQ(CounterValue("exec.queries") - exec0, 1u);
}

TEST_F(ServerTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  OpenStore(/*latency_us=*/1000);
  ServerOptions options;
  options.worker_threads = 1;
  options.max_batch = 1;
  options.queue_capacity = 1;
  StartServer(options);
  UnloadTable();

  const uint64_t exec0 = CounterValue("exec.queries");
  const uint64_t shed_overload0 = CounterValue("server.shed_overload");

  // Pre-connect so the flood below is pure request traffic.
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) clients.push_back(Connect());

  std::thread slow([this] {
    auto client = Client::ConnectUnix(server_->unix_path());
    ASSERT_TRUE(client.ok());
    RunSlowQuery(client->get());
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (CounterValue("exec.queries") == exec0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GT(CounterValue("exec.queries"), exec0);

  std::atomic<int> overloaded{0}, other_failure{0};
  std::vector<std::thread> threads;
  for (auto& client : clients) {
    threads.emplace_back([&client, &overloaded, &other_failure] {
      auto count = (*client).CountByValue("T", "k", Value(int64_t{1}));
      if (count.ok()) return;
      if (client->last_code() == wire::Code::kOverloaded) {
        overloaded.fetch_add(1);
      } else {
        other_failure.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  slow.join();

  // Queue bound 1 + busy worker: at least two of the four shed fast.
  EXPECT_GE(overloaded.load(), 2);
  EXPECT_EQ(other_failure.load(), 0);
  EXPECT_GE(CounterValue("server.shed_overload") - shed_overload0, 2u);
}

TEST_F(ServerTest, DumpStatsAdminRequestWritesPromFile) {
  OpenStore(0);
  StartServer(ServerOptions{});
  auto client = Connect();
  ASSERT_TRUE(client->Ping().ok());
  ASSERT_TRUE(client->DumpStats().ok());

  const std::string prom = dir_ + "/stats/metrics.prom";
  ASSERT_TRUE(std::filesystem::exists(prom));
  std::ifstream in(prom);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("payg_server_requests_total"), std::string::npos);
  EXPECT_NE(contents.find("payg_server_accepted_total"), std::string::npos);
}

TEST_F(ServerTest, SessionLimitRejectsExtraConnections) {
  OpenStore(0);
  ServerOptions options;
  options.max_sessions = 1;
  StartServer(options);

  auto first = Connect();
  ASSERT_TRUE(first->Ping().ok());

  // The second connection is accepted at the socket level, then refused
  // with a best-effort overload frame and closed.
  auto second = Client::ConnectUnix(server_->unix_path());
  ASSERT_TRUE(second.ok());
  Status s = (*second)->Ping();
  EXPECT_FALSE(s.ok());
  EXPECT_GE(CounterValue("server.rejected_sessions"), 1u);

  // The first session is unaffected.
  EXPECT_TRUE(first->Ping().ok());
}

TEST_F(ServerTest, StopDrainsQueuedRequests) {
  OpenStore(/*latency_us=*/500);
  ServerOptions options;
  options.worker_threads = 1;
  options.max_batch = 4;
  StartServer(options);
  UnloadTable();

  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, t, &completed] {
      auto client = Client::ConnectUnix(server_->unix_path());
      if (!client.ok()) return;
      auto count =
          (*client)->CountByValue("T", "k", Value(static_cast<int64_t>(t)));
      if (count.ok() && *count == 8u) completed.fetch_add(1);
    });
  }
  // Stop while requests are likely in flight: queued work must complete
  // (drain semantics), not hang or crash.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server_->Stop();
  for (auto& t : threads) t.join();
  // No assertion on the count: requests that arrived after Stop were shed
  // with kOverloaded. What matters is that every thread got an answer.
  SUCCEED();
}

}  // namespace
}  // namespace payg::server
