#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "common/bit_util.h"
#include "common/env.h"
#include "encoding/bit_packing.h"
#include "encoding/codec.h"
#include "encoding/simd_dispatch.h"
#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "paged/fragment_factory.h"
#include "paged/paged_data_vector.h"
#include "paged/paged_fragment.h"
#include "storage/storage_manager.h"
#include "table/partition.h"
#include "table/schema.h"

namespace payg {
namespace {

// ---------------------------------------------------------------------------
// In-memory property tests: every codec × every bit width × every SIMD tier
// available in this process must produce results identical to a direct scan
// of the raw values, for all four kernels. CI runs this binary once as
// built and once with PAYG_FORCE_SCALAR=1, and once per PAYG_FORCE_CODEC
// leg, so every (codec, kernel, tier) cell stays covered.
// ---------------------------------------------------------------------------

struct Tier {
  SimdLevel level;
  const PackedKernels* kernels;
};

std::vector<Tier> AvailableTiers() {
  std::vector<Tier> tiers;
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse42, SimdLevel::kAvx2}) {
    const PackedKernels* k = KernelsFor(level);
    if (k != nullptr) tiers.push_back(Tier{level, k});
  }
  return tiers;
}

constexpr CodecId kAllCodecs[] = {CodecId::kPlain, CodecId::kFor,
                                  CodecId::kRle};

// Values mixing runs (so RLE has structure), random bursts, width extremes,
// and a nonzero floor (so FOR gets a real base to subtract).
std::vector<ValueId> MakeCodecValues(uint32_t bits, uint64_t n,
                                     uint64_t seed) {
  std::mt19937_64 rng(seed);
  const uint64_t mask = LowMask(bits);
  const ValueId floor = static_cast<ValueId>(mask / 3);
  const uint64_t span = mask - floor + 1;
  std::vector<ValueId> v(n);
  uint64_t i = 0;
  while (i < n) {
    if (rng() % 2 == 0) {
      const uint64_t len = 1 + rng() % 37;
      const ValueId val = floor + static_cast<ValueId>(rng() % span);
      for (uint64_t j = 0; j < len && i < n; ++j) v[i++] = val;
    } else {
      const uint64_t len = 1 + rng() % 13;
      for (uint64_t j = 0; j < len && i < n; ++j) {
        switch (rng() % 8) {
          case 0:
            v[i++] = static_cast<ValueId>(mask);
            break;
          case 1:
            v[i++] = floor;
            break;
          default:
            v[i++] = floor + static_cast<ValueId>(rng() % span);
        }
      }
    }
  }
  return v;
}

std::vector<std::pair<uint64_t, uint64_t>> MakeRanges(uint64_t n,
                                                      uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> ranges = {
      {0, n}, {0, 0}, {n, n}, {0, 1}, {n - 1, n}, {n / 2, n / 2 + 65}};
  for (int r = 0; r < 24; ++r) {
    uint64_t a = rng() % (n + 1);
    uint64_t b = rng() % (n + 1);
    if (a > b) std::swap(a, b);
    ranges.emplace_back(a, b);
  }
  return ranges;
}

// Ground-truth filters over the raw (uncompressed) values; positions are
// reported as base + (p - from), matching the kernel contract.
std::vector<RowPos> RefEq(const std::vector<ValueId>& v, uint64_t from,
                          uint64_t to, ValueId vid, RowPos base) {
  std::vector<RowPos> out;
  for (uint64_t p = from; p < to; ++p) {
    if (v[p] == vid) out.push_back(base + static_cast<RowPos>(p - from));
  }
  return out;
}

std::vector<RowPos> RefRange(const std::vector<ValueId>& v, uint64_t from,
                             uint64_t to, ValueId lo, ValueId hi,
                             RowPos base) {
  std::vector<RowPos> out;
  for (uint64_t p = from; p < to; ++p) {
    if (v[p] >= lo && v[p] <= hi) {
      out.push_back(base + static_cast<RowPos>(p - from));
    }
  }
  return out;
}

std::vector<RowPos> RefIn(const std::vector<ValueId>& v, uint64_t from,
                          uint64_t to, const std::vector<ValueId>& vids,
                          RowPos base) {
  std::vector<RowPos> out;
  for (uint64_t p = from; p < to; ++p) {
    if (std::binary_search(vids.begin(), vids.end(), v[p])) {
      out.push_back(base + static_cast<RowPos>(p - from));
    }
  }
  return out;
}

// One encoded in-memory page plus the view over it.
struct EncodedPage {
  std::vector<uint64_t> buf;
  uint32_t aux2 = 0;
  uint32_t size = 0;
  CodecChoice choice;

  CodecPageView View(uint64_t n, const PackedKernels* kernels) const {
    CodecPageView v;
    v.words = buf.data();
    v.n = n;
    v.aux2 = aux2;
    v.params = choice.params;
    v.kernels = kernels;
    return v;
  }
};

EncodedPage Encode(CodecId id, const std::vector<ValueId>& values,
                   uint32_t capacity) {
  EncodedPage e;
  e.choice = MakeCodecChoice(id, values);
  e.buf.assign(capacity / 8, 0);
  e.size = CodecEncodePage(e.choice, values.data(), values.size(),
                           reinterpret_cast<uint8_t*>(e.buf.data()), capacity,
                           &e.aux2);
  EXPECT_LE(e.size, capacity);
  return e;
}

class CodecPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CodecPropertyTest, AllKernelsMatchReferenceOnAllTiersAndCodecs) {
  const uint32_t bits = GetParam();
  const uint64_t n = 2048;
  const uint64_t mask = LowMask(bits);
  const auto values = MakeCodecValues(bits, n, 41 * bits);
  // Large enough that RLE never escapes here (the escape path has its own
  // test below); plain needs 32 chunks × bits words + spare.
  const uint32_t capacity = 64 * 1024;
  const RowPos base = 5000000;
  std::mt19937_64 rng(700 + bits);

  for (CodecId id : kAllCodecs) {
    const EncodedPage enc = Encode(id, values, capacity);
    if (id == CodecId::kRle) {
      ASSERT_NE(enc.aux2, kRleEscapeAux);
    }
    // The value generator floors at mask/3, so FOR gets a real base to
    // subtract everywhere the width allows one.
    if (id == CodecId::kFor && bits > 1) {
      ASSERT_GT(enc.choice.params.for_base, 0u);
    }

    // Get round-trips every position (tier-independent single decode).
    for (uint64_t idx = 0; idx < n; idx += 97) {
      ASSERT_EQ(CodecGetValue(id, enc.View(n, nullptr), idx), values[idx])
          << CodecName(id) << " bits=" << bits << " idx=" << idx;
    }

    for (const Tier& tier : AvailableTiers()) {
      const CodecPageView view = enc.View(n, tier.kernels);
      CodecStats stats;
      for (const auto& [from, to] : MakeRanges(n, 300 + bits)) {
        // mget ≡ the raw slice.
        std::vector<ValueId> got(to - from + 1, 0xDEADBEEFu);
        CodecMGet(id, view, from, to, got.data(), &stats);
        for (uint64_t i = 0; i < to - from; ++i) {
          ASSERT_EQ(got[i], values[from + i])
              << CodecName(id) << " tier=" << SimdLevelName(tier.level)
              << " bits=" << bits << " [" << from << "," << to << ") i=" << i;
        }

        // search(eq): a present value (when non-empty), a random probe, and
        // an out-of-domain probe below the FOR base.
        std::vector<ValueId> probes = {static_cast<ValueId>(rng() & mask)};
        if (from < to) probes.push_back(values[from + rng() % (to - from)]);
        if (enc.choice.params.for_base > 0) {
          probes.push_back(enc.choice.params.for_base - 1);
        }
        for (ValueId vid : probes) {
          std::vector<RowPos> out;
          CodecSearchEq(id, view, from, to, vid, base, &out, &stats);
          ASSERT_EQ(out, RefEq(values, from, to, vid, base))
              << CodecName(id) << " tier=" << SimdLevelName(tier.level)
              << " bits=" << bits << " vid=" << vid;
        }

        // search(range): random band, plus a band straddling the FOR base.
        ValueId lo = static_cast<ValueId>(rng() & mask);
        ValueId hi = static_cast<ValueId>(rng() & mask);
        if (lo > hi) std::swap(lo, hi);
        for (auto [blo, bhi] :
             {std::pair<ValueId, ValueId>{lo, hi},
              std::pair<ValueId, ValueId>{0, enc.choice.params.for_base}}) {
          std::vector<RowPos> out;
          CodecSearchRange(id, view, from, to, blo, bhi, base, &out, &stats);
          ASSERT_EQ(out, RefRange(values, from, to, blo, bhi, base))
              << CodecName(id) << " tier=" << SimdLevelName(tier.level)
              << " bits=" << bits << " [" << blo << "," << bhi << "]";
        }

        // search(in): random sorted set including present values.
        std::vector<ValueId> vids;
        for (int i = 0; i < 7; ++i) {
          vids.push_back(static_cast<ValueId>(rng() & mask));
        }
        if (from < to) vids.push_back(values[from + rng() % (to - from)]);
        std::sort(vids.begin(), vids.end());
        vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
        std::vector<RowPos> out;
        CodecSearchIn(id, view, from, to, vids, base, &out, &stats);
        ASSERT_EQ(out, RefIn(values, from, to, vids, base))
            << CodecName(id) << " tier=" << SimdLevelName(tier.level)
            << " bits=" << bits;
      }
      // The acceptance matrix, per tier: every codec runs every kernel
      // natively (S23 closed the last FOR/RLE search(in) fallback row).
      EXPECT_GT(stats.native, 0u);
      EXPECT_EQ(stats.fallback, 0u) << CodecName(id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, CodecPropertyTest,
                         ::testing::Range(1u, 33u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "Bits" + std::to_string(info.param);
                         });

// A page whose run catalog cannot fit escapes to plain packing (marked in
// aux2) and must decode identically.
TEST(CodecTest, RleEscapePageStoresPlain) {
  const uint32_t bits = 7;
  const uint64_t n = 1024;
  std::vector<ValueId> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<ValueId>(i % 97);  // ~every value its own run
  }
  // Exactly the plain capacity: 16 chunks × 7 words × 8 + spare. The run
  // catalog alone (4 KiB) cannot fit.
  const uint32_t capacity =
      static_cast<uint32_t>(CeilDiv(n, kChunkValues) * ChunkBytes(bits) + 8);
  const EncodedPage enc = Encode(CodecId::kRle, values, capacity);
  ASSERT_EQ(enc.aux2, kRleEscapeAux);

  const CodecPageView view = enc.View(n, nullptr);
  CodecStats stats;
  std::vector<ValueId> got(n);
  CodecMGet(CodecId::kRle, view, 0, n, got.data(), &stats);
  EXPECT_EQ(got, values);
  std::vector<RowPos> out;
  CodecSearchEq(CodecId::kRle, view, 0, n, 42, 0, &out, &stats);
  EXPECT_EQ(out, RefEq(values, 0, n, 42, 0));
  out.clear();
  CodecSearchRange(CodecId::kRle, view, 0, n, 10, 20, 0, &out, &stats);
  EXPECT_EQ(out, RefRange(values, 0, n, 10, 20, 0));
}

// Hostile-image gate (S26): everything the encoders emit must validate,
// and each seeded corruption must be rejected with Corruption before any
// kernel touches the image. Mirrors what fuzz_codec_page asserts.
TEST(CodecTest, ValidatePageAcceptsEveryEncoderOutput) {
  const uint32_t capacity = 64 * 1024;
  for (uint32_t bits : {1u, 7u, 17u, 32u}) {
    const auto values = MakeCodecValues(bits, 2048, 13 * bits);
    for (CodecId id : kAllCodecs) {
      const EncodedPage enc = Encode(id, values, capacity);
      EXPECT_TRUE(
          CodecValidatePage(id, enc.View(values.size(), nullptr), enc.size)
              .ok())
          << CodecName(id) << " bits=" << bits;
    }
  }
  // The RLE escape image validates through the packed-bytes branch.
  std::vector<ValueId> churn(1024);
  for (uint64_t i = 0; i < churn.size(); ++i) {
    churn[i] = static_cast<ValueId>(i % 97);
  }
  const uint32_t tight = static_cast<uint32_t>(
      CeilDiv(churn.size(), kChunkValues) * ChunkBytes(7) + 8);
  const EncodedPage esc = Encode(CodecId::kRle, churn, tight);
  ASSERT_EQ(esc.aux2, kRleEscapeAux);
  EXPECT_TRUE(
      CodecValidatePage(CodecId::kRle, esc.View(churn.size(), nullptr),
                        esc.size)
          .ok());
}

TEST(CodecTest, ValidatePageRejectsSeededCorruptions) {
  const auto values = MakeCodecValues(9, 512, 5);
  const EncodedPage plain = Encode(CodecId::kPlain, values, 64 * 1024);

  CodecPageView v = plain.View(values.size(), nullptr);
  v.params.bits = 0;
  EXPECT_FALSE(CodecValidatePage(CodecId::kPlain, v, plain.size).ok());
  v.params.bits = 33;
  EXPECT_FALSE(CodecValidatePage(CodecId::kPlain, v, plain.size).ok());

  // A row count past u32 must not wrap the packed-byte bound.
  v = plain.View(0x100000000ull, nullptr);
  EXPECT_FALSE(CodecValidatePage(CodecId::kPlain, v, plain.size).ok());

  // Payload shorter than the packed image the header claims.
  v = plain.View(values.size(), nullptr);
  EXPECT_FALSE(CodecValidatePage(CodecId::kPlain, v, plain.size - 64).ok());

  // RLE catalog corruptions, each one mutation away from a valid page.
  std::vector<ValueId> runs_vals(512);
  for (uint64_t i = 0; i < runs_vals.size(); ++i) {
    runs_vals[i] = static_cast<ValueId>(i / 64);
  }
  EncodedPage rle = Encode(CodecId::kRle, runs_vals, 64 * 1024);
  ASSERT_NE(rle.aux2, kRleEscapeAux);
  const CodecPageView good = rle.View(runs_vals.size(), nullptr);
  ASSERT_TRUE(CodecValidatePage(CodecId::kRle, good, rle.size).ok());

  v = good;
  v.aux2 = 0;  // runs and rows disagree about emptiness
  EXPECT_FALSE(CodecValidatePage(CodecId::kRle, v, rle.size).ok());
  v = good;
  v.n = static_cast<uint64_t>(v.aux2) - 1;  // more runs than rows
  EXPECT_FALSE(CodecValidatePage(CodecId::kRle, v, rle.size).ok());
  v = good;
  // runs == n passes the count checks, but a 512-run catalog plus its
  // packed values cannot fit the 8-run payload this page actually has.
  v.aux2 = static_cast<uint32_t>(runs_vals.size());
  EXPECT_FALSE(CodecValidatePage(CodecId::kRle, v, rle.size).ok());

  uint32_t* ends = reinterpret_cast<uint32_t*>(rle.buf.data());
  const uint32_t saved = ends[1];
  ends[1] = ends[0];  // not strictly increasing
  EXPECT_FALSE(CodecValidatePage(CodecId::kRle, good, rle.size).ok());
  ends[1] = saved;
  const uint32_t last = rle.aux2 - 1;
  ends[last] = static_cast<uint32_t>(runs_vals.size()) + 7;  // end != n
  EXPECT_FALSE(CodecValidatePage(CodecId::kRle, good, rle.size).ok());
}

// The (codec × kernel) native/fallback matrix, one dispatch per cell.
TEST(CodecTest, NativeFallbackMatrix) {
  const auto values = MakeCodecValues(12, 512, 99);
  const std::vector<ValueId> in_set = {values[0], values[100], values[200]};
  std::vector<ValueId> sorted_set = in_set;
  std::sort(sorted_set.begin(), sorted_set.end());
  sorted_set.erase(std::unique(sorted_set.begin(), sorted_set.end()),
                   sorted_set.end());
  for (CodecId id : kAllCodecs) {
    const EncodedPage enc = Encode(id, values, 64 * 1024);
    const CodecPageView view = enc.View(values.size(), nullptr);
    std::vector<ValueId> decoded(values.size());
    std::vector<RowPos> rows;

    CodecStats s;
    CodecMGet(id, view, 0, values.size(), decoded.data(), &s);
    EXPECT_EQ(s.native, 1u) << CodecName(id) << " mget";
    CodecSearchEq(id, view, 0, values.size(), values[0], 0, &rows, &s);
    EXPECT_EQ(s.native, 2u) << CodecName(id) << " eq";
    CodecSearchRange(id, view, 0, values.size(), values[0], values[1], 0,
                     &rows, &s);
    EXPECT_EQ(s.native, 3u) << CodecName(id) << " range";
    EXPECT_EQ(s.fallback, 0u) << CodecName(id);
    CodecSearchIn(id, view, 0, values.size(), sorted_set, 0, &rows, &s);
    EXPECT_EQ(s.native, 4u) << CodecName(id) << " in should be native";
    EXPECT_EQ(s.fallback, 0u) << CodecName(id);
  }
}

// ---------------------------------------------------------------------------
// Selection cost model.
// ---------------------------------------------------------------------------

TEST(CodecTest, ChooseCodecPrefersRleOnRuns) {
  std::vector<ValueId> vids;
  for (uint32_t i = 0; i < 50000; ++i) vids.push_back(i / 32);
  const CodecChoice c = ChooseCodec(vids);
  EXPECT_EQ(c.id, CodecId::kRle);
  EXPECT_EQ(c.params.bits, BitsNeeded(50000 / 32 - 1));
}

TEST(CodecTest, ChooseCodecPrefersForOnOffsetRange) {
  std::mt19937_64 rng(7);
  std::vector<ValueId> vids;
  const ValueId base = 1u << 20;
  for (uint32_t i = 0; i < 50000; ++i) {
    vids.push_back(base + static_cast<ValueId>(rng() % 251));
  }
  const CodecChoice c = ChooseCodec(vids);
  EXPECT_EQ(c.id, CodecId::kFor);
  EXPECT_EQ(c.params.for_base, base);
  EXPECT_EQ(c.params.bits, 8u);  // residuals 0..250
}

TEST(CodecTest, ChooseCodecPrefersPlainOnDenseRandom) {
  std::mt19937_64 rng(8);
  std::vector<ValueId> vids = {0};  // pin the minimum at zero
  for (uint32_t i = 0; i < 50000; ++i) {
    vids.push_back(static_cast<ValueId>(rng() % 1024));
  }
  EXPECT_EQ(ChooseCodec(vids).id, CodecId::kPlain);
}

TEST(CodecTest, ChooseCodecEmptyAndConstantColumns) {
  EXPECT_EQ(ChooseCodec({}).id, CodecId::kPlain);
  EXPECT_EQ(ChooseCodec({}).params.bits, 1u);
  // A constant column is one giant run: RLE at the minimal width.
  std::vector<ValueId> constant(10000, 5);
  EXPECT_EQ(ChooseCodec(constant).id, CodecId::kRle);
}

TEST(CodecTest, ResolveCodecHonorsExplicitForce) {
  std::vector<ValueId> vids;
  for (uint32_t i = 0; i < 1000; ++i) vids.push_back(i / 16);
  // A fragment-level force wins over both the knob and the cost model.
  EXPECT_EQ(ResolveCodec(CodecForce::kPlain, vids).id, CodecId::kPlain);
  EXPECT_EQ(ResolveCodec(CodecForce::kFor, vids).id, CodecId::kFor);
  EXPECT_EQ(ResolveCodec(CodecForce::kRle, vids).id, CodecId::kRle);
}

TEST(CodecTest, ForcedCodecMatchesEnvironment) {
  const char* env = EnvRaw("PAYG_FORCE_CODEC");
  const CodecForce f = ForcedCodec();
  if (env == nullptr || std::strcmp(env, "auto") == 0) {
    EXPECT_EQ(f, CodecForce::kAuto);
  } else if (std::strcmp(env, "plain") == 0) {
    EXPECT_EQ(f, CodecForce::kPlain);
  } else if (std::strcmp(env, "for") == 0) {
    EXPECT_EQ(f, CodecForce::kFor);
  } else if (std::strcmp(env, "rle") == 0) {
    EXPECT_EQ(f, CodecForce::kRle);
  } else {
    EXPECT_EQ(f, CodecForce::kAuto);  // malformed values fall back to auto
  }
}

TEST(CodecTest, ValuesPerPageIsChunkAlignedForEveryWidth) {
  for (uint32_t bits = 1; bits <= 32; ++bits) {
    CodecChoice choice;
    choice.params.bits = bits;
    for (CodecId id : kAllCodecs) {
      choice.id = id;
      const uint64_t vpp = CodecValuesPerPage(4032, choice);
      EXPECT_GT(vpp, 0u);
      EXPECT_EQ(vpp % kChunkValues, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Paged-storage integration: codecs through PagedDataVector / fragments /
// the delta merge, surviving a StorageManager restart.
// ---------------------------------------------------------------------------

class CodecPagedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/payg_codec_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
    StorageOptions opts;
    opts.page_size = 4096;  // tiny pages force multi-page structures
    opts.dict_page_size = 8192;
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
    rm_ = std::make_unique<ResourceManager>();
  }

  void TearDown() override {
    storage_.reset();
    std::filesystem::remove_all(dir_);
  }

  // Closes every chain and reopens the store — a process restart as far as
  // persisted state is concerned.
  void RestartStorage() {
    StorageOptions opts;
    opts.page_size = 4096;
    opts.dict_page_size = 8192;
    storage_.reset();
    auto sm = StorageManager::Open(dir_, opts);
    ASSERT_TRUE(sm.ok());
    storage_ = std::move(*sm);
  }

  std::string dir_;
  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
};

TEST_F(CodecPagedTest, PagedVectorRoundTripsEveryCodec) {
  const auto values = MakeCodecValues(11, 60000, 17);
  for (CodecId id : kAllCodecs) {
    const std::string name = std::string("rt_") + CodecName(id);
    auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, name, values,
                                     MakeCodecChoice(id, values));
    ASSERT_TRUE(dv.ok()) << dv.status().ToString();
    EXPECT_EQ((*dv)->codec_id(), id);
    EXPECT_GT((*dv)->data_page_count(), 3u);

    PagedDataVectorIterator it(dv->get());
    std::vector<ValueId> got;
    ASSERT_TRUE(it.MGet(0, static_cast<RowPos>(values.size()), &got).ok());
    ASSERT_EQ(got, values) << CodecName(id);

    std::vector<RowPos> rows;
    ASSERT_TRUE(
        it.SearchEq(100, 50000, values[4321], &rows).ok());
    EXPECT_EQ(rows, RefEq(values, 100, 50000, values[4321], 100))
        << CodecName(id);
    rows.clear();
    ASSERT_TRUE(it.SearchRange(0, static_cast<RowPos>(values.size()),
                               values[7], values[7] + 40, &rows)
                    .ok());
    EXPECT_EQ(rows, RefRange(values, 0, values.size(), values[7],
                             values[7] + 40, 0))
        << CodecName(id);
  }
}

TEST_F(CodecPagedTest, IteratorCountsNativeAndFallbackKernels) {
  const auto values = MakeCodecValues(10, 30000, 23);
  std::vector<ValueId> in_set = {values[5], values[999], values[20000]};
  std::sort(in_set.begin(), in_set.end());
  in_set.erase(std::unique(in_set.begin(), in_set.end()), in_set.end());

  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* g_native = reg.counter("codec.kernel_native");
  obs::Counter* g_fallback = reg.counter("codec.kernel_fallback");

  for (CodecId id : kAllCodecs) {
    const std::string name = std::string("cnt_") + CodecName(id);
    auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                     PoolId::kPagedPool, name, values,
                                     MakeCodecChoice(id, values));
    ASSERT_TRUE(dv.ok());

    const uint64_t before_native = g_native->value();
    const uint64_t before_fallback = g_fallback->value();
    ExecContext ctx;
    {
      // FOR SearchEq/SearchRange and RLE SearchEq/MGet (and more) must run
      // natively on the compressed image: zero fallbacks outside search(in).
      PagedDataVectorIterator it(dv->get(), &ctx);
      it.set_use_summary(false);  // count every page dispatch
      std::vector<ValueId> decoded;
      ASSERT_TRUE(
          it.MGet(0, static_cast<RowPos>(values.size()), &decoded).ok());
      std::vector<RowPos> rows;
      ASSERT_TRUE(it.SearchEq(0, static_cast<RowPos>(values.size()),
                              values[42], &rows)
                      .ok());
      ASSERT_TRUE(it.SearchRange(0, static_cast<RowPos>(values.size()),
                                 values[0], values[0] + 9, &rows)
                      .ok());
      EXPECT_GT(it.codec_native(), 0u) << CodecName(id);
      EXPECT_EQ(it.codec_fallback(), 0u) << CodecName(id);

      // search(in) is native on every codec too (S23: FOR residual
      // translation, RLE run-catalog skipping).
      ASSERT_TRUE(it.SearchIn(0, static_cast<RowPos>(values.size()), in_set,
                              &rows)
                      .ok());
      EXPECT_EQ(it.codec_fallback(), 0u) << CodecName(id);
    }
    // The iterator folded its tallies into the process-wide codec.* pair
    // and the query's ExecContext on destruction.
    EXPECT_GT(g_native->value(), before_native) << CodecName(id);
    EXPECT_GT(ctx.stats.codec_native.load(), 0u) << CodecName(id);
    EXPECT_EQ(g_fallback->value(), before_fallback) << CodecName(id);
    EXPECT_EQ(ctx.stats.codec_fallback.load(), 0u) << CodecName(id);
  }
}

TEST_F(CodecPagedTest, BuildBumpsSelectionMetrics) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* selected = reg.counter("codec.selected.for");
  obs::Counter* bytes = reg.counter("codec.bytes.for");
  const uint64_t before_sel = selected->value();
  const uint64_t before_bytes = bytes->value();
  const auto values = MakeCodecValues(9, 20000, 31);
  auto dv = PagedDataVector::Build(storage_.get(), rm_.get(),
                                   PoolId::kPagedPool, "metrics_for", values,
                                   MakeCodecChoice(CodecId::kFor, values));
  ASSERT_TRUE(dv.ok());
  EXPECT_EQ(selected->value(), before_sel + 1);
  EXPECT_GT(bytes->value(), before_bytes);
}

TEST_F(CodecPagedTest, FragmentReopenHonorsPersistedCodec) {
  std::vector<Value> dict_values;
  for (int64_t i = 0; i < 400; ++i) dict_values.emplace_back(i * 10);
  std::vector<ValueId> vids;
  for (uint32_t i = 0; i < 30000; ++i) {
    vids.push_back((i / 16) % 400);  // runs of 16
  }
  for (CodecForce force : {CodecForce::kFor, CodecForce::kRle}) {
    const CodecId want = static_cast<CodecId>(static_cast<int>(force));
    const std::string name = std::string("frag_") + CodecName(want);
    FragmentSpec spec;
    spec.page_loadable = true;
    spec.codec = force;  // pins the codec even under PAYG_FORCE_CODEC
    {
      auto frag = BuildMainFragment(storage_.get(), rm_.get(), name,
                                    ValueType::kInt64, dict_values, vids,
                                    spec);
      ASSERT_TRUE(frag.ok()) << frag.status().ToString();
      EXPECT_STREQ((*frag)->codec_name(), CodecName(want));
    }

    RestartStorage();

    auto frag = OpenMainFragment(storage_.get(), rm_.get(), name, spec);
    ASSERT_TRUE(frag.ok()) << frag.status().ToString();
    // The persisted codec id — not the knob, not a re-selection — decides
    // how pages decode after restart.
    EXPECT_STREQ((*frag)->codec_name(), CodecName(want));
    auto reader = (*frag)->NewReader();
    ASSERT_TRUE(reader.ok());
    std::vector<ValueId> got;
    ASSERT_TRUE(
        (*reader)->MGetVids(0, static_cast<RowPos>(vids.size()), &got).ok());
    EXPECT_EQ(got, vids) << CodecName(want);
    std::vector<RowPos> rows;
    ASSERT_TRUE((*reader)->SearchVidRange(0, static_cast<RowPos>(vids.size()),
                                          17, 17, &rows)
                    .ok());
    EXPECT_EQ(rows, RefEq(vids, 0, vids.size(), 17, 0)) << CodecName(want);
  }
}

TEST_F(CodecPagedTest, MergeSelectsCodecPerColumnAndSurvivesRestart) {
  TableSchema schema;
  schema.name = "codec_merge";
  schema.columns.push_back(ColumnSchema{.name = "runs",
                                        .type = ValueType::kInt64,
                                        .page_loadable = true});
  auto part = std::make_unique<Partition>(&schema, 0, /*cold=*/false,
                                          storage_.get(), rm_.get());
  // Long runs of ascending values: vids after the order-preserving merge
  // keep the run structure, so the cost model should land on RLE (unless
  // PAYG_FORCE_CODEC pins another codec for this ctest leg).
  const uint32_t rows = 8000;
  for (uint32_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(part->Insert({Value(static_cast<int64_t>(i / 8))}).ok());
  }
  ASSERT_TRUE(part->Merge().ok());
  const char* expect =
      ForcedCodec() == CodecForce::kAuto
          ? "rle"
          : CodecName(static_cast<CodecId>(static_cast<int>(ForcedCodec())));
  EXPECT_STREQ(part->main(0)->codec_name(), expect);

  const uint64_t gen = part->merge_generation();
  part.reset();
  RestartStorage();

  auto reopened = Partition::OpenExisting(&schema, 0, /*cold=*/false,
                                          storage_.get(), rm_.get(), gen,
                                          rows);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_STREQ((*reopened)->main(0)->codec_name(), expect);
  for (RowPos r : {0u, 4097u, 7999u}) {
    auto row = (*reopened)->GetRow(r, nullptr);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ((*row)[0].AsInt64(), static_cast<int64_t>(r / 8));
  }
}

}  // namespace
}  // namespace payg
