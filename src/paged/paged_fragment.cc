#include "paged/paged_fragment.h"

#include "exec/exec_context.h"
#include "storage/byte_stream.h"

namespace payg {

namespace {

std::string MetaChainName(const std::string& name) { return name + ".pmeta"; }

}  // namespace

// Per-query reader over a paged fragment. Owns one iterator per paged
// structure; all pins (current data-vector page, dictionary handle cache,
// index cursor pages, numeric dictionary) release when the reader dies.
class PagedReader : public FragmentReader {
 public:
  PagedReader(PagedFragment* frag, ExecContext* ctx,
              std::shared_ptr<Dictionary> num_dict,
              PinnedResource num_dict_pin)
      : frag_(frag),
        ctx_(ctx),
        dv_it_(frag->data_.get(), ctx),
        num_dict_(std::move(num_dict)),
        num_dict_pin_(std::move(num_dict_pin)) {
    if (frag_->dict_ != nullptr) {
      dict_it_ = std::make_unique<PagedDictionaryIterator>(frag_->dict_.get(),
                                                           ctx);
    }
  }

  Result<ValueId> GetVid(RowPos rpos) override { return dv_it_.Get(rpos); }

  Status MGetVids(RowPos from, RowPos to, std::vector<ValueId>* out) override {
    return dv_it_.MGet(from, to, out);
  }

  Status SearchVidRange(RowPos from, RowPos to, ValueId lo, ValueId hi,
                        std::vector<RowPos>* out) override {
    return dv_it_.SearchRange(from, to, lo, hi, out);
  }

  Status SearchVidSet(RowPos from, RowPos to,
                      const std::vector<ValueId>& sorted_vids,
                      std::vector<RowPos>* out) override {
    return dv_it_.SearchIn(from, to, sorted_vids, out);
  }

  Status FilterRows(const std::vector<RowPos>& rows, ValueId lo, ValueId hi,
                    std::vector<RowPos>* out) override {
    return dv_it_.SearchRowsRange(rows, lo, hi, out);
  }

  Status FindRows(ValueId vid, std::vector<RowPos>* out) override {
    if (vid >= frag_->dict_size_) return Status::OutOfRange("value id");
    // §8: under the deferred regime this may rebuild the index now.
    PAYG_RETURN_IF_ERROR(frag_->MaybeRebuildIndex());
    if (idx_it_ == nullptr) {
      PagedInvertedIndex* index = frag_->index();
      if (index != nullptr) {
        idx_it_ = std::make_unique<PagedIndexIterator>(index, ctx_);
      }
    }
    if (idx_it_ != nullptr) {
      // Alg. 5: use the paged inverted index when it exists.
      CountIndexLookup(ctx_);
      return idx_it_->Lookup(vid, out);
    }
    // Alg. 1: sequential scan of the paged data vector.
    CountVectorScan(ctx_);
    return dv_it_.FindByValueId(vid, out);
  }

  Result<Value> GetValueForVid(ValueId vid) override {
    if (vid >= frag_->dict_size_) return Status::OutOfRange("value id");
    if (dict_it_ != nullptr) {
      auto s = dict_it_->FindByValueId(vid);
      if (!s.ok()) return s.status();
      return Value(std::move(*s));
    }
    return num_dict_->GetValue(vid);
  }

  Result<ValueId> FindValueId(const Value& value) override {
    if (dict_it_ != nullptr) {
      return dict_it_->FindByValue(value.AsString());
    }
    auto v = num_dict_->FindValueId(value);
    return v.has_value() ? *v : kInvalidValueId;
  }

  Result<ValueId> LowerBoundVid(const Value& value) override {
    if (dict_it_ != nullptr) return dict_it_->LowerBound(value.AsString());
    return num_dict_->LowerBound(value);
  }

  Result<ValueId> UpperBoundVid(const Value& value) override {
    if (dict_it_ != nullptr) return dict_it_->UpperBound(value.AsString());
    return num_dict_->UpperBound(value);
  }

 private:
  PagedFragment* frag_;
  ExecContext* ctx_;
  PagedDataVectorIterator dv_it_;
  std::unique_ptr<PagedDictionaryIterator> dict_it_;
  std::unique_ptr<PagedIndexIterator> idx_it_;
  std::shared_ptr<Dictionary> num_dict_;
  PinnedResource num_dict_pin_;
};

Result<std::unique_ptr<PagedFragment>> PagedFragment::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, ValueType type,
    const std::vector<Value>& sorted_dict_values,
    const std::vector<ValueId>& vids, IndexMode index_mode,
    uint32_t index_build_threshold, CodecForce codec) {
  auto frag = std::unique_ptr<PagedFragment>(new PagedFragment());
  frag->name_ = name;
  frag->storage_ = storage;
  frag->rm_ = rm;
  frag->pool_ = pool;
  frag->type_ = type;
  frag->row_count_ = vids.size();
  frag->dict_size_ = sorted_dict_values.size();
  frag->index_mode_ = index_mode;
  frag->index_build_threshold_ = index_build_threshold;

  // Meta chain: fragment header plus, for numeric columns, the dictionary
  // values themselves.
  {
    PAYG_ASSIGN_OR_RETURN(
        auto mfile, storage->CreateChain(MetaChainName(name),
                                         storage->options().page_size));
    ChainByteWriter w(mfile.get());
    w.PutU8(static_cast<uint8_t>(type));
    w.PutU8(static_cast<uint8_t>(index_mode));
    w.PutU64(vids.size());
    w.PutU64(sorted_dict_values.size());
    if (type != ValueType::kString) {
      for (const Value& v : sorted_dict_values) {
        if (type == ValueType::kInt64) {
          w.PutI64(v.AsInt64());
        } else {
          w.PutDouble(v.AsDouble());
        }
      }
    }
    PAYG_RETURN_IF_ERROR(w.Finish());
    PAYG_RETURN_IF_ERROR(mfile->Sync());
  }

  // The delta-merge codec selection pass (S22): fragment-level force, then
  // PAYG_FORCE_CODEC, then the per-column cost model over these vids.
  PAYG_ASSIGN_OR_RETURN(
      frag->data_, PagedDataVector::Build(storage, rm, pool, name, vids,
                                          ResolveCodec(codec, vids)));

  if (type == ValueType::kString) {
    std::vector<std::string> strings;
    strings.reserve(sorted_dict_values.size());
    for (const Value& v : sorted_dict_values) strings.push_back(v.AsString());
    PAYG_ASSIGN_OR_RETURN(
        frag->dict_, PagedDictionary::Build(storage, rm, pool, name, strings));
  }

  if (index_mode == IndexMode::kEager) {
    PAYG_ASSIGN_OR_RETURN(
        frag->index_, PagedInvertedIndex::Build(storage, rm, pool, name, vids,
                                                sorted_dict_values.size()));
  }
  // Under kDeferred nothing is built now: the index is non-critical data,
  // recoverable from the data vector, rebuilt when the workload asks (§8).
  return frag;
}

Result<std::unique_ptr<PagedFragment>> PagedFragment::Open(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name) {
  auto frag = std::unique_ptr<PagedFragment>(new PagedFragment());
  frag->name_ = name;
  frag->storage_ = storage;
  frag->rm_ = rm;
  frag->pool_ = pool;

  {
    PAYG_ASSIGN_OR_RETURN(
        auto mfile, storage->OpenChain(MetaChainName(name),
                                       storage->options().page_size));
    ChainByteReader r(mfile.get());
    PAYG_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    PAYG_ASSIGN_OR_RETURN(uint8_t index_mode, r.GetU8());
    PAYG_ASSIGN_OR_RETURN(frag->row_count_, r.GetU64());
    PAYG_ASSIGN_OR_RETURN(frag->dict_size_, r.GetU64());
    frag->type_ = static_cast<ValueType>(type);
    frag->index_mode_ = static_cast<IndexMode>(index_mode);
  }

  PAYG_ASSIGN_OR_RETURN(frag->data_,
                        PagedDataVector::Open(storage, rm, pool, name));
  if (frag->type_ == ValueType::kString) {
    PAYG_ASSIGN_OR_RETURN(frag->dict_,
                          PagedDictionary::Open(storage, rm, pool, name));
  }
  if (frag->index_mode_ == IndexMode::kEager) {
    PAYG_ASSIGN_OR_RETURN(frag->index_,
                          PagedInvertedIndex::Open(storage, rm, pool, name));
  } else if (frag->index_mode_ == IndexMode::kDeferred) {
    // A previous deferred rebuild may already have persisted the index.
    auto idx = PagedInvertedIndex::Open(storage, rm, pool, name);
    if (idx.ok()) frag->index_ = std::move(*idx);
  }
  return frag;
}

Result<std::shared_ptr<Dictionary>> PagedFragment::PinNumericDict(
    PinnedResource* pin) {
  PAYG_ASSERT(type_ != ValueType::kString);
  {
    MutexLock lock(num_dict_mu_);
    if (num_dict_ != nullptr) {
      PinnedResource p = PinnedResource::TryPin(rm_, num_dict_rid_);
      if (p.valid()) {
        *pin = std::move(p);
        return num_dict_;
      }
      rm_->Unregister(num_dict_rid_);
      num_dict_ = nullptr;
      num_dict_rid_ = kInvalidResourceId;
    }
  }

  PAYG_ASSIGN_OR_RETURN(
      auto mfile, storage_->OpenChain(MetaChainName(name_),
                                      storage_->options().page_size));
  ChainByteReader r(mfile.get());
  PAYG_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  (void)type;
  PAYG_ASSIGN_OR_RETURN(uint8_t has_index, r.GetU8());
  (void)has_index;
  uint64_t rows, dict_size;
  PAYG_ASSIGN_OR_RETURN(rows, r.GetU64());
  (void)rows;
  PAYG_ASSIGN_OR_RETURN(dict_size, r.GetU64());
  std::vector<Value> values;
  values.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    if (type_ == ValueType::kInt64) {
      PAYG_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
      values.emplace_back(v);
    } else {
      PAYG_ASSIGN_OR_RETURN(double v, r.GetDouble());
      values.emplace_back(v);
    }
  }
  auto dict = std::make_shared<Dictionary>(
      Dictionary::FromSorted(type_, std::move(values)));

  MutexLock lock(num_dict_mu_);
  if (num_dict_ != nullptr) {
    PinnedResource p = PinnedResource::TryPin(rm_, num_dict_rid_);
    if (p.valid()) {
      *pin = std::move(p);
      return num_dict_;
    }
    rm_->Unregister(num_dict_rid_);
  }
  const uint64_t gen = ++num_dict_gen_;
  num_dict_ = std::move(dict);
  num_dict_rid_ = rm_->RegisterPinned(
      name_ + ".numdict", num_dict_->MemoryBytes(),
      Disposition::kPagedAttribute, pool_, [this, gen] {
        MutexLock lk(num_dict_mu_);
        if (num_dict_gen_ == gen) {
          num_dict_ = nullptr;
          num_dict_rid_ = kInvalidResourceId;
        }
      });
  *pin = PinnedResource::Adopt(rm_, num_dict_rid_);
  return num_dict_;
}

Status PagedFragment::MaybeRebuildIndex() {
  if (index_mode_ != IndexMode::kDeferred) return Status::OK();
  {
    MutexLock lock(index_mu_);
    if (index_ != nullptr) return Status::OK();
  }
  if (point_lookups_.fetch_add(1) + 1 < index_build_threshold_) {
    return Status::OK();
  }
  return RebuildIndexNow();
}

Status PagedFragment::RebuildIndexNow() {
  MutexLock lock(index_mu_);
  if (index_ != nullptr) return Status::OK();
  // The index is rebuilt from critical data only: one full pass over the
  // paged data vector (§8 — non-critical structures "can be recovered and
  // rebuilt from critical data").
  std::vector<ValueId> vids;
  vids.reserve(row_count_);
  PagedDataVectorIterator it(data_.get());
  PAYG_RETURN_IF_ERROR(
      it.MGet(0, static_cast<RowPos>(row_count_), &vids));
  PAYG_ASSIGN_OR_RETURN(index_,
                        PagedInvertedIndex::Build(storage_, rm_, pool_, name_,
                                                  vids, dict_size_));
  return Status::OK();
}

Result<std::unique_ptr<FragmentReader>> PagedFragment::NewReader(
    ExecContext* ctx) {
  std::shared_ptr<Dictionary> num_dict;
  PinnedResource num_pin;
  if (type_ != ValueType::kString) {
    PAYG_ASSIGN_OR_RETURN(num_dict, PinNumericDict(&num_pin));
  }
  return std::unique_ptr<FragmentReader>(
      new PagedReader(this, ctx, std::move(num_dict), std::move(num_pin)));
}

void PagedFragment::Unload() {
  if (data_ != nullptr) data_->Unload();
  if (dict_ != nullptr) dict_->Unload();
  {
    MutexLock lock(index_mu_);
    if (index_ != nullptr) index_->Unload();
  }
  MutexLock lock(num_dict_mu_);
  if (num_dict_ != nullptr) {
    rm_->Unregister(num_dict_rid_);
    num_dict_ = nullptr;
    num_dict_rid_ = kInvalidResourceId;
  }
}

uint64_t PagedFragment::ResidentBytes() const {
  uint64_t bytes = 0;
  if (data_ != nullptr) {
    bytes += data_->cache()->loaded_page_count() *
             storage_->options().page_size;
  }
  if (dict_ != nullptr) {
    bytes += dict_->cache()->loaded_page_count() *
             storage_->options().dict_page_size;
  }
  {
    MutexLock lock(index_mu_);
    if (index_ != nullptr) {
      bytes += index_->cache()->loaded_page_count() *
               storage_->options().page_size;
    }
  }
  MutexLock lock(num_dict_mu_);
  if (num_dict_ != nullptr) bytes += num_dict_->MemoryBytes();
  return bytes;
}

}  // namespace payg
