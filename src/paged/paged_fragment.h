#ifndef PAYG_PAGED_PAGED_FRAGMENT_H_
#define PAYG_PAGED_PAGED_FRAGMENT_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

#include "buffer/resource_manager.h"
#include "columnar/dictionary.h"
#include "columnar/fragment.h"
#include "paged/paged_data_vector.h"
#include "paged/paged_dictionary.h"
#include "paged/paged_inverted_index.h"

namespace payg {

// Main fragment of a *page loadable* column: its data vector, dictionary and
// optional inverted index are all loaded and evicted one page at a time.
//
// String columns use the paged dictionary of §3.2. Numeric dictionaries are
// small (the paper pages dictionaries "for data types for which the memory
// footprint is noticeable — CHAR and VARCHAR"); they are persisted in the
// fragment's meta chain and loaded whole on first access, registered as a
// single paged-attribute resource.
class PagedFragment : public MainFragment {
 public:
  // How the optional inverted index is materialized.
  enum class IndexMode : uint8_t {
    kNone = 0,      // never build one
    kEager = 1,     // built during Build/delta merge (classic behaviour)
    kDeferred = 2,  // §8: rebuilt lazily from the data vector, driven by
                    // the query workload
  };

  static Result<std::unique_ptr<PagedFragment>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, ValueType type,
      const std::vector<Value>& sorted_dict_values,
      const std::vector<ValueId>& vids, bool with_index) {
    return Build(storage, rm, pool, name, type, sorted_dict_values, vids,
                 with_index ? IndexMode::kEager : IndexMode::kNone,
                 /*index_build_threshold=*/1);
  }

  // `codec` pins the data vector's storage codec; kAuto defers to
  // PAYG_FORCE_CODEC and then the cost model (S22 selection pass).
  static Result<std::unique_ptr<PagedFragment>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, ValueType type,
      const std::vector<Value>& sorted_dict_values,
      const std::vector<ValueId>& vids, IndexMode index_mode,
      uint32_t index_build_threshold,
      CodecForce codec = CodecForce::kAuto);

  static Result<std::unique_ptr<PagedFragment>> Open(StorageManager* storage,
                                                     ResourceManager* rm,
                                                     PoolId pool,
                                                     const std::string& name);

  ~PagedFragment() override { Unload(); }

  uint64_t row_count() const override { return row_count_; }
  uint64_t dict_size() const override { return dict_size_; }
  ValueType type() const override { return type_; }
  bool has_index() const override {
    MutexLock lock(index_mu_);
    return index_ != nullptr;
  }
  bool is_paged() const override { return true; }
  const char* codec_name() const override {
    return CodecName(data_->codec_id());
  }

  IndexMode index_mode() const { return index_mode_; }
  // FindRows calls served so far (drives the deferred rebuild decision).
  uint64_t point_lookup_count() const { return point_lookups_.load(); }

  // §8: rebuilds the inverted index from the paged data vector and persists
  // it, exactly as the delta merge would have. Idempotent; called
  // automatically by readers once the lookup threshold is reached.
  Status RebuildIndexNow();

  Result<std::unique_ptr<FragmentReader>> NewReader(
      ExecContext* ctx) override;
  using MainFragment::NewReader;
  void Unload() override;
  uint64_t ResidentBytes() const override;

  PagedDataVector* data_vector() { return data_.get(); }
  PagedDictionary* paged_dictionary() { return dict_.get(); }
  PagedInvertedIndex* inverted_index() {
    MutexLock lock(index_mu_);
    return index_.get();
  }

 private:
  friend class PagedReader;

  PagedFragment() = default;

  // Loads (or returns) the resident numeric dictionary, pinned.
  Result<std::shared_ptr<Dictionary>> PinNumericDict(PinnedResource* pin);

  std::string name_;
  StorageManager* storage_ = nullptr;
  ResourceManager* rm_ = nullptr;
  PoolId pool_ = PoolId::kPagedPool;
  ValueType type_ = ValueType::kInt64;
  uint64_t row_count_ = 0;
  uint64_t dict_size_ = 0;

  // Called by readers on every FindRows; triggers the deferred rebuild.
  Status MaybeRebuildIndex();
  // Index access for readers under the deferred regime (may be null).
  PagedInvertedIndex* index() const {
    MutexLock lock(index_mu_);
    return index_.get();
  }

  std::unique_ptr<PagedDataVector> data_;
  std::unique_ptr<PagedDictionary> dict_;    // string columns
  // index_mu_ guards the deferred-rebuild publication of the index; the
  // PagedInvertedIndex object itself is internally thread-safe once built.
  mutable Mutex index_mu_;
  std::unique_ptr<PagedInvertedIndex> index_ GUARDED_BY(index_mu_);
  IndexMode index_mode_ = IndexMode::kNone;
  uint32_t index_build_threshold_ = 1;
  std::atomic<uint64_t> point_lookups_{0};

  // Double-checked load state of the whole-loaded numeric dictionary; the
  // generation detects eviction between unlock and re-lock.
  mutable Mutex num_dict_mu_;
  std::shared_ptr<Dictionary> num_dict_ GUARDED_BY(num_dict_mu_);
  ResourceId num_dict_rid_ GUARDED_BY(num_dict_mu_) = kInvalidResourceId;
  uint64_t num_dict_gen_ GUARDED_BY(num_dict_mu_) = 0;
};

}  // namespace payg

#endif  // PAYG_PAGED_PAGED_FRAGMENT_H_
