#include "paged/paged_data_vector.h"

#include <algorithm>
#include <cstring>

#include "exec/exec_context.h"
#include "storage/byte_stream.h"

namespace payg {

namespace {

std::string ChainName(const std::string& name) { return name + ".dv"; }
std::string SummaryChainName(const std::string& name) {
  return name + ".dvsum";
}

// Chunks that fit a page payload, leaving one spare word so the packed
// kernels' 8-byte window overread stays inside the payload buffer.
uint64_t ChunksPerPage(uint32_t payload_bytes, uint32_t bits) {
  return (payload_bytes - sizeof(uint64_t)) / ChunkBytes(bits);
}

}  // namespace

Result<std::unique_ptr<PagedDataVector>> PagedDataVector::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, const std::vector<ValueId>& vids) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->CreateChain(ChainName(name), page_size));

  ValueId max_vid = 0;
  for (ValueId v : vids) max_vid = std::max(max_vid, v);
  const uint32_t bits = BitsNeeded(max_vid);

  Page probe(page_size);
  const uint64_t chunks_per_page = ChunksPerPage(probe.capacity(), bits);
  PAYG_ASSERT_MSG(chunks_per_page > 0, "page too small for one chunk");
  const uint64_t values_per_page = chunks_per_page * kChunkValues;

  // Meta page (page 0).
  {
    Page meta(page_size);
    meta.set_type(PageType::kMeta);
    uint8_t* p = meta.payload();
    uint64_t row_count = vids.size();
    std::memcpy(p, &bits, sizeof(bits));
    std::memcpy(p + 8, &row_count, sizeof(row_count));
    std::memcpy(p + 16, &values_per_page, sizeof(values_per_page));
    meta.set_payload_size(24);
    auto r = file->AppendPage(&meta);
    if (!r.ok()) return r.status();
  }

  // Data pages: pack values_per_page identifiers per page, collecting the
  // per-page min/max summary as we go (§3.3).
  uint64_t data_pages = 0;
  std::vector<ValueId> page_min, page_max;
  Page page(page_size);
  page.set_type(PageType::kDataVector);
  for (uint64_t first = 0; first < vids.size() || vids.empty();
       first += values_per_page) {
    uint64_t n =
        std::min<uint64_t>(values_per_page, vids.size() - first);
    std::memset(page.payload(), 0, page.capacity());
    uint64_t* words = reinterpret_cast<uint64_t*>(page.payload());
    ValueId mn = kInvalidValueId, mx = 0;
    for (uint64_t i = 0; i < n; ++i) {
      ValueId v = vids[first + i];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      PackedSet(words, bits, i, v);
    }
    page_min.push_back(n == 0 ? 0 : mn);
    page_max.push_back(n == 0 ? 0 : mx);
    uint64_t chunks = CeilDiv(n, kChunkValues);
    page.set_payload_size(
        static_cast<uint32_t>(chunks * ChunkBytes(bits) + sizeof(uint64_t)));
    page.header()->aux = static_cast<uint32_t>(n);  // values on this page
    auto r = file->AppendPage(&page);
    if (!r.ok()) return r.status();
    ++data_pages;
    if (vids.empty()) break;
  }
  PAYG_RETURN_IF_ERROR(file->Sync());

  // Persist the min/max summary in its own (small) chain.
  {
    PAYG_ASSIGN_OR_RETURN(
        auto sfile, storage->CreateNonCriticalChain(SummaryChainName(name), page_size));
    ChainByteWriter w(sfile.get());
    w.PutU64(data_pages);
    for (uint64_t p = 0; p < data_pages; ++p) {
      w.PutU32(page_min[p]);
      w.PutU32(page_max[p]);
    }
    PAYG_RETURN_IF_ERROR(w.Finish());
    PAYG_RETURN_IF_ERROR(sfile->Sync());
  }

  auto dv = std::unique_ptr<PagedDataVector>(new PagedDataVector());
  dv->name_ = name;
  dv->storage_ = storage;
  dv->rm_ = rm;
  dv->pool_ = pool;
  dv->row_count_ = vids.size();
  dv->bits_ = bits;
  dv->values_per_page_ = values_per_page;
  dv->data_pages_ = data_pages;
  dv->file_ = std::move(file);
  dv->cache_ = std::make_unique<PageCache>(dv->file_.get(), rm, pool,
                                           name + ".dv");
  return dv;
}

Result<std::unique_ptr<PagedDataVector>> PagedDataVector::Open(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->OpenChain(ChainName(name), page_size));
  Page meta(page_size);
  PAYG_RETURN_IF_ERROR(file->ReadPage(0, &meta));
  if (meta.type() != PageType::kMeta) {
    return Status::Corruption("data vector chain missing meta page");
  }
  auto dv = std::unique_ptr<PagedDataVector>(new PagedDataVector());
  dv->name_ = name;
  dv->storage_ = storage;
  dv->rm_ = rm;
  dv->pool_ = pool;
  const uint8_t* p = meta.payload();
  std::memcpy(&dv->bits_, p, sizeof(dv->bits_));
  std::memcpy(&dv->row_count_, p + 8, sizeof(dv->row_count_));
  std::memcpy(&dv->values_per_page_, p + 16, sizeof(dv->values_per_page_));
  dv->data_pages_ = file->page_count() - 1;
  dv->file_ = std::move(file);
  dv->cache_ = std::make_unique<PageCache>(dv->file_.get(), rm, pool,
                                           name + ".dv");
  return dv;
}

Result<std::shared_ptr<PageSummary>> PagedDataVector::PinSummary(
    PinnedResource* pin) {
  {
    MutexLock lock(summary_mu_);
    if (summary_ != nullptr) {
      PinnedResource p = PinnedResource::TryPin(rm_, summary_rid_);
      if (p.valid()) {
        *pin = std::move(p);
        return summary_;
      }
      rm_->Unregister(summary_rid_);
      summary_ = nullptr;
      summary_rid_ = kInvalidResourceId;
    }
  }

  PAYG_ASSIGN_OR_RETURN(
      auto sfile, storage_->OpenNonCriticalChain(SummaryChainName(name_),
                                      file_->page_size()));
  ChainByteReader r(sfile.get());
  auto s = std::make_shared<PageSummary>();
  uint64_t pages;
  PAYG_ASSIGN_OR_RETURN(pages, r.GetU64());
  s->min_vid.reserve(pages);
  s->max_vid.reserve(pages);
  for (uint64_t p = 0; p < pages; ++p) {
    PAYG_ASSIGN_OR_RETURN(uint32_t mn, r.GetU32());
    PAYG_ASSIGN_OR_RETURN(uint32_t mx, r.GetU32());
    s->min_vid.push_back(mn);
    s->max_vid.push_back(mx);
  }

  MutexLock lock(summary_mu_);
  if (summary_ != nullptr) {
    PinnedResource p = PinnedResource::TryPin(rm_, summary_rid_);
    if (p.valid()) {
      *pin = std::move(p);
      return summary_;
    }
    rm_->Unregister(summary_rid_);
  }
  const uint64_t gen = ++summary_gen_;
  summary_ = std::move(s);
  summary_rid_ = rm_->RegisterPinned(
      name_ + ".dvsum", summary_->MemoryBytes(), Disposition::kPagedAttribute,
      pool_, [this, gen] {
        MutexLock lk(summary_mu_);
        if (summary_gen_ == gen) {
          summary_ = nullptr;
          summary_rid_ = kInvalidResourceId;
        }
      });
  *pin = PinnedResource::Adopt(rm_, summary_rid_);
  return summary_;
}

void PagedDataVector::Unload() {
  {
    MutexLock lock(summary_mu_);
    if (summary_ != nullptr) {
      rm_->Unregister(summary_rid_);
      summary_ = nullptr;
      summary_rid_ = kInvalidResourceId;
    }
  }
  if (cache_ != nullptr) cache_->DropAll();
}

PagedDataVector::~PagedDataVector() { Unload(); }

bool PagedDataVectorIterator::MayContain(RowPos rpos, ValueId lo,
                                         ValueId hi) {
  if (!use_summary_) return true;
  if (!summary_checked_) {
    summary_checked_ = true;
    auto s = dv_->PinSummary(&summary_pin_);
    if (s.ok()) summary_ = *s;
  }
  if (summary_ == nullptr) return true;  // no summary: no pruning
  uint64_t page_idx = rpos / dv_->values_per_page_;
  if (page_idx >= summary_->page_count()) return true;
  return summary_->MayContain(page_idx, lo, hi);
}

Status PagedDataVectorIterator::Reposition(RowPos rpos, bool sequential) {
  LogicalPageNo lpn = dv_->PageOfRow(rpos);
  if (lpn == current_lpn_ && current_.valid()) return Status::OK();
  // On a forward scan, ask for the window behind this page before pinning
  // it: the background loads then overlap with both this page's (possible)
  // synchronous load and its decode.
  if (sequential) {
    for (uint32_t w = 1; w <= readahead_; ++w) {
      const LogicalPageNo next = lpn + w;
      if (next > dv_->data_pages_) break;  // data pages are 1..data_pages_
      dv_->cache_->Prefetch(next, ctx_);
    }
  }
  // Pin the new page after releasing the handle to the previous page
  // (§3.1.2 "page reposition").
  current_.Release();
  current_lpn_ = kInvalidPageNo;
  auto ref = dv_->cache_->GetPage(lpn, ctx_);
  if (!ref.ok()) return ref.status();
  current_ = std::move(*ref);
  current_lpn_ = lpn;
  page_first_row_ = static_cast<RowPos>((lpn - 1) * dv_->values_per_page_);
  page_rows_ = current_.page().header()->aux;
  ++pages_touched_;
  return Status::OK();
}

Result<ValueId> PagedDataVectorIterator::Get(RowPos rpos) {
  if (rpos >= dv_->row_count_) return Status::OutOfRange("row position");
  PAYG_RETURN_IF_ERROR(Reposition(rpos));
  const uint64_t* words =
      reinterpret_cast<const uint64_t*>(current_.page().payload());
  return static_cast<ValueId>(
      PackedGet(words, dv_->bits_, rpos - page_first_row_));
}

Status PagedDataVectorIterator::MGet(RowPos from, RowPos to,
                                     std::vector<ValueId>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  RowPos r = from;
  while (r < to) {
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    size_t old = out->size();
    out->resize(old + (stop - r));
    const uint64_t* words =
        reinterpret_cast<const uint64_t*>(current_.page().payload());
    PackedMGet(words, dv_->bits_, r - page_first_row_, stop - page_first_row_,
               out->data() + old);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchRange(RowPos from, RowPos to, ValueId lo,
                                            ValueId hi,
                                            std::vector<RowPos>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  RowPos r = from;
  while (r < to) {
    // Skip pages whose [min,max] cannot overlap the predicate without
    // loading them (§3.3's summary pruning).
    if (!MayContain(r, lo, hi)) {
      RowPos page_end = static_cast<RowPos>(
          (r / dv_->values_per_page_ + 1) * dv_->values_per_page_);
      r = std::min(to, page_end);
      ++pages_pruned_;
      continue;
    }
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    const uint64_t* words =
        reinterpret_cast<const uint64_t*>(current_.page().payload());
    PackedSearchRange(words, dv_->bits_, r - page_first_row_,
                      stop - page_first_row_, lo, hi, r, out);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchEq(RowPos from, RowPos to, ValueId vid,
                                         std::vector<RowPos>* out) {
  return SearchRange(from, to, vid, vid, out);
}

Status PagedDataVectorIterator::SearchIn(
    RowPos from, RowPos to, const std::vector<ValueId>& sorted_vids,
    std::vector<RowPos>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  if (sorted_vids.empty()) return Status::OK();
  const ValueId band_lo = sorted_vids.front();
  const ValueId band_hi = sorted_vids.back();
  RowPos r = from;
  while (r < to) {
    if (!MayContain(r, band_lo, band_hi)) {
      RowPos page_end = static_cast<RowPos>(
          (r / dv_->values_per_page_ + 1) * dv_->values_per_page_);
      r = std::min(to, page_end);
      ++pages_pruned_;
      continue;
    }
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    const uint64_t* words =
        reinterpret_cast<const uint64_t*>(current_.page().payload());
    PackedSearchIn(words, dv_->bits_, r - page_first_row_,
                   stop - page_first_row_, sorted_vids, r, out);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchRowsRange(const std::vector<RowPos>& rows,
                                                ValueId lo, ValueId hi,
                                                std::vector<RowPos>* out) {
  for (RowPos r : rows) {
    auto vid = Get(r);
    if (!vid.ok()) return vid.status();
    uint64_t v = *vid;
    if (v - lo <= static_cast<uint64_t>(hi) - lo) out->push_back(r);
    CountRowsScanned(ctx_, 1);
  }
  return Status::OK();
}

}  // namespace payg
