#include "paged/paged_data_vector.h"

#include <algorithm>
#include <cstring>

#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "storage/byte_stream.h"

namespace payg {

namespace {

std::string ChainName(const std::string& name) { return name + ".dv"; }
std::string SummaryChainName(const std::string& name) {
  return name + ".dvsum";
}

// Meta page formats. Version 0 (the pre-codec layout, 24-byte payload) had
// no version field: bits u32 @0, row_count u64 @8, values_per_page u64 @16.
// Version 1 (36-byte payload) is distinguished by payload size and carries
// an explicit version word plus the codec identity:
//   u32 version (== 1)   @0
//   u32 bits             @4
//   u64 row_count        @8
//   u64 values_per_page  @16
//   u8  codec_id         @24  (+3 pad bytes)
//   u32 for_base         @28
//   u32 reserved         @32
constexpr uint32_t kMetaV0PayloadSize = 24;
constexpr uint32_t kMetaV1PayloadSize = 36;
constexpr uint32_t kMetaVersion = 1;

Status ValidateGeometry(uint32_t bits, uint64_t values_per_page) {
  if (bits < 1 || bits > 32) {
    return Status::Corruption("data vector meta: bits out of range [1, 32]");
  }
  if (values_per_page == 0 || values_per_page % kChunkValues != 0) {
    return Status::Corruption(
        "data vector meta: values_per_page not a positive multiple of 64");
  }
  return Status::OK();
}

// Build-side codec accounting: selection counts, encoded payload bytes, and
// the forced-knob gauge (0 = auto, 1 + codec id when PAYG_FORCE_CODEC pins
// one). Registry pointers are process-lifetime (find-or-create, stable).
void RecordCodecBuild(CodecId id, uint64_t payload_bytes) {
  auto& reg = obs::MetricsRegistry::Global();
  static obs::Counter* selected[kCodecCount] = {
      reg.counter("codec.selected.plain"),
      reg.counter("codec.selected.for"),
      reg.counter("codec.selected.rle"),
  };
  static obs::Counter* bytes[kCodecCount] = {
      reg.counter("codec.bytes.plain"),
      reg.counter("codec.bytes.for"),
      reg.counter("codec.bytes.rle"),
  };
  static obs::Gauge* forced = reg.gauge("codec.forced");
  const auto idx = static_cast<size_t>(id);
  selected[idx]->Add(1);
  bytes[idx]->Add(payload_bytes);
  forced->Set(ForcedCodec() == CodecForce::kAuto
                  ? 0
                  : 1 + static_cast<int64_t>(ForcedCodec()));
}

}  // namespace

Status ParseDataVectorMeta(const uint8_t* payload, uint32_t payload_size,
                           DataVectorMeta* out) {
  const uint8_t* p = payload;
  if (payload_size == kMetaV0PayloadSize) {
    // Pre-codec chain: uniform n-bit packing, no version word.
    std::memcpy(&out->codec.params.bits, p, sizeof(out->codec.params.bits));
    std::memcpy(&out->row_count, p + 8, sizeof(out->row_count));
    std::memcpy(&out->values_per_page, p + 16, sizeof(out->values_per_page));
    out->codec.id = CodecId::kPlain;
    out->codec.params.for_base = 0;
  } else if (payload_size == kMetaV1PayloadSize) {
    uint32_t version = 0;
    std::memcpy(&version, p, sizeof(version));
    if (version != kMetaVersion) {
      return Status::Corruption(
          "data vector meta: unsupported meta format version " +
          std::to_string(version) + " (this build reads versions 0 and 1)");
    }
    std::memcpy(&out->codec.params.bits, p + 4,
                sizeof(out->codec.params.bits));
    std::memcpy(&out->row_count, p + 8, sizeof(out->row_count));
    std::memcpy(&out->values_per_page, p + 16, sizeof(out->values_per_page));
    if (p[24] >= kCodecCount) {
      return Status::Corruption("data vector meta: unknown codec id " +
                                std::to_string(p[24]));
    }
    out->codec.id = static_cast<CodecId>(p[24]);
    std::memcpy(&out->codec.params.for_base, p + 28,
                sizeof(out->codec.params.for_base));
  } else {
    return Status::Corruption("data vector meta: unrecognized payload size " +
                              std::to_string(payload_size));
  }
  PAYG_RETURN_IF_ERROR(
      ValidateGeometry(out->codec.params.bits, out->values_per_page));
  if (out->codec.id == CodecId::kFor) {
    // A legitimate FOR frame never wraps: base is the column minimum and
    // base + largest residual is the column maximum, a u32. A base that
    // can wrap makes decode (residual + base, mod 2^32) disagree with the
    // searches' residual-space predicate translation, so reject it here —
    // the one place the base enters the system.
    const uint64_t mask = out->codec.params.bits >= 32
                              ? 0xFFFFFFFFull
                              : ((1ull << out->codec.params.bits) - 1);
    if (out->codec.params.for_base > 0xFFFFFFFFull - mask) {
      return Status::Corruption(
          "data vector meta: FOR base plus packed range overflows the "
          "32-bit vid space");
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<PagedDataVector>> PagedDataVector::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, const std::vector<ValueId>& vids) {
  return Build(storage, rm, pool, name, vids,
               ResolveCodec(CodecForce::kAuto, vids));
}

Result<std::unique_ptr<PagedDataVector>> PagedDataVector::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, const std::vector<ValueId>& vids,
    const CodecChoice& choice) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->CreateChain(ChainName(name), page_size));

  Page probe(page_size);
  const uint64_t values_per_page =
      CodecValuesPerPage(probe.capacity(), choice);
  PAYG_ASSERT_MSG(values_per_page > 0, "page too small for one chunk");

  // Meta page (page 0, version 1 layout above).
  {
    Page meta(page_size);
    meta.set_type(PageType::kMeta);
    uint8_t* p = meta.payload();
    const uint32_t version = kMetaVersion;
    const uint64_t row_count = vids.size();
    const uint8_t codec_id = static_cast<uint8_t>(choice.id);
    std::memcpy(p, &version, sizeof(version));
    std::memcpy(p + 4, &choice.params.bits, sizeof(choice.params.bits));
    std::memcpy(p + 8, &row_count, sizeof(row_count));
    std::memcpy(p + 16, &values_per_page, sizeof(values_per_page));
    p[24] = codec_id;
    std::memcpy(p + 28, &choice.params.for_base,
                sizeof(choice.params.for_base));
    meta.set_payload_size(kMetaV1PayloadSize);
    auto r = file->AppendPage(&meta);
    if (!r.ok()) return r.status();
  }

  // Data pages: encode values_per_page identifiers per page through the
  // chosen codec, collecting the per-page min/max summary as we go (§3.3;
  // the summary always stores raw vids, whatever the codec).
  uint64_t data_pages = 0;
  uint64_t payload_bytes = 0;
  std::vector<ValueId> page_min, page_max;
  Page page(page_size);
  page.set_type(PageType::kDataVector);
  for (uint64_t first = 0; first < vids.size() || vids.empty();
       first += values_per_page) {
    uint64_t n =
        std::min<uint64_t>(values_per_page, vids.size() - first);
    ValueId mn = kInvalidValueId, mx = 0;
    for (uint64_t i = 0; i < n; ++i) {
      mn = std::min(mn, vids[first + i]);
      mx = std::max(mx, vids[first + i]);
    }
    page_min.push_back(n == 0 ? 0 : mn);
    page_max.push_back(n == 0 ? 0 : mx);
    uint32_t aux2 = 0;
    const uint32_t psize =
        CodecEncodePage(choice, vids.data() + first, n, page.payload(),
                        page.capacity(), &aux2);
    page.set_payload_size(psize);
    page.header()->aux = static_cast<uint32_t>(n);  // values on this page
    page.header()->aux2 = aux2;  // codec word (RLE run count / escape)
    auto r = file->AppendPage(&page);
    if (!r.ok()) return r.status();
    ++data_pages;
    payload_bytes += psize;
    if (vids.empty()) break;
  }
  PAYG_RETURN_IF_ERROR(file->Sync());
  RecordCodecBuild(choice.id, payload_bytes);

  // Persist the min/max summary in its own (small) chain.
  {
    PAYG_ASSIGN_OR_RETURN(
        auto sfile, storage->CreateNonCriticalChain(SummaryChainName(name), page_size));
    ChainByteWriter w(sfile.get());
    w.PutU64(data_pages);
    for (uint64_t p = 0; p < data_pages; ++p) {
      w.PutU32(page_min[p]);
      w.PutU32(page_max[p]);
    }
    PAYG_RETURN_IF_ERROR(w.Finish());
    PAYG_RETURN_IF_ERROR(sfile->Sync());
  }

  auto dv = std::unique_ptr<PagedDataVector>(new PagedDataVector());
  dv->name_ = name;
  dv->storage_ = storage;
  dv->rm_ = rm;
  dv->pool_ = pool;
  dv->row_count_ = vids.size();
  dv->codec_ = choice;
  dv->values_per_page_ = values_per_page;
  dv->data_pages_ = data_pages;
  dv->file_ = std::move(file);
  dv->cache_ = std::make_unique<PageCache>(dv->file_.get(), rm, pool,
                                           name + ".dv");
  return dv;
}

Result<std::unique_ptr<PagedDataVector>> PagedDataVector::Open(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->OpenChain(ChainName(name), page_size));
  Page meta(page_size);
  PAYG_RETURN_IF_ERROR(file->ReadPage(0, &meta));
  if (meta.type() != PageType::kMeta) {
    return Status::Corruption("data vector chain missing meta page");
  }
  auto dv = std::unique_ptr<PagedDataVector>(new PagedDataVector());
  dv->name_ = name;
  dv->storage_ = storage;
  dv->rm_ = rm;
  dv->pool_ = pool;
  DataVectorMeta parsed;
  PAYG_RETURN_IF_ERROR(
      ParseDataVectorMeta(meta.payload(), meta.payload_size(), &parsed));
  dv->codec_ = parsed.codec;
  dv->row_count_ = parsed.row_count;
  dv->values_per_page_ = parsed.values_per_page;
  dv->data_pages_ = file->page_count() - 1;
  dv->file_ = std::move(file);
  dv->cache_ = std::make_unique<PageCache>(dv->file_.get(), rm, pool,
                                           name + ".dv");
  return dv;
}

Result<std::shared_ptr<PageSummary>> PagedDataVector::PinSummary(
    PinnedResource* pin) {
  {
    MutexLock lock(summary_mu_);
    if (summary_ != nullptr) {
      PinnedResource p = PinnedResource::TryPin(rm_, summary_rid_);
      if (p.valid()) {
        *pin = std::move(p);
        return summary_;
      }
      rm_->Unregister(summary_rid_);
      summary_ = nullptr;
      summary_rid_ = kInvalidResourceId;
    }
  }

  PAYG_ASSIGN_OR_RETURN(
      auto sfile, storage_->OpenNonCriticalChain(SummaryChainName(name_),
                                      file_->page_size()));
  ChainByteReader r(sfile.get());
  auto s = std::make_shared<PageSummary>();
  uint64_t pages;
  PAYG_ASSIGN_OR_RETURN(pages, r.GetU64());
  // The count came off disk; bound it by what the chain can physically hold
  // (8 bytes per entry after the header) before reserving, or a corrupt
  // summary could demand terabytes in one reserve call.
  const uint64_t max_pages =
      sfile->page_count() * (sfile->page_size() / 8);
  if (pages > max_pages) {
    return Status::Corruption(
        "page summary claims " + std::to_string(pages) +
        " pages but its chain can hold at most " + std::to_string(max_pages));
  }
  s->min_vid.reserve(pages);
  s->max_vid.reserve(pages);
  for (uint64_t p = 0; p < pages; ++p) {
    PAYG_ASSIGN_OR_RETURN(uint32_t mn, r.GetU32());
    PAYG_ASSIGN_OR_RETURN(uint32_t mx, r.GetU32());
    s->min_vid.push_back(mn);
    s->max_vid.push_back(mx);
  }

  MutexLock lock(summary_mu_);
  if (summary_ != nullptr) {
    PinnedResource p = PinnedResource::TryPin(rm_, summary_rid_);
    if (p.valid()) {
      *pin = std::move(p);
      return summary_;
    }
    rm_->Unregister(summary_rid_);
  }
  const uint64_t gen = ++summary_gen_;
  summary_ = std::move(s);
  summary_rid_ = rm_->RegisterPinned(
      name_ + ".dvsum", summary_->MemoryBytes(), Disposition::kPagedAttribute,
      pool_, [this, gen] {
        MutexLock lk(summary_mu_);
        if (summary_gen_ == gen) {
          summary_ = nullptr;
          summary_rid_ = kInvalidResourceId;
        }
      });
  *pin = PinnedResource::Adopt(rm_, summary_rid_);
  return summary_;
}

void PagedDataVector::Unload() {
  {
    MutexLock lock(summary_mu_);
    if (summary_ != nullptr) {
      rm_->Unregister(summary_rid_);
      summary_ = nullptr;
      summary_rid_ = kInvalidResourceId;
    }
  }
  if (cache_ != nullptr) cache_->DropAll();
}

PagedDataVector::~PagedDataVector() { Unload(); }

PagedDataVectorIterator::~PagedDataVectorIterator() {
  const uint64_t native = codec_stats_.native;
  const uint64_t fallback = codec_stats_.fallback;
  if (native + fallback != 0) {
    auto& reg = obs::MetricsRegistry::Global();
    static obs::Counter* m_native = reg.counter("codec.kernel_native");
    static obs::Counter* m_fallback = reg.counter("codec.kernel_fallback");
    m_native->Add(native);
    m_fallback->Add(fallback);
    CountCodecKernels(ctx_, native, fallback);
  }
}

bool PagedDataVectorIterator::MayContain(RowPos rpos, ValueId lo,
                                         ValueId hi) {
  if (!use_summary_) return true;
  if (!summary_checked_) {
    summary_checked_ = true;
    auto s = dv_->PinSummary(&summary_pin_);
    if (s.ok()) summary_ = *s;
  }
  if (summary_ == nullptr) return true;  // no summary: no pruning
  uint64_t page_idx = rpos / dv_->values_per_page_;
  if (page_idx >= summary_->page_count()) return true;
  return summary_->MayContain(page_idx, lo, hi);
}

bool PagedDataVectorIterator::MayContainAny(
    RowPos rpos, const std::vector<ValueId>& sorted_vids) {
  if (!use_summary_) return true;
  if (!summary_checked_) {
    summary_checked_ = true;
    auto s = dv_->PinSummary(&summary_pin_);
    if (s.ok()) summary_ = *s;
  }
  if (summary_ == nullptr) return true;  // no summary: no pruning
  uint64_t page_idx = rpos / dv_->values_per_page_;
  if (page_idx >= summary_->page_count()) return true;
  auto it = std::lower_bound(sorted_vids.begin(), sorted_vids.end(),
                             summary_->min_vid[page_idx]);
  return it != sorted_vids.end() && *it <= summary_->max_vid[page_idx];
}

Status PagedDataVectorIterator::Reposition(RowPos rpos, bool sequential) {
  LogicalPageNo lpn = dv_->PageOfRow(rpos);
  if (lpn == current_lpn_ && current_.valid()) return Status::OK();
  // On a forward scan, keep the readahead window topped up before pinning
  // this page: the background loads then overlap with both this page's
  // (possible) synchronous load and its decode. The frontier remembers how
  // far readahead has already been issued, so instead of re-asking for the
  // whole window at every page (which the cache's in-flight dedup would
  // shrink to one page per reposition) the window is refilled in batches of
  // ~readahead_/2 pages — multi-page PrefetchRange submissions the I/O
  // backend can turn into vectored reads.
  if (sequential && readahead_ > 0) {
    if (ra_frontier_ <= lpn || lpn < current_lpn_ || current_lpn_ == kInvalidPageNo) {
      // Fresh scan, or the cursor jumped (backward or past the frontier):
      // restart the window at this page.
      ra_frontier_ = lpn + 1;
    }
    if ((ra_frontier_ - lpn - 1) * 2 <= readahead_) {
      LogicalPageNo want_hi = lpn + readahead_;
      if (want_hi > dv_->data_pages_) want_hi = dv_->data_pages_;
      if (want_hi >= ra_frontier_) {  // data pages are 1..data_pages_
        dv_->cache_->PrefetchRange(
            ra_frontier_, static_cast<uint32_t>(want_hi - ra_frontier_ + 1),
            ctx_);
        ra_frontier_ = want_hi + 1;
      }
    }
  }
  // Pin the new page after releasing the handle to the previous page
  // (§3.1.2 "page reposition").
  current_.Release();
  current_lpn_ = kInvalidPageNo;
  auto ref = dv_->cache_->GetPage(lpn, ctx_);
  if (!ref.ok()) return ref.status();
  current_ = std::move(*ref);
  current_lpn_ = lpn;
  page_first_row_ = static_cast<RowPos>((lpn - 1) * dv_->values_per_page_);
  page_rows_ = current_.page().header()->aux;
  // The header's row count and codec word size every kernel access below;
  // both came off disk, so bound them before anything trusts them. A page
  // claiming more rows than the geometry allows would otherwise let the
  // packed kernels walk past its image (the RLE catalog checks live in
  // CodecValidatePage).
  if (page_rows_ > dv_->values_per_page_) {
    return Status::Corruption(
        "data page " + std::to_string(lpn) + " claims " +
        std::to_string(page_rows_) + " rows but the vector stores at most " +
        std::to_string(dv_->values_per_page_) + " per page");
  }
  // Codec view of the pinned page: the per-codec accessor every decode and
  // search below goes through (S22).
  view_.words = reinterpret_cast<const uint64_t*>(current_.page().payload());
  view_.n = page_rows_;
  view_.aux2 = current_.page().header()->aux2;
  view_.params = dv_->codec_.params;
  view_.kernels = nullptr;  // process-wide active SIMD tier
  PAYG_RETURN_IF_ERROR(CodecValidatePage(dv_->codec_.id, view_,
                                         current_.page().payload_size()));
  ++pages_touched_;
  return Status::OK();
}

Result<ValueId> PagedDataVectorIterator::Get(RowPos rpos) {
  if (rpos >= dv_->row_count_) return Status::OutOfRange("row position");
  PAYG_RETURN_IF_ERROR(Reposition(rpos));
  return CodecGetValue(dv_->codec_.id, view_, rpos - page_first_row_);
}

Status PagedDataVectorIterator::MGet(RowPos from, RowPos to,
                                     std::vector<ValueId>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  RowPos r = from;
  while (r < to) {
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    size_t old = out->size();
    out->resize(old + (stop - r));
    CodecMGet(dv_->codec_.id, view_, r - page_first_row_,
              stop - page_first_row_, out->data() + old, &codec_stats_);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchRange(RowPos from, RowPos to, ValueId lo,
                                            ValueId hi,
                                            std::vector<RowPos>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  RowPos r = from;
  while (r < to) {
    // Skip pages whose [min,max] cannot overlap the predicate without
    // loading them (§3.3's summary pruning; summaries store raw vids, so
    // this early rejection works for every codec).
    if (!MayContain(r, lo, hi)) {
      RowPos page_end = static_cast<RowPos>(
          (r / dv_->values_per_page_ + 1) * dv_->values_per_page_);
      r = std::min(to, page_end);
      ++pages_pruned_;
      continue;
    }
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    CodecSearchRange(dv_->codec_.id, view_, r - page_first_row_,
                     stop - page_first_row_, lo, hi, r, out, &codec_stats_);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchEq(RowPos from, RowPos to, ValueId vid,
                                         std::vector<RowPos>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  RowPos r = from;
  while (r < to) {
    if (!MayContain(r, vid, vid)) {
      RowPos page_end = static_cast<RowPos>(
          (r / dv_->values_per_page_ + 1) * dv_->values_per_page_);
      r = std::min(to, page_end);
      ++pages_pruned_;
      continue;
    }
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    CodecSearchEq(dv_->codec_.id, view_, r - page_first_row_,
                  stop - page_first_row_, vid, r, out, &codec_stats_);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchIn(
    RowPos from, RowPos to, const std::vector<ValueId>& sorted_vids,
    std::vector<RowPos>* out) {
  if (from > to || to > dv_->row_count_) return Status::OutOfRange("range");
  if (sorted_vids.empty()) return Status::OK();
  RowPos r = from;
  while (r < to) {
    if (!MayContainAny(r, sorted_vids)) {
      RowPos page_end = static_cast<RowPos>(
          (r / dv_->values_per_page_ + 1) * dv_->values_per_page_);
      r = std::min(to, page_end);
      ++pages_pruned_;
      continue;
    }
    PAYG_RETURN_IF_ERROR(Reposition(r, /*sequential=*/true));
    RowPos page_end = page_first_row_ + static_cast<RowPos>(page_rows_);
    RowPos stop = std::min(to, page_end);
    CodecSearchIn(dv_->codec_.id, view_, r - page_first_row_,
                  stop - page_first_row_, sorted_vids, r, out,
                  &codec_stats_);
    CountRowsScanned(ctx_, stop - r);
    r = stop;
  }
  return Status::OK();
}

Status PagedDataVectorIterator::SearchRowsRange(const std::vector<RowPos>& rows,
                                                ValueId lo, ValueId hi,
                                                std::vector<RowPos>* out) {
  for (RowPos r : rows) {
    auto vid = Get(r);
    if (!vid.ok()) return vid.status();
    uint64_t v = *vid;
    if (v - lo <= static_cast<uint64_t>(hi) - lo) out->push_back(r);
    CountRowsScanned(ctx_, 1);
  }
  return Status::OK();
}

}  // namespace payg
