#include "paged/fragment_factory.h"

#include "columnar/resident_fragment.h"
#include "paged/paged_fragment.h"

namespace payg {

Result<std::unique_ptr<MainFragment>> BuildMainFragment(
    StorageManager* storage, ResourceManager* rm, const std::string& name,
    ValueType type, const std::vector<Value>& sorted_dict_values,
    const std::vector<ValueId>& vids, const FragmentSpec& spec) {
  if (spec.page_loadable) {
    PagedFragment::IndexMode mode =
        !spec.with_index ? PagedFragment::IndexMode::kNone
        : spec.defer_index ? PagedFragment::IndexMode::kDeferred
                           : PagedFragment::IndexMode::kEager;
    auto frag = PagedFragment::Build(storage, rm, spec.pool, name, type,
                                     sorted_dict_values, vids, mode,
                                     spec.index_build_threshold, spec.codec);
    if (!frag.ok()) return frag.status();
    return std::unique_ptr<MainFragment>(std::move(*frag));
  }
  auto frag = FullyResidentFragment::Build(storage, rm, name, type,
                                           sorted_dict_values, vids,
                                           spec.with_index);
  if (!frag.ok()) return frag.status();
  return std::unique_ptr<MainFragment>(std::move(*frag));
}

Result<std::unique_ptr<MainFragment>> OpenMainFragment(
    StorageManager* storage, ResourceManager* rm, const std::string& name,
    const FragmentSpec& spec) {
  if (spec.page_loadable) {
    auto frag = PagedFragment::Open(storage, rm, spec.pool, name);
    if (!frag.ok()) return frag.status();
    return std::unique_ptr<MainFragment>(std::move(*frag));
  }
  auto frag = FullyResidentFragment::Open(storage, rm, name);
  if (!frag.ok()) return frag.status();
  return std::unique_ptr<MainFragment>(std::move(*frag));
}

void DropFragmentChains(StorageManager* storage, const std::string& name) {
  static const char* kSuffixes[] = {".full", ".pmeta",   ".dv",  ".dvsum",
                                    ".dict", ".dicthlp", ".idx"};
  for (const char* suffix : kSuffixes) {
    // Best-effort cleanup: a fragment never creates every chain kind, so
    // NotFound is the common case and nothing actionable hides in the rest.
    (void)storage->DropChain(name + suffix);  // lint:allow(dropped-status)
  }
}

}  // namespace payg
