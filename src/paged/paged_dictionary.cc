#include "paged/paged_dictionary.h"

#include <algorithm>
#include <cstring>

#include "storage/byte_stream.h"

namespace payg {

namespace {

std::string DictChainName(const std::string& name) { return name + ".dict"; }
std::string HelperChainName(const std::string& name) {
  return name + ".dicthlp";
}

// Accumulates finished value blocks into dictionary pages.
class DictPageComposer {
 public:
  DictPageComposer(PageFile* file, uint32_t page_size)
      : file_(file), page_(page_size) {}

  // Bytes a page with the current blocks plus one more of `len` would need.
  bool Fits(size_t len) const {
    size_t header = 4 + 8 * (blocks_.size() + 1);
    return header + blob_.size() + len <= page_.capacity();
  }

  bool empty() const { return blocks_.empty(); }

  void AddBlock(const std::vector<uint8_t>& block, ValueId first_vid,
                ValueId last_vid, const std::string& last_value) {
    if (blocks_.empty()) first_vid_ = first_vid;
    blocks_.emplace_back(static_cast<uint32_t>(blob_.size()),
                         static_cast<uint32_t>(block.size()));
    blob_.insert(blob_.end(), block.begin(), block.end());
    last_vid_ = last_vid;
    last_value_ = last_value;
  }

  // Writes the page; appends its (last_vid, last_value, lpn) to the helper
  // arrays.
  Status Flush(std::vector<ValueId>* helper_vids,
               std::vector<std::string>* helper_values,
               std::vector<LogicalPageNo>* helper_lpns) {
    PAYG_ASSERT(!blocks_.empty());
    uint8_t* p = page_.payload();
    uint32_t n = static_cast<uint32_t>(blocks_.size());
    std::memcpy(p, &n, 4);
    size_t pos = 4;
    const uint32_t blob_base = static_cast<uint32_t>(4 + 8 * blocks_.size());
    for (auto [off, len] : blocks_) {
      uint32_t abs_off = blob_base + off;
      std::memcpy(p + pos, &abs_off, 4);
      std::memcpy(p + pos + 4, &len, 4);
      pos += 8;
    }
    std::memcpy(p + pos, blob_.data(), blob_.size());
    page_.set_type(PageType::kDictionary);
    page_.set_payload_size(static_cast<uint32_t>(pos + blob_.size()));
    page_.header()->aux = n;
    page_.header()->aux2 = first_vid_;
    auto r = file_->AppendPage(&page_);
    if (!r.ok()) return r.status();
    helper_vids->push_back(last_vid_);
    helper_values->push_back(last_value_);
    helper_lpns->push_back(*r);
    blocks_.clear();
    blob_.clear();
    return Status::OK();
  }

 private:
  PageFile* file_;
  Page page_;
  std::vector<std::pair<uint32_t, uint32_t>> blocks_;
  std::vector<uint8_t> blob_;
  ValueId first_vid_ = 0;
  ValueId last_vid_ = 0;
  std::string last_value_;
};

}  // namespace

uint64_t PagedDictionary::Helpers::MemoryBytes() const {
  uint64_t bytes = last_vid.capacity() * sizeof(ValueId) +
                   lpn.capacity() * sizeof(LogicalPageNo) +
                   last_value.capacity() * sizeof(std::string);
  for (const std::string& s : last_value) bytes += s.capacity();
  return bytes;
}

Result<std::unique_ptr<PagedDictionary>> PagedDictionary::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, const std::vector<std::string>& sorted_values,
    const Options& options) {
  const uint32_t page_size = storage->options().dict_page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->CreateChain(DictChainName(name), page_size));

  // Overflow pieces use (almost) a full dictionary page each.
  const uint32_t piece_bytes =
      page_size - static_cast<uint32_t>(sizeof(PageHeader));
  // Cap the on-page suffix so a full 16-string block (plus entry overhead)
  // always fits a dictionary page.
  const uint32_t max_onpage = std::min(
      options.max_onpage_bytes, piece_bytes / (kStringsPerBlock + 2));

  Page overflow(page_size);
  OffpageWriter write_offpage =
      [&](std::string_view piece) -> Result<OffpageRef> {
    PAYG_ASSERT(piece.size() <= overflow.capacity());
    std::memcpy(overflow.payload(), piece.data(), piece.size());
    overflow.set_type(PageType::kDictOverflow);
    overflow.set_payload_size(static_cast<uint32_t>(piece.size()));
    auto r = file->AppendPage(&overflow);
    if (!r.ok()) return r.status();
    return static_cast<OffpageRef>(*r);
  };

  std::vector<ValueId> helper_vids;
  std::vector<std::string> helper_values;
  std::vector<LogicalPageNo> helper_lpns;
  DictPageComposer composer(file.get(), page_size);
  StringBlockBuilder block_builder(max_onpage, piece_bytes);

  ValueId block_first_vid = 0;
  std::string block_last_value;
  for (uint64_t i = 0; i < sorted_values.size(); ++i) {
    PAYG_RETURN_IF_ERROR(block_builder.Add(sorted_values[i], write_offpage));
    block_last_value = sorted_values[i];
    const bool last_value = i + 1 == sorted_values.size();
    if (block_builder.full() || last_value) {
      std::vector<uint8_t> block = block_builder.Finish();
      if (!composer.Fits(block.size())) {
        PAYG_RETURN_IF_ERROR(
            composer.Flush(&helper_vids, &helper_values, &helper_lpns));
        PAYG_ASSERT_MSG(composer.Fits(block.size()),
                        "value block exceeds dictionary page capacity");
      }
      composer.AddBlock(block, block_first_vid, static_cast<ValueId>(i),
                        block_last_value);
      block_first_vid = static_cast<ValueId>(i + 1);
    }
  }
  if (!composer.empty()) {
    PAYG_RETURN_IF_ERROR(
        composer.Flush(&helper_vids, &helper_values, &helper_lpns));
  }
  PAYG_RETURN_IF_ERROR(file->Sync());

  // Persist the helper dictionaries.
  {
    PAYG_ASSIGN_OR_RETURN(
        auto hfile,
        storage->CreateNonCriticalChain(HelperChainName(name), page_size));
    ChainByteWriter w(hfile.get(), PageType::kDictHelperValueId);
    w.PutU64(sorted_values.size());
    w.PutU64(helper_vids.size());
    for (uint64_t i = 0; i < helper_vids.size(); ++i) {
      w.PutU32(helper_vids[i]);
      w.PutU64(helper_lpns[i]);
      w.PutString(helper_values[i]);
    }
    PAYG_RETURN_IF_ERROR(w.Finish());
    PAYG_RETURN_IF_ERROR(hfile->Sync());
  }

  auto dict = std::unique_ptr<PagedDictionary>(new PagedDictionary());
  dict->name_ = name;
  dict->storage_ = storage;
  dict->rm_ = rm;
  dict->pool_ = pool;
  dict->dict_size_ = sorted_values.size();
  dict->dict_page_count_ = helper_lpns.size();
  dict->file_ = std::move(file);
  dict->cache_ =
      std::make_unique<PageCache>(dict->file_.get(), rm, pool, name + ".dict");
  return dict;
}

Result<std::unique_ptr<PagedDictionary>> PagedDictionary::Open(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name) {
  const uint32_t page_size = storage->options().dict_page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->OpenChain(DictChainName(name), page_size));
  // The dictionary size and page count come from the helper chain header.
  PAYG_ASSIGN_OR_RETURN(auto hfile,
                        storage->OpenNonCriticalChain(HelperChainName(name), page_size));
  ChainByteReader r(hfile.get());
  auto dict = std::unique_ptr<PagedDictionary>(new PagedDictionary());
  PAYG_ASSIGN_OR_RETURN(dict->dict_size_, r.GetU64());
  PAYG_ASSIGN_OR_RETURN(dict->dict_page_count_, r.GetU64());
  dict->name_ = name;
  dict->storage_ = storage;
  dict->rm_ = rm;
  dict->pool_ = pool;
  dict->file_ = std::move(file);
  dict->cache_ =
      std::make_unique<PageCache>(dict->file_.get(), rm, pool, name + ".dict");
  return dict;
}

PagedDictionary::~PagedDictionary() { Unload(); }

Result<std::shared_ptr<PagedDictionary::Helpers>> PagedDictionary::PinHelpers(
    PinnedResource* pin) {
  {
    MutexLock lock(helpers_mu_);
    if (helpers_ != nullptr) {
      PinnedResource p = PinnedResource::TryPin(rm_, helpers_rid_);
      if (p.valid()) {
        *pin = std::move(p);
        return helpers_;
      }
      // Evicted concurrently; reload below.
      helpers_ = nullptr;
      helpers_rid_ = kInvalidResourceId;
    }
  }

  // Pre-load the full helper chains (§3.2.3) outside the lock.
  PAYG_ASSIGN_OR_RETURN(
      auto hfile, storage_->OpenNonCriticalChain(HelperChainName(name_),
                                      storage_->options().dict_page_size));
  ChainByteReader r(hfile.get());
  auto h = std::make_shared<Helpers>();
  uint64_t dict_size, n_pages;
  PAYG_ASSIGN_OR_RETURN(dict_size, r.GetU64());
  PAYG_ASSIGN_OR_RETURN(n_pages, r.GetU64());
  (void)dict_size;
  h->last_vid.reserve(n_pages);
  h->lpn.reserve(n_pages);
  h->last_value.reserve(n_pages);
  for (uint64_t i = 0; i < n_pages; ++i) {
    PAYG_ASSIGN_OR_RETURN(uint32_t vid, r.GetU32());
    PAYG_ASSIGN_OR_RETURN(uint64_t lpn, r.GetU64());
    PAYG_ASSIGN_OR_RETURN(std::string value, r.GetString());
    h->last_vid.push_back(vid);
    h->lpn.push_back(lpn);
    h->last_value.push_back(std::move(value));
  }

  MutexLock lock(helpers_mu_);
  if (helpers_ != nullptr) {
    // Raced with another loader; prefer theirs if still pinnable.
    PinnedResource p = PinnedResource::TryPin(rm_, helpers_rid_);
    if (p.valid()) {
      *pin = std::move(p);
      return helpers_;
    }
    rm_->Unregister(helpers_rid_);
  }
  const uint64_t gen = ++helpers_gen_;
  helpers_ = std::move(h);
  helpers_rid_ = rm_->RegisterPinned(
      name_ + ".dicthlp", helpers_->MemoryBytes(),
      Disposition::kPagedAttribute, pool_, [this, gen] {
        MutexLock lk(helpers_mu_);
        if (helpers_gen_ == gen) {
          helpers_ = nullptr;
          helpers_rid_ = kInvalidResourceId;
        }
      });
  *pin = PinnedResource::Adopt(rm_, helpers_rid_);
  return helpers_;
}

void PagedDictionary::Unload() {
  {
    MutexLock lock(helpers_mu_);
    if (helpers_ != nullptr) {
      rm_->Unregister(helpers_rid_);
      helpers_ = nullptr;
      helpers_rid_ = kInvalidResourceId;
    }
  }
  if (cache_ != nullptr) cache_->DropAll();
}

bool PagedDictionary::helpers_loaded() const {
  MutexLock lock(helpers_mu_);
  return helpers_ != nullptr;
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

Result<std::shared_ptr<PagedDictionary::Helpers>>
PagedDictionaryIterator::helpers() {
  if (helpers_cache_ == nullptr) {
    auto h = dict_->PinHelpers(&helpers_pin_);
    if (!h.ok()) return h.status();
    helpers_cache_ = *h;
  }
  return helpers_cache_;
}

Result<const PagedDictionaryIterator::PageView*>
PagedDictionaryIterator::GetDictPage(uint64_t ord) {
  auto it = handle_cache_.find(ord);
  if (it != handle_cache_.end()) return &it->second;

  PAYG_ASSIGN_OR_RETURN(auto h, helpers());
  PAYG_ASSERT(ord < h->lpn.size());
  auto ref = dict_->cache_->GetPage(h->lpn[ord], ctx_);
  if (!ref.ok()) return ref.status();
  ++pages_touched_;

  PageView view;
  view.ref = std::move(*ref);
  view.first_vid = ord == 0 ? 0 : h->last_vid[ord - 1] + 1;
  const Page& page = view.ref.page();
  PAYG_ASSERT(page.type() == PageType::kDictionary);
  const uint8_t* p = page.payload();
  uint32_t n_blocks;
  std::memcpy(&n_blocks, p, 4);
  view.blocks.reserve(n_blocks);
  for (uint32_t b = 0; b < n_blocks; ++b) {
    uint32_t off, len;
    std::memcpy(&off, p + 4 + 8 * b, 4);
    std::memcpy(&len, p + 8 + 8 * b, 4);
    view.blocks.emplace_back(off, len);
  }
  auto [ins, ok] = handle_cache_.emplace(ord, std::move(view));
  PAYG_ASSERT(ok);
  return &ins->second;
}

Result<std::string> PagedDictionaryIterator::LoadOffpage(OffpageRef ref) {
  LogicalPageNo lpn = static_cast<LogicalPageNo>(ref);
  auto it = offpage_cache_.find(lpn);
  if (it == offpage_cache_.end()) {
    auto page = dict_->cache_->GetPage(lpn, ctx_);
    if (!page.ok()) return page.status();
    ++pages_touched_;
    it = offpage_cache_.emplace(lpn, std::move(*page)).first;
  }
  const Page& page = it->second.page();
  PAYG_ASSERT(page.type() == PageType::kDictOverflow);
  return std::string(reinterpret_cast<const char*>(page.payload()),
                     page.payload_size());
}

Status PagedDictionaryIterator::SearchValue(const std::string& value,
                                            ValueId* pos, bool* exact) {
  *exact = false;
  PAYG_ASSIGN_OR_RETURN(auto h, helpers());
  if (h->lpn.empty()) {
    *pos = 0;
    return Status::OK();
  }
  // Binary search ipDict_Value: first page whose last value >= probe.
  auto page_it = std::lower_bound(h->last_value.begin(), h->last_value.end(),
                                  value);
  if (page_it == h->last_value.end()) {
    *pos = static_cast<ValueId>(dict_->size());
    return Status::OK();
  }
  uint64_t ord = static_cast<uint64_t>(page_it - h->last_value.begin());

  PAYG_ASSIGN_OR_RETURN(const PageView* view, GetDictPage(ord));
  const Page& page = view->ref.page();
  OffpageLoader loader = [this](OffpageRef r) { return LoadOffpage(r); };

  // Binary search the transient block directory by each block's first
  // string (stored un-prefixed), then probe within the block.
  uint32_t lo = 0, hi = static_cast<uint32_t>(view->blocks.size());
  while (hi - lo > 1) {
    uint32_t mid = (lo + hi) / 2;
    StringBlockReader blk(page.payload() + view->blocks[mid].first,
                          view->blocks[mid].second);
    auto first = blk.GetString(0, loader);
    if (!first.ok()) return first.status();
    if (*first <= value) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  StringBlockReader blk(page.payload() + view->blocks[lo].first,
                        view->blocks[lo].second);
  uint32_t in_block;
  PAYG_RETURN_IF_ERROR(blk.Find(value, loader, &in_block, exact));
  *pos = view->first_vid + lo * kStringsPerBlock + in_block;
  return Status::OK();
}

Result<ValueId> PagedDictionaryIterator::FindByValue(
    const std::string& value) {
  ValueId pos;
  bool exact;
  PAYG_RETURN_IF_ERROR(SearchValue(value, &pos, &exact));
  return exact ? pos : kInvalidValueId;
}

Result<ValueId> PagedDictionaryIterator::LowerBound(const std::string& value) {
  ValueId pos;
  bool exact;
  PAYG_RETURN_IF_ERROR(SearchValue(value, &pos, &exact));
  return pos;
}

Result<ValueId> PagedDictionaryIterator::UpperBound(const std::string& value) {
  ValueId pos;
  bool exact;
  PAYG_RETURN_IF_ERROR(SearchValue(value, &pos, &exact));
  return exact ? pos + 1 : pos;
}

Result<std::string> PagedDictionaryIterator::FindByValueId(ValueId vid) {
  if (vid >= dict_->size()) return Status::OutOfRange("value id");
  PAYG_ASSIGN_OR_RETURN(auto h, helpers());
  // Binary search ipDict_ValueId: first page whose last vid >= probe.
  auto it = std::lower_bound(h->last_vid.begin(), h->last_vid.end(), vid);
  PAYG_ASSERT(it != h->last_vid.end());
  uint64_t ord = static_cast<uint64_t>(it - h->last_vid.begin());

  PAYG_ASSIGN_OR_RETURN(const PageView* view, GetDictPage(ord));
  uint32_t rel = vid - view->first_vid;
  uint32_t block = rel / kStringsPerBlock;
  uint32_t slot = rel % kStringsPerBlock;
  PAYG_ASSERT(block < view->blocks.size());
  StringBlockReader blk(view->ref.page().payload() + view->blocks[block].first,
                        view->blocks[block].second);
  OffpageLoader loader = [this](OffpageRef r) { return LoadOffpage(r); };
  return blk.GetString(slot, loader);
}

}  // namespace payg
