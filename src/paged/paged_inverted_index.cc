#include "paged/paged_inverted_index.h"

#include <algorithm>
#include <cstring>

#include "columnar/inverted_index.h"

namespace payg {

namespace {

std::string ChainName(const std::string& name) { return name + ".idx"; }

// Pure postinglist/directory page layout: u32 count, u32 pad, packed words
// at payload offset 8, with 8 spare bytes for the kernels' window overread.
constexpr uint32_t kPureHeaderBytes = 8;
constexpr uint32_t kSpareBytes = 8;
// Mixed page: u32 pl_count, u32 dir_count, u32 dir_off, u32 pad; the
// postinglist block at offset 16, the directory block at dir_off.
constexpr uint32_t kMixedHeaderBytes = 16;

uint64_t ValuesPerPurePage(uint32_t payload_capacity, uint32_t bits) {
  return kChunkValues *
         ((payload_capacity - kPureHeaderBytes - kSpareBytes) /
          ChunkBytes(bits));
}

// Serializes `values[from, from+n)` as n-bit chunks at `dst`.
template <typename T>
void PackBlock(const T* values, uint64_t n, uint32_t bits, uint8_t* dst) {
  uint64_t* words = reinterpret_cast<uint64_t*>(dst);
  uint64_t chunk_words = CeilDiv(n, kChunkValues) * ChunkWords(bits);
  std::memset(dst, 0, chunk_words * sizeof(uint64_t));
  for (uint64_t i = 0; i < n; ++i) {
    PackedSet(words, bits, i, static_cast<uint64_t>(values[i]));
  }
}

}  // namespace

Result<std::unique_ptr<PagedInvertedIndex>> PagedInvertedIndex::Build(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name, const std::vector<ValueId>& vids,
    uint64_t dict_size) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->CreateNonCriticalChain(ChainName(name), page_size));

  InvertedIndex mem = InvertedIndex::Build(vids, dict_size);
  const auto& postinglist = mem.postinglist();
  const uint64_t total = postinglist.size();

  auto idx = std::unique_ptr<PagedInvertedIndex>(new PagedInvertedIndex());
  idx->unique_ = mem.unique();
  idx->posting_count_ = total;
  idx->dict_size_ = dict_size;
  idx->bits_pos_ = BitsNeeded(total == 0 ? 0 : total - 1);
  idx->bits_off_ = BitsNeeded(total);

  Page page(page_size);
  const uint32_t cap = page.capacity();
  idx->pl_per_page_ = ValuesPerPurePage(cap, idx->bits_pos_);
  PAYG_ASSERT_MSG(idx->pl_per_page_ > 0, "page too small for one chunk");
  const uint64_t dir_needed = idx->unique_ ? 0 : dict_size + 1;
  const uint64_t dir_per_page = ValuesPerPurePage(cap, idx->bits_off_);

  // Reserve meta page 0; filled in at the end.
  {
    Page meta(page_size);
    meta.set_type(PageType::kMeta);
    meta.set_payload_size(0);
    auto r = file->AppendPage(&meta);
    if (!r.ok()) return r.status();
  }

  const uint64_t full_pl_pages = total / idx->pl_per_page_;
  const uint64_t rem = total % idx->pl_per_page_;

  // Pure postinglist pages.
  auto write_pure = [&](PageType type, const auto* values, uint64_t n,
                        uint32_t bits) -> Status {
    std::memset(page.payload(), 0, cap);
    uint32_t count = static_cast<uint32_t>(n);
    std::memcpy(page.payload(), &count, 4);
    PackBlock(values, n, bits, page.payload() + kPureHeaderBytes);
    page.set_type(type);
    page.set_payload_size(static_cast<uint32_t>(
        kPureHeaderBytes + CeilDiv(n, kChunkValues) * ChunkBytes(bits) +
        kSpareBytes));
    auto r = file->AppendPage(&page);
    return r.ok() ? Status::OK() : r.status();
  };

  for (uint64_t p = 0; p < full_pl_pages; ++p) {
    PAYG_RETURN_IF_ERROR(write_pure(PageType::kIndexPostinglist,
                                    postinglist.data() + p * idx->pl_per_page_,
                                    idx->pl_per_page_, idx->bits_pos_));
  }
  idx->pl_pages_ = full_pl_pages;

  uint64_t dir_written = 0;
  if (idx->unique_) {
    // Unique column: no directory (§3.3.1). A trailing partial pure page
    // absorbs the remainder.
    if (rem > 0) {
      PAYG_RETURN_IF_ERROR(
          write_pure(PageType::kIndexPostinglist,
                     postinglist.data() + full_pl_pages * idx->pl_per_page_,
                     rem, idx->bits_pos_));
      ++idx->pl_pages_;
    }
  } else {
    const auto& directory = mem.directory();
    if (rem > 0) {
      // Mixed page: trailing postinglist block followed by the first
      // directory block.
      std::memset(page.payload(), 0, cap);
      const uint64_t pl_block_bytes =
          CeilDiv(rem, kChunkValues) * ChunkBytes(idx->bits_pos_);
      const uint32_t dir_off = static_cast<uint32_t>(
          kMixedHeaderBytes + pl_block_bytes + kSpareBytes);
      uint64_t dir_space =
          cap > dir_off + kSpareBytes ? cap - dir_off - kSpareBytes : 0;
      const uint64_t v_first = std::min<uint64_t>(
          dir_needed,
          kChunkValues * (dir_space / ChunkBytes(idx->bits_off_)));
      uint32_t pl_count = static_cast<uint32_t>(rem);
      uint32_t dir_count = static_cast<uint32_t>(v_first);
      std::memcpy(page.payload(), &pl_count, 4);
      std::memcpy(page.payload() + 4, &dir_count, 4);
      std::memcpy(page.payload() + 8, &dir_off, 4);
      PackBlock(postinglist.data() + full_pl_pages * idx->pl_per_page_, rem,
                idx->bits_pos_, page.payload() + kMixedHeaderBytes);
      if (v_first > 0) {
        PackBlock(directory.data(), v_first, idx->bits_off_,
                  page.payload() + dir_off);
      }
      page.set_type(PageType::kIndexMixed);
      page.set_payload_size(static_cast<uint32_t>(std::min<uint64_t>(
          cap,
          dir_off + CeilDiv(v_first, kChunkValues) *
                        ChunkBytes(idx->bits_off_) +
              kSpareBytes)));
      auto r = file->AppendPage(&page);
      if (!r.ok()) return r.status();
      idx->mixed_lpn_ = *r;
      idx->v_first_ = v_first;
      dir_written = v_first;
    }
    idx->v_page_ = dir_per_page;
    // Remaining directory entries on pure directory pages.
    bool first_dir_page = idx->mixed_lpn_ == kInvalidPageNo;
    while (dir_written < dir_needed) {
      uint64_t n =
          std::min<uint64_t>(dir_per_page, dir_needed - dir_written);
      PAYG_RETURN_IF_ERROR(write_pure(PageType::kIndexDirectory,
                                      directory.data() + dir_written, n,
                                      idx->bits_off_));
      if (first_dir_page) {
        idx->dir_first_lpn_ = file->page_count() - 1;
        idx->v_first_ = n;
        first_dir_page = false;
      }
      dir_written += n;
    }
  }

  // Write the meta page (page 0) now that the layout is known.
  {
    Page meta(page_size);
    meta.set_type(PageType::kMeta);
    uint8_t* p = meta.payload();
    uint64_t fields[10] = {
        idx->unique_ ? 1u : 0u, idx->bits_pos_,   idx->bits_off_,
        idx->posting_count_,    idx->dict_size_,  idx->pl_per_page_,
        idx->pl_pages_,         idx->mixed_lpn_,  idx->v_first_,
        idx->v_page_};
    std::memcpy(p, fields, sizeof(fields));
    std::memcpy(p + sizeof(fields), &idx->dir_first_lpn_,
                sizeof(idx->dir_first_lpn_));
    meta.set_payload_size(sizeof(fields) + sizeof(idx->dir_first_lpn_));
    PAYG_RETURN_IF_ERROR(file->WritePage(0, &meta));
  }
  PAYG_RETURN_IF_ERROR(file->Sync());

  idx->file_ = std::move(file);
  idx->cache_ =
      std::make_unique<PageCache>(idx->file_.get(), rm, pool, name + ".idx");
  return idx;
}

Result<std::unique_ptr<PagedInvertedIndex>> PagedInvertedIndex::Open(
    StorageManager* storage, ResourceManager* rm, PoolId pool,
    const std::string& name) {
  const uint32_t page_size = storage->options().page_size;
  PAYG_ASSIGN_OR_RETURN(auto file,
                        storage->OpenNonCriticalChain(ChainName(name), page_size));
  Page meta(page_size);
  PAYG_RETURN_IF_ERROR(file->ReadPage(0, &meta));
  if (meta.type() != PageType::kMeta) {
    return Status::Corruption("inverted index chain missing meta page");
  }
  auto idx = std::unique_ptr<PagedInvertedIndex>(new PagedInvertedIndex());
  uint64_t fields[10];
  const uint8_t* p = meta.payload();
  std::memcpy(fields, p, sizeof(fields));
  std::memcpy(&idx->dir_first_lpn_, p + sizeof(fields),
              sizeof(idx->dir_first_lpn_));
  idx->unique_ = fields[0] != 0;
  idx->bits_pos_ = static_cast<uint32_t>(fields[1]);
  idx->bits_off_ = static_cast<uint32_t>(fields[2]);
  idx->posting_count_ = fields[3];
  idx->dict_size_ = fields[4];
  idx->pl_per_page_ = fields[5];
  idx->pl_pages_ = fields[6];
  idx->mixed_lpn_ = fields[7];
  idx->v_first_ = fields[8];
  idx->v_page_ = fields[9];
  idx->file_ = std::move(file);
  idx->cache_ =
      std::make_unique<PageCache>(idx->file_.get(), rm, pool, name + ".idx");
  return idx;
}

Result<uint64_t> PagedIndexIterator::ReadDirEntry(uint64_t k) {
  PAYG_ASSERT(!index_->unique_);
  PAYG_ASSERT(k <= index_->dict_size_);
  // Eq. (1): b is the mixed page when it exists, else the first directory
  // page.
  const bool has_mixed = index_->mixed_lpn_ != kInvalidPageNo;
  const LogicalPageNo b =
      has_mixed ? index_->mixed_lpn_ : index_->dir_first_lpn_;
  LogicalPageNo lpn;
  uint64_t slot;
  if (k < index_->v_first_) {
    lpn = b;
    slot = k;
  } else {
    lpn = b + 1 + (k - index_->v_first_) / index_->v_page_;  // Eq. (1)
    slot = (k - index_->v_first_) % index_->v_page_;          // Eq. (2)
  }
  if (lpn != dir_lpn_ || !dir_page_.valid()) {
    dir_page_.Release();
    dir_lpn_ = kInvalidPageNo;
    auto ref = index_->cache_->GetPage(lpn, ctx_);
    if (!ref.ok()) return ref.status();
    dir_page_ = std::move(*ref);
    dir_lpn_ = lpn;
    ++pages_touched_;
  }
  const Page& page = dir_page_.page();
  const uint8_t* block;
  if (page.type() == PageType::kIndexMixed) {
    uint32_t dir_off;
    std::memcpy(&dir_off, page.payload() + 8, 4);
    block = page.payload() + dir_off;
  } else {
    PAYG_ASSERT(page.type() == PageType::kIndexDirectory);
    block = page.payload() + 8;
  }
  return PackedGet(reinterpret_cast<const uint64_t*>(block),
                   index_->bits_off_, slot);
}

Result<RowPos> PagedIndexIterator::ReadPosting(uint64_t j) {
  PAYG_ASSERT(j < index_->posting_count_);
  const uint64_t pure_capacity = index_->pl_pages_ * index_->pl_per_page_;
  LogicalPageNo lpn;
  uint64_t slot;
  uint32_t data_off;
  if (j < pure_capacity) {
    lpn = 1 + j / index_->pl_per_page_;
    slot = j % index_->pl_per_page_;
    data_off = 8;
  } else {
    PAYG_ASSERT(index_->mixed_lpn_ != kInvalidPageNo);
    lpn = index_->mixed_lpn_;
    slot = j - pure_capacity;
    data_off = 16;
  }
  if (lpn != pl_lpn_ || !pl_page_.valid()) {
    // The walk over the current vid's postings is strictly forward; keep a
    // window over the pages it will still need (postinglist pages and
    // possibly the mixed page, never the directory) topped up before the
    // synchronous pin below. The frontier remembers how far readahead has
    // been issued so refills arrive as multi-page PrefetchRange batches
    // instead of one deduplicated page per reposition.
    if (readahead_ > 0) {
      if (ra_frontier_ <= lpn || lpn < pl_lpn_ || pl_lpn_ == kInvalidPageNo) {
        ra_frontier_ = lpn + 1;
      }
      if ((ra_frontier_ - lpn - 1) * 2 <= readahead_) {
        // Furthest eligible page of the window (pages are consecutive, so
        // everything in [ra_frontier_, want_hi] is eligible too).
        LogicalPageNo want_hi = lpn;
        for (uint32_t w = 1; w <= readahead_; ++w) {
          const LogicalPageNo next = lpn + w;
          uint64_t first_j;  // first posting offset stored on `next`
          if (next <= index_->pl_pages_) {
            first_j = (next - 1) * index_->pl_per_page_;
          } else if (next == index_->mixed_lpn_) {
            first_j = pure_capacity;
          } else {
            break;
          }
          if (first_j >= end_) break;  // this vid's postings end before it
          want_hi = next;
        }
        if (want_hi >= ra_frontier_) {
          index_->cache_->PrefetchRange(
              ra_frontier_,
              static_cast<uint32_t>(want_hi - ra_frontier_ + 1), ctx_);
          ra_frontier_ = want_hi + 1;
        }
      }
    }
    pl_page_.Release();
    pl_lpn_ = kInvalidPageNo;
    auto ref = index_->cache_->GetPage(lpn, ctx_);
    if (!ref.ok()) return ref.status();
    pl_page_ = std::move(*ref);
    pl_lpn_ = lpn;
    ++pages_touched_;
  }
  const uint8_t* block = pl_page_.page().payload() + data_off;
  return static_cast<RowPos>(PackedGet(
      reinterpret_cast<const uint64_t*>(block), index_->bits_pos_, slot));
}

Result<RowPos> PagedIndexIterator::GetFirstRowPos(ValueId vid) {
  if (vid >= index_->dict_size_) return Status::OutOfRange("value id");
  if (index_->unique_) {
    cursor_ = vid;
    end_ = vid + 1;
  } else {
    PAYG_ASSIGN_OR_RETURN(cursor_, ReadDirEntry(vid));
    PAYG_ASSIGN_OR_RETURN(end_, ReadDirEntry(vid + 1));
    if (cursor_ == end_) return Status::NotFound("vid has no postings");
  }
  return GetNextRowPos();
}

Result<RowPos> PagedIndexIterator::GetNextRowPos() {
  PAYG_ASSERT_MSG(HasNext(), "getNextRowPos past the end");
  return ReadPosting(cursor_++);
}

Status PagedIndexIterator::Lookup(ValueId vid, std::vector<RowPos>* out) {
  auto first = GetFirstRowPos(vid);
  if (!first.ok()) {
    return first.status().IsNotFound() ? Status::OK() : first.status();
  }
  out->push_back(*first);
  while (HasNext()) {
    auto next = GetNextRowPos();
    if (!next.ok()) return next.status();
    out->push_back(*next);
  }
  return Status::OK();
}

}  // namespace payg
