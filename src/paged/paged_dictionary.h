#ifndef PAYG_PAGED_PAGED_DICTIONARY_H_
#define PAYG_PAGED_PAGED_DICTIONARY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "encoding/string_block.h"
#include "encoding/types.h"
#include "paged/page_cache.h"
#include "storage/storage_manager.h"

namespace payg {

// Paged order-preserving string dictionary (§3.2).
//
// Persistent layout:
//  * chain `<name>.dict` — dictionary pages and overflow pages interleaved.
//    A dictionary page payload is: u32 n_blocks, n_blocks × (u32 offset,
//    u32 length), then the prefix-encoded value blocks (16 strings each,
//    Fig. 2 format). An overflow page payload is one off-page piece of a
//    large string. All blocks are full (16 strings) except possibly the
//    final block of the dictionary, so vid → (page, block, slot) is pure
//    arithmetic once the page's first vid is known.
//  * chain `<name>.dicthlp` — the two sparse helper dictionaries:
//    ipDict_ValueId, one (last_vid, lpn) entry per dictionary page, and
//    ipDict_Value, one (last_value, lpn) entry per dictionary page.
//
// The helpers are pre-loaded in full on first access (§3.2.3) and register
// as one paged-attribute resource; dictionary and overflow pages load one at
// a time through the page cache.
class PagedDictionary {
 public:
  struct Options {
    // Suffix bytes stored on-page before a string spills to overflow pages.
    uint32_t max_onpage_bytes = 4096;
  };

  static Result<std::unique_ptr<PagedDictionary>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, const std::vector<std::string>& sorted_values,
      const Options& options);

  static Result<std::unique_ptr<PagedDictionary>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, const std::vector<std::string>& sorted_values) {
    return Build(storage, rm, pool, name, sorted_values, Options());
  }

  static Result<std::unique_ptr<PagedDictionary>> Open(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name);

  ~PagedDictionary();

  uint64_t size() const { return dict_size_; }
  uint64_t dict_page_count() const { return dict_page_count_; }

  PageCache* cache() { return cache_.get(); }

  // Drops all resident pages and helper structures.
  void Unload();

  // True while the helper dictionaries are resident (tests).
  bool helpers_loaded() const;

 private:
  friend class PagedDictionaryIterator;

  // The always-compact transient form of both helper dictionaries.
  struct Helpers {
    std::vector<ValueId> last_vid;         // ipDict_ValueId
    std::vector<std::string> last_value;   // ipDict_Value
    std::vector<LogicalPageNo> lpn;        // page of entry i
    uint64_t MemoryBytes() const;
  };

  PagedDictionary() = default;

  // Loads (or returns) the helper dictionaries, pinning them for the
  // caller. §3.2.3: the full helper chains are pre-loaded on first access.
  Result<std::shared_ptr<Helpers>> PinHelpers(PinnedResource* pin);

  std::string name_;
  StorageManager* storage_ = nullptr;
  ResourceManager* rm_ = nullptr;
  PoolId pool_ = PoolId::kPagedPool;
  uint64_t dict_size_ = 0;
  uint64_t dict_page_count_ = 0;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<PageCache> cache_;

  // Double-checked load state of the pre-loaded helper dictionaries; the
  // generation detects eviction between unlock and re-lock.
  mutable Mutex helpers_mu_;
  std::shared_ptr<Helpers> helpers_ GUARDED_BY(helpers_mu_);
  ResourceId helpers_rid_ GUARDED_BY(helpers_mu_) = kInvalidResourceId;
  uint64_t helpers_gen_ GUARDED_BY(helpers_mu_) = 0;
};

// Iterator-based access to the paged dictionary (§3.2.2/§3.2.3). Maintains
// a handle cache: every dictionary/overflow page it loads stays pinned until
// the iterator goes out of scope, so batched lookups never reload a page and
// the resource manager cannot unload pages under the iterator.
class PagedDictionaryIterator {
 public:
  // `ctx` (optional) attributes page pins/reads to the owning query.
  explicit PagedDictionaryIterator(PagedDictionary* dict,
                                   ExecContext* ctx = nullptr)
      : dict_(dict), ctx_(ctx) {}

  // Alg. 2: vid encoding `value`, or kInvalidValueId if absent.
  Result<ValueId> FindByValue(const std::string& value);

  // First vid whose value >= `value` (== size() if none); used to translate
  // range predicates into vid ranges.
  Result<ValueId> LowerBound(const std::string& value);
  // First vid whose value > `value`.
  Result<ValueId> UpperBound(const std::string& value);

  // Alg. 3: the value encoded by `vid`.
  Result<std::string> FindByValueId(ValueId vid);

  uint64_t pages_touched() const { return pages_touched_; }

 private:
  struct PageView {
    PageRef ref;
    std::vector<std::pair<uint32_t, uint32_t>> blocks;  // (offset, length)
    ValueId first_vid = 0;
  };

  // Loads the dictionary page at helper ordinal `ord` through the handle
  // cache and parses its transient block directory.
  Result<const PageView*> GetDictPage(uint64_t ord);

  // Loads one overflow piece (handle-cached as well).
  Result<std::string> LoadOffpage(OffpageRef ref);

  Result<std::shared_ptr<PagedDictionary::Helpers>> helpers();

  // Shared search: returns the vid of the first value >= probe and whether
  // it is an exact match.
  Status SearchValue(const std::string& value, ValueId* pos, bool* exact);

  PagedDictionary* dict_;
  ExecContext* ctx_ = nullptr;
  std::shared_ptr<PagedDictionary::Helpers> helpers_cache_;
  PinnedResource helpers_pin_;
  std::map<uint64_t, PageView> handle_cache_;       // ordinal → pinned page
  std::map<LogicalPageNo, PageRef> offpage_cache_;  // pinned overflow pages
  uint64_t pages_touched_ = 0;
};

}  // namespace payg

#endif  // PAYG_PAGED_PAGED_DICTIONARY_H_
