#ifndef PAYG_PAGED_PAGED_INVERTED_INDEX_H_
#define PAYG_PAGED_PAGED_INVERTED_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "common/result.h"
#include "encoding/bit_packing.h"
#include "paged/page_cache.h"
#include "storage/storage_manager.h"

namespace payg {

// Paged inverted index (§3.3): the postinglist (row positions reordered by
// vid) and the directory (first-posting offset per vid) persisted in a
// single chain of index pages:
//
//   page 0                meta
//   pages 1..pl_pages     postinglist blocks (n_pos-bit chunks)
//   [mixed page]          trailing postinglist block + first directory block
//   remaining pages       directory blocks (n_off-bit chunks)
//
// For unique columns the directory is an identity vector and is not stored
// at all. Block values are packed in 64-value chunks like the data vector,
// so posting j / directory entry k map to (logical page, in-page slot) by
// pure arithmetic — Eq. (1) and (2) of the paper.
class PagedInvertedIndex {
 public:
  // Builds from the per-row vids of the main fragment.
  static Result<std::unique_ptr<PagedInvertedIndex>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, const std::vector<ValueId>& vids,
      uint64_t dict_size);

  static Result<std::unique_ptr<PagedInvertedIndex>> Open(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name);

  bool unique() const { return unique_; }
  uint64_t posting_count() const { return posting_count_; }
  uint64_t dict_size() const { return dict_size_; }
  bool has_mixed_page() const { return mixed_lpn_ != kInvalidPageNo; }

  PageCache* cache() { return cache_.get(); }
  void Unload() { cache_->DropAll(); }

 private:
  friend class PagedIndexIterator;

  PagedInvertedIndex() = default;

  // --- meta (mirrored on page 0) -------------------------------------------
  bool unique_ = false;
  uint32_t bits_pos_ = 1;       // bit width of a row position
  uint32_t bits_off_ = 1;       // bit width of a directory offset
  uint64_t posting_count_ = 0;  // == row count of the fragment
  uint64_t dict_size_ = 0;
  uint64_t pl_per_page_ = 0;    // postings per full postinglist page
  uint64_t pl_pages_ = 0;       // number of full postinglist pages
  uint64_t mixed_pl_count_ = 0; // postings stored on the mixed page
  LogicalPageNo mixed_lpn_ = kInvalidPageNo;
  uint64_t v_first_ = 0;        // directory entries on page b (Eq. 1)
  uint64_t v_page_ = 0;         // entries per full directory page
  LogicalPageNo dir_first_lpn_ = kInvalidPageNo;  // page b when no mixed page

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<PageCache> cache_;
};

// Iterator implementing getFirstRowPos(vid) / getNextRowPos() (§3.3.2). It
// keeps at most two pages pinned — the current directory page and the
// current postinglist page — and retains the postinglist pin across
// getNextRowPos calls so consecutive postings of the same vid hit the
// already-loaded page.
class PagedIndexIterator {
 public:
  // `ctx` (optional) attributes page pins/reads to the owning query.
  explicit PagedIndexIterator(PagedInvertedIndex* index,
                              ExecContext* ctx = nullptr)
      : index_(index), ctx_(ctx) {}

  // Positions the iterator on `vid` and returns its first row position.
  // Returns NotFound if the vid has no postings (possible only for
  // non-dense vid sets after deletes; dense builds always have ≥1).
  Result<RowPos> GetFirstRowPos(ValueId vid);

  // True while more postings remain for the current vid.
  bool HasNext() const { return cursor_ < end_; }

  // Next row position for the current vid; requires HasNext().
  Result<RowPos> GetNextRowPos();

  // Convenience: all row positions for `vid`.
  Status Lookup(ValueId vid, std::vector<RowPos>* out);

  uint64_t pages_touched() const { return pages_touched_; }

  // Pages to prefetch ahead of the posting cursor when a long postinglist
  // crosses page boundaries (capped by where the current vid's postings
  // end). Defaults to DefaultReadaheadWindow() (PAYG_READAHEAD); 0
  // disables readahead for this iterator.
  void set_readahead(uint32_t pages) { readahead_ = pages; }
  uint32_t readahead() const { return readahead_; }

 private:
  // Directory entry k (k ∈ [0, dict_size]); entry dict_size is the end
  // sentinel equal to posting_count.
  Result<uint64_t> ReadDirEntry(uint64_t k);
  // Posting at global offset j.
  Result<RowPos> ReadPosting(uint64_t j);

  PagedInvertedIndex* index_;
  ExecContext* ctx_ = nullptr;
  PageRef dir_page_;
  LogicalPageNo dir_lpn_ = kInvalidPageNo;
  PageRef pl_page_;
  LogicalPageNo pl_lpn_ = kInvalidPageNo;
  uint64_t cursor_ = 0;  // next posting offset to read
  uint64_t end_ = 0;     // one past the last posting of the current vid
  uint64_t pages_touched_ = 0;
  uint32_t readahead_ = DefaultReadaheadWindow();
  // First postinglist page not yet covered by an issued readahead; lets the
  // forward posting walk refill its window as multi-page batches.
  LogicalPageNo ra_frontier_ = 0;
};

}  // namespace payg

#endif  // PAYG_PAGED_PAGED_INVERTED_INDEX_H_
