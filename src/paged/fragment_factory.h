#ifndef PAYG_PAGED_FRAGMENT_FACTORY_H_
#define PAYG_PAGED_FRAGMENT_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "columnar/fragment.h"
#include "encoding/codec.h"
#include "storage/storage_manager.h"

namespace payg {

// How a main fragment should be materialized. The loading behaviour of a
// column is chosen at creation time (§1): fully resident ("default") or
// page loadable.
struct FragmentSpec {
  bool page_loadable = false;
  bool with_index = false;
  // §8 (adaptive rebuild): when true, the inverted index — non-critical
  // data that can always be recovered from the data vector — is NOT built
  // during the delta merge. The fragment rebuilds and persists it lazily,
  // driven by the workload, once `index_build_threshold` point lookups have
  // arrived. Only meaningful for page loadable fragments with with_index.
  bool defer_index = false;
  uint32_t index_build_threshold = 1;
  // Pool for the pages of a page loadable fragment; cold partitions use
  // kColdPagedPool (§4.1).
  PoolId pool = PoolId::kPagedPool;
  // Storage codec of the paged data vector (S22). kAuto runs the selection
  // pass (PAYG_FORCE_CODEC, then the per-column cost model); a fixed value
  // pins the codec regardless of the knob.
  CodecForce codec = CodecForce::kAuto;
};

// Builds and persists a main fragment from sorted dictionary values and the
// per-row vids, dispatching on spec.page_loadable.
Result<std::unique_ptr<MainFragment>> BuildMainFragment(
    StorageManager* storage, ResourceManager* rm, const std::string& name,
    ValueType type, const std::vector<Value>& sorted_dict_values,
    const std::vector<ValueId>& vids, const FragmentSpec& spec);

// Re-opens a previously persisted main fragment (catalog restart path).
// spec.page_loadable and spec.pool must match how it was built; the index
// mode is read from the fragment's own metadata.
Result<std::unique_ptr<MainFragment>> OpenMainFragment(
    StorageManager* storage, ResourceManager* rm, const std::string& name,
    const FragmentSpec& spec);

// Removes every page chain a fragment named `name` may have persisted
// (vacuum after a delta merge replaced it). Best effort: missing chains are
// ignored. The fragment object must already be destroyed.
void DropFragmentChains(StorageManager* storage, const std::string& name);

}  // namespace payg

#endif  // PAYG_PAGED_FRAGMENT_FACTORY_H_
