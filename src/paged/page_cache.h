#ifndef PAYG_PAGED_PAGE_CACHE_H_
#define PAYG_PAGED_PAGE_CACHE_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "buffer/resource_manager.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace payg {

// A pinned reference to a loaded page. While the pin is held the resource
// manager will not evict the page (§3.1.2: the iterator "pins the page in
// memory to make sure the page does not get evicted by the resource manager
// when it is being read"). The shared_ptr keeps the bytes alive even across
// an owner-initiated unload, so readers never observe freed memory.
class PageRef {
 public:
  PageRef() = default;
  PageRef(std::shared_ptr<Page> page, PinnedResource pin, LogicalPageNo lpn)
      : page_(std::move(page)), pin_(std::move(pin)), lpn_(lpn) {}

  bool valid() const { return page_ != nullptr; }
  const Page& page() const { return *page_; }
  LogicalPageNo lpn() const { return lpn_; }

  void Release() {
    pin_.Release();
    page_.reset();
  }

 private:
  std::shared_ptr<Page> page_;
  PinnedResource pin_;
  LogicalPageNo lpn_ = kInvalidPageNo;
};

// Tracks which pages of one page chain are currently loaded, registering
// each loaded page as an individual kPagedAttribute resource. Eviction by
// the resource manager simply drops the page from this cache; the next
// access reloads it from disk.
//
// Thread-safe and sharded: pages are distributed over PAYG_CACHE_SHARDS
// independent shards by `lpn & mask`, each with its own mutex, slot map,
// in-flight set and condvar, so hits, misses, prefetch publishes and
// eviction callbacks on unrelated pages never contend. Hits additionally
// pin through the resource manager's lock-free handle path, so the warm
// loop takes exactly one (uncontended in the common case) shard mutex and
// no process-wide lock. The eviction callback runs on the manager's
// sweeper thread and touches only the victim's shard.
class PageCache {
 public:
  // `shard_count` == 0 uses the process default (DefaultCacheShards());
  // other values are rounded up to a power of two and clamped — tests use
  // 1 to force worst-case contention on a single shard.
  PageCache(PageFile* file, ResourceManager* rm, PoolId pool,
            std::string label, uint32_t shard_count = 0);

  ~PageCache() { DropAll(); }

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Returns a pinned reference to page `lpn`, loading it if not resident.
  // When `ctx` is given, the pin (and any disk read) is attributed to that
  // query and its deadline is checked before touching the page.
  Result<PageRef> GetPage(LogicalPageNo lpn, ExecContext* ctx = nullptr);

  // Non-blocking readahead: schedules a load of `lpn` on the shared
  // background I/O pool and returns immediately. No-op when the page is
  // already resident or a prefetch of it is in flight. The loaded page
  // enters the cache unpinned, with the normal weighted-LRU disposition —
  // the resource manager may evict it before it is ever touched (counted as
  // wasted). `ctx` attributes the *issue* to a query; the physical read
  // happens after this call returns and is accounted to the cache only,
  // because the background task may outlive the query.
  void Prefetch(LogicalPageNo lpn, ExecContext* ctx = nullptr);

  // Batched readahead: one submission for `count` consecutive pages
  // starting at `first` (clamped to the chain, already-resident and
  // already-in-flight pages filtered out). The surviving pages go to the
  // I/O pool as ONE task whose batched read (PageFile::ReadPages) publishes
  // each page into its shard as that page's bytes complete — a concurrent
  // GetPage waiting on the in-flight entry wakes when its page lands, not
  // when the whole batch does. Counts one query.io_batches on `ctx` when
  // any page is actually issued; per-page accounting matches Prefetch.
  void PrefetchRange(LogicalPageNo first, uint32_t count,
                     ExecContext* ctx = nullptr);

  // Blocks until no prefetch load is in flight (tests / benchmarks; new
  // prefetches may be issued while this returns). Waits shard by shard,
  // never holding two shard locks at once.
  void WaitForPrefetchIdle();

  // True if the page is resident right now (tests / stats; racy by nature).
  bool IsLoaded(LogicalPageNo lpn) const;

  // Unloads every cached page (structure unload). Outstanding PageRefs keep
  // their bytes alive but the pages leave the accounting. Shards are
  // drained one at a time — each shard's in-flight prefetches are waited
  // out under that shard's lock only, so a prefetch publishing to another
  // shard can never deadlock against the drain.
  void DropAll();

  uint64_t loaded_page_count() const;
  uint64_t load_count() const { return loads_; }

  uint32_t shard_count() const { return static_cast<uint32_t>(shard_mask_) + 1; }

  // Hit/miss accounting: every GetPage call is exactly one of the two. A
  // hit is served from a resident slot (successful pin, no IO); a miss went
  // through a physical load — including the rare case where a concurrent
  // loader won the race and our freshly read page was thrown away.
  // pin_wait_count tallies the contention events inside those calls: a
  // resident slot whose pin raced with eviction, or a duplicate concurrent
  // load. The same three counters aggregate process-wide in the registry as
  // "cache.hits" / "cache.misses" / "cache.pin_waits".
  uint64_t hit_count() const {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }
  uint64_t pin_wait_count() const {
    return pin_waits_.load(std::memory_order_relaxed);
  }

  // Prefetch accounting invariant: at any quiesce point,
  //   issued == hits + wasted + inflight.
  // Every issued prefetch ends in exactly one bucket: its first GetPage
  // touch (hit), or a failed read / superseded load / eviction or drop
  // before any touch (wasted), or it is still loading (inflight).
  uint64_t prefetch_issued_count() const {
    return prefetch_issued_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_hit_count() const {
    return prefetch_hits_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_wasted_count() const {
    return prefetch_wasted_.load(std::memory_order_relaxed);
  }
  uint64_t prefetch_inflight_count() const;

  PageFile* file() const { return file_; }
  ResourceManager* resource_manager() const { return rm_; }

 private:
  struct Slot {
    std::shared_ptr<Page> page;
    // Lock-free pin handle of the page's registration; handle->id is the
    // resource id for Unregister.
    ResourceHandle handle;
    uint64_t generation = 0;
    // Loaded by Prefetch and not yet served to any GetPage call. The first
    // pin clears the flag (a prefetch hit); leaving the cache with the flag
    // still set means the readahead was wasted.
    bool prefetched = false;
  };

  struct Shard {
    // DESIGN.md §8: no path ever holds two shard mutexes — the aggregate
    // walks (DropAll, WaitForPrefetchIdle, counts) visit shards strictly one
    // at a time, which is what makes a prefetch publishing to another shard
    // deadlock-free against them.
    mutable Mutex mu;
    std::unordered_map<LogicalPageNo, Slot> slots GUARDED_BY(mu);
    // Pages a background prefetch is currently loading. GetPage waits for
    // an in-flight load of its page instead of issuing a duplicate read,
    // which is what lets readahead actually hide latency. DropAll (and
    // thus the destructor) drains this set per shard before clearing, so
    // no task outlives the cache.
    std::unordered_set<LogicalPageNo> inflight GUARDED_BY(mu);
    CondVar inflight_cv;
    // "cache.shard<k>.pages" — resident pages in this shard, summed across
    // cache instances. Atomic gauge: bumped under mu by convention but
    // needs no guard.
    obs::Gauge* occupancy = nullptr;
  };

  Shard& ShardFor(LogicalPageNo lpn) const { return shards_[lpn & shard_mask_]; }

  // Scoped shard lock, recording the wait in "cache.lock_wait" only when
  // the fast-path TryLock loses (so a warm scan with no contention records
  // nothing).
  class SCOPED_CAPABILITY ShardLock {
   public:
    ShardLock(const PageCache& cache, const Shard& shard) ACQUIRE(shard.mu);
    ~ShardLock() RELEASE() { mu_.Unlock(); }

    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    Mutex& mu_;
  };

  // Eviction callback target: forgets the slot if it still belongs to the
  // registration identified by `generation`.
  void EvictSlot(LogicalPageNo lpn, uint64_t generation);

  // Body of a prefetch task on the background I/O pool: one batched read
  // over `lpns` (all already marked in-flight), publishing per page.
  void DoBatchRead(const std::vector<LogicalPageNo>& lpns);

  // Completion hook of the batched read: registers + inserts `page` into
  // its shard (or counts it wasted on error / when superseded), then — as
  // the very LAST access to `this` for this page — erases the in-flight
  // entry and notifies waiters.
  void PublishPrefetched(LogicalPageNo lpn, std::shared_ptr<Page> page,
                         const Status& st);

  // Counts a slot of `shard` leaving the cache untouched after a prefetch.
  void CountWastedLocked(const Shard& shard, const Slot& slot)
      REQUIRES(shard.mu);

  PageFile* file_;
  ResourceManager* rm_;
  PoolId pool_;
  // Every page of this chain registers as `*label_prefix_ + "#" + lpn`,
  // kept unformatted so the load path never allocates a label string.
  std::shared_ptr<const std::string> label_prefix_;
  std::unique_ptr<Shard[]> shards_;
  uint64_t shard_mask_ = 0;
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> next_generation_{1};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> pin_waits_{0};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_pin_waits_;
  obs::Counter* m_prefetch_issued_;
  obs::Counter* m_prefetch_hits_;
  obs::Counter* m_prefetch_wasted_;
  obs::Histogram* m_lock_wait_us_;
};

// Readahead window (pages prefetched ahead of a sequential cursor) used by
// the paged iterators: PAYG_READAHEAD, default 2, clamped to [0, 64]; 0
// disables readahead. Malformed values (trailing garbage, empty) fall back
// to the default. The effective value is published once as the
// "cache.readahead" gauge.
uint32_t DefaultReadaheadWindow();

// Default shard count for new PageCaches: PAYG_CACHE_SHARDS, rounded up to
// a power of two and clamped to [1, 256]; defaults to a power of two near
// hardware_concurrency. Malformed values fall back to the default. The
// effective value is published once as the "cache.shards" gauge.
uint32_t DefaultCacheShards();

}  // namespace payg

#endif  // PAYG_PAGED_PAGE_CACHE_H_
