#include "paged/page_cache.h"

#include <cstdlib>

#include "exec/exec_context.h"
#include "exec/io_pool.h"

namespace payg {

Result<PageRef> PageCache::GetPage(LogicalPageNo lpn, ExecContext* ctx) {
  if (ctx != nullptr) {
    PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // If a background prefetch of this very page is in flight, wait for it
    // rather than paying a duplicate physical read — this wait (bounded by
    // one page read) is where readahead turns latency into overlap.
    inflight_cv_.wait(lock, [&] { return inflight_.count(lpn) == 0; });
    auto it = slots_.find(lpn);
    if (it != slots_.end()) {
      PinnedResource pin = PinnedResource::TryPin(rm_, it->second.rid);
      if (pin.valid()) {
        if (it->second.prefetched) {
          it->second.prefetched = false;
          prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
          m_prefetch_hits_->Inc();
          CountPrefetchHit(ctx);
        }
        CountPagePinned(ctx);
        hits_.fetch_add(1, std::memory_order_relaxed);
        m_hits_->Inc();
        return PageRef(it->second.page, std::move(pin), lpn);
      }
      // The resource manager chose this page as a victim and its callback
      // has not reached us yet; treat as a miss (the callback erases only
      // its own generation, so reloading below is safe).
      pin_waits_.fetch_add(1, std::memory_order_relaxed);
      m_pin_waits_->Inc();
      CountWastedLocked(it->second);
      slots_.erase(it);
    }
  }

  // Load outside the cache lock: the (possibly simulated-latency) read must
  // not block concurrent eviction callbacks.
  auto page = std::make_shared<Page>(file_->page_size());
  PAYG_RETURN_IF_ERROR(file_->ReadPage(lpn, page.get(), ctx));
  loads_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Inc();
  CountPagePinned(ctx);

  const uint64_t gen = next_generation_.fetch_add(1);
  ResourceId rid = rm_->RegisterPinned(
      label_ + "#" + std::to_string(lpn), file_->page_size(),
      Disposition::kPagedAttribute, pool_,
      [this, lpn, gen] { EvictSlot(lpn, gen); });
  PinnedResource pin = PinnedResource::Adopt(rm_, rid);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(lpn);
    if (it != slots_.end()) {
      // Another thread loaded the same page concurrently; keep theirs and
      // drop ours. Still a miss (we paid a physical read), but also a
      // pin-wait: the call contended with another loader.
      PinnedResource theirs = PinnedResource::TryPin(rm_, it->second.rid);
      if (theirs.valid()) {
        if (it->second.prefetched) {
          it->second.prefetched = false;
          prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
          m_prefetch_hits_->Inc();
          CountPrefetchHit(ctx);
        }
        pin_waits_.fetch_add(1, std::memory_order_relaxed);
        m_pin_waits_->Inc();
        pin.Release();
        rm_->Unregister(rid);
        return PageRef(it->second.page, std::move(theirs), lpn);
      }
      CountWastedLocked(it->second);
      slots_.erase(it);
    }
    slots_[lpn] = Slot{page, rid, gen, /*prefetched=*/false};
  }
  return PageRef(std::move(page), std::move(pin), lpn);
}

void PageCache::Prefetch(LogicalPageNo lpn, ExecContext* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_.count(lpn) > 0 || inflight_.count(lpn) > 0) return;
    inflight_.insert(lpn);
  }
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  m_prefetch_issued_->Inc();
  CountPrefetchIssued(ctx);
  // Note: the task must not touch `ctx` — it may outlive the query.
  SharedIoPool()->Submit([this, lpn] { DoPrefetch(lpn); });
}

void PageCache::DoPrefetch(LogicalPageNo lpn) {
  // Erasing `lpn` from inflight_ is the signal DropAll / the destructor
  // wait on before tearing the cache down, so it must be the LAST access to
  // `this` in the task — notify while still holding the lock, touch nothing
  // of the cache afterwards.
  auto page = std::make_shared<Page>(file_->page_size());
  Status st = file_->ReadPage(lpn, page.get(), nullptr);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    m_prefetch_wasted_->Inc();
    inflight_.erase(lpn);
    inflight_cv_.notify_all();
    return;
  }
  loads_.fetch_add(1, std::memory_order_relaxed);

  ResourceManager* rm = rm_;
  const uint64_t gen = next_generation_.fetch_add(1);
  ResourceId rid = rm->RegisterPinned(
      label_ + "#" + std::to_string(lpn), file_->page_size(),
      Disposition::kPagedAttribute, pool_,
      [this, lpn, gen] { EvictSlot(lpn, gen); });
  PinnedResource pin = PinnedResource::Adopt(rm, rid);

  bool superseded = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (slots_.count(lpn) > 0) {
      // A synchronous load slipped in (the slot was evicted and reloaded
      // while we were reading). Keep theirs, discard ours.
      superseded = true;
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
      m_prefetch_wasted_->Inc();
    } else {
      slots_[lpn] = Slot{page, rid, gen, /*prefetched=*/true};
    }
  }
  // Prefetched pages sit in the cache unpinned, with the normal
  // weighted-LRU disposition: readahead must never shield a page from the
  // resource manager.
  pin.Release();
  if (superseded) rm->Unregister(rid);
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(lpn);
    inflight_cv_.notify_all();
  }
}

void PageCache::CountWastedLocked(const Slot& slot) {
  if (slot.prefetched) {
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    m_prefetch_wasted_->Inc();
  }
}

void PageCache::EvictSlot(LogicalPageNo lpn, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(lpn);
  if (it != slots_.end() && it->second.generation == generation) {
    CountWastedLocked(it->second);
    slots_.erase(it);
  }
}

bool PageCache::IsLoaded(LogicalPageNo lpn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(lpn) > 0;
}

void PageCache::WaitForPrefetchIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  inflight_cv_.wait(lock, [&] { return inflight_.empty(); });
}

uint64_t PageCache::prefetch_inflight_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_.size();
}

void PageCache::DropAll() {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain in-flight prefetches first: their tasks capture `this` and will
  // re-lock mu_ to publish, so the slot table must not be torn down under
  // them (the destructor relies on this).
  inflight_cv_.wait(lock, [&] { return inflight_.empty(); });
  for (auto& [lpn, slot] : slots_) {
    CountWastedLocked(slot);
    rm_->Unregister(slot.rid);
  }
  slots_.clear();
}

uint64_t PageCache::loaded_page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

uint32_t DefaultReadaheadWindow() {
  static const uint32_t window = [] {
    const char* env = std::getenv("PAYG_READAHEAD");
    if (env != nullptr) {
      const long v = std::strtol(env, nullptr, 10);
      if (v >= 0 && v <= 64) return static_cast<uint32_t>(v);
    }
    return 2u;
  }();
  return window;
}

}  // namespace payg
