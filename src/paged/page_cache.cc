#include "paged/page_cache.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "common/env.h"
#include "common/stopwatch.h"
#include "exec/exec_context.h"
#include "exec/io_pool.h"

namespace payg {

namespace {

constexpr uint32_t kMaxCacheShards = 256;

uint32_t NormalizeShardCount(uint32_t requested) {
  const uint32_t clamped =
      std::clamp<uint32_t>(requested, 1, kMaxCacheShards);
  return std::bit_ceil(clamped);
}

}  // namespace

PageCache::PageCache(PageFile* file, ResourceManager* rm, PoolId pool,
                     std::string label, uint32_t shard_count)
    : file_(file),
      rm_(rm),
      pool_(pool),
      label_prefix_(std::make_shared<const std::string>(std::move(label))) {
  const uint32_t shards =
      shard_count == 0 ? DefaultCacheShards() : NormalizeShardCount(shard_count);
  shard_mask_ = shards - 1;
  shards_ = std::make_unique<Shard[]>(shards);
  auto& reg = obs::MetricsRegistry::Global();
  m_hits_ = reg.counter("cache.hits");
  m_misses_ = reg.counter("cache.misses");
  m_pin_waits_ = reg.counter("cache.pin_waits");
  m_prefetch_issued_ = reg.counter("cache.prefetch_issued");
  m_prefetch_hits_ = reg.counter("cache.prefetch_hits");
  m_prefetch_wasted_ = reg.counter("cache.prefetch_wasted");
  m_lock_wait_us_ = reg.histogram("cache.lock_wait");
  for (uint32_t k = 0; k < shards; ++k) {
    shards_[k].occupancy =
        reg.gauge("cache.shard" + std::to_string(k) + ".pages");
  }
}

PageCache::ShardLock::ShardLock(const PageCache& cache, const Shard& shard)
    : mu_(shard.mu) {
  if (shard.mu.TryLock()) return;
  const auto t0 = std::chrono::steady_clock::now();
  shard.mu.Lock();
  const auto waited_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  cache.m_lock_wait_us_->Record(static_cast<uint64_t>(waited_us));
}

Result<PageRef> PageCache::GetPage(LogicalPageNo lpn, ExecContext* ctx) {
  if (ctx != nullptr) {
    PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
  }
  // Cold/hit wait attribution for the query profile: the timestamp covers
  // the whole call (shard lock, in-flight prefetch wait, physical read), so
  // page_cold_us is exactly the time this query spent blocked on page
  // loads. Only taken when a query is attached — the no-context path stays
  // clock-free.
  const uint64_t access_start_ns = ctx != nullptr ? MonotonicNanos() : 0;
  Shard& shard = ShardFor(lpn);
  {
    ShardLock lock(*this, shard);
    // If a background prefetch of this very page is in flight, wait for it
    // rather than paying a duplicate physical read — this wait (bounded by
    // one page read) is where readahead turns latency into overlap. Explicit
    // loop (not a predicate lambda) so the analysis sees the guarded reads.
    while (shard.inflight.count(lpn) != 0) shard.inflight_cv.Wait(shard.mu);
    auto it = shard.slots.find(lpn);
    if (it != shard.slots.end()) {
      PinnedResource pin = PinnedResource::TryPin(it->second.handle);
      if (pin.valid()) {
        // Recency touch goes to a striped pending buffer; holding the shard
        // mutex over it is safe (no path locks a touch stripe first).
        rm_->Touch(it->second.handle);
        if (it->second.prefetched) {
          it->second.prefetched = false;
          prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
          m_prefetch_hits_->Inc();
          CountPrefetchHit(ctx);
        }
        CountPagePinned(ctx);
        if (ctx != nullptr) {
          CountPageAccess(ctx, /*cold=*/false,
                          (MonotonicNanos() - access_start_ns) / 1000);
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        m_hits_->Inc();
        return PageRef(it->second.page, std::move(pin), lpn);
      }
      // The resource manager chose this page as a victim and its callback
      // has not reached us yet; treat as a miss (the callback erases only
      // its own generation, so reloading below is safe).
      pin_waits_.fetch_add(1, std::memory_order_relaxed);
      m_pin_waits_->Inc();
      CountWastedLocked(shard, it->second);
      shard.occupancy->Add(-1);
      shard.slots.erase(it);
    }
  }

  // Load outside the shard lock: the (possibly simulated-latency) read must
  // not block concurrent eviction callbacks.
  auto page = std::make_shared<Page>(file_->page_size());
  PAYG_RETURN_IF_ERROR(file_->ReadPage(lpn, page.get(), ctx));
  loads_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Inc();
  CountPagePinned(ctx);

  const uint64_t gen = next_generation_.fetch_add(1);
  ResourceHandle handle;
  rm_->RegisterPinnedPage(
      label_prefix_, lpn, file_->page_size(), Disposition::kPagedAttribute,
      pool_, [this, lpn, gen] { EvictSlot(lpn, gen); }, &handle);
  PinnedResource pin = PinnedResource::Adopt(handle);

  {
    ShardLock lock(*this, shard);
    auto it = shard.slots.find(lpn);
    if (it != shard.slots.end()) {
      // Another thread loaded the same page concurrently; keep theirs and
      // drop ours. Still a miss (we paid a physical read), but also a
      // pin-wait: the call contended with another loader.
      PinnedResource theirs = PinnedResource::TryPin(it->second.handle);
      if (theirs.valid()) {
        rm_->Touch(it->second.handle);
        if (it->second.prefetched) {
          it->second.prefetched = false;
          prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
          m_prefetch_hits_->Inc();
          CountPrefetchHit(ctx);
        }
        pin_waits_.fetch_add(1, std::memory_order_relaxed);
        m_pin_waits_->Inc();
        pin.Release();
        rm_->Unregister(handle->id);
        // Cold despite serving their bytes: this call paid a physical read
        // (counted in pages_read), so the profile's cold count must match.
        if (ctx != nullptr) {
          CountPageAccess(ctx, /*cold=*/true,
                          (MonotonicNanos() - access_start_ns) / 1000);
        }
        return PageRef(it->second.page, std::move(theirs), lpn);
      }
      CountWastedLocked(shard, it->second);
      shard.occupancy->Add(-1);
      shard.slots.erase(it);
    }
    shard.slots[lpn] = Slot{page, handle, gen, /*prefetched=*/false};
    shard.occupancy->Add(1);
  }
  if (ctx != nullptr) {
    CountPageAccess(ctx, /*cold=*/true,
                    (MonotonicNanos() - access_start_ns) / 1000);
  }
  return PageRef(std::move(page), std::move(pin), lpn);
}

void PageCache::Prefetch(LogicalPageNo lpn, ExecContext* ctx) {
  PrefetchRange(lpn, 1, ctx);
}

void PageCache::PrefetchRange(LogicalPageNo first, uint32_t count,
                              ExecContext* ctx) {
  if (count == 0) return;
  const uint64_t limit = file_->page_count();
  if (first >= limit) return;
  if (first + count > limit) count = static_cast<uint32_t>(limit - first);

  // Mark the surviving pages in flight one shard at a time (never two shard
  // locks at once); pages already resident or already loading drop out —
  // that dedup is what lets GetPage wait on the in-flight entry instead of
  // re-reading.
  std::vector<LogicalPageNo> lpns;
  lpns.reserve(count);
  for (uint32_t w = 0; w < count; ++w) {
    const LogicalPageNo lpn = first + w;
    Shard& shard = ShardFor(lpn);
    ShardLock lock(*this, shard);
    if (shard.slots.count(lpn) > 0 || shard.inflight.count(lpn) > 0) continue;
    shard.inflight.insert(lpn);
    lpns.push_back(lpn);
  }
  if (lpns.empty()) return;

  prefetch_issued_.fetch_add(lpns.size(), std::memory_order_relaxed);
  m_prefetch_issued_->Add(lpns.size());
  for (size_t i = 0; i < lpns.size(); ++i) CountPrefetchIssued(ctx);
  CountIoBatch(ctx);
  // Note: the task must not touch `ctx` — it may outlive the query.
  SharedIoPool()->Submit(
      [this, lpns = std::move(lpns)] { DoBatchRead(lpns); });
}

void PageCache::DoBatchRead(const std::vector<LogicalPageNo>& lpns) {
  // One batched submission for the whole window. PublishPrefetched fires
  // per page from inside ReadPages as that page's bytes complete and
  // verify; its in-flight erase is the teardown signal, so after the LAST
  // publish this cache may already be gone — everything this frame touches
  // afterwards is local, and ReadPages itself holds the PageFile alive
  // (PageFile::inflight_batches_).
  const size_t n = lpns.size();
  std::vector<std::shared_ptr<Page>> pages;
  pages.reserve(n);
  std::vector<Page*> raw;
  raw.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pages.push_back(std::make_shared<Page>(file_->page_size()));
    raw.push_back(pages[i].get());
  }
  std::vector<Status> statuses(n);
  file_->ReadPages(lpns.data(), raw.data(), statuses.data(), n,
                   /*ctx=*/nullptr, [&](size_t i) {
                     PublishPrefetched(lpns[i], pages[i], statuses[i]);
                   });
}

void PageCache::PublishPrefetched(LogicalPageNo lpn,
                                  std::shared_ptr<Page> page,
                                  const Status& st) {
  // Erasing `lpn` from its shard's inflight set is the signal DropAll / the
  // destructor wait on before tearing the cache down, so it must be the
  // LAST access to `this` for this page — notify while still holding the
  // shard lock, touch nothing of the cache afterwards.
  Shard& shard = ShardFor(lpn);
  if (!st.ok()) {
    ShardLock lock(*this, shard);
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    m_prefetch_wasted_->Inc();
    shard.inflight.erase(lpn);
    shard.inflight_cv.NotifyAll();
    return;
  }
  loads_.fetch_add(1, std::memory_order_relaxed);

  ResourceManager* rm = rm_;
  const uint64_t gen = next_generation_.fetch_add(1);
  ResourceHandle handle;
  rm->RegisterPinnedPage(
      label_prefix_, lpn, file_->page_size(), Disposition::kPagedAttribute,
      pool_, [this, lpn, gen] { EvictSlot(lpn, gen); }, &handle);
  PinnedResource pin = PinnedResource::Adopt(handle);

  bool superseded = false;
  {
    ShardLock lock(*this, shard);
    if (shard.slots.count(lpn) > 0) {
      // A synchronous load slipped in (the slot was evicted and reloaded
      // while we were reading). Keep theirs, discard ours.
      superseded = true;
      prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
      m_prefetch_wasted_->Inc();
    } else {
      shard.slots[lpn] = Slot{std::move(page), handle, gen,
                              /*prefetched=*/true};
      shard.occupancy->Add(1);
    }
  }
  // Prefetched pages sit in the cache unpinned, with the normal
  // weighted-LRU disposition: readahead must never shield a page from the
  // resource manager.
  pin.Release();
  if (superseded) rm->Unregister(handle->id);
  {
    ShardLock lock(*this, shard);
    shard.inflight.erase(lpn);
    shard.inflight_cv.NotifyAll();
  }
}

void PageCache::CountWastedLocked(const Shard&, const Slot& slot) {
  if (slot.prefetched) {
    prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
    m_prefetch_wasted_->Inc();
  }
}

void PageCache::EvictSlot(LogicalPageNo lpn, uint64_t generation) {
  Shard& shard = ShardFor(lpn);
  ShardLock lock(*this, shard);
  auto it = shard.slots.find(lpn);
  if (it != shard.slots.end() && it->second.generation == generation) {
    CountWastedLocked(shard, it->second);
    shard.occupancy->Add(-1);
    shard.slots.erase(it);
  }
}

bool PageCache::IsLoaded(LogicalPageNo lpn) const {
  Shard& shard = ShardFor(lpn);
  ShardLock lock(*this, shard);
  return shard.slots.count(lpn) > 0;
}

void PageCache::WaitForPrefetchIdle() {
  const uint32_t shards = shard_count();
  for (uint32_t k = 0; k < shards; ++k) {
    Shard& shard = shards_[k];
    ShardLock lock(*this, shard);
    while (!shard.inflight.empty()) shard.inflight_cv.Wait(shard.mu);
  }
}

uint64_t PageCache::prefetch_inflight_count() const {
  uint64_t total = 0;
  const uint32_t shards = shard_count();
  for (uint32_t k = 0; k < shards; ++k) {
    Shard& shard = shards_[k];
    ShardLock lock(*this, shard);
    total += shard.inflight.size();
  }
  return total;
}

void PageCache::DropAll() {
  // One shard at a time: drain that shard's in-flight prefetches (the cv
  // wait releases the shard lock, so a task publishing to this — or any
  // other — shard can always make progress), then unregister its slots.
  // No two shard locks are ever held together, so a prefetch completing on
  // another shard cannot deadlock against the drain.
  const uint32_t shards = shard_count();
  for (uint32_t k = 0; k < shards; ++k) {
    Shard& shard = shards_[k];
    ShardLock lock(*this, shard);
    while (!shard.inflight.empty()) shard.inflight_cv.Wait(shard.mu);
    for (auto& [lpn, slot] : shard.slots) {
      CountWastedLocked(shard, slot);
      rm_->Unregister(slot.handle->id);
    }
    shard.occupancy->Add(-static_cast<int64_t>(shard.slots.size()));
    shard.slots.clear();
  }
}

uint64_t PageCache::loaded_page_count() const {
  uint64_t total = 0;
  const uint32_t shards = shard_count();
  for (uint32_t k = 0; k < shards; ++k) {
    Shard& shard = shards_[k];
    ShardLock lock(*this, shard);
    total += shard.slots.size();
  }
  return total;
}

uint32_t DefaultReadaheadWindow() {
  static const uint32_t window = [] {
    const uint32_t w = static_cast<uint32_t>(
        EnvLong("PAYG_READAHEAD", 0, 64, /*fallback=*/2));
    obs::MetricsRegistry::Global().gauge("cache.readahead")->Set(w);
    return w;
  }();
  return window;
}

uint32_t DefaultCacheShards() {
  static const uint32_t shards = [] {
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    const uint32_t def = NormalizeShardCount(static_cast<uint32_t>(hw));
    const uint32_t n = NormalizeShardCount(static_cast<uint32_t>(EnvLong(
        "PAYG_CACHE_SHARDS", 1, kMaxCacheShards, static_cast<long>(def))));
    obs::MetricsRegistry::Global().gauge("cache.shards")->Set(n);
    return n;
  }();
  return shards;
}

}  // namespace payg
