#include "paged/page_cache.h"

#include "exec/exec_context.h"

namespace payg {

Result<PageRef> PageCache::GetPage(LogicalPageNo lpn, ExecContext* ctx) {
  if (ctx != nullptr) {
    PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(lpn);
    if (it != slots_.end()) {
      PinnedResource pin = PinnedResource::TryPin(rm_, it->second.rid);
      if (pin.valid()) {
        CountPagePinned(ctx);
        hits_.fetch_add(1, std::memory_order_relaxed);
        m_hits_->Inc();
        return PageRef(it->second.page, std::move(pin), lpn);
      }
      // The resource manager chose this page as a victim and its callback
      // has not reached us yet; treat as a miss (the callback erases only
      // its own generation, so reloading below is safe).
      pin_waits_.fetch_add(1, std::memory_order_relaxed);
      m_pin_waits_->Inc();
      slots_.erase(it);
    }
  }

  // Load outside the cache lock: the (possibly simulated-latency) read must
  // not block concurrent eviction callbacks.
  auto page = std::make_shared<Page>(file_->page_size());
  PAYG_RETURN_IF_ERROR(file_->ReadPage(lpn, page.get(), ctx));
  loads_.fetch_add(1, std::memory_order_relaxed);
  misses_.fetch_add(1, std::memory_order_relaxed);
  m_misses_->Inc();
  CountPagePinned(ctx);

  const uint64_t gen = next_generation_.fetch_add(1);
  ResourceId rid = rm_->RegisterPinned(
      label_ + "#" + std::to_string(lpn), file_->page_size(),
      Disposition::kPagedAttribute, pool_,
      [this, lpn, gen] { EvictSlot(lpn, gen); });
  PinnedResource pin = PinnedResource::Adopt(rm_, rid);

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(lpn);
    if (it != slots_.end()) {
      // Another thread loaded the same page concurrently; keep theirs and
      // drop ours. Still a miss (we paid a physical read), but also a
      // pin-wait: the call contended with another loader.
      PinnedResource theirs = PinnedResource::TryPin(rm_, it->second.rid);
      if (theirs.valid()) {
        pin_waits_.fetch_add(1, std::memory_order_relaxed);
        m_pin_waits_->Inc();
        pin.Release();
        rm_->Unregister(rid);
        return PageRef(it->second.page, std::move(theirs), lpn);
      }
      slots_.erase(it);
    }
    slots_[lpn] = Slot{page, rid, gen};
  }
  return PageRef(std::move(page), std::move(pin), lpn);
}

void PageCache::EvictSlot(LogicalPageNo lpn, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(lpn);
  if (it != slots_.end() && it->second.generation == generation) {
    slots_.erase(it);
  }
}

bool PageCache::IsLoaded(LogicalPageNo lpn) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.count(lpn) > 0;
}

void PageCache::DropAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [lpn, slot] : slots_) {
    rm_->Unregister(slot.rid);
  }
  slots_.clear();
}

uint64_t PageCache::loaded_page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

}  // namespace payg
