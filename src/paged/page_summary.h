#ifndef PAYG_PAGED_PAGE_SUMMARY_H_
#define PAYG_PAGED_PAGE_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "encoding/types.h"

namespace payg {

// Per-page min/max summary of a paged data vector — the lightweight
// alternative to an inverted index that §3.3 discusses: "An example summary
// may keep the minimum and the maximum of the encoded values per page. The
// summary can be used to determine whether a page contains value identifiers
// within a range without actually loading the page."
//
// It is transient in spirit but persisted alongside the data vector (one
// small chain) so it survives restarts; it loads whole on first use, like
// the dictionary helper indexes.
struct PageSummary {
  std::vector<ValueId> min_vid;  // per data page
  std::vector<ValueId> max_vid;

  uint64_t page_count() const { return min_vid.size(); }

  // True if data page `page_idx` (0-based among data pages) may contain a
  // vid in [lo, hi]. False positives possible, false negatives not.
  bool MayContain(uint64_t page_idx, ValueId lo, ValueId hi) const {
    return !(hi < min_vid[page_idx] || lo > max_vid[page_idx]);
  }

  uint64_t MemoryBytes() const {
    return (min_vid.capacity() + max_vid.capacity()) * sizeof(ValueId);
  }
};

}  // namespace payg

#endif  // PAYG_PAGED_PAGE_SUMMARY_H_
