#ifndef PAYG_PAGED_PAGED_DATA_VECTOR_H_
#define PAYG_PAGED_PAGED_DATA_VECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

#include "buffer/resource_manager.h"
#include "common/result.h"
#include "encoding/bit_packing.h"
#include "encoding/codec.h"
#include "paged/page_cache.h"
#include "paged/page_summary.h"
#include "storage/storage_manager.h"

namespace payg {

// Parsed contents of a data vector meta page (page 0 of a `.dv` chain).
struct DataVectorMeta {
  uint64_t row_count = 0;
  uint64_t values_per_page = 0;
  CodecChoice codec;
};

// Parses and validates one meta-page payload. `payload_size` selects the
// layout (24 bytes = version 0, pre-codec; 36 bytes = version 1 with the
// codec identity) and anything else is Corruption, as is a bad version
// word, an unknown codec id, or geometry the kernels cannot run on (bits
// outside [1, 32], values_per_page not a positive multiple of 64). The
// payload is untrusted input — this is the function the meta-page fuzzer
// drives (fuzz/fuzz_meta_page).
Status ParseDataVectorMeta(const uint8_t* payload, uint32_t payload_size,
                           DataVectorMeta* out);

// Paged data vector (§3.1): value identifiers encoded page by page with a
// per-column codec (S22 — plain n-bit packing, FOR residuals, or RLE runs),
// stored as a chain of disk pages. Every codec keeps a fixed number of
// values per page (a multiple of the 64-value chunk), so row position →
// logical page number stays pure arithmetic, which is what lets the
// iterator load exactly the pages a row range needs.
//
// Chain layout: page 0 is a meta page (format version, codec id + params,
// bits, row count); pages 1..N hold encoded data. Version-0 meta pages
// (pre-codec, 24-byte payload) still open and decode as plain.
class PagedDataVector {
 public:
  // Builds and persists a new paged data vector under chain `<name>.dv`,
  // selecting the codec via ResolveCodec (PAYG_FORCE_CODEC, then the cost
  // model).
  static Result<std::unique_ptr<PagedDataVector>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, const std::vector<ValueId>& vids);

  // Builds with an explicit codec choice (the delta-merge selection pass
  // and tests pass one in; `choice` must come from MakeCodecChoice /
  // ChooseCodec over the same `vids`).
  static Result<std::unique_ptr<PagedDataVector>> Build(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name, const std::vector<ValueId>& vids,
      const CodecChoice& choice);

  // Opens an existing chain; reads only the meta page.
  static Result<std::unique_ptr<PagedDataVector>> Open(
      StorageManager* storage, ResourceManager* rm, PoolId pool,
      const std::string& name);

  uint64_t row_count() const { return row_count_; }
  // Packed width of the page payload words (plain/RLE: BitsNeeded(max);
  // FOR: BitsNeeded(max - base)).
  uint32_t bits() const { return codec_.params.bits; }
  // Codec this vector was built with (persisted in the meta page).
  CodecId codec_id() const { return codec_.id; }
  const CodecParams& codec_params() const { return codec_.params; }
  // Value identifiers stored per data page (a multiple of 64).
  uint64_t values_per_page() const { return values_per_page_; }
  uint64_t data_page_count() const { return data_pages_; }

  // Logical page number holding row `rpos` (meta page is page 0, data pages
  // start at 1).
  LogicalPageNo PageOfRow(RowPos rpos) const {
    return 1 + rpos / values_per_page_;
  }

  PageCache* cache() { return cache_.get(); }

  // Loads (or returns) the per-page min/max summary (§3.3's alternative to
  // the inverted index), pinned for the caller. Loaded whole on first use.
  Result<std::shared_ptr<PageSummary>> PinSummary(PinnedResource* pin);

  // Drops all resident pages and the summary (column unload).
  void Unload();

  ~PagedDataVector();

 private:
  friend class PagedDataVectorIterator;

  PagedDataVector() = default;

  std::string name_;
  StorageManager* storage_ = nullptr;
  ResourceManager* rm_ = nullptr;
  PoolId pool_ = PoolId::kPagedPool;
  uint64_t row_count_ = 0;
  CodecChoice codec_;
  uint64_t values_per_page_ = 0;
  uint64_t data_pages_ = 0;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<PageCache> cache_;

  // Double-checked load state of the page summary; the generation detects
  // eviction between unlock and re-lock.
  mutable Mutex summary_mu_;
  std::shared_ptr<PageSummary> summary_ GUARDED_BY(summary_mu_);
  ResourceId summary_rid_ GUARDED_BY(summary_mu_) = kInvalidResourceId;
  uint64_t summary_gen_ GUARDED_BY(summary_mu_) = 0;
};

// Stateful iterator over a paged data vector (§3.1.2). Keeps at most one
// data page pinned; repositioning to a new page releases the previous
// handle first. Implements the decode methods (get, mget) and the search
// method varieties over (row range | row list) × (single vid | vid range |
// vid set).
//
// Not thread-safe; create one per query.
class PagedDataVectorIterator {
 public:
  // `ctx` (optional) receives page-pin / rows-scanned attribution and is
  // consulted for the query deadline on every page load.
  explicit PagedDataVectorIterator(PagedDataVector* dv,
                                   ExecContext* ctx = nullptr)
      : dv_(dv), ctx_(ctx) {}

  // Folds the native/fallback codec-kernel tallies into the process-wide
  // codec.* counters and the query's ExecContext.
  ~PagedDataVectorIterator();

  // Decodes the value identifier at `rpos`.
  Result<ValueId> Get(RowPos rpos);

  // Decodes all vids in [from, to), appending to *out.
  Status MGet(RowPos from, RowPos to, std::vector<ValueId>* out);

  // search(range, single vid): rows in [from, to) whose vid == `vid`.
  Status SearchEq(RowPos from, RowPos to, ValueId vid,
                  std::vector<RowPos>* out);

  // search(range, vid range): rows in [from, to) with lo <= vid <= hi.
  Status SearchRange(RowPos from, RowPos to, ValueId lo, ValueId hi,
                     std::vector<RowPos>* out);

  // search(range, vid set): rows in [from, to) with vid ∈ sorted_vids.
  Status SearchIn(RowPos from, RowPos to,
                  const std::vector<ValueId>& sorted_vids,
                  std::vector<RowPos>* out);

  // search(row list, vid range): rows from `rows` (ascending) whose vid is
  // in [lo, hi].
  Status SearchRowsRange(const std::vector<RowPos>& rows, ValueId lo,
                         ValueId hi, std::vector<RowPos>* out);

  // Full-vector scan for a vid — Alg. 1 (used when no inverted index
  // exists). Loads every data page in turn.
  Status FindByValueId(ValueId vid, std::vector<RowPos>* out) {
    return SearchEq(0, static_cast<RowPos>(dv_->row_count()), vid, out);
  }

  // Pages loaded through this iterator's lifetime (tests/benchmarks).
  uint64_t pages_touched() const { return pages_touched_; }
  // Pages the min/max summary let the search methods skip without loading.
  uint64_t pages_pruned() const { return pages_pruned_; }
  // Per-page kernel dispatches that ran natively on the compressed image
  // vs. through the decode-into-scratch fallback (tests verify the native
  // matrix through these).
  uint64_t codec_native() const { return codec_stats_.native; }
  uint64_t codec_fallback() const { return codec_stats_.fallback; }

  // Whether search methods consult the per-page min/max summary to skip
  // pages whose [min,max] cannot overlap the predicate (§3.3). On by
  // default; the summary only pays off when values cluster per page.
  void set_use_summary(bool on) { use_summary_ = on; }

  // Pages to prefetch ahead of the cursor during sequential access (mget
  // and the range/set searches). Defaults to DefaultReadaheadWindow()
  // (PAYG_READAHEAD); 0 disables readahead for this iterator.
  void set_readahead(uint32_t pages) { readahead_ = pages; }
  uint32_t readahead() const { return readahead_; }

 private:
  // Pins the page holding `rpos` (releasing any previously pinned page) and
  // returns the page-local packed view. `sequential` marks a forward scan:
  // the next `readahead_` data pages are prefetched so their load overlaps
  // with this page's decode.
  Status Reposition(RowPos rpos, bool sequential = false);

  // True if the data page holding `rpos` may contain a vid in [lo, hi];
  // loads the summary lazily on first use (never fails the query: if the
  // summary cannot be loaded, every page "may" match).
  bool MayContain(RowPos rpos, ValueId lo, ValueId hi);

  // Set-aware variant for SearchIn: true if the page holding `rpos` may
  // contain any vid of `sorted_vids`. Strictly sharper than checking the
  // set's [front, back] band — a page whose [min, max] falls in a gap
  // between two probes is pruned even though it overlaps the band.
  bool MayContainAny(RowPos rpos, const std::vector<ValueId>& sorted_vids);

  PagedDataVector* dv_;
  ExecContext* ctx_ = nullptr;
  PageRef current_;
  LogicalPageNo current_lpn_ = kInvalidPageNo;
  RowPos page_first_row_ = 0;   // first row stored on the pinned page
  uint64_t page_rows_ = 0;      // rows stored on the pinned page
  CodecPageView view_;          // codec view of the pinned page
  CodecStats codec_stats_;      // native/fallback tallies + decode scratch
  uint64_t pages_touched_ = 0;
  uint64_t pages_pruned_ = 0;
  uint32_t readahead_ = DefaultReadaheadWindow();
  // First data page not yet covered by an issued readahead; maintained by
  // sequential Reposition so window refills arrive as multi-page batches.
  LogicalPageNo ra_frontier_ = 0;
  bool use_summary_ = true;
  bool summary_checked_ = false;
  std::shared_ptr<PageSummary> summary_;
  PinnedResource summary_pin_;
};

}  // namespace payg

#endif  // PAYG_PAGED_PAGED_DATA_VECTOR_H_
