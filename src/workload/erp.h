#ifndef PAYG_WORKLOAD_ERP_H_
#define PAYG_WORKLOAD_ERP_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "table/table.h"

namespace payg {

// Which columns of the ERP table are PAGE LOADABLE — the table variants of
// Table 2.
enum class TableVariant {
  kBase,        // T_b: all columns fully resident
  kPagedAll,    // T_p: every non-primary-key column page loadable
  kPagedPkOnly, // T_pp: only the primary key column page loadable
};

// Scaled-down version of the paper's generator (§6.1: 100M rows × 128
// columns; 112 columns <100 distinct values, 14 columns >1000 distinct,
// types INTEGER, DECIMAL, DOUBLE, CHAR, VARCHAR). The ratios are kept: most
// columns are low-cardinality, a few are high-cardinality, plus a unique
// VARCHAR primary key and an INTEGER aging-date column.
struct ErpConfig {
  uint64_t rows = 200000;
  // Default column mix mirrors the paper's 128-column table: 112 columns
  // with <100 distinct values and 14 with >1000 (plus pk and aging_date).
  uint32_t low_card_int_cols = 48;
  uint32_t low_card_str_cols = 48;
  uint32_t decimal_cols = 8;   // DECIMAL carried as scaled int64
  uint32_t double_cols = 8;
  uint32_t high_card_int_cols = 7;  // >1000 distinct values
  uint32_t high_card_str_cols = 7;  // >1000 distinct values
  TableVariant variant = TableVariant::kBase;
  bool with_indexes = false;  // the ^i variants: one inverted index per column
  uint64_t seed = 42;

  uint32_t column_count() const {
    return 2 /*pk + aging_date*/ + low_card_int_cols + low_card_str_cols +
           decimal_cols + double_cols + high_card_int_cols +
           high_card_str_cols;
  }
};

// Deterministic description of one generated column: cardinality plus the
// k-th distinct value, monotonically increasing in k so the dictionary is
// [ValueAt(0) .. ValueAt(cardinality-1)] without sorting.
struct ErpColumnSpec {
  std::string name;
  ValueType type;
  uint64_t cardinality;
  bool unique = false;  // pk: vid == row (sequentially assigned documents)

  Value ValueAt(uint64_t k) const;
};

// The deterministic column layout of an ErpConfig. Column 0 is the primary
// key ("pk"), column 1 the aging-date temperature column ("aging_date").
std::vector<ErpColumnSpec> MakeErpColumns(const ErpConfig& config);

// Table DDL for the config (paged flags per the variant, index flags per
// with_indexes; the pk always gets an inverted index so point lookups are
// realistic).
TableSchema MakeErpSchema(const ErpConfig& config,
                          const std::string& table_name);

// Bulk-loads the hot partition of `table` with `config.rows` rows. The
// per-column vid streams are deterministic in config.seed.
Status PopulateErpTable(Table* table, const ErpConfig& config);

// Query-workload companion (Table 2): produces the random query parameters
// the §6 experiments draw. Deterministic in its seed.
class ErpWorkload {
 public:
  ErpWorkload(const ErpConfig& config, uint64_t seed)
      : config_(config), columns_(MakeErpColumns(config)), rng_(seed) {}

  const std::vector<ErpColumnSpec>& columns() const { return columns_; }

  // The primary key value of row `row` (pk vids are assigned row order).
  Value PkOfRow(uint64_t row) const { return columns_[0].ValueAt(row); }

  uint64_t RandomRow() { return rng_.Uniform(config_.rows); }

  // A random existing value of column `col`.
  Value RandomValueOf(int col) {
    return columns_[col].ValueAt(rng_.Uniform(columns_[col].cardinality));
  }

  // Index of a random non-pk column with the given type; -1 if none.
  int RandomColumnOfType(ValueType type, bool high_cardinality);

  // Index of a random numeric (INT64 or DOUBLE) column, any cardinality,
  // excluding pk and aging_date — the paper's "C_num".
  int RandomNumericColumn();

  // PK range [lo, hi] covering ~selectivity of the table.
  std::pair<Value, Value> RandomPkRange(double selectivity);

  Random& rng() { return rng_; }

 private:
  ErpConfig config_;
  std::vector<ErpColumnSpec> columns_;
  Random rng_;
};

}  // namespace payg

#endif  // PAYG_WORKLOAD_ERP_H_
