#include "workload/erp.h"

#include <algorithm>
#include <cstdio>

namespace payg {

namespace {

// Low cardinalities cycle through primes < 100 (the paper: 112 of 128
// columns have fewer than 100 distinct values).
constexpr uint64_t kLowCards[] = {2, 5, 11, 17, 29, 41, 59, 71, 83, 97};
// High cardinalities exceed 1000 distinct values.
constexpr uint64_t kHighCards[] = {1500, 4000, 10000, 25000};

std::string PaddedNumber(const char* prefix, uint64_t k, int width) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%0*llu", prefix, width,
                static_cast<unsigned long long>(k));
  return buf;
}

}  // namespace

Value ErpColumnSpec::ValueAt(uint64_t k) const {
  PAYG_ASSERT(k < cardinality);
  switch (type) {
    case ValueType::kInt64:
      // Monotone in k, distinct per column via the name hash offset.
      return Value(static_cast<int64_t>(k * 3 + name.size()));
    case ValueType::kDouble:
      return Value(static_cast<double>(k) * 0.25 +
                   static_cast<double>(name.size()));
    case ValueType::kString:
      if (unique) return Value(PaddedNumber("DOC", k, 12));
      if (cardinality > 1000) {
        // High-cardinality VARCHAR columns carry longer text (customer
        // names, descriptions), which is what makes dictionary paging worth
        // it (§3.2). The filler is deterministic in k and appended after
        // the unique zero-padded number, so sort order is preserved.
        std::string v = PaddedNumber((name + "_").c_str(), k, 8);
        v.reserve(v.size() + 48);
        for (int i = 0; i < 48; ++i) {
          v.push_back(static_cast<char>('a' + (k * 31 + i * 7) % 26));
        }
        return Value(std::move(v));
      }
      return Value(PaddedNumber((name + "_").c_str(), k, 8));
  }
  return Value();
}

std::vector<ErpColumnSpec> MakeErpColumns(const ErpConfig& config) {
  std::vector<ErpColumnSpec> cols;
  cols.push_back(
      {"pk", ValueType::kString, config.rows, /*unique=*/true});
  // The artificial temperature column (§4): a date as days, 3650 distinct.
  cols.push_back({"aging_date", ValueType::kInt64,
                  std::min<uint64_t>(3650, std::max<uint64_t>(config.rows, 1)),
                  false});
  for (uint32_t i = 0; i < config.low_card_int_cols; ++i) {
    cols.push_back({"int_lc" + std::to_string(i), ValueType::kInt64,
                    kLowCards[i % std::size(kLowCards)], false});
  }
  for (uint32_t i = 0; i < config.low_card_str_cols; ++i) {
    cols.push_back({"str_lc" + std::to_string(i), ValueType::kString,
                    kLowCards[(i + 3) % std::size(kLowCards)], false});
  }
  for (uint32_t i = 0; i < config.decimal_cols; ++i) {
    // DECIMAL(p, 2) carried as a scaled int64.
    cols.push_back({"dec" + std::to_string(i), ValueType::kInt64,
                    kLowCards[(i + 5) % std::size(kLowCards)], false});
  }
  for (uint32_t i = 0; i < config.double_cols; ++i) {
    cols.push_back({"dbl" + std::to_string(i), ValueType::kDouble,
                    kLowCards[(i + 7) % std::size(kLowCards)], false});
  }
  for (uint32_t i = 0; i < config.high_card_int_cols; ++i) {
    cols.push_back({"int_hc" + std::to_string(i), ValueType::kInt64,
                    std::min<uint64_t>(kHighCards[i % std::size(kHighCards)],
                                       std::max<uint64_t>(config.rows, 2)),
                    false});
  }
  for (uint32_t i = 0; i < config.high_card_str_cols; ++i) {
    cols.push_back({"str_hc" + std::to_string(i), ValueType::kString,
                    std::min<uint64_t>(kHighCards[(i + 1) % std::size(kHighCards)],
                                       std::max<uint64_t>(config.rows, 2)),
                    false});
  }
  return cols;
}

TableSchema MakeErpSchema(const ErpConfig& config,
                          const std::string& table_name) {
  TableSchema schema;
  schema.name = table_name;
  auto columns = MakeErpColumns(config);
  for (size_t i = 0; i < columns.size(); ++i) {
    const ErpColumnSpec& spec = columns[i];
    ColumnSchema cs;
    cs.name = spec.name;
    cs.type = spec.type;
    cs.primary_key = spec.unique;
    bool is_pk = spec.unique;
    switch (config.variant) {
      case TableVariant::kBase:
        cs.page_loadable = false;
        break;
      case TableVariant::kPagedAll:
        cs.page_loadable = !is_pk;
        break;
      case TableVariant::kPagedPkOnly:
        cs.page_loadable = is_pk;
        break;
    }
    // The pk always has an inverted index (point lookups); other columns
    // only in the ^i variants.
    cs.with_index = is_pk || config.with_indexes;
    schema.columns.push_back(cs);
  }
  schema.temperature_column = 1;
  return schema;
}

Status PopulateErpTable(Table* table, const ErpConfig& config) {
  auto columns = MakeErpColumns(config);
  Partition* hot = table->hot();
  for (size_t c = 0; c < columns.size(); ++c) {
    const ErpColumnSpec& spec = columns[c];
    std::vector<Value> dict;
    dict.reserve(spec.cardinality);
    for (uint64_t k = 0; k < spec.cardinality; ++k) {
      dict.push_back(spec.ValueAt(k));
    }
    std::vector<ValueId> vids;
    vids.reserve(config.rows);
    if (spec.unique) {
      // Sequentially assigned document numbers: vid == row.
      for (uint64_t r = 0; r < config.rows; ++r) {
        vids.push_back(static_cast<ValueId>(r));
      }
    } else if (spec.name == "aging_date") {
      // Dates correlate with row order (older documents were inserted
      // first), so aging thresholds cut prefixes of the table.
      for (uint64_t r = 0; r < config.rows; ++r) {
        vids.push_back(static_cast<ValueId>(
            (r * spec.cardinality) / std::max<uint64_t>(config.rows, 1)));
      }
    } else {
      Random rng(config.seed * 1315423911u + c);
      // Half of the low-cardinality *numeric* columns are heavily skewed —
      // real ERP status/flag columns mostly hold their default value. This
      // is what makes sparse encoding ([15]) worthwhile on the resident
      // variants. (String columns stay uniform so the dictionary-paging
      // experiments keep the paper's workload shape.)
      const bool skewed = spec.type != ValueType::kString &&
                          spec.cardinality < 100 && c % 2 == 0;
      for (uint64_t r = 0; r < config.rows; ++r) {
        if (skewed && !rng.OneIn(4)) {
          vids.push_back(0);  // 75% default value
        } else {
          vids.push_back(static_cast<ValueId>(rng.Uniform(spec.cardinality)));
        }
      }
    }
    PAYG_RETURN_IF_ERROR(
        hot->BulkLoadColumn(static_cast<int>(c), dict, vids));
  }
  return Status::OK();
}

int ErpWorkload::RandomColumnOfType(ValueType type, bool high_cardinality) {
  std::vector<int> candidates;
  for (size_t i = 2; i < columns_.size(); ++i) {  // skip pk and aging_date
    if (columns_[i].type != type) continue;
    bool high = columns_[i].cardinality > 1000;
    if (high == high_cardinality) candidates.push_back(static_cast<int>(i));
  }
  if (candidates.empty()) return -1;
  return candidates[rng_.Uniform(candidates.size())];
}

int ErpWorkload::RandomNumericColumn() {
  std::vector<int> candidates;
  for (size_t i = 2; i < columns_.size(); ++i) {
    if (columns_[i].type != ValueType::kString) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  if (candidates.empty()) return -1;
  return candidates[rng_.Uniform(candidates.size())];
}

std::pair<Value, Value> ErpWorkload::RandomPkRange(double selectivity) {
  uint64_t span = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(config_.rows) *
                               selectivity));
  span = std::min(span, config_.rows);
  uint64_t start = rng_.Uniform(config_.rows - span + 1);
  return {columns_[0].ValueAt(start), columns_[0].ValueAt(start + span - 1)};
}

}  // namespace payg
