#ifndef PAYG_CORE_COLUMN_STORE_H_
#define PAYG_CORE_COLUMN_STORE_H_

#include <map>
#include <memory>
#include <string>

#include "buffer/resource_manager.h"
#include "storage/storage_manager.h"
#include "table/table.h"

namespace payg {

// Configuration of a column store instance.
struct ColumnStoreOptions {
  // On-disk home for all page chains.
  std::string directory;
  StorageOptions storage;
  // Global memory budget in bytes (0 = unlimited). Exceeding it triggers
  // reactive eviction (§5).
  uint64_t memory_budget = 0;
  // Lower/upper limits of the paged pools (§5). upper == 0 disables the
  // proactive sweep.
  ResourceManager::Limits paged_pool_limits;
  ResourceManager::Limits cold_paged_pool_limits;
};

// The public entry point: a minimal in-memory column store with page
// loadable columns, modeled after the paper's description of SAP HANA's
// column store. Owns the storage manager (page persistence), the resource
// manager (memory accounting and eviction) and the table catalog.
//
// Typical use:
//   auto store = ColumnStore::Open(options);
//   Table* t = *(*store)->CreateTable(schema);
//   t->Insert(...); t->MergeAll();
//   auto result = t->SelectByValue("pk", Value("DOC000000000042"), {});
class ColumnStore {
 public:
  static Result<std::unique_ptr<ColumnStore>> Open(
      const ColumnStoreOptions& options);

  // Creates an empty table; fails if the name exists.
  Result<Table*> CreateTable(TableSchema schema);

  Result<Table*> GetTable(const std::string& name);

  // Removes a table from the catalog and releases its memory. (Backing
  // files are left on disk; a vacuum pass may remove them.)
  Status DropTable(const std::string& name);

  // Persists the catalog so the store can be re-opened later: runs the
  // delta merge on every table (delta fragments are memory-only) and writes
  // schemas + partition manifests. Open() restores checkpointed tables
  // automatically.
  Status Checkpoint();

  StorageManager& storage() { return *storage_; }
  ResourceManager& resource_manager() { return *rm_; }

  // Total bytes tracked by the resource manager — the "system memory
  // footprint" metric of §6.
  uint64_t MemoryFootprint() const { return rm_->total_bytes(); }

 private:
  // Restores checkpointed tables on Open (no-op for a fresh directory).
  Status LoadCatalog();

  explicit ColumnStore(std::unique_ptr<StorageManager> storage)
      : storage_(std::move(storage)),
        rm_(std::make_unique<ResourceManager>()) {}

  std::unique_ptr<StorageManager> storage_;
  std::unique_ptr<ResourceManager> rm_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace payg

#endif  // PAYG_CORE_COLUMN_STORE_H_
