#include "core/column_store.h"

#include <filesystem>

#include "obs/stats_dumper.h"
#include "storage/byte_stream.h"

namespace payg {

namespace {

constexpr char kCatalogChain[] = "__catalog__";

void WriteSchema(ChainByteWriter* w, const TableSchema& schema) {
  w->PutString(schema.name);
  w->PutI64(schema.temperature_column);
  w->PutU32(static_cast<uint32_t>(schema.columns.size()));
  for (const ColumnSchema& c : schema.columns) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
    w->PutU8(c.page_loadable ? 1 : 0);
    w->PutU8(c.with_index ? 1 : 0);
    w->PutU8(c.primary_key ? 1 : 0);
    w->PutU8(c.defer_index ? 1 : 0);
  }
}

Result<TableSchema> ReadSchema(ChainByteReader* r) {
  TableSchema schema;
  PAYG_ASSIGN_OR_RETURN(schema.name, r->GetString());
  PAYG_ASSIGN_OR_RETURN(int64_t temp, r->GetI64());
  schema.temperature_column = static_cast<int>(temp);
  uint32_t ncols;
  PAYG_ASSIGN_OR_RETURN(ncols, r->GetU32());
  for (uint32_t i = 0; i < ncols; ++i) {
    ColumnSchema c;
    PAYG_ASSIGN_OR_RETURN(c.name, r->GetString());
    PAYG_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    c.type = static_cast<ValueType>(type);
    PAYG_ASSIGN_OR_RETURN(uint8_t paged, r->GetU8());
    c.page_loadable = paged != 0;
    PAYG_ASSIGN_OR_RETURN(uint8_t index, r->GetU8());
    c.with_index = index != 0;
    PAYG_ASSIGN_OR_RETURN(uint8_t pk, r->GetU8());
    c.primary_key = pk != 0;
    PAYG_ASSIGN_OR_RETURN(uint8_t defer, r->GetU8());
    c.defer_index = defer != 0;
    schema.columns.push_back(std::move(c));
  }
  return schema;
}

}  // namespace

Result<std::unique_ptr<ColumnStore>> ColumnStore::Open(
    const ColumnStoreOptions& options) {
  // Arm the background metrics/slow-query exporter when the env asks for it
  // (PAYG_STATS_DUMP_SECS > 0; off by default). Idempotent across multiple
  // stores in one process.
  obs::StatsDumper::Global().StartFromEnv();
  PAYG_ASSIGN_OR_RETURN(auto storage,
                        StorageManager::Open(options.directory,
                                             options.storage));
  auto store =
      std::unique_ptr<ColumnStore>(new ColumnStore(std::move(storage)));
  store->rm_->SetGlobalBudget(options.memory_budget);
  store->rm_->SetPoolLimits(PoolId::kPagedPool, options.paged_pool_limits);
  store->rm_->SetPoolLimits(PoolId::kColdPagedPool,
                            options.cold_paged_pool_limits);
  PAYG_RETURN_IF_ERROR(store->LoadCatalog());
  return store;
}

Status ColumnStore::Checkpoint() {
  // Delta fragments are memory-only: merge everything first so the
  // persisted main fragments carry all committed rows.
  for (auto& [name, table] : tables_) {
    PAYG_RETURN_IF_ERROR(table->MergeAll());
  }
  PAYG_ASSIGN_OR_RETURN(
      auto file, storage_->CreateChain(kCatalogChain,
                                       storage_->options().page_size));
  ChainByteWriter w(file.get());
  w.PutU32(static_cast<uint32_t>(tables_.size()));
  for (auto& [name, table] : tables_) {
    WriteSchema(&w, table->schema());
    auto manifests = table->Manifests();
    w.PutU32(static_cast<uint32_t>(manifests.size()));
    for (const PartitionManifest& m : manifests) {
      w.PutU8(m.cold ? 1 : 0);
      w.PutU64(m.merge_generation);
      w.PutU64(m.main_rows);
    }
  }
  PAYG_RETURN_IF_ERROR(w.Finish());
  return file->Sync();
}

Status ColumnStore::LoadCatalog() {
  if (!std::filesystem::exists(storage_->directory() + "/" + kCatalogChain)) {
    return Status::OK();  // fresh store
  }
  PAYG_ASSIGN_OR_RETURN(
      auto file,
      storage_->OpenChain(kCatalogChain, storage_->options().page_size));
  ChainByteReader r(file.get());
  uint32_t n_tables;
  PAYG_ASSIGN_OR_RETURN(n_tables, r.GetU32());
  for (uint32_t t = 0; t < n_tables; ++t) {
    PAYG_ASSIGN_OR_RETURN(TableSchema schema, ReadSchema(&r));
    uint32_t n_parts;
    PAYG_ASSIGN_OR_RETURN(n_parts, r.GetU32());
    std::vector<PartitionManifest> manifests;
    for (uint32_t p = 0; p < n_parts; ++p) {
      PartitionManifest m;
      PAYG_ASSIGN_OR_RETURN(uint8_t cold, r.GetU8());
      m.cold = cold != 0;
      PAYG_ASSIGN_OR_RETURN(m.merge_generation, r.GetU64());
      PAYG_ASSIGN_OR_RETURN(m.main_rows, r.GetU64());
      manifests.push_back(m);
    }
    std::string name = schema.name;
    PAYG_ASSIGN_OR_RETURN(
        auto table, Table::OpenExisting(std::move(schema), storage_.get(),
                                        rm_.get(), manifests));
    tables_.emplace(name, std::move(table));
  }
  return Status::OK();
}

Result<Table*> ColumnStore::CreateTable(TableSchema schema) {
  if (schema.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  if (tables_.count(schema.name) > 0) {
    return Status::AlreadyExists("table " + schema.name);
  }
  std::string name = schema.name;
  auto table = std::make_unique<Table>(std::move(schema), storage_.get(),
                                       rm_.get());
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  return ptr;
}

Result<Table*> ColumnStore::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  return it->second.get();
}

Status ColumnStore::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("table " + name);
  tables_.erase(it);
  return Status::OK();
}

}  // namespace payg
