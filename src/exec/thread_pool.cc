#include "exec/thread_pool.h"

#include <string>

#include "common/macros.h"
#include "obs/trace.h"

namespace payg {

ThreadPool::ThreadPool(uint32_t threads, const char* name_prefix) {
  PAYG_ASSERT_MSG(threads > 0, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i, name = std::string(name_prefix)] {
      obs::Tracer::SetCurrentThreadName(name + "-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    PAYG_ASSERT_MSG(!shutting_down_, "submit after shutdown");
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not a predicate lambda) so the thread-safety
      // analysis sees the guarded reads under mu_.
      while (!shutting_down_ && queue_.empty()) cv_.Wait(mu_);
      // Drain remaining work on shutdown so no submitted task is lost.
      if (queue_.empty()) return;
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    fn();
  }
}

}  // namespace payg
