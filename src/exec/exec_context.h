#ifndef PAYG_EXEC_EXEC_CONTEXT_H_
#define PAYG_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"

namespace payg {

// Per-query counter set — an IoStats scoped to one query instead of the
// whole store. One query's partition workers share the context, so the
// counters are atomic; relaxed ordering is enough (they are statistics, not
// synchronization).
struct QueryStats {
  std::atomic<uint64_t> pages_pinned{0};   // page-cache pins handed out
  std::atomic<uint64_t> pages_read{0};     // physical page loads
  std::atomic<uint64_t> bytes_read{0};     // bytes of those loads
  std::atomic<uint64_t> rows_scanned{0};   // rows examined by search/filter
  std::atomic<uint64_t> index_lookups{0};  // FindRows served by an index
  std::atomic<uint64_t> vector_scans{0};   // FindRows/search via vid scan
  std::atomic<uint64_t> partitions_visited{0};
  std::atomic<uint64_t> prefetch_issued{0};  // readahead loads this query asked for
  std::atomic<uint64_t> prefetch_hits{0};    // pins served by a prefetched page
  std::atomic<uint64_t> io_batches{0};       // batched read submissions issued
  std::atomic<uint64_t> codec_native{0};     // kernels run on compressed form
  std::atomic<uint64_t> codec_fallback{0};   // kernels via decode-into-scratch
  // Page-wait decomposition, counted by PageCache::GetPage: a cold access
  // paid a physical load (page_cold_count tracks pages_read one-for-one, at
  // a different code site — profile_test cross-checks them), a hit pinned a
  // resident page. Time is the full GetPage call, so cold time includes the
  // simulated device latency plus any in-flight-prefetch wait.
  std::atomic<uint64_t> page_cold_count{0};
  std::atomic<uint64_t> page_cold_us{0};
  std::atomic<uint64_t> page_hit_count{0};
  std::atomic<uint64_t> page_hit_us{0};

  // Plain-integer copy for reporting (benchmarks, logs, tests).
  struct Snapshot {
    uint64_t pages_pinned = 0;
    uint64_t pages_read = 0;
    uint64_t bytes_read = 0;
    uint64_t rows_scanned = 0;
    uint64_t index_lookups = 0;
    uint64_t vector_scans = 0;
    uint64_t partitions_visited = 0;
    uint64_t prefetch_issued = 0;
    uint64_t prefetch_hits = 0;
    uint64_t io_batches = 0;
    uint64_t codec_native = 0;
    uint64_t codec_fallback = 0;
    uint64_t page_cold_count = 0;
    uint64_t page_cold_us = 0;
    uint64_t page_hit_count = 0;
    uint64_t page_hit_us = 0;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.pages_pinned = pages_pinned.load(std::memory_order_relaxed);
    s.pages_read = pages_read.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read.load(std::memory_order_relaxed);
    s.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
    s.index_lookups = index_lookups.load(std::memory_order_relaxed);
    s.vector_scans = vector_scans.load(std::memory_order_relaxed);
    s.partitions_visited = partitions_visited.load(std::memory_order_relaxed);
    s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.io_batches = io_batches.load(std::memory_order_relaxed);
    s.codec_native = codec_native.load(std::memory_order_relaxed);
    s.codec_fallback = codec_fallback.load(std::memory_order_relaxed);
    s.page_cold_count = page_cold_count.load(std::memory_order_relaxed);
    s.page_cold_us = page_cold_us.load(std::memory_order_relaxed);
    s.page_hit_count = page_hit_count.load(std::memory_order_relaxed);
    s.page_hit_us = page_hit_us.load(std::memory_order_relaxed);
    return s;
  }

  // Adds the snapshot to the process-wide "query.*" counters, so per-query
  // accounting also shows up in the one registry dump. The registry
  // pointers are resolved once per process (the registry never invalidates
  // them, even across ResetAll).
  static void FoldIntoRegistry(const Snapshot& s) {
    auto& reg = obs::MetricsRegistry::Global();
    static obs::Counter* pages_pinned = reg.counter("query.pages_pinned");
    static obs::Counter* pages_read = reg.counter("query.pages_read");
    static obs::Counter* bytes_read = reg.counter("query.bytes_read");
    static obs::Counter* rows_scanned = reg.counter("query.rows_scanned");
    static obs::Counter* index_lookups = reg.counter("query.index_lookups");
    static obs::Counter* vector_scans = reg.counter("query.vector_scans");
    static obs::Counter* partitions_visited =
        reg.counter("query.partitions_visited");
    static obs::Counter* prefetch_issued =
        reg.counter("query.prefetch_issued");
    static obs::Counter* prefetch_hits = reg.counter("query.prefetch_hits");
    static obs::Counter* io_batches = reg.counter("query.io_batches");
    static obs::Counter* codec_native = reg.counter("query.codec_native");
    static obs::Counter* codec_fallback =
        reg.counter("query.codec_fallback");
    static obs::Counter* page_cold_count =
        reg.counter("query.page_cold_count");
    static obs::Counter* page_cold_us = reg.counter("query.page_cold_us");
    static obs::Counter* page_hit_count = reg.counter("query.page_hit_count");
    static obs::Counter* page_hit_us = reg.counter("query.page_hit_us");
    pages_pinned->Add(s.pages_pinned);
    pages_read->Add(s.pages_read);
    bytes_read->Add(s.bytes_read);
    rows_scanned->Add(s.rows_scanned);
    index_lookups->Add(s.index_lookups);
    vector_scans->Add(s.vector_scans);
    partitions_visited->Add(s.partitions_visited);
    prefetch_issued->Add(s.prefetch_issued);
    prefetch_hits->Add(s.prefetch_hits);
    io_batches->Add(s.io_batches);
    codec_native->Add(s.codec_native);
    codec_fallback->Add(s.codec_fallback);
    page_cold_count->Add(s.page_cold_count);
    page_cold_us->Add(s.page_cold_us);
    page_hit_count->Add(s.page_hit_count);
    page_hit_us->Add(s.page_hit_us);
  }
};

// Process-unique query id, minted at ExecContext construction. Id 0 is
// reserved for "no query" (trace events recorded outside any query scope).
inline uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Carried through one query end to end: Table → Partition → FragmentReader →
// paged structures → PageFile. Gives every layer a place to report work
// (QueryStats) and a deadline to respect, so a cold-partition page load can
// be attributed to — and cancelled by — the query that caused it.
//
// The context outlives every worker of its query (the executor joins them
// before the driver returns), so layers hold it by raw pointer. A null
// ExecContext* anywhere down the stack means "no accounting requested".
struct ExecContext {
  using Clock = std::chrono::steady_clock;

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  // Query end: whatever this query (or query stream — benchmarks reuse one
  // context) accounted folds into the registry exactly once.
  ~ExecContext() { QueryStats::FoldIntoRegistry(stats.snapshot()); }

  QueryStats stats;

  // Process-unique id stamped on this context's trace spans and profile.
  // A context reused across a query stream (benchmarks) keeps one id: the
  // id names the context's lifetime, the profile always describes the most
  // recent ForEach.
  const uint64_t query_id = NextQueryId();

  // Stage breakdown of the most recent executor fan-out on this context,
  // rewritten by QueryExecutor::ForEach at completion. Read it after the
  // query call returns; the executor joins its workers first, so no task
  // is still writing.
  obs::QueryProfile profile;

  // Absolute deadline; Clock::time_point::max() (the default) means none.
  Clock::time_point deadline = Clock::time_point::max();

  void SetDeadlineAfter(std::chrono::microseconds timeout) {
    deadline = Clock::now() + timeout;
  }
  bool has_deadline() const { return deadline != Clock::time_point::max(); }

  // OK while the deadline (if any) has not passed. Checked at the partition
  // fan-out and before every physical page load, so a query over many cold
  // pages stops within one page read of its deadline.
  Status CheckDeadline() const {
    if (has_deadline() && Clock::now() > deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

// Counter bump helpers tolerating the no-context case.
inline void CountPagePinned(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.pages_pinned.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountPageRead(ExecContext* ctx, uint64_t bytes) {
  if (ctx != nullptr) {
    ctx->stats.pages_read.fetch_add(1, std::memory_order_relaxed);
    ctx->stats.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
}
inline void CountRowsScanned(ExecContext* ctx, uint64_t rows) {
  if (ctx != nullptr) {
    ctx->stats.rows_scanned.fetch_add(rows, std::memory_order_relaxed);
  }
}
inline void CountIndexLookup(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.index_lookups.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountVectorScan(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.vector_scans.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountPartitionVisited(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.partitions_visited.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountPrefetchIssued(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountPrefetchHit(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountIoBatch(ExecContext* ctx) {
  if (ctx != nullptr) {
    ctx->stats.io_batches.fetch_add(1, std::memory_order_relaxed);
  }
}
inline void CountCodecKernels(ExecContext* ctx, uint64_t native,
                              uint64_t fallback) {
  if (ctx != nullptr) {
    ctx->stats.codec_native.fetch_add(native, std::memory_order_relaxed);
    ctx->stats.codec_fallback.fetch_add(fallback, std::memory_order_relaxed);
  }
}
inline void CountPageAccess(ExecContext* ctx, bool cold, uint64_t micros) {
  if (ctx != nullptr) {
    if (cold) {
      ctx->stats.page_cold_count.fetch_add(1, std::memory_order_relaxed);
      ctx->stats.page_cold_us.fetch_add(micros, std::memory_order_relaxed);
    } else {
      ctx->stats.page_hit_count.fetch_add(1, std::memory_order_relaxed);
      ctx->stats.page_hit_us.fetch_add(micros, std::memory_order_relaxed);
    }
  }
}

}  // namespace payg

#endif  // PAYG_EXEC_EXEC_CONTEXT_H_
