#ifndef PAYG_EXEC_THREAD_POOL_H_
#define PAYG_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace payg {

// Fixed-size thread pool with one shared FIFO queue — deliberately no work
// stealing: query tasks are per-partition and coarse, so a single queue
// keeps the scheduling deterministic to reason about and the implementation
// small. Workers live for the lifetime of the pool.
class ThreadPool {
 public:
  // `name_prefix` labels the workers in trace dumps ("<prefix>-<k>");
  // it does not affect scheduling.
  explicit ThreadPool(uint32_t threads, const char* name_prefix = "worker");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution by some worker. Never blocks (unbounded
  // queue); tasks run in submission order per worker pick-up.
  void Submit(std::function<void()> fn);

  uint32_t size() const { return static_cast<uint32_t>(workers_.size()); }

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutting_down_ GUARDED_BY(mu_) = false;
  // Written only in the constructor, joined in the destructor; no lock.
  std::vector<std::thread> workers_;
};

}  // namespace payg

#endif  // PAYG_EXEC_THREAD_POOL_H_
