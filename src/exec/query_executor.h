#ifndef PAYG_EXEC_QUERY_EXECUTOR_H_
#define PAYG_EXEC_QUERY_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace payg {

// Configuration of the partition-parallel execution layer.
struct ExecOptions {
  // Number of pool workers a query may fan out to. 0 keeps the historical
  // serial partition loop (bit-for-bit reproducible paper figures, no
  // threads created at all).
  uint32_t worker_threads = 0;
};

// Fans per-partition work of one query out over a fixed thread pool and
// joins it. The executor is shared by all queries of a table; each ForEach
// call is one query's partition loop.
//
// Determinism contract: task i writes only to slot i of caller-owned output
// vectors, so merging slots in index order reproduces the serial loop's
// output byte for byte regardless of worker interleaving.
class QueryExecutor {
 public:
  explicit QueryExecutor(const ExecOptions& options);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  const ExecOptions& options() const { return options_; }
  bool parallel() const { return pool_ != nullptr; }

  // Runs task(i) for every i in [0, n), on the pool when one exists, inline
  // otherwise. The query's deadline (ctx may be null) is checked before each
  // task starts. Serial mode stops at the first error exactly like the old
  // partition loops; parallel mode joins everything and reports the first
  // non-OK status in index order.
  Status ForEach(ExecContext* ctx, size_t n,
                 const std::function<Status(size_t)>& task);

 private:
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  // Registry mirrors: every ForEach is one query's partition loop, so its
  // wall clock is the engine-side query latency.
  obs::Counter* m_queries_;
  obs::Counter* m_deadline_exceeded_;
  obs::Histogram* m_query_latency_us_;
  obs::Histogram* m_queue_wait_us_;
};

}  // namespace payg

#endif  // PAYG_EXEC_QUERY_EXECUTOR_H_
