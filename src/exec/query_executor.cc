#include "exec/query_executor.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/macros.h"

namespace payg {

QueryExecutor::QueryExecutor(const ExecOptions& options) : options_(options) {
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
}

QueryExecutor::~QueryExecutor() = default;

Status QueryExecutor::ForEach(ExecContext* ctx, size_t n,
                              const std::function<Status(size_t)>& task) {
  auto run = [&](size_t i) -> Status {
    if (ctx != nullptr) {
      PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
    }
    return task(i);
  };

  // A single partition gains nothing from the pool; running it inline also
  // keeps single-partition tables free of cross-thread handoffs.
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      PAYG_RETURN_IF_ERROR(run(i));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(n);
  std::atomic<size_t> remaining{n};
  std::mutex mu;
  std::condition_variable cv;
  for (size_t i = 0; i < n; ++i) {
    pool_->Submit([&, i] {
      statuses[i] = run(i);
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return remaining.load() == 0; });
  }
  for (Status& s : statuses) {
    PAYG_RETURN_IF_ERROR(std::move(s));
  }
  return Status::OK();
}

}  // namespace payg
