#include "exec/query_executor.h"

#include <atomic>
#include <chrono>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace payg {

QueryExecutor::QueryExecutor(const ExecOptions& options) : options_(options) {
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  auto& reg = obs::MetricsRegistry::Global();
  m_queries_ = reg.counter("exec.queries");
  m_deadline_exceeded_ = reg.counter("exec.deadline_exceeded");
  m_query_latency_us_ = reg.histogram("exec.query.latency_us");
  m_queue_wait_us_ = reg.histogram("exec.queue_wait_us");
}

QueryExecutor::~QueryExecutor() = default;

Status QueryExecutor::ForEach(ExecContext* ctx, size_t n,
                              const std::function<Status(size_t)>& task) {
  obs::TraceSpan query_span("exec", "query", n);
  Stopwatch timer;
  m_queries_->Inc();

  auto run = [&](size_t i) -> Status {
    obs::TraceSpan span("exec", "partition", i);
    if (ctx != nullptr) {
      PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
    }
    return task(i);
  };

  // One exit point so latency and the deadline-exceeded count cover serial
  // and parallel mode alike.
  auto finish = [&](Status s) -> Status {
    m_query_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
    if (s.IsDeadlineExceeded()) m_deadline_exceeded_->Inc();
    return s;
  };

  // A single partition gains nothing from the pool; running it inline also
  // keeps single-partition tables free of cross-thread handoffs.
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      Status s = run(i);
      if (!s.ok()) return finish(std::move(s));
    }
    return finish(Status::OK());
  }

  std::vector<Status> statuses(n);
  std::atomic<size_t> remaining{n};
  Mutex mu;
  CondVar cv;
  for (size_t i = 0; i < n; ++i) {
    const auto submitted = std::chrono::steady_clock::now();
    pool_->Submit([&, i, submitted] {
      m_queue_wait_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - submitted)
              .count()));
      statuses[i] = run(i);
      if (remaining.fetch_sub(1) == 1) {
        // Empty critical section on purpose: pairs the notify with the
        // waiter's lock so the wake can't be lost between its check of
        // `remaining` and its wait.
        MutexLock lock(mu);
        cv.NotifyOne();
      }
    });
  }
  {
    MutexLock lock(mu);
    while (remaining.load() != 0) cv.Wait(mu);
  }
  for (Status& s : statuses) {
    if (!s.ok()) return finish(std::move(s));
  }
  return finish(Status::OK());
}

}  // namespace payg
