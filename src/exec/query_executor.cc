#include "exec/query_executor.h"

#include <atomic>
#include <chrono>
#include <vector>

#include "common/macros.h"
#include "common/thread_annotations.h"
#include "common/stopwatch.h"
#include "obs/slow_query_ring.h"
#include "obs/trace.h"

namespace payg {

QueryExecutor::QueryExecutor(const ExecOptions& options) : options_(options) {
  if (options_.worker_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads,
                                         "exec-worker");
  }
  auto& reg = obs::MetricsRegistry::Global();
  m_queries_ = reg.counter("exec.queries");
  m_deadline_exceeded_ = reg.counter("exec.deadline_exceeded");
  m_query_latency_us_ = reg.histogram("exec.query.latency_us");
  m_queue_wait_us_ = reg.histogram("exec.queue_wait_us");
}

QueryExecutor::~QueryExecutor() = default;

Status QueryExecutor::ForEach(ExecContext* ctx, size_t n,
                              const std::function<Status(size_t)>& task) {
  const uint64_t qid = ctx != nullptr ? ctx->query_id : 0;
  // Install the query id on this thread before the query span opens, so the
  // span itself — and everything beneath it on the serial path — carries it.
  obs::TraceTaskScope query_scope(qid);
  obs::TraceSpan query_span("exec", "query", qid);
  Stopwatch timer;
  m_queries_->Inc();

  // Profile capture: stage counters accumulate locally, page/row/codec
  // numbers come from the ExecContext counter deltas (benchmarks reuse one
  // context across a whole query stream, so absolute values would smear
  // queries together).
  obs::QueryProfile* prof = ctx != nullptr ? &ctx->profile : nullptr;
  QueryStats::Snapshot s0;
  if (ctx != nullptr) s0 = ctx->stats.snapshot();
  if (prof != nullptr) {
    *prof = obs::QueryProfile();
    prof->query_id = qid;
    prof->partitions = n;
    prof->partition_us.assign(n, 0);
  }
  std::atomic<uint64_t> queue_wait_us{0};
  std::atomic<uint64_t> scan_us{0};

  auto run = [&](size_t i) -> Status {
    obs::TraceSpan span("exec", "partition", i);
    Stopwatch part;
    Status s;
    if (ctx != nullptr) s = ctx->CheckDeadline();
    if (s.ok()) s = task(i);
    const auto us = static_cast<uint64_t>(part.ElapsedMicros());
    // Determinism contract: task i writes only slot i.
    if (prof != nullptr) prof->partition_us[i] = us;
    scan_us.fetch_add(us, std::memory_order_relaxed);
    return s;
  };

  // One exit point so latency, the deadline-exceeded count and the profile
  // cover serial and parallel mode alike.
  auto finish = [&](Status s) -> Status {
    const auto wall = static_cast<uint64_t>(timer.ElapsedMicros());
    m_query_latency_us_->Record(wall);
    if (s.IsDeadlineExceeded()) m_deadline_exceeded_->Inc();
    if (prof != nullptr) {
      const QueryStats::Snapshot s1 = ctx->stats.snapshot();
      prof->wall_us = wall;
      prof->queue_wait_us = queue_wait_us.load(std::memory_order_relaxed);
      prof->scan_us = scan_us.load(std::memory_order_relaxed);
      prof->page_cold_count = s1.page_cold_count - s0.page_cold_count;
      prof->page_cold_us = s1.page_cold_us - s0.page_cold_us;
      prof->page_hit_count = s1.page_hit_count - s0.page_hit_count;
      prof->page_hit_us = s1.page_hit_us - s0.page_hit_us;
      prof->bytes_read = s1.bytes_read - s0.bytes_read;
      prof->rows_scanned = s1.rows_scanned - s0.rows_scanned;
      prof->index_lookups = s1.index_lookups - s0.index_lookups;
      prof->vector_scans = s1.vector_scans - s0.vector_scans;
      prof->codec_native = s1.codec_native - s0.codec_native;
      prof->codec_fallback = s1.codec_fallback - s0.codec_fallback;
      prof->prefetch_issued = s1.prefetch_issued - s0.prefetch_issued;
      prof->prefetch_hits = s1.prefetch_hits - s0.prefetch_hits;
      prof->deadline_exceeded = s.IsDeadlineExceeded();
      obs::SlowQueryRing::Global().Observe(*prof);
    }
    return s;
  };

  // A single partition gains nothing from the pool; running it inline also
  // keeps single-partition tables free of cross-thread handoffs.
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      Status s = run(i);
      if (!s.ok()) return finish(std::move(s));
    }
    return finish(Status::OK());
  }

  const uint64_t query_span_id = query_span.span_id();
  std::vector<Status> statuses(n);
  std::atomic<size_t> remaining{n};
  Mutex mu;
  CondVar cv;
  for (size_t i = 0; i < n; ++i) {
    const auto submitted = std::chrono::steady_clock::now();
    pool_->Submit([&, i, submitted] {
      const auto waited = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - submitted)
              .count());
      m_queue_wait_us_->Record(waited);
      queue_wait_us.fetch_add(waited, std::memory_order_relaxed);
      // Worker-side trace context: partition (and page-read) spans on this
      // thread parent under the query span and carry its query id.
      obs::TraceTaskScope task_scope(qid, query_span_id);
      statuses[i] = run(i);
      if (remaining.fetch_sub(1) == 1) {
        // Empty critical section on purpose: pairs the notify with the
        // waiter's lock so the wake can't be lost between its check of
        // `remaining` and its wait.
        MutexLock lock(mu);
        cv.NotifyOne();
      }
    });
  }
  {
    MutexLock lock(mu);
    while (remaining.load() != 0) cv.Wait(mu);
  }
  for (Status& s : statuses) {
    if (!s.ok()) return finish(std::move(s));
  }
  return finish(Status::OK());
}

}  // namespace payg
