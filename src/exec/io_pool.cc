#include "exec/io_pool.h"

#include "common/env.h"

namespace payg {

ThreadPool* SharedIoPool() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<uint32_t>(
          EnvLong("PAYG_PREFETCH_THREADS", 1, 16, /*fallback=*/2)),
      "io-pool");
  return pool;
}

}  // namespace payg
