#include "exec/io_pool.h"

#include <cstdlib>

namespace payg {

namespace {

uint32_t IoPoolThreads() {
  const char* env = std::getenv("PAYG_PREFETCH_THREADS");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 16) return static_cast<uint32_t>(v);
  }
  return 2;
}

}  // namespace

ThreadPool* SharedIoPool() {
  static ThreadPool* pool = new ThreadPool(IoPoolThreads());
  return pool;
}

}  // namespace payg
