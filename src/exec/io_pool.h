#ifndef PAYG_EXEC_IO_POOL_H_
#define PAYG_EXEC_IO_POOL_H_

#include "exec/thread_pool.h"

namespace payg {

// Process-wide background I/O pool used for page readahead (PageCache::
// PrefetchRange). Each task is one batched submission — the thread acts as
// submitter and reaper of its own I/O batch (its io_uring ring is
// thread_local), publishing pages into the cache as completions arrive —
// rather than one blocking worker per page, so the pool stays deliberately
// tiny: parallelism across pages comes from queue depth inside a batch, the
// pool only overlaps consecutive batches with decode. Intentionally
// separate from the query executor's pool so prefetch work can never starve
// query tasks (or vice versa). Sized by PAYG_PREFETCH_THREADS (default 2,
// clamped to [1, 16]). Created on first use and intentionally leaked:
// prefetch tasks may still be draining at process exit, and joining them
// from a static destructor would race with other static teardown.
ThreadPool* SharedIoPool();

}  // namespace payg

#endif  // PAYG_EXEC_IO_POOL_H_
