#ifndef PAYG_ENCODING_SIMD_DISPATCH_H_
#define PAYG_ENCODING_SIMD_DISPATCH_H_

#include <cstdint>
#include <vector>

#include "encoding/types.h"

namespace payg {

// Runtime-selected SIMD tier for the packed decode/scan kernels (§3.1.1's
// vectorized n-bit decode). Detection runs once per process, at the first
// packed kernel call, via cpuid:
//
//   * kAvx2   — 8 values per step (shuffle+variable-shift unpack, or 64-bit
//               gathers for widths 26..32)
//   * kSse42  — 8 values per step in two 128-bit halves (shuffle +
//               multiply-shift unpack; widths 26..32 stay scalar)
//   * kScalar — the portable sliding-window kernels; always available
//
// `PAYG_FORCE_SCALAR=1` pins the scalar tier regardless of the CPU (CI runs
// the whole suite this way to keep the fallback green). `PAYG_SIMD=
// scalar|sse42|avx2` selects a specific tier, clamped to what the CPU and
// the build support.
enum class SimdLevel : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

// Per-bit-width kernel table of one tier. Index by the packed bit width
// (1..32); entry 0 is unused. The `bits` parameter of the public kernels is
// burned into each entry at compile time, which is what lets every width get
// its own specialized unpack.
struct PackedKernels {
  using MGetFn = void (*)(const uint64_t* words, uint64_t from, uint64_t to,
                          uint32_t* out);
  using SearchEqFn = void (*)(const uint64_t* words, uint64_t from,
                              uint64_t to, uint64_t vid, RowPos base,
                              std::vector<RowPos>* out);
  using SearchRangeFn = void (*)(const uint64_t* words, uint64_t from,
                                 uint64_t to, uint64_t lo, uint64_t hi,
                                 RowPos base, std::vector<RowPos>* out);
  // sorted_vids is guaranteed non-empty (the dispatching wrapper handles the
  // empty set).
  using SearchInFn = void (*)(const uint64_t* words, uint64_t from,
                              uint64_t to, const std::vector<ValueId>& vids,
                              RowPos base, std::vector<RowPos>* out);

  MGetFn mget[33];
  SearchEqFn search_eq[33];
  SearchRangeFn search_range[33];
  SearchInFn search_in[33];
};

// Kernel table for `level`, or nullptr when the CPU or the build does not
// provide that tier (kScalar never returns null). Tests use this to compare
// every available tier against the scalar reference in one process.
const PackedKernels* KernelsFor(SimdLevel level);

// The tier the public PackedMGet / PackedSearch* entry points dispatch to.
SimdLevel ActiveSimdLevel();
const PackedKernels& ActiveKernels();

}  // namespace payg

#endif  // PAYG_ENCODING_SIMD_DISPATCH_H_
