#include "encoding/simd_dispatch.h"

#include <cstring>
#include <utility>

#include "common/env.h"
#include "encoding/bit_packing.h"

namespace payg {

// Defined in the per-ISA translation units (compiled with -mavx2 / -msse4.2
// respectively); only linked in when the build enables the tier.
#if defined(PAYG_HAVE_AVX2_TU)
const PackedKernels* GetAvx2KernelTable();
#endif
#if defined(PAYG_HAVE_SSE42_TU)
const PackedKernels* GetSse42KernelTable();
#endif

namespace {

// Scalar tier: thin per-width wrappers that burn `bits` into the entry so
// the table shape matches the SIMD tiers (whose kernels are genuinely
// specialized per width).
template <uint32_t BITS>
void MGetScalarW(const uint64_t* words, uint64_t from, uint64_t to,
                 uint32_t* out) {
  PackedMGetScalar(words, BITS, from, to, out);
}
template <uint32_t BITS>
void SearchEqScalarW(const uint64_t* words, uint64_t from, uint64_t to,
                     uint64_t vid, RowPos base, std::vector<RowPos>* out) {
  PackedSearchEqScalar(words, BITS, from, to, vid, base, out);
}
template <uint32_t BITS>
void SearchRangeScalarW(const uint64_t* words, uint64_t from, uint64_t to,
                        uint64_t lo, uint64_t hi, RowPos base,
                        std::vector<RowPos>* out) {
  PackedSearchRangeScalar(words, BITS, from, to, lo, hi, base, out);
}
template <uint32_t BITS>
void SearchInScalarW(const uint64_t* words, uint64_t from, uint64_t to,
                     const std::vector<ValueId>& vids, RowPos base,
                     std::vector<RowPos>* out) {
  PackedSearchInScalar(words, BITS, from, to, vids, base, out);
}

template <size_t... I>
PackedKernels MakeScalarTable(std::index_sequence<I...>) {
  PackedKernels k{};
  ((k.mget[I + 1] = &MGetScalarW<I + 1>), ...);
  ((k.search_eq[I + 1] = &SearchEqScalarW<I + 1>), ...);
  ((k.search_range[I + 1] = &SearchRangeScalarW<I + 1>), ...);
  ((k.search_in[I + 1] = &SearchInScalarW<I + 1>), ...);
  return k;
}

const PackedKernels& ScalarTable() {
  static const PackedKernels table =
      MakeScalarTable(std::make_index_sequence<32>{});
  return table;
}

SimdLevel ChooseActiveLevel() {
  if (EnvFlag("PAYG_FORCE_SCALAR")) return SimdLevel::kScalar;
  const char* pick = EnvRaw("PAYG_SIMD");
  if (pick != nullptr) {
    if (std::strcmp(pick, "scalar") == 0) return SimdLevel::kScalar;
    if (std::strcmp(pick, "sse42") == 0 &&
        KernelsFor(SimdLevel::kSse42) != nullptr) {
      return SimdLevel::kSse42;
    }
    if (std::strcmp(pick, "avx2") == 0 &&
        KernelsFor(SimdLevel::kAvx2) != nullptr) {
      return SimdLevel::kAvx2;
    }
    // Unknown or unsupported request: fall through to auto-detection.
  }
  if (KernelsFor(SimdLevel::kAvx2) != nullptr) return SimdLevel::kAvx2;
  if (KernelsFor(SimdLevel::kSse42) != nullptr) return SimdLevel::kSse42;
  return SimdLevel::kScalar;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse42";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const PackedKernels* KernelsFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &ScalarTable();
    case SimdLevel::kSse42:
#if defined(PAYG_HAVE_SSE42_TU)
      if (__builtin_cpu_supports("sse4.2")) return GetSse42KernelTable();
#endif
      return nullptr;
    case SimdLevel::kAvx2:
#if defined(PAYG_HAVE_AVX2_TU)
      if (__builtin_cpu_supports("avx2")) return GetAvx2KernelTable();
#endif
      return nullptr;
  }
  return nullptr;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ChooseActiveLevel();
  return level;
}

const PackedKernels& ActiveKernels() {
  static const PackedKernels* kernels = KernelsFor(ActiveSimdLevel());
  return *kernels;
}

}  // namespace payg
