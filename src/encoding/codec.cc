#include "encoding/codec.h"

#include <algorithm>
#include <cstring>

#include "common/bit_util.h"
#include "common/env.h"
#include "encoding/bit_packing.h"

namespace payg {

namespace {

// Payload bytes of `n` plain-packed values: whole chunks plus the spare
// word that keeps the kernels' unaligned 8-byte window inside the buffer.
uint32_t PlainPayloadBytes(uint64_t n, uint32_t bits) {
  return static_cast<uint32_t>(CeilDiv(n, kChunkValues) * ChunkBytes(bits) +
                               sizeof(uint64_t));
}

const PackedKernels& Tier(const CodecPageView& v) {
  return v.kernels != nullptr ? *v.kernels : ActiveKernels();
}

// --- plain -----------------------------------------------------------------

ValueId PlainGet(const CodecPageView& v, uint64_t idx) {
  return static_cast<ValueId>(PackedGet(v.words, v.params.bits, idx));
}

void PlainMGet(const CodecPageView& v, uint64_t from, uint64_t to,
               uint32_t* out) {
  Tier(v).mget[v.params.bits](v.words, from, to, out);
}

void PlainSearchEq(const CodecPageView& v, uint64_t from, uint64_t to,
                   ValueId vid, RowPos base, std::vector<RowPos>* out) {
  if (vid > LowMask(v.params.bits)) return;  // wider than any stored value
  Tier(v).search_eq[v.params.bits](v.words, from, to, vid, base, out);
}

void PlainSearchRange(const CodecPageView& v, uint64_t from, uint64_t to,
                      ValueId lo, ValueId hi, RowPos base,
                      std::vector<RowPos>* out) {
  const uint64_t mask = LowMask(v.params.bits);
  if (lo > hi || lo > mask) return;
  Tier(v).search_range[v.params.bits](v.words, from, to, lo,
                                      std::min<uint64_t>(hi, mask), base, out);
}

void PlainSearchIn(const CodecPageView& v, uint64_t from, uint64_t to,
                   const std::vector<ValueId>& sorted_vids, RowPos base,
                   std::vector<RowPos>* out) {
  const uint64_t mask = LowMask(v.params.bits);
  const PackedKernels& t = Tier(v);
  if (sorted_vids.back() <= mask) {
    t.search_in[v.params.bits](v.words, from, to, sorted_vids, base, out);
    return;
  }
  std::vector<ValueId> trimmed(
      sorted_vids.begin(),
      std::upper_bound(sorted_vids.begin(), sorted_vids.end(),
                       static_cast<ValueId>(mask)));
  if (trimmed.empty()) return;
  t.search_in[v.params.bits](v.words, from, to, trimmed, base, out);
}

// --- FOR -------------------------------------------------------------------
// The payload is plain-packed residuals (vid - base), so every kernel is the
// plain kernel with the predicate translated into residual space and the
// decode output translated back.

ValueId ForGet(const CodecPageView& v, uint64_t idx) {
  return static_cast<ValueId>(PackedGet(v.words, v.params.bits, idx) +
                              v.params.for_base);
}

void ForMGet(const CodecPageView& v, uint64_t from, uint64_t to,
             uint32_t* out) {
  Tier(v).mget[v.params.bits](v.words, from, to, out);
  const ValueId base = v.params.for_base;
  for (uint64_t i = 0; i < to - from; ++i) out[i] += base;
}

void ForSearchEq(const CodecPageView& v, uint64_t from, uint64_t to,
                 ValueId vid, RowPos base, std::vector<RowPos>* out) {
  if (vid < v.params.for_base) return;
  const uint64_t residual = vid - v.params.for_base;
  if (residual > LowMask(v.params.bits)) return;
  Tier(v).search_eq[v.params.bits](v.words, from, to, residual, base, out);
}

void ForSearchRange(const CodecPageView& v, uint64_t from, uint64_t to,
                    ValueId lo, ValueId hi, RowPos base,
                    std::vector<RowPos>* out) {
  if (lo > hi || hi < v.params.for_base) return;
  const uint64_t mask = LowMask(v.params.bits);
  const uint64_t rlo = lo <= v.params.for_base ? 0 : lo - v.params.for_base;
  if (rlo > mask) return;
  const uint64_t rhi = std::min<uint64_t>(hi - v.params.for_base, mask);
  Tier(v).search_range[v.params.bits](v.words, from, to, rlo, rhi, base, out);
}

void ForSearchIn(const CodecPageView& v, uint64_t from, uint64_t to,
                 const std::vector<ValueId>& sorted_vids, RowPos base,
                 std::vector<RowPos>* out) {
  // Translate the probe set into residual space: drop probes below the
  // frame base, stop at the first probe whose residual exceeds the packed
  // width (the input is sorted, so everything after it is out of frame
  // too). What survives is still sorted and unique, so the plain-tier
  // search_in kernel runs unchanged on the residual image.
  const uint64_t mask = LowMask(v.params.bits);
  const ValueId fbase = v.params.for_base;
  std::vector<ValueId> residuals;
  residuals.reserve(sorted_vids.size());
  for (ValueId vid : sorted_vids) {
    if (vid < fbase) continue;
    const uint64_t r = vid - fbase;
    if (r > mask) break;
    residuals.push_back(static_cast<ValueId>(r));
  }
  if (residuals.empty()) return;
  Tier(v).search_in[v.params.bits](v.words, from, to, residuals, base, out);
}

// --- RLE -------------------------------------------------------------------
// Page image: u32 run_ends[R] (cumulative page-local positions,
// run_ends[R-1] == n), padded to 8 bytes, then the R run values packed at
// the plain width (+1 spare word). aux2 == kRleEscapeAux marks a page that
// was stored plain because its run catalog would not fit.

struct RleImage {
  const uint32_t* ends;
  const uint64_t* vals;
  uint32_t runs;
};

RleImage RleOf(const CodecPageView& v) {
  const uint32_t runs = v.aux2;
  return RleImage{reinterpret_cast<const uint32_t*>(v.words),
                  v.words + AlignUp(uint64_t{4} * runs, 8) / 8, runs};
}

// Index of the run containing page-local position `pos`.
uint32_t RleRunOf(const RleImage& r, uint64_t pos) {
  return static_cast<uint32_t>(
      std::upper_bound(r.ends, r.ends + r.runs, static_cast<uint32_t>(pos)) -
      r.ends);
}

ValueId RleGet(const CodecPageView& v, uint64_t idx) {
  if (v.aux2 == kRleEscapeAux) return PlainGet(v, idx);
  const RleImage r = RleOf(v);
  return static_cast<ValueId>(
      PackedGet(r.vals, v.params.bits, RleRunOf(r, idx)));
}

void RleMGet(const CodecPageView& v, uint64_t from, uint64_t to,
             uint32_t* out) {
  if (v.aux2 == kRleEscapeAux) {
    PlainMGet(v, from, to, out);
    return;
  }
  if (from >= to) return;
  const RleImage r = RleOf(v);
  uint64_t pos = from;
  for (uint32_t run = RleRunOf(r, from); pos < to; ++run) {
    const uint64_t end = std::min<uint64_t>(r.ends[run], to);
    const uint32_t val =
        static_cast<uint32_t>(PackedGet(r.vals, v.params.bits, run));
    std::fill(out + (pos - from), out + (end - from), val);
    pos = end;
  }
}

// Run-skipping search: touch each overlapping run once, append whole
// position ranges for matching runs (O(runs), not O(rows)).
template <typename Match>
void RleScanRuns(const CodecPageView& v, uint64_t from, uint64_t to,
                 RowPos base, std::vector<RowPos>* out, Match match) {
  const RleImage r = RleOf(v);
  uint64_t pos = from;
  for (uint32_t run = RleRunOf(r, from); pos < to; ++run) {
    const uint64_t end = std::min<uint64_t>(r.ends[run], to);
    if (match(PackedGet(r.vals, v.params.bits, run))) {
      for (uint64_t p = pos; p < end; ++p) {
        out->push_back(base + static_cast<RowPos>(p - from));
      }
    }
    pos = end;
  }
}

void RleSearchEq(const CodecPageView& v, uint64_t from, uint64_t to,
                 ValueId vid, RowPos base, std::vector<RowPos>* out) {
  if (v.aux2 == kRleEscapeAux) {
    PlainSearchEq(v, from, to, vid, base, out);
    return;
  }
  if (from >= to) return;
  RleScanRuns(v, from, to, base, out,
              [vid](uint64_t x) { return x == vid; });
}

void RleSearchRange(const CodecPageView& v, uint64_t from, uint64_t to,
                    ValueId lo, ValueId hi, RowPos base,
                    std::vector<RowPos>* out) {
  if (v.aux2 == kRleEscapeAux) {
    PlainSearchRange(v, from, to, lo, hi, base, out);
    return;
  }
  if (from >= to || lo > hi) return;
  RleScanRuns(v, from, to, base, out,
              [lo, hi](uint64_t x) { return x >= lo && x <= hi; });
}

void RleSearchIn(const CodecPageView& v, uint64_t from, uint64_t to,
                 const std::vector<ValueId>& sorted_vids, RowPos base,
                 std::vector<RowPos>* out) {
  if (v.aux2 == kRleEscapeAux) {
    PlainSearchIn(v, from, to, sorted_vids, base, out);
    return;
  }
  if (from >= to) return;
  // Run-catalog skipping: one binary search of the probe set per run, not
  // per row — O(runs × log probes) regardless of run length.
  RleScanRuns(v, from, to, base, out, [&sorted_vids](uint64_t x) {
    return std::binary_search(sorted_vids.begin(), sorted_vids.end(),
                              static_cast<ValueId>(x));
  });
}

// --- fallback --------------------------------------------------------------
// Decode the range into scratch with the codec's native mget and run the
// predicate scalar. Kept as the production path for any future codec row
// that lands without a full kernel set; every (codec, kernel) pair of the
// current cascade is native.

template <typename Pred>
void FallbackFilter(CodecId id, const CodecPageView& v, uint64_t from,
                    uint64_t to, RowPos base, std::vector<RowPos>* out,
                    CodecStats* stats, Pred pred) {
  std::vector<ValueId> local;
  std::vector<ValueId>& scratch = stats != nullptr ? stats->scratch : local;
  if (scratch.size() < to - from) scratch.resize(to - from);
  CodecKernelTable(id).mget(v, from, to, scratch.data());
  for (uint64_t i = 0; i < to - from; ++i) {
    if (pred(scratch[i])) out->push_back(base + static_cast<RowPos>(i));
  }
}

}  // namespace

const char* CodecName(CodecId id) {
  switch (id) {
    case CodecId::kPlain:
      return "plain";
    case CodecId::kFor:
      return "for";
    case CodecId::kRle:
      return "rle";
  }
  return "unknown";
}

CodecForce ForcedCodec() {
  static const CodecForce force = [] {
    const char* s = EnvRaw("PAYG_FORCE_CODEC");
    if (s == nullptr) return CodecForce::kAuto;
    if (std::strcmp(s, "plain") == 0) return CodecForce::kPlain;
    if (std::strcmp(s, "for") == 0) return CodecForce::kFor;
    if (std::strcmp(s, "rle") == 0) return CodecForce::kRle;
    return CodecForce::kAuto;  // "auto" and unrecognized values
  }();
  return force;
}

uint64_t CodecSampleRows() {
  static const long rows =
      EnvLong("PAYG_CODEC_SAMPLE_ROWS", 64, 1L << 30, 65536);
  return static_cast<uint64_t>(rows);
}

CodecChoice MakeCodecChoice(CodecId id, const std::vector<ValueId>& vids) {
  ValueId mn = 0, mx = 0;
  if (!vids.empty()) {
    mn = kInvalidValueId;
    for (ValueId v : vids) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  CodecChoice choice;
  choice.id = id;
  switch (id) {
    case CodecId::kPlain:
    case CodecId::kRle:
      choice.params.bits = BitsNeeded(mx);
      break;
    case CodecId::kFor:
      choice.params.for_base = mn;
      choice.params.bits = BitsNeeded(mx - mn);
      break;
  }
  return choice;
}

CodecChoice ChooseCodec(const std::vector<ValueId>& vids) {
  if (vids.empty()) return MakeCodecChoice(CodecId::kPlain, vids);
  ValueId mn = kInvalidValueId, mx = 0;
  for (ValueId v : vids) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  const uint32_t bits_plain = BitsNeeded(mx);
  const uint32_t bits_for = BitsNeeded(mx - mn);

  // Run density from sampled adjacent pairs (PAYG_CODEC_SAMPLE_ROWS caps
  // the sample; min/max above are exact — the FOR base must be the true
  // minimum or residuals would underflow).
  const uint64_t pairs = vids.size() - 1;
  const uint64_t sample = std::min(pairs, CodecSampleRows());
  double runs_per_row = 1.0;
  if (sample > 0) {
    const uint64_t stride = pairs / sample;
    uint64_t transitions = 0, seen = 0;
    for (uint64_t i = 0; seen < sample && i < pairs; i += stride, ++seen) {
      transitions += vids[i] != vids[i + 1] ? 1 : 0;
    }
    runs_per_row = static_cast<double>(transitions + 1) /
                   static_cast<double>(seen + 1);
  }

  // Cost = effective bits per row × relative scan cost. Plain and FOR scan
  // every row (factor 1); RLE touches ~one catalog entry per run, modeled
  // as a small constant plus the run density. Strict less-than keeps plain
  // the winner on ties (compatibility default).
  const double cost_plain = static_cast<double>(bits_plain);
  const double cost_for = static_cast<double>(bits_for) + 0.01;
  const double cost_rle =
      static_cast<double>(bits_plain) * (0.1 + 4.0 * runs_per_row) + 0.01;

  CodecId best = CodecId::kPlain;
  double best_cost = cost_plain;
  if (cost_for < best_cost) {
    best = CodecId::kFor;
    best_cost = cost_for;
  }
  if (cost_rle < best_cost) best = CodecId::kRle;
  return MakeCodecChoice(best, vids);
}

CodecChoice ResolveCodec(CodecForce force, const std::vector<ValueId>& vids) {
  if (force == CodecForce::kAuto) force = ForcedCodec();
  if (force == CodecForce::kAuto) return ChooseCodec(vids);
  return MakeCodecChoice(static_cast<CodecId>(static_cast<int>(force)), vids);
}

uint64_t CodecValuesPerPage(uint32_t payload_bytes,
                            const CodecChoice& choice) {
  // Whole chunks at the packed width, one spare word for the kernels'
  // 8-byte window overread. RLE uses the plain capacity so its escape
  // encoding always fits and row→page mapping matches plain exactly.
  return (payload_bytes - sizeof(uint64_t)) / ChunkBytes(choice.params.bits) *
         kChunkValues;
}

uint32_t CodecEncodePage(const CodecChoice& choice, const ValueId* vids,
                         uint64_t n, uint8_t* payload, uint32_t capacity,
                         uint32_t* aux2) {
  std::memset(payload, 0, capacity);
  *aux2 = 0;
  uint64_t* words = reinterpret_cast<uint64_t*>(payload);
  const uint32_t bits = choice.params.bits;

  if (choice.id == CodecId::kRle) {
    uint64_t runs = 0;
    for (uint64_t i = 0; i < n; ++i) {
      if (i == 0 || vids[i] != vids[i - 1]) ++runs;
    }
    const uint64_t catalog_bytes = AlignUp(4 * runs, 8);
    const uint64_t vals_bytes = (CeilDiv(runs * bits, 64) + 1) * 8;
    if (catalog_bytes + vals_bytes <= capacity) {
      uint32_t* ends = reinterpret_cast<uint32_t*>(payload);
      uint64_t* vals = words + catalog_bytes / 8;
      uint32_t run = 0;
      for (uint64_t i = 0; i < n; ++i) {
        if (i == 0 || vids[i] != vids[i - 1]) {
          PackedSet(vals, bits, run, vids[i]);
          ++run;
        }
        ends[run - 1] = static_cast<uint32_t>(i + 1);
      }
      *aux2 = static_cast<uint32_t>(runs);
      return static_cast<uint32_t>(catalog_bytes + vals_bytes);
    }
    *aux2 = kRleEscapeAux;  // catalog too dense: store the page plain
    for (uint64_t i = 0; i < n; ++i) PackedSet(words, bits, i, vids[i]);
    return PlainPayloadBytes(n, bits);
  }

  const ValueId base =
      choice.id == CodecId::kFor ? choice.params.for_base : 0;
  for (uint64_t i = 0; i < n; ++i) {
    PackedSet(words, bits, i, vids[i] - base);
  }
  return PlainPayloadBytes(n, bits);
}

Status CodecValidatePage(CodecId id, const CodecPageView& v,
                         uint32_t payload_size) {
  if (v.params.bits < 1 || v.params.bits > 32) {
    return Status::Corruption("codec page: bits out of range [1, 32]");
  }
  if (id == CodecId::kRle && v.aux2 != kRleEscapeAux) {
    const uint64_t runs = v.aux2;
    if ((runs == 0) != (v.n == 0)) {
      return Status::Corruption(
          "rle page: run count and row count disagree about emptiness");
    }
    if (runs > v.n) {
      return Status::Corruption("rle page: more runs than rows");
    }
    const uint64_t catalog_bytes = AlignUp(uint64_t{4} * runs, 8);
    const uint64_t vals_bytes = (CeilDiv(runs * v.params.bits, 64) + 1) * 8;
    if (catalog_bytes + vals_bytes > payload_size) {
      return Status::Corruption("rle page: run catalog overflows payload");
    }
    const uint32_t* ends = reinterpret_cast<const uint32_t*>(v.words);
    uint32_t prev = 0;
    for (uint64_t i = 0; i < runs; ++i) {
      if (ends[i] <= prev) {
        return Status::Corruption("rle page: run ends not strictly "
                                  "increasing");
      }
      prev = ends[i];
    }
    if (prev != v.n) {
      return Status::Corruption(
          "rle page: last run end does not match the page row count");
    }
    return Status::OK();
  }
  // Plain, FOR and RLE-escape images share the packed layout: n values at
  // `bits`, whole chunks, one spare word for the kernels' 8-byte window.
  // 64-bit arithmetic throughout — a hostile row count near 2^32 must not
  // wrap the byte bound it is checked against.
  if (v.n > 0xFFFFFFFFull) {
    return Status::Corruption("codec page: row count exceeds u32");
  }
  const uint64_t packed_bytes =
      CeilDiv(v.n, kChunkValues) *
          static_cast<uint64_t>(ChunkBytes(v.params.bits)) +
      sizeof(uint64_t);
  if (packed_bytes > payload_size) {
    return Status::Corruption("codec page: packed image for " +
                              std::to_string(v.n) + " values at " +
                              std::to_string(v.params.bits) +
                              " bits overflows the payload");
  }
  return Status::OK();
}

const CodecKernels& CodecKernelTable(CodecId id) {
  // The codec dimension of the (codec × kernel × tier) dispatch: each row's
  // functions resolve the tier through CodecPageView::kernels. A null entry
  // would take the decode-into-scratch fallback; every current row is
  // fully native.
  static const CodecKernels tables[kCodecCount] = {
      {PlainGet, PlainMGet, PlainSearchEq, PlainSearchRange, PlainSearchIn},
      {ForGet, ForMGet, ForSearchEq, ForSearchRange, ForSearchIn},
      {RleGet, RleMGet, RleSearchEq, RleSearchRange, RleSearchIn},
  };
  return tables[static_cast<size_t>(id)];
}

ValueId CodecGetValue(CodecId id, const CodecPageView& v, uint64_t idx) {
  return CodecKernelTable(id).get(v, idx);
}

void CodecMGet(CodecId id, const CodecPageView& v, uint64_t from, uint64_t to,
               uint32_t* out, CodecStats* stats) {
  if (from >= to) return;
  if (stats != nullptr) ++stats->native;  // mget is never table-less
  CodecKernelTable(id).mget(v, from, to, out);
}

void CodecSearchEq(CodecId id, const CodecPageView& v, uint64_t from,
                   uint64_t to, ValueId vid, RowPos base,
                   std::vector<RowPos>* out, CodecStats* stats) {
  if (from >= to) return;
  const CodecKernels& k = CodecKernelTable(id);
  if (k.search_eq != nullptr) {
    if (stats != nullptr) ++stats->native;
    k.search_eq(v, from, to, vid, base, out);
    return;
  }
  if (stats != nullptr) ++stats->fallback;
  FallbackFilter(id, v, from, to, base, out, stats,
                 [vid](ValueId x) { return x == vid; });
}

void CodecSearchRange(CodecId id, const CodecPageView& v, uint64_t from,
                      uint64_t to, ValueId lo, ValueId hi, RowPos base,
                      std::vector<RowPos>* out, CodecStats* stats) {
  if (from >= to || lo > hi) return;
  const CodecKernels& k = CodecKernelTable(id);
  if (k.search_range != nullptr) {
    if (stats != nullptr) ++stats->native;
    k.search_range(v, from, to, lo, hi, base, out);
    return;
  }
  if (stats != nullptr) ++stats->fallback;
  FallbackFilter(id, v, from, to, base, out, stats,
                 [lo, hi](ValueId x) { return x >= lo && x <= hi; });
}

void CodecSearchIn(CodecId id, const CodecPageView& v, uint64_t from,
                   uint64_t to, const std::vector<ValueId>& sorted_vids,
                   RowPos base, std::vector<RowPos>* out, CodecStats* stats) {
  if (from >= to || sorted_vids.empty()) return;
  const CodecKernels& k = CodecKernelTable(id);
  if (k.search_in != nullptr) {
    if (stats != nullptr) ++stats->native;
    k.search_in(v, from, to, sorted_vids, base, out);
    return;
  }
  if (stats != nullptr) ++stats->fallback;
  FallbackFilter(id, v, from, to, base, out, stats, [&sorted_vids](ValueId x) {
    return std::binary_search(sorted_vids.begin(), sorted_vids.end(), x);
  });
}

}  // namespace payg
