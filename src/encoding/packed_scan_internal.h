#ifndef PAYG_ENCODING_PACKED_SCAN_INTERNAL_H_
#define PAYG_ENCODING_PACKED_SCAN_INTERNAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "encoding/types.h"

// Shared internals of the packed scan kernels. Both the portable scalar
// kernels (bit_packing.cc) and the SIMD tiers (bit_packing_avx2.cc,
// bit_packing_sse42.cc) are generated from the one predicate-driven scan
// skeleton built on these pieces, so every tier answers a search with the
// same structure: decode a batch, apply the predicate, append the matching
// positions.
//
// This header is included by translation units compiled with different
// -m<isa> flags, so it must stay free of intrinsics and of anything that
// would instantiate non-trivial library templates (see AppendRows).

namespace payg::detail {

// Decodes value `idx` via two aligned word reads. Unlike the unaligned
// 8-byte-window read this never touches more than one word past the value's
// own data, and it serves every width in [1, 64 - 1]: the straddling high
// part is fetched from the next word explicitly instead of relying on the
// window to cover it. The SIMD kernels use it for their scalar head/tail,
// and PackedGet routes widths in [26, 32] through the same two-word form.
template <uint32_t BITS>
inline uint32_t GetOneAligned(const uint64_t* words, uint64_t idx) {
  const uint64_t bitpos = idx * BITS;
  const uint64_t w = bitpos >> 6;
  const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
  uint64_t v = words[w] >> shift;
  if (shift + BITS > 64) {
    v |= words[w + 1] << (64 - shift);
  }
  return static_cast<uint32_t>(v & LowMask(BITS));
}

// Out-of-line batched append (defined in bit_packing.cc, which is compiled
// without any -m<isa> flag). The SIMD translation units call this instead of
// touching std::vector themselves so that no vector<RowPos> method gets
// instantiated with AVX2/SSE4.2 codegen and then picked by the linker for
// callers running on older CPUs.
void AppendRows(std::vector<RowPos>* out, const RowPos* rows, size_t n);

// ---------------------------------------------------------------------------
// Scan predicates. Each predicate carries plain scalar state; the SIMD tiers
// wrap them with a vectorized evaluation of the same condition.
// ---------------------------------------------------------------------------

struct EqPred {
  uint64_t vid;
  bool operator()(uint64_t v) const { return v == vid; }
};

// lo <= v <= hi as the single unsigned band check (v - lo) <= (hi - lo).
struct RangePred {
  uint64_t lo;
  uint64_t band;  // hi - lo
  bool operator()(uint64_t v) const { return v - lo <= band; }
};

// v ∈ sorted set. The band check rejects most non-members before the binary
// search. The search is hand-rolled over raw pointers (not std::binary_search)
// for the same ODR reason as AppendRows.
struct InPred {
  const ValueId* vals;
  size_t n;
  uint64_t lo;
  uint64_t band;
  bool operator()(uint64_t v) const {
    if (v - lo > band) return false;
    size_t left = 0, right = n;
    while (left < right) {
      size_t mid = left + (right - left) / 2;
      if (static_cast<uint64_t>(vals[mid]) < v) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    return left < n && static_cast<uint64_t>(vals[left]) == v;
  }
};

}  // namespace payg::detail

#endif  // PAYG_ENCODING_PACKED_SCAN_INTERNAL_H_
