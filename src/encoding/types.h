#ifndef PAYG_ENCODING_TYPES_H_
#define PAYG_ENCODING_TYPES_H_

#include <cstdint>

namespace payg {

// Dictionary-assigned value identifier. Order-preserving in main fragments:
// vid order == value order.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValueId = ~ValueId{0};

// Row position within a column fragment.
using RowPos = uint32_t;
inline constexpr RowPos kInvalidRowPos = ~RowPos{0};

// Values per chunk. Chunks are the paper's unit of packing: 64 n-bit values
// always occupy exactly n 64-bit words, so a chunk is byte-exact for every n
// and no value identifier ever spans a page boundary.
inline constexpr uint32_t kChunkValues = 64;

// Words (uint64_t) occupied by one chunk of n-bit values.
inline constexpr uint32_t ChunkWords(uint32_t bits) { return bits; }

// Bytes occupied by one chunk of n-bit values.
inline constexpr uint32_t ChunkBytes(uint32_t bits) { return bits * 8; }

}  // namespace payg

#endif  // PAYG_ENCODING_TYPES_H_
