#include "encoding/string_block.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace payg {

namespace {

template <typename T>
void PutRaw(std::vector<uint8_t>* out, T v) {
  size_t off = out->size();
  out->resize(off + sizeof(T));
  std::memcpy(out->data() + off, &v, sizeof(T));
}

template <typename T>
T GetRaw(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

size_t CommonPrefix(std::string_view a, std::string_view b, size_t cap) {
  size_t n = std::min({a.size(), b.size(), cap});
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

Status StringBlockBuilder::Add(std::string_view value,
                               const OffpageWriter& write_offpage) {
  PAYG_ASSERT_MSG(!full(), "value block already holds 16 strings");
  // Prefix compression only applies within a block; the first string of a
  // block is stored in full so blocks are self-contained.
  // The prefix may not reach into the previous string's off-page portion:
  // readers reconstruct prefixes from on-page bytes only. `prev_extent_` is
  // the number of leading bytes of the previous string that are available
  // on-page (its own prefix + its on-page suffix piece).
  uint16_t prefix_len = 0;
  if (count_ > 0) {
    prefix_len = static_cast<uint16_t>(
        CommonPrefix(prev_, value, std::min<size_t>(prev_extent_, UINT16_MAX)));
  }
  std::string_view suffix = value.substr(prefix_len);

  const bool spills = suffix.size() > max_onpage_bytes_;
  const std::string_view onpage =
      spills ? suffix.substr(0, max_onpage_bytes_) : suffix;
  PutRaw<uint16_t>(&bytes_, prefix_len);
  PutRaw<uint32_t>(&bytes_, static_cast<uint32_t>(onpage.size()));
  PutRaw<uint8_t>(&bytes_, spills ? 1 : 0);
  bytes_.insert(bytes_.end(), onpage.begin(), onpage.end());

  if (spills) {
    std::string_view rest = suffix.substr(onpage.size());
    std::vector<OffpageRef> refs;
    while (!rest.empty()) {
      std::string_view piece = rest.substr(
          0, std::min<size_t>(rest.size(), offpage_piece_bytes_));
      auto r = write_offpage(piece);
      if (!r.ok()) return r.status();
      refs.push_back(*r);
      rest = rest.substr(piece.size());
    }
    PutRaw<uint16_t>(&bytes_, static_cast<uint16_t>(refs.size()));
    for (OffpageRef ref : refs) PutRaw<uint64_t>(&bytes_, ref);
    PutRaw<uint64_t>(&bytes_, suffix.size());
  }

  prev_.assign(value.data(), value.size());
  prev_extent_ = prefix_len + onpage.size();
  ++count_;
  return Status::OK();
}

std::vector<uint8_t> StringBlockBuilder::Finish() {
  std::vector<uint8_t> out;
  PutRaw<uint16_t>(&out, static_cast<uint16_t>(count_));
  out.insert(out.end(), bytes_.begin(), bytes_.end());
  bytes_.clear();
  count_ = 0;
  prev_.clear();
  prev_extent_ = 0;
  return out;
}

StringBlockReader::StringBlockReader(const uint8_t* data, size_t size)
    : data_(data), size_(size) {
  PAYG_ASSERT(size >= sizeof(uint16_t));
  count_ = GetRaw<uint16_t>(data_);
  entries_.reserve(count_);
  const uint8_t* p = data_ + sizeof(uint16_t);
  const uint8_t* end = data_ + size_;
  for (uint32_t k = 0; k < count_; ++k) {
    PAYG_ASSERT(p + 7 <= end);
    Entry e;
    e.prefix_len = GetRaw<uint16_t>(p);
    p += 2;
    e.onpage_len = GetRaw<uint32_t>(p);
    p += 4;
    uint8_t has_offpage = *p++;
    PAYG_ASSERT(p + e.onpage_len <= end);
    e.onpage = p;
    p += e.onpage_len;
    e.total_len = e.onpage_len;
    if (has_offpage != 0) {
      PAYG_ASSERT(p + 2 <= end);
      uint16_t n_ptrs = GetRaw<uint16_t>(p);
      p += 2;
      PAYG_ASSERT(p + 8ull * n_ptrs + 8 <= end);
      e.offpage.reserve(n_ptrs);
      for (uint16_t i = 0; i < n_ptrs; ++i) {
        e.offpage.push_back(GetRaw<uint64_t>(p));
        p += 8;
      }
      e.total_len = GetRaw<uint64_t>(p);
      p += 8;
    }
    entries_.push_back(std::move(e));
  }
}

Result<std::string> StringBlockReader::Materialize(
    uint32_t k, const OffpageLoader& load) const {
  PAYG_ASSERT(k < count_);
  std::string current;
  for (uint32_t i = 0; i <= k; ++i) {
    const Entry& e = entries_[i];
    current.resize(e.prefix_len);  // keep shared prefix with previous string
    current.append(reinterpret_cast<const char*>(e.onpage), e.onpage_len);
    // Off-page pieces are only fetched for the target string: intermediate
    // strings contribute nothing beyond their prefix to later entries
    // (prefixes never extend past the stored on-page portion because a
    // spilled suffix starts with max_onpage bytes on page).
    if (i == k && !e.offpage.empty()) {
      for (OffpageRef ref : e.offpage) {
        auto piece = load(ref);
        if (!piece.ok()) return piece.status();
        current += *piece;
      }
    }
  }
  return current;
}

Result<std::string> StringBlockReader::GetString(
    uint32_t k, const OffpageLoader& load) const {
  if (k >= count_) return Status::OutOfRange("block entry out of range");
  return Materialize(k, load);
}

Status StringBlockReader::Find(std::string_view value,
                               const OffpageLoader& load, uint32_t* pos,
                               bool* found) const {
  *found = false;
  std::string current;
  for (uint32_t i = 0; i < count_; ++i) {
    const Entry& e = entries_[i];
    current.resize(e.prefix_len);
    current.append(reinterpret_cast<const char*>(e.onpage), e.onpage_len);
    std::string_view candidate = current;
    int cmp;
    if (e.offpage.empty()) {
      cmp = candidate.compare(value);
    } else {
      // Large string: compare the on-page part first; only fall back to
      // incremental off-page loading when the on-page part is a prefix of
      // the probe (§3.2.2).
      std::string_view probe_head =
          value.substr(0, std::min(value.size(), candidate.size()));
      cmp = candidate.compare(probe_head);
      if (cmp == 0) {
        std::string full = current;
        for (OffpageRef ref : e.offpage) {
          auto piece = load(ref);
          if (!piece.ok()) return piece.status();
          full += *piece;
          // Early exit once the materialized part already differs.
          std::string_view head =
              value.substr(0, std::min(value.size(), full.size()));
          cmp = std::string_view(full).compare(head);
          if (cmp != 0) break;
        }
        if (cmp == 0) {
          cmp = full.size() == value.size() ? 0
                : full.size() < value.size() ? -1
                                             : 1;
        }
      }
    }
    if (cmp == 0) {
      *pos = i;
      *found = true;
      return Status::OK();
    }
    if (cmp > 0) {
      *pos = i;
      return Status::OK();
    }
  }
  *pos = count_;
  return Status::OK();
}

}  // namespace payg
