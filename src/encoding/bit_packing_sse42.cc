// SSE4.2 tier of the packed decode/scan kernels. Same structure as the AVX2
// tier (see bit_packing_avx2.cc for the layout math), but each 8-value group
// is decoded as two 128-bit halves of 4 values. SSE has no variable per-lane
// shift, so the shift is emulated with a multiply: for a 4-byte window
// holding the value at bit offset s,
//
//   ((window * 2^(7-s)) >> 7) & mask  ==  (window >> s) & mask
//
// because the multiply (mod 2^32) moves bits [s, s+25) to [7, 32) — enough
// for any width up to 25. Widths 26..32 need 8-byte windows SSE cannot
// shuffle per-lane, so they stay on the scalar kernels in this tier's table.

#include <smmintrin.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "encoding/bit_packing.h"
#include "encoding/packed_scan_internal.h"
#include "encoding/simd_dispatch.h"
#include "encoding/types.h"

namespace payg {

const PackedKernels* GetSse42KernelTable();

namespace {

using detail::GetOneAligned;

// Decode constants for half `H` (values 4H..4H+3) of an 8-value group.
template <uint32_t BITS, int H>
struct Shuffle4 {
  static_assert(BITS >= 1 && BITS <= 25);
  static constexpr uint32_t kOff = ((4 * H) * BITS) >> 3;  // load offset

  static constexpr std::array<int8_t, 16> MakeCtrl() {
    std::array<int8_t, 16> c{};
    for (int j = 0; j < 4; ++j) {
      const int b = (((4 * H + j) * static_cast<int>(BITS)) >> 3) -
                    static_cast<int>(kOff);
      for (int k = 0; k < 4; ++k) c[4 * j + k] = static_cast<int8_t>(b + k);
    }
    return c;
  }
  static constexpr std::array<uint32_t, 4> MakeMul() {
    std::array<uint32_t, 4> m{};
    for (int j = 0; j < 4; ++j) {
      const int s = ((4 * H + j) * static_cast<int>(BITS)) & 7;
      m[j] = 1u << (7 - s);
    }
    return m;
  }

  alignas(16) static constexpr std::array<int8_t, 16> kCtrl = MakeCtrl();
  alignas(16) static constexpr std::array<uint32_t, 4> kMul = MakeMul();
};

template <uint32_t BITS, int H>
inline __m128i Decode4(const uint8_t* group) {
  using C = Shuffle4<BITS, H>;
  const __m128i src = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(group + C::kOff));
  const __m128i win = _mm_shuffle_epi8(
      src, _mm_load_si128(reinterpret_cast<const __m128i*>(C::kCtrl.data())));
  const __m128i shifted = _mm_srli_epi32(
      _mm_mullo_epi32(win, _mm_load_si128(reinterpret_cast<const __m128i*>(
                               C::kMul.data()))),
      7);
  return _mm_and_si128(shifted,
                       _mm_set1_epi32(static_cast<int>(LowMask(BITS))));
}

// Same readable-region bound as the AVX2 tier: the farthest load is the
// second half's, at group byte (4*BITS>>3) spanning 16 bytes.
template <uint32_t BITS>
inline uint64_t VecLimit(uint64_t to) {
  constexpr uint64_t kLoadEnd = ((4 * BITS) >> 3) + 16;
  const uint64_t readable = (to * BITS + 7) / 8 + 8;
  if (readable < kLoadEnd) return 0;
  const uint64_t max_start = (readable - kLoadEnd) * 8 / BITS;
  const uint64_t limit = max_start + 8;
  return limit < to ? limit : to;
}

template <uint32_t BITS>
void MGetSse42(const uint64_t* words, uint64_t from, uint64_t to,
               uint32_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  uint32_t* dst = out;
  uint64_t i = from;
  const uint64_t head_end = std::min<uint64_t>(to, (from + 7) & ~7ull);
  for (; i < head_end; ++i) *dst++ = GetOneAligned<BITS>(words, i);
  const uint64_t limit = VecLimit<BITS>(to);
  for (; i + 8 <= limit; i += 8, dst += 8) {
    const uint8_t* group = bytes + (i / 8) * BITS;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst),
                     Decode4<BITS, 0>(group));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 4),
                     Decode4<BITS, 1>(group));
  }
  for (; i < to; ++i) *dst++ = GetOneAligned<BITS>(words, i);
}

struct VEq {
  static constexpr bool kVecExact = true;
  detail::EqPred s;
  __m128i target;
  explicit VEq(uint64_t vid)
      : s{vid}, target(_mm_set1_epi32(
                    static_cast<int>(static_cast<uint32_t>(vid)))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m128i Vec(__m128i v) const { return _mm_cmpeq_epi32(v, target); }
};

struct VRange {
  static constexpr bool kVecExact = true;
  detail::RangePred s;
  __m128i lo_v, band_v;
  VRange(uint64_t lo, uint64_t hi)
      : s{lo, hi - lo},
        lo_v(_mm_set1_epi32(static_cast<int>(static_cast<uint32_t>(lo)))),
        band_v(_mm_set1_epi32(
            static_cast<int>(static_cast<uint32_t>(hi - lo)))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m128i Vec(__m128i v) const {
    const __m128i sub = _mm_sub_epi32(v, lo_v);
    return _mm_cmpeq_epi32(_mm_min_epu32(sub, band_v), sub);
  }
};

struct VIn {
  static constexpr bool kVecExact = false;
  detail::InPred s;
  __m128i lo_v, band_v;
  explicit VIn(const std::vector<ValueId>& vids)
      : s{vids.data(), vids.size(), vids.front(),
          static_cast<uint64_t>(vids.back()) - vids.front()},
        lo_v(_mm_set1_epi32(static_cast<int>(vids.front()))),
        band_v(_mm_set1_epi32(static_cast<int>(vids.back() - vids.front()))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m128i Vec(__m128i v) const {
    const __m128i sub = _mm_sub_epi32(v, lo_v);
    return _mm_cmpeq_epi32(_mm_min_epu32(sub, band_v), sub);
  }
};

// Exact vectorized membership for small probe sets (see the AVX2 twin for
// the rationale): one cmpeq per pre-broadcast probe, OR-reduced, so wide
// probe bands no longer degenerate into a scalar binary search per row.
struct VInSmall {
  static constexpr bool kVecExact = true;
  static constexpr size_t kMaxProbes = 16;
  detail::InPred s;
  __m128i targets[kMaxProbes];
  size_t n;
  explicit VInSmall(const std::vector<ValueId>& vids)
      : s{vids.data(), vids.size(), vids.front(),
          static_cast<uint64_t>(vids.back()) - vids.front()},
        n(vids.size()) {
    for (size_t k = 0; k < n; ++k) {
      targets[k] = _mm_set1_epi32(static_cast<int>(vids[k]));
    }
  }
  bool scalar(uint64_t v) const { return s(v); }
  __m128i Vec(__m128i v) const {
    __m128i acc = _mm_cmpeq_epi32(v, targets[0]);
    for (size_t k = 1; k < n; ++k) {
      acc = _mm_or_si128(acc, _mm_cmpeq_epi32(v, targets[k]));
    }
    return acc;
  }
};

template <uint32_t BITS, typename VPred>
void ScanSse42(const uint64_t* words, uint64_t from, uint64_t to, RowPos base,
               std::vector<RowPos>* out, const VPred& pred) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  RowPos buf[64];
  size_t nbuf = 0;
  const auto flush = [&] {
    if (nbuf > 0) {
      detail::AppendRows(out, buf, nbuf);
      nbuf = 0;
    }
  };
  uint64_t i = from;
  const uint64_t head_end = std::min<uint64_t>(to, (from + 7) & ~7ull);
  for (; i < head_end; ++i) {
    if (pred.scalar(GetOneAligned<BITS>(words, i))) {
      buf[nbuf++] = base + static_cast<RowPos>(i - from);
    }
  }
  const uint64_t limit = VecLimit<BITS>(to);
  for (; i + 8 <= limit; i += 8) {
    const uint8_t* group = bytes + (i / 8) * BITS;
    const __m128i v0 = Decode4<BITS, 0>(group);
    const __m128i v1 = Decode4<BITS, 1>(group);
    const int m = _mm_movemask_ps(_mm_castsi128_ps(pred.Vec(v0))) |
                  (_mm_movemask_ps(_mm_castsi128_ps(pred.Vec(v1))) << 4);
    if (m == 0) continue;
    if (nbuf > 56) flush();
    unsigned mm = static_cast<unsigned>(m);
    if constexpr (VPred::kVecExact) {
      while (mm != 0) {
        const int lane = std::countr_zero(mm);
        mm &= mm - 1;
        buf[nbuf++] = base + static_cast<RowPos>(i + lane - from);
      }
    } else {
      alignas(16) uint32_t vals[8];
      _mm_store_si128(reinterpret_cast<__m128i*>(vals), v0);
      _mm_store_si128(reinterpret_cast<__m128i*>(vals + 4), v1);
      while (mm != 0) {
        const int lane = std::countr_zero(mm);
        mm &= mm - 1;
        if (pred.scalar(vals[lane])) {
          buf[nbuf++] = base + static_cast<RowPos>(i + lane - from);
        }
      }
    }
  }
  for (; i < to; ++i) {
    if (nbuf > 56) flush();
    if (pred.scalar(GetOneAligned<BITS>(words, i))) {
      buf[nbuf++] = base + static_cast<RowPos>(i - from);
    }
  }
  flush();
}

template <uint32_t BITS>
void SearchEqSse42(const uint64_t* words, uint64_t from, uint64_t to,
                   uint64_t vid, RowPos base, std::vector<RowPos>* out) {
  ScanSse42<BITS>(words, from, to, base, out, VEq(vid));
}

template <uint32_t BITS>
void SearchRangeSse42(const uint64_t* words, uint64_t from, uint64_t to,
                      uint64_t lo, uint64_t hi, RowPos base,
                      std::vector<RowPos>* out) {
  ScanSse42<BITS>(words, from, to, base, out, VRange(lo, hi));
}

template <uint32_t BITS>
void SearchInSse42(const uint64_t* words, uint64_t from, uint64_t to,
                   const std::vector<ValueId>& vids, RowPos base,
                   std::vector<RowPos>* out) {
  if (vids.size() <= VInSmall::kMaxProbes) {
    ScanSse42<BITS>(words, from, to, base, out, VInSmall(vids));
  } else {
    ScanSse42<BITS>(words, from, to, base, out, VIn(vids));
  }
}

// Widths 26..32 fall back to the scalar kernels inside this tier's table.
template <size_t... I>
PackedKernels MakeTable(std::index_sequence<I...>) {
  PackedKernels k{};
  const auto fill = [&k](auto bits_c, auto /*unused*/) {
    constexpr uint32_t kBits = decltype(bits_c)::value;
    if constexpr (kBits <= 25) {
      k.mget[kBits] = &MGetSse42<kBits>;
      k.search_eq[kBits] = &SearchEqSse42<kBits>;
      k.search_range[kBits] = &SearchRangeSse42<kBits>;
      k.search_in[kBits] = &SearchInSse42<kBits>;
    } else {
      const PackedKernels& scalar = *KernelsFor(SimdLevel::kScalar);
      k.mget[kBits] = scalar.mget[kBits];
      k.search_eq[kBits] = scalar.search_eq[kBits];
      k.search_range[kBits] = scalar.search_range[kBits];
      k.search_in[kBits] = scalar.search_in[kBits];
    }
  };
  (fill(std::integral_constant<uint32_t, I + 1>{}, 0), ...);
  return k;
}

}  // namespace

const PackedKernels* GetSse42KernelTable() {
  static const PackedKernels table = MakeTable(std::make_index_sequence<32>{});
  return &table;
}

}  // namespace payg
