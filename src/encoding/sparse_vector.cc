#include "encoding/sparse_vector.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace payg {

double SparseVector::DominantFraction(const std::vector<ValueId>& vids,
                                      ValueId* dominant) {
  *dominant = 0;
  if (vids.empty()) return 1.0;
  std::unordered_map<ValueId, uint64_t> counts;
  for (ValueId v : vids) ++counts[v];
  uint64_t best = 0;
  for (const auto& [vid, n] : counts) {
    if (n > best) {
      best = n;
      *dominant = vid;
    }
  }
  return static_cast<double>(best) / static_cast<double>(vids.size());
}

bool SparseVector::ShouldUse(const std::vector<ValueId>& vids,
                             double threshold) {
  ValueId dominant;
  return DominantFraction(vids, &dominant) >= threshold;
}

SparseVector SparseVector::Encode(const std::vector<ValueId>& vids) {
  SparseVector sv;
  sv.size_ = vids.size();
  // Only the dominant vid (out-param) matters here; the returned fraction
  // already decided ShouldUseSparse at the call site above this one.
  (void)DominantFraction(vids, &sv.dominant_);  // lint:allow(dropped-status)

  ValueId max_exception = 0;
  for (ValueId v : vids) {
    if (v != sv.dominant_) max_exception = std::max(max_exception, v);
  }
  sv.bits_ = BitsNeeded(max_exception);

  sv.bitmap_.assign(CeilDiv(vids.size(), 64), 0);
  PackedVector exceptions(sv.bits_);
  for (uint64_t i = 0; i < vids.size(); ++i) {
    if (vids[i] != sv.dominant_) {
      sv.bitmap_[i >> 6] |= uint64_t{1} << (i & 63);
      exceptions.Append(vids[i]);
    }
  }
  sv.exceptions_ = std::move(exceptions);
  sv.BuildRank();
  return sv;
}

SparseVector SparseVector::FromParts(uint64_t size, ValueId dominant,
                                     uint32_t bits,
                                     std::vector<uint64_t> exception_bitmap,
                                     PackedVector exceptions) {
  SparseVector sv;
  sv.size_ = size;
  sv.dominant_ = dominant;
  sv.bits_ = bits;
  PAYG_ASSERT(exception_bitmap.size() >= CeilDiv(size, 64));
  sv.bitmap_ = std::move(exception_bitmap);
  sv.exceptions_ = std::move(exceptions);
  sv.BuildRank();
  return sv;
}

void SparseVector::BuildRank() {
  rank_.resize(bitmap_.size());
  uint64_t running = 0;
  for (size_t w = 0; w < bitmap_.size(); ++w) {
    rank_[w] = running;
    running += static_cast<uint64_t>(std::popcount(bitmap_[w]));
  }
}

void SparseVector::MGet(uint64_t from, uint64_t to, ValueId* out) const {
  PAYG_ASSERT(from <= to && to <= size_);
  if (from == to) return;
  // Start with the dominant value everywhere, then patch exceptions by
  // walking set bits — O(range + exceptions-in-range).
  std::fill(out, out + (to - from), dominant_);
  uint64_t w = from >> 6;
  const uint64_t last_word = (to - 1) >> 6;
  uint64_t r = rank_[w];
  for (; w <= last_word; ++w) {
    uint64_t word = bitmap_[w];
    while (word != 0) {
      uint32_t b = static_cast<uint32_t>(std::countr_zero(word));
      word &= word - 1;
      uint64_t pos = (w << 6) | b;
      uint64_t rr = r++;
      if (pos < from) continue;
      if (pos >= to) return;
      out[pos - from] = static_cast<ValueId>(exceptions_.Get(rr));
    }
  }
}

void SparseVector::SearchEq(uint64_t from, uint64_t to, ValueId vid,
                            RowPos base, std::vector<RowPos>* out) const {
  SearchRange(from, to, vid, vid, base, out);
}

void SparseVector::SearchRange(uint64_t from, uint64_t to, ValueId lo,
                               ValueId hi, RowPos base,
                               std::vector<RowPos>* out) const {
  PAYG_ASSERT(from <= to && to <= size_);
  if (from == to) return;
  const bool dominant_matches = lo <= dominant_ && dominant_ <= hi;
  uint64_t w = from >> 6;
  const uint64_t last_word = (to - 1) >> 6;
  uint64_t r = rank_[w];
  for (; w <= last_word; ++w) {
    uint64_t word = bitmap_[w];
    if (dominant_matches) {
      // Zeros in this word are dominant positions: they all match. Visit
      // every position of the word, pulling exception values as needed.
      uint64_t word_begin = w << 6;
      uint64_t begin = std::max(from, word_begin);
      uint64_t end = std::min(to, word_begin + 64);
      uint64_t bits_before =
          static_cast<uint64_t>(std::popcount(
              word & ((begin & 63) == 0
                          ? 0
                          : ((uint64_t{1} << (begin & 63)) - 1))));
      uint64_t rr = r + bits_before;
      for (uint64_t pos = begin; pos < end; ++pos) {
        if ((word >> (pos & 63)) & 1) {
          uint64_t v = exceptions_.Get(rr++);
          if (v - lo <= static_cast<uint64_t>(hi) - lo) {
            out->push_back(base + static_cast<RowPos>(pos - from));
          }
        } else {
          out->push_back(base + static_cast<RowPos>(pos - from));
        }
      }
    } else {
      // Only exceptions can match: walk set bits.
      uint64_t probe = word;
      uint64_t rr = r;
      while (probe != 0) {
        uint32_t b = static_cast<uint32_t>(std::countr_zero(probe));
        probe &= probe - 1;
        uint64_t pos = (w << 6) | b;
        uint64_t idx = rr++;
        if (pos < from || pos >= to) continue;
        uint64_t v = exceptions_.Get(idx);
        if (v - lo <= static_cast<uint64_t>(hi) - lo) {
          out->push_back(base + static_cast<RowPos>(pos - from));
        }
      }
    }
    r += static_cast<uint64_t>(std::popcount(word));
  }
}

void SparseVector::SearchIn(uint64_t from, uint64_t to,
                            const std::vector<ValueId>& sorted_vids,
                            RowPos base, std::vector<RowPos>* out) const {
  if (sorted_vids.empty()) return;
  const bool dominant_matches = std::binary_search(
      sorted_vids.begin(), sorted_vids.end(), dominant_);
  // Reuse the range walk with a per-value membership test: for small IN
  // lists the binary search per exception is cheap.
  PAYG_ASSERT(from <= to && to <= size_);
  if (from == to) return;
  uint64_t w = from >> 6;
  const uint64_t last_word = (to - 1) >> 6;
  uint64_t r = rank_[w];
  for (; w <= last_word; ++w) {
    uint64_t word = bitmap_[w];
    uint64_t word_begin = w << 6;
    uint64_t begin = std::max(from, word_begin);
    uint64_t end = std::min(to, word_begin + 64);
    uint64_t bits_before = static_cast<uint64_t>(std::popcount(
        word & ((begin & 63) == 0 ? 0
                                  : ((uint64_t{1} << (begin & 63)) - 1))));
    uint64_t rr = r + bits_before;
    for (uint64_t pos = begin; pos < end; ++pos) {
      bool is_exception = (word >> (pos & 63)) & 1;
      if (is_exception) {
        ValueId v = static_cast<ValueId>(exceptions_.Get(rr++));
        if (std::binary_search(sorted_vids.begin(), sorted_vids.end(), v)) {
          out->push_back(base + static_cast<RowPos>(pos - from));
        }
      } else if (dominant_matches) {
        out->push_back(base + static_cast<RowPos>(pos - from));
      }
    }
    r += static_cast<uint64_t>(std::popcount(word));
  }
}

}  // namespace payg
