#ifndef PAYG_ENCODING_STRING_BLOCK_H_
#define PAYG_ENCODING_STRING_BLOCK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace payg {

// Reference to an off-page piece of a large string: the logical page number
// of a dictionary overflow page that stores the piece (one piece per page,
// as in §3.2.1: "each stored on a separate dictionary page").
using OffpageRef = uint64_t;

// Loads the payload of an overflow page. Supplied by the paged dictionary,
// which routes it through the buffer manager.
using OffpageLoader = std::function<Result<std::string>(OffpageRef)>;

// Writes one off-page piece and returns its reference. Supplied by the
// dictionary builder.
using OffpageWriter = std::function<Result<OffpageRef>(std::string_view)>;

// Strings per value block (§3.2.1 groups every 16 consecutive dictionary
// strings into one block).
inline constexpr uint32_t kStringsPerBlock = 16;

// Serialized entry layout (Fig 2):
//   u16 prefix_len   — shared with the *previous* string in this block
//   u32 onpage_len   — suffix bytes stored literally in the block
//   u8  has_offpage
//   onpage bytes
//   if has_offpage: u16 n_ptrs, n_ptrs × u64 OffpageRef, u64 total_len
//
// A block starts with u16 count.
class StringBlockBuilder {
 public:
  // Strings whose suffix exceeds `max_onpage_bytes` spill the remainder to
  // overflow pages in pieces of `offpage_piece_bytes`.
  StringBlockBuilder(uint32_t max_onpage_bytes, uint32_t offpage_piece_bytes)
      : max_onpage_bytes_(max_onpage_bytes),
        offpage_piece_bytes_(offpage_piece_bytes) {}

  // Adds the next string (callers must add in sorted order; prefixes are
  // computed against the previously added string). Fails only if an
  // off-page write fails.
  Status Add(std::string_view value, const OffpageWriter& write_offpage);

  bool full() const { return count_ >= kStringsPerBlock; }
  uint32_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Serialized size so far (callers check page fit before Finish).
  size_t SerializedBytes() const { return bytes_.size(); }

  // Returns the block bytes and resets the builder.
  std::vector<uint8_t> Finish();

 private:
  uint32_t max_onpage_bytes_;
  uint32_t offpage_piece_bytes_;
  uint32_t count_ = 0;
  std::string prev_;
  size_t prev_extent_ = 0;  // leading bytes of prev_ reconstructible on-page
  std::vector<uint8_t> bytes_;
};

// Read-side view over one serialized block. The block bytes must outlive the
// reader (they live on a pinned dictionary page).
class StringBlockReader {
 public:
  StringBlockReader(const uint8_t* data, size_t size);

  uint32_t count() const { return count_; }

  // Materializes the k-th string of the block (0-based). Loads off-page
  // pieces through `load` when the string is large.
  Result<std::string> GetString(uint32_t k, const OffpageLoader& load) const;

  // Binary-search-free block probe: scans entries in order (blocks hold at
  // most 16 strings) comparing against `value`. On return:
  //   *found      — exact match exists
  //   *pos        — index of the match, or of the first string > value
  Status Find(std::string_view value, const OffpageLoader& load, uint32_t* pos,
              bool* found) const;

 private:
  struct Entry {
    uint16_t prefix_len;
    uint32_t onpage_len;
    const uint8_t* onpage;  // points into block bytes
    std::vector<OffpageRef> offpage;
    uint64_t total_len;  // only valid when !offpage.empty()
  };

  // Decodes entries [0, k] reconstructing the running string; returns the
  // fully materialized k-th string.
  Result<std::string> Materialize(uint32_t k, const OffpageLoader& load) const;

  const uint8_t* data_;
  size_t size_;
  uint32_t count_;
  std::vector<Entry> entries_;  // decoded headers (cheap; ≤16 entries)
};

}  // namespace payg

#endif  // PAYG_ENCODING_STRING_BLOCK_H_
