// AVX2 tier of the packed decode/scan kernels (§3.1.1's vectorized n-bit
// decode). Compiled with -mavx2 and only ever entered through the runtime
// dispatch table, so the rest of the binary stays runnable on CPUs without
// AVX2. Everything except the table getter has internal linkage to keep
// AVX2 codegen from leaking into symbols the linker could pick for other
// translation units.
//
// Decode strategy, 8 values per step. Groups of 8 n-bit values whose start
// index is a multiple of 8 begin on a byte boundary (8n bits is n bytes),
// so all per-lane byte offsets and bit shifts are compile-time constants of
// the width:
//
//   n in [1, 25]  — two 16-byte loads cover all eight 4-byte windows
//                   (lanes 0..3 from the load at the group base, lanes 4..7
//                   from the load at base + (4n >> 3)); one shuffle places
//                   each window in its lane, a variable shift aligns it, a
//                   mask isolates the value. A window of 32 bits holds any
//                   value with shift + n <= 7 + 25 <= 32.
//   n in [26, 32] — 4-byte windows cannot hold a value (shift + n can reach
//                   39), so two 4-lane 64-bit gathers fetch 8-byte windows,
//                   shift + mask in 64-bit lanes, then the low dwords are
//                   compressed into one 8-lane register.
//
// The scalar head aligns the cursor to a group boundary, the scalar tail
// finishes the remainder, and VecLimit caps the vector loop so that no load
// reaches past the 8 tail bytes the packed-buffer contract guarantees.

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "encoding/packed_scan_internal.h"
#include "encoding/simd_dispatch.h"
#include "encoding/types.h"

namespace payg {

const PackedKernels* GetAvx2KernelTable();

namespace {

using detail::GetOneAligned;

// ---------------------------------------------------------------------------
// Per-width decode of one 8-value group starting at byte `group`.
// ---------------------------------------------------------------------------

template <uint32_t BITS>
struct Shuffle8 {
  static_assert(BITS >= 1 && BITS <= 25);
  static constexpr uint32_t kQB = (4 * BITS) >> 3;  // byte offset of load B

  static constexpr std::array<int8_t, 32> MakeCtrl() {
    std::array<int8_t, 32> c{};
    for (int j = 0; j < 4; ++j) {
      const int a = (j * static_cast<int>(BITS)) >> 3;
      const int b =
          (((4 + j) * static_cast<int>(BITS)) >> 3) - static_cast<int>(kQB);
      for (int k = 0; k < 4; ++k) {
        c[4 * j + k] = static_cast<int8_t>(a + k);
        c[16 + 4 * j + k] = static_cast<int8_t>(b + k);
      }
    }
    return c;
  }
  static constexpr std::array<int32_t, 8> MakeShift() {
    std::array<int32_t, 8> s{};
    for (int i = 0; i < 8; ++i) s[i] = (i * static_cast<int>(BITS)) & 7;
    return s;
  }

  alignas(32) static constexpr std::array<int8_t, 32> kCtrl = MakeCtrl();
  alignas(32) static constexpr std::array<int32_t, 8> kShift = MakeShift();
};

template <uint32_t BITS>
struct Gather8 {
  static_assert(BITS >= 26 && BITS <= 32);
  static constexpr std::array<int32_t, 8> MakeOff() {
    std::array<int32_t, 8> o{};
    for (int i = 0; i < 8; ++i) o[i] = (i * static_cast<int>(BITS)) >> 3;
    return o;
  }
  static constexpr std::array<int64_t, 8> MakeShift() {
    std::array<int64_t, 8> s{};
    for (int i = 0; i < 8; ++i) s[i] = (i * static_cast<int>(BITS)) & 7;
    return s;
  }
  alignas(32) static constexpr std::array<int32_t, 8> kOff = MakeOff();
  alignas(32) static constexpr std::array<int64_t, 8> kShift = MakeShift();
};

template <uint32_t BITS>
inline __m256i Decode8(const uint8_t* group) {
  if constexpr (BITS <= 25) {
    using C = Shuffle8<BITS>;
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group));
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(group + C::kQB));
    const __m256i src =
        _mm256_inserti128_si256(_mm256_castsi128_si256(a), b, 1);
    const __m256i win = _mm256_shuffle_epi8(
        src,
        _mm256_load_si256(reinterpret_cast<const __m256i*>(C::kCtrl.data())));
    const __m256i val = _mm256_srlv_epi32(
        win,
        _mm256_load_si256(reinterpret_cast<const __m256i*>(C::kShift.data())));
    return _mm256_and_si256(
        val, _mm256_set1_epi32(static_cast<int>(LowMask(BITS))));
  } else {
    using C = Gather8<BITS>;
    const long long* base = reinterpret_cast<const long long*>(group);
    const __m128i idx0 =
        _mm_load_si128(reinterpret_cast<const __m128i*>(C::kOff.data()));
    const __m128i idx1 =
        _mm_load_si128(reinterpret_cast<const __m128i*>(C::kOff.data() + 4));
    __m256i w0 = _mm256_i32gather_epi64(base, idx0, 1);
    __m256i w1 = _mm256_i32gather_epi64(base, idx1, 1);
    w0 = _mm256_srlv_epi64(w0, _mm256_load_si256(reinterpret_cast<const __m256i*>(
                                   C::kShift.data())));
    w1 = _mm256_srlv_epi64(w1, _mm256_load_si256(reinterpret_cast<const __m256i*>(
                                   C::kShift.data() + 4)));
    const __m256i mask =
        _mm256_set1_epi64x(static_cast<long long>(LowMask(BITS)));
    w0 = _mm256_and_si256(w0, mask);
    w1 = _mm256_and_si256(w1, mask);
    const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    const __m256i lo0 = _mm256_permutevar8x32_epi32(w0, pick);
    const __m256i lo1 = _mm256_permutevar8x32_epi32(w1, pick);
    return _mm256_inserti128_si256(lo0, _mm256_castsi256_si128(lo1), 1);
  }
}

// Highest value index the vector loop may decode: every load of a group
// starting at index i (base byte i*BITS/8) must end within the readable
// region, which the packed-buffer contract bounds at ceil(to*BITS/8) + 8
// bytes. Groups beyond the limit fall to the scalar tail.
template <uint32_t BITS>
inline uint64_t VecLimit(uint64_t to) {
  constexpr uint64_t kLoadEnd =
      BITS <= 25 ? ((4 * BITS) >> 3) + 16 : ((7 * BITS) >> 3) + 8;
  const uint64_t readable = (to * BITS + 7) / 8 + 8;
  if (readable < kLoadEnd) return 0;
  const uint64_t max_start = (readable - kLoadEnd) * 8 / BITS;
  const uint64_t limit = max_start + 8;
  return limit < to ? limit : to;
}

// ---------------------------------------------------------------------------
// Kernels.
// ---------------------------------------------------------------------------

template <uint32_t BITS>
void MGetAvx2(const uint64_t* words, uint64_t from, uint64_t to,
              uint32_t* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  uint32_t* dst = out;
  uint64_t i = from;
  const uint64_t head_end = std::min<uint64_t>(to, (from + 7) & ~7ull);
  for (; i < head_end; ++i) *dst++ = GetOneAligned<BITS>(words, i);
  const uint64_t limit = VecLimit<BITS>(to);
  for (; i + 8 <= limit; i += 8, dst += 8) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        Decode8<BITS>(bytes + (i / 8) * BITS));
  }
  for (; i < to; ++i) *dst++ = GetOneAligned<BITS>(words, i);
}

// Vectorized predicates: scalar state plus an 8-lane evaluation of the same
// condition. kVecExact marks whether the vector mask is the final answer
// (Eq/Range) or a prefilter whose candidates re-run the scalar predicate
// (In: the band check cannot express set membership).
struct VEq {
  static constexpr bool kVecExact = true;
  detail::EqPred s;
  __m256i target;
  explicit VEq(uint64_t vid)
      : s{vid}, target(_mm256_set1_epi32(static_cast<int>(
                    static_cast<uint32_t>(vid)))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m256i Vec(__m256i v) const { return _mm256_cmpeq_epi32(v, target); }
};

struct VRange {
  static constexpr bool kVecExact = true;
  detail::RangePred s;
  __m256i lo_v, band_v;
  VRange(uint64_t lo, uint64_t hi)
      : s{lo, hi - lo},
        lo_v(_mm256_set1_epi32(static_cast<int>(static_cast<uint32_t>(lo)))),
        band_v(_mm256_set1_epi32(
            static_cast<int>(static_cast<uint32_t>(hi - lo)))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m256i Vec(__m256i v) const {
    // Unsigned band compare: (v - lo) <= band  <=>  min_u(v - lo, band) == v - lo.
    const __m256i sub = _mm256_sub_epi32(v, lo_v);
    return _mm256_cmpeq_epi32(_mm256_min_epu32(sub, band_v), sub);
  }
};

struct VIn {
  static constexpr bool kVecExact = false;
  detail::InPred s;
  __m256i lo_v, band_v;
  explicit VIn(const std::vector<ValueId>& vids)
      : s{vids.data(), vids.size(), vids.front(),
          static_cast<uint64_t>(vids.back()) - vids.front()},
        lo_v(_mm256_set1_epi32(static_cast<int>(vids.front()))),
        band_v(_mm256_set1_epi32(
            static_cast<int>(vids.back() - vids.front()))) {}
  bool scalar(uint64_t v) const { return s(v); }
  __m256i Vec(__m256i v) const {
    const __m256i sub = _mm256_sub_epi32(v, lo_v);
    return _mm256_cmpeq_epi32(_mm256_min_epu32(sub, band_v), sub);
  }
};

// Exact vectorized membership for small probe sets: OR of one cmpeq per
// pre-broadcast probe. N probes cost N compares on one shared unpack —
// versus N whole search_eq scans, or VIn's band prefilter whose candidates
// each re-run a scalar binary search. The latter degenerates to a fully
// scalar scan whenever the probe band is wide (random probes over a large
// dictionary — precisely the multi-probe batch shape), which is the case
// this kernel removes.
struct VInSmall {
  static constexpr bool kVecExact = true;
  static constexpr size_t kMaxProbes = 16;
  detail::InPred s;
  __m256i targets[kMaxProbes];
  size_t n;
  explicit VInSmall(const std::vector<ValueId>& vids)
      : s{vids.data(), vids.size(), vids.front(),
          static_cast<uint64_t>(vids.back()) - vids.front()},
        n(vids.size()) {
    for (size_t k = 0; k < n; ++k) {
      targets[k] = _mm256_set1_epi32(static_cast<int>(vids[k]));
    }
  }
  bool scalar(uint64_t v) const { return s(v); }
  __m256i Vec(__m256i v) const {
    __m256i acc = _mm256_cmpeq_epi32(v, targets[0]);
    for (size_t k = 1; k < n; ++k) {
      acc = _mm256_or_si256(acc, _mm256_cmpeq_epi32(v, targets[k]));
    }
    return acc;
  }
};

// One scan skeleton for all three search kernels — the vector twin of
// ScalarScan in bit_packing.cc. Matches are buffered locally and appended
// out of line so no std::vector code is instantiated in this TU.
template <uint32_t BITS, typename VPred>
void ScanAvx2(const uint64_t* words, uint64_t from, uint64_t to, RowPos base,
              std::vector<RowPos>* out, const VPred& pred) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  RowPos buf[64];
  size_t nbuf = 0;
  const auto flush = [&] {
    if (nbuf > 0) {
      detail::AppendRows(out, buf, nbuf);
      nbuf = 0;
    }
  };
  uint64_t i = from;
  const uint64_t head_end = std::min<uint64_t>(to, (from + 7) & ~7ull);
  for (; i < head_end; ++i) {
    if (pred.scalar(GetOneAligned<BITS>(words, i))) {
      buf[nbuf++] = base + static_cast<RowPos>(i - from);
    }
  }
  const uint64_t limit = VecLimit<BITS>(to);
  for (; i + 8 <= limit; i += 8) {
    const __m256i v = Decode8<BITS>(bytes + (i / 8) * BITS);
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(pred.Vec(v)));
    if (m == 0) continue;
    if (nbuf > 56) flush();
    unsigned mm = static_cast<unsigned>(m);
    if constexpr (VPred::kVecExact) {
      while (mm != 0) {
        const int lane = std::countr_zero(mm);
        mm &= mm - 1;
        buf[nbuf++] = base + static_cast<RowPos>(i + lane - from);
      }
    } else {
      alignas(32) uint32_t vals[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(vals), v);
      while (mm != 0) {
        const int lane = std::countr_zero(mm);
        mm &= mm - 1;
        if (pred.scalar(vals[lane])) {
          buf[nbuf++] = base + static_cast<RowPos>(i + lane - from);
        }
      }
    }
  }
  for (; i < to; ++i) {
    if (nbuf > 56) flush();
    if (pred.scalar(GetOneAligned<BITS>(words, i))) {
      buf[nbuf++] = base + static_cast<RowPos>(i - from);
    }
  }
  flush();
}

template <uint32_t BITS>
void SearchEqAvx2(const uint64_t* words, uint64_t from, uint64_t to,
                  uint64_t vid, RowPos base, std::vector<RowPos>* out) {
  ScanAvx2<BITS>(words, from, to, base, out, VEq(vid));
}

template <uint32_t BITS>
void SearchRangeAvx2(const uint64_t* words, uint64_t from, uint64_t to,
                     uint64_t lo, uint64_t hi, RowPos base,
                     std::vector<RowPos>* out) {
  ScanAvx2<BITS>(words, from, to, base, out, VRange(lo, hi));
}

template <uint32_t BITS>
void SearchInAvx2(const uint64_t* words, uint64_t from, uint64_t to,
                  const std::vector<ValueId>& vids, RowPos base,
                  std::vector<RowPos>* out) {
  if (vids.size() <= VInSmall::kMaxProbes) {
    ScanAvx2<BITS>(words, from, to, base, out, VInSmall(vids));
  } else {
    ScanAvx2<BITS>(words, from, to, base, out, VIn(vids));
  }
}

template <size_t... I>
PackedKernels MakeTable(std::index_sequence<I...>) {
  PackedKernels k{};
  ((k.mget[I + 1] = &MGetAvx2<I + 1>), ...);
  ((k.search_eq[I + 1] = &SearchEqAvx2<I + 1>), ...);
  ((k.search_range[I + 1] = &SearchRangeAvx2<I + 1>), ...);
  ((k.search_in[I + 1] = &SearchInAvx2<I + 1>), ...);
  return k;
}

}  // namespace

const PackedKernels* GetAvx2KernelTable() {
  static const PackedKernels table = MakeTable(std::make_index_sequence<32>{});
  return &table;
}

}  // namespace payg
