#include "encoding/bit_packing.h"

#include <algorithm>

#include "encoding/packed_scan_internal.h"
#include "encoding/simd_dispatch.h"

namespace payg {

namespace detail {

void AppendRows(std::vector<RowPos>* out, const RowPos* rows, size_t n) {
  out->insert(out->end(), rows, rows + n);
}

}  // namespace detail

namespace {

// Shared sliding-window decode skeleton. Keeps the 8-byte window read and
// incrementing bit cursor in one tight loop; `emit` is inlined per caller.
// Widths above 25 use the two-word aligned read for the same defensive
// reason as PackedGet (the window margin is thinnest there).
template <typename Emit>
inline void DecodeLoop(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, Emit emit) {
  if (bits > 25) {
    for (uint64_t i = from; i < to; ++i) {
      const uint64_t bitpos = i * bits;
      const uint64_t w = bitpos >> 6;
      const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
      uint64_t v = words[w] >> shift;
      if (shift + bits > 64) v |= words[w + 1] << (64 - shift);
      emit(i, v & LowMask(bits));
    }
    return;
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const uint64_t mask = LowMask(bits);
  uint64_t bitpos = from * bits;
  for (uint64_t i = from; i < to; ++i, bitpos += bits) {
    uint64_t window;
    std::memcpy(&window, bytes + (bitpos >> 3), sizeof(window));
    emit(i, (window >> (bitpos & 7)) & mask);
  }
}

// The one scan skeleton all three scalar search kernels are generated from
// (the SIMD tiers mirror it — see ScanAvx2 / ScanSse42): decode, apply the
// predicate, report base-relative positions.
template <typename Pred>
inline void ScalarScan(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, RowPos base, std::vector<RowPos>* out,
                       const Pred& pred) {
  DecodeLoop(words, bits, from, to, [&](uint64_t i, uint64_t v) {
    if (pred(v)) out->push_back(base + static_cast<RowPos>(i - from));
  });
}

}  // namespace

void PackedMGetScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                      uint64_t to, uint32_t* out) {
  uint32_t* dst = out;
  if (bits > 25) {
    DecodeLoop(words, bits, from, to, [&](uint64_t, uint64_t v) {
      *dst++ = static_cast<uint32_t>(v);
    });
    return;
  }
  // Unrolled by four: each iteration is independent, which lets the compiler
  // keep multiple window loads in flight (the scalar analogue of the SIMD
  // decode in §3.1.3).
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const uint64_t mask = LowMask(bits);
  uint64_t i = from;
  uint64_t bitpos = from * bits;
  for (; i + 4 <= to; i += 4, bitpos += 4ull * bits) {
    uint64_t w0, w1, w2, w3;
    uint64_t b0 = bitpos, b1 = bitpos + bits, b2 = bitpos + 2ull * bits,
             b3 = bitpos + 3ull * bits;
    std::memcpy(&w0, bytes + (b0 >> 3), 8);
    std::memcpy(&w1, bytes + (b1 >> 3), 8);
    std::memcpy(&w2, bytes + (b2 >> 3), 8);
    std::memcpy(&w3, bytes + (b3 >> 3), 8);
    dst[0] = static_cast<uint32_t>((w0 >> (b0 & 7)) & mask);
    dst[1] = static_cast<uint32_t>((w1 >> (b1 & 7)) & mask);
    dst[2] = static_cast<uint32_t>((w2 >> (b2 & 7)) & mask);
    dst[3] = static_cast<uint32_t>((w3 >> (b3 & 7)) & mask);
    dst += 4;
  }
  for (; i < to; ++i, bitpos += bits) {
    uint64_t w;
    std::memcpy(&w, bytes + (bitpos >> 3), 8);
    *dst++ = static_cast<uint32_t>((w >> (bitpos & 7)) & mask);
  }
}

void PackedSearchEqScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                          uint64_t to, uint64_t vid, RowPos base,
                          std::vector<RowPos>* out) {
  ScalarScan(words, bits, from, to, base, out, detail::EqPred{vid});
}

void PackedSearchRangeScalar(const uint64_t* words, uint32_t bits,
                             uint64_t from, uint64_t to, uint64_t lo,
                             uint64_t hi, RowPos base,
                             std::vector<RowPos>* out) {
  ScalarScan(words, bits, from, to, base, out, detail::RangePred{lo, hi - lo});
}

void PackedSearchInScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                          uint64_t to, const std::vector<ValueId>& sorted_vids,
                          RowPos base, std::vector<RowPos>* out) {
  ScalarScan(words, bits, from, to, base, out,
             detail::InPred{sorted_vids.data(), sorted_vids.size(),
                            sorted_vids.front(),
                            static_cast<uint64_t>(sorted_vids.back()) -
                                sorted_vids.front()});
}

// ---------------------------------------------------------------------------
// Public entry points: normalize the predicate, then dispatch to the active
// tier's per-width kernel.
// ---------------------------------------------------------------------------

void PackedMGet(const uint64_t* words, uint32_t bits, uint64_t from,
                uint64_t to, uint32_t* out) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  ActiveKernels().mget[bits](words, from, to, out);
}

void PackedSearchEq(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, uint64_t vid, RowPos base,
                    std::vector<RowPos>* out) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  if (vid > LowMask(bits)) return;  // cannot occur in a `bits`-wide buffer
  ActiveKernels().search_eq[bits](words, from, to, vid, base, out);
}

void PackedSearchRange(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, uint64_t lo, uint64_t hi, RowPos base,
                       std::vector<RowPos>* out) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  if (lo > hi || lo > LowMask(bits)) return;
  hi = std::min(hi, LowMask(bits));  // keep hi - lo within 32 bits for SIMD
  ActiveKernels().search_range[bits](words, from, to, lo, hi, base, out);
}

void PackedSearchIn(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, const std::vector<ValueId>& sorted_vids,
                    RowPos base, std::vector<RowPos>* out) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  if (sorted_vids.empty()) return;
  ActiveKernels().search_in[bits](words, from, to, sorted_vids, base, out);
}

PackedVector PackedVector::FromWords(uint32_t bits, uint64_t size,
                                     std::vector<uint64_t> words) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  PackedVector pv(bits);
  uint64_t needed = CeilDiv(size * bits, 64) + 2;
  PAYG_ASSERT(words.size() + 2 >= needed);  // caller supplied all data words
  if (words.size() < needed) words.resize(needed, 0);
  pv.words_ = std::move(words);
  pv.size_ = size;
  return pv;
}

PackedVector PackedVector::Pack(const std::vector<ValueId>& values) {
  ValueId max_v = 0;
  for (ValueId v : values) max_v = std::max(max_v, v);
  PackedVector pv(BitsNeeded(max_v));
  pv.EnsureCapacity(values.size());
  for (ValueId v : values) pv.Append(v);
  return pv;
}

void PackedVector::Append(uint64_t v) {
  EnsureCapacity(size_ + 1);
  PackedSet(words_.data(), bits_, size_, v);
  ++size_;
}

void PackedVector::EnsureCapacity(uint64_t values) {
  // +2: one word for straddling writes, one for the kernels' 8-byte
  // window overread.
  uint64_t words_needed = CeilDiv(values * bits_, 64) + 2;
  if (words_.size() < words_needed) {
    words_.resize(std::max<uint64_t>(words_needed, words_.size() * 2));
  }
}

}  // namespace payg
