#include "encoding/bit_packing.h"

#include <algorithm>

namespace payg {

namespace {

// Shared sliding-window decode skeleton. Keeps the 8-byte window read and
// incrementing bit cursor in one tight loop; `emit` is inlined per caller.
template <typename Emit>
inline void DecodeLoop(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, Emit emit) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const uint64_t mask = LowMask(bits);
  uint64_t bitpos = from * bits;
  for (uint64_t i = from; i < to; ++i, bitpos += bits) {
    uint64_t window;
    std::memcpy(&window, bytes + (bitpos >> 3), sizeof(window));
    emit(i, (window >> (bitpos & 7)) & mask);
  }
}

}  // namespace

void PackedMGet(const uint64_t* words, uint32_t bits, uint64_t from,
                uint64_t to, uint32_t* out) {
  uint32_t* dst = out;
  // Unrolled by four: each iteration is independent, which lets the compiler
  // keep multiple window loads in flight (the scalar analogue of the SIMD
  // decode in §3.1.3).
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  const uint64_t mask = LowMask(bits);
  uint64_t i = from;
  uint64_t bitpos = from * bits;
  for (; i + 4 <= to; i += 4, bitpos += 4ull * bits) {
    uint64_t w0, w1, w2, w3;
    uint64_t b0 = bitpos, b1 = bitpos + bits, b2 = bitpos + 2ull * bits,
             b3 = bitpos + 3ull * bits;
    std::memcpy(&w0, bytes + (b0 >> 3), 8);
    std::memcpy(&w1, bytes + (b1 >> 3), 8);
    std::memcpy(&w2, bytes + (b2 >> 3), 8);
    std::memcpy(&w3, bytes + (b3 >> 3), 8);
    dst[0] = static_cast<uint32_t>((w0 >> (b0 & 7)) & mask);
    dst[1] = static_cast<uint32_t>((w1 >> (b1 & 7)) & mask);
    dst[2] = static_cast<uint32_t>((w2 >> (b2 & 7)) & mask);
    dst[3] = static_cast<uint32_t>((w3 >> (b3 & 7)) & mask);
    dst += 4;
  }
  for (; i < to; ++i, bitpos += bits) {
    uint64_t w;
    std::memcpy(&w, bytes + (bitpos >> 3), 8);
    *dst++ = static_cast<uint32_t>((w >> (bitpos & 7)) & mask);
  }
}

void PackedSearchEq(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, uint64_t vid, RowPos base,
                    std::vector<RowPos>* out) {
  DecodeLoop(words, bits, from, to, [&](uint64_t i, uint64_t v) {
    if (v == vid) out->push_back(base + static_cast<RowPos>(i - from));
  });
}

void PackedSearchRange(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, uint64_t lo, uint64_t hi, RowPos base,
                       std::vector<RowPos>* out) {
  DecodeLoop(words, bits, from, to, [&](uint64_t i, uint64_t v) {
    // Single-branch band check: (v - lo) <= (hi - lo) in unsigned arithmetic.
    if (v - lo <= hi - lo) out->push_back(base + static_cast<RowPos>(i - from));
  });
}

void PackedSearchIn(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, const std::vector<ValueId>& sorted_vids,
                    RowPos base, std::vector<RowPos>* out) {
  if (sorted_vids.empty()) return;
  const ValueId lo = sorted_vids.front();
  const ValueId hi = sorted_vids.back();
  DecodeLoop(words, bits, from, to, [&](uint64_t i, uint64_t v) {
    if (v - lo > static_cast<uint64_t>(hi) - lo) return;  // fast band reject
    if (std::binary_search(sorted_vids.begin(), sorted_vids.end(),
                           static_cast<ValueId>(v))) {
      out->push_back(base + static_cast<RowPos>(i - from));
    }
  });
}

PackedVector PackedVector::FromWords(uint32_t bits, uint64_t size,
                                     std::vector<uint64_t> words) {
  PAYG_ASSERT(bits >= 1 && bits <= 32);
  PackedVector pv(bits);
  uint64_t needed = CeilDiv(size * bits, 64) + 2;
  PAYG_ASSERT(words.size() + 2 >= needed);  // caller supplied all data words
  if (words.size() < needed) words.resize(needed, 0);
  pv.words_ = std::move(words);
  pv.size_ = size;
  return pv;
}

PackedVector PackedVector::Pack(const std::vector<ValueId>& values) {
  ValueId max_v = 0;
  for (ValueId v : values) max_v = std::max(max_v, v);
  PackedVector pv(BitsNeeded(max_v));
  pv.EnsureCapacity(values.size());
  for (ValueId v : values) pv.Append(v);
  return pv;
}

void PackedVector::Append(uint64_t v) {
  EnsureCapacity(size_ + 1);
  PackedSet(words_.data(), bits_, size_, v);
  ++size_;
}

void PackedVector::EnsureCapacity(uint64_t values) {
  // +2: one word for straddling writes, one for the kernels' 8-byte
  // window overread.
  uint64_t words_needed = CeilDiv(values * bits_, 64) + 2;
  if (words_.size() < words_needed) {
    words_.resize(std::max<uint64_t>(words_needed, words_.size() * 2));
  }
}

}  // namespace payg
