#ifndef PAYG_ENCODING_BIT_PACKING_H_
#define PAYG_ENCODING_BIT_PACKING_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "encoding/types.h"

namespace payg {

// ---------------------------------------------------------------------------
// Raw kernels over packed word buffers.
//
// Layout: values are packed LSB-first into consecutive bits of a uint64_t
// array; value i occupies bits [i*n, (i+1)*n). Because chunks hold exactly 64
// values, chunk c starts at word c*n, and all kernels may be applied to a
// chunk-aligned sub-buffer (this is how the paged data vector decodes single
// pages). Buffers must be allocated with one extra tail word so the unaligned
// 8-byte window read below may overread safely.
// ---------------------------------------------------------------------------

// Reads value `idx` from a packed buffer. bits must be in [1, 32].
//
// The unaligned 8-byte window starts at the value's first byte, so the value
// occupies bits [bitpos & 7, (bitpos & 7) + bits) of the window — at most
// bit 7 + 32 = 39 < 64, i.e. the window always covers it. Widths in [26, 32]
// nevertheless take a defensive two-word aligned read: their window margin is
// the thinnest (a hypothetical 33-bit-wide value at shift 7 would straddle 9
// bytes and be truncated), and the aligned form keeps the read from
// depending on that margin at all.
inline uint64_t PackedGet(const uint64_t* words, uint32_t bits, uint64_t idx) {
  const uint64_t bitpos = idx * bits;
  if (bits > 25) {
    const uint64_t w = bitpos >> 6;
    const uint32_t shift = static_cast<uint32_t>(bitpos & 63);
    uint64_t v = words[w] >> shift;
    if (shift + bits > 64) {
      v |= words[w + 1] << (64 - shift);
    }
    return v & LowMask(bits);
  }
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(words);
  uint64_t window;
  std::memcpy(&window, bytes + (bitpos >> 3), sizeof(window));
  return (window >> (bitpos & 7)) & LowMask(bits);
}

// Writes value `v` at `idx`. Not thread-safe; used by builders only.
inline void PackedSet(uint64_t* words, uint32_t bits, uint64_t idx,
                      uint64_t v) {
  PAYG_ASSERT(v <= LowMask(bits));
  uint64_t bitpos = idx * bits;
  uint64_t word = bitpos >> 6;
  uint32_t shift = bitpos & 63;
  words[word] = (words[word] & ~(LowMask(bits) << shift)) | (v << shift);
  if (shift + bits > 64) {
    uint32_t hi_bits = shift + bits - 64;
    words[word + 1] =
        (words[word + 1] & ~LowMask(hi_bits)) | (v >> (bits - hi_bits));
  }
}

// Decodes values [from, to) into out[0..to-from). The hot "mget" primitive
// (Fig 1). Dispatches to the best SIMD tier the CPU supports (see
// simd_dispatch.h); `PAYG_FORCE_SCALAR=1` pins the portable kernels.
void PackedMGet(const uint64_t* words, uint32_t bits, uint64_t from,
                uint64_t to, uint32_t* out);

// Appends to `out` the positions p in [from, to) where value == vid.
// Positions are reported as `base + (p - from)` so page-local scans can
// report absolute row positions. The hot "search" primitive (Fig 1).
void PackedSearchEq(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, uint64_t vid, RowPos base,
                    std::vector<RowPos>* out);

// Range predicate variant: lo <= value <= hi. Empty ranges (lo > hi) match
// nothing.
void PackedSearchRange(const uint64_t* words, uint32_t bits, uint64_t from,
                       uint64_t to, uint64_t lo, uint64_t hi, RowPos base,
                       std::vector<RowPos>* out);

// Set-predicate variant: value ∈ sorted_vids (sorted ascending).
void PackedSearchIn(const uint64_t* words, uint32_t bits, uint64_t from,
                    uint64_t to, const std::vector<ValueId>& sorted_vids,
                    RowPos base, std::vector<RowPos>* out);

// Portable scalar kernels behind the entry points above — the reference
// implementations every SIMD tier is property-tested against, and the
// dispatch fallback on CPUs without SSE4.2/AVX2. Same contracts as the
// dispatching wrappers, except predicates are taken as-is: callers must
// pass vid <= LowMask(bits), lo <= hi, and a non-empty sorted_vids.
void PackedMGetScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                      uint64_t to, uint32_t* out);
void PackedSearchEqScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                          uint64_t to, uint64_t vid, RowPos base,
                          std::vector<RowPos>* out);
void PackedSearchRangeScalar(const uint64_t* words, uint32_t bits,
                             uint64_t from, uint64_t to, uint64_t lo,
                             uint64_t hi, RowPos base,
                             std::vector<RowPos>* out);
void PackedSearchInScalar(const uint64_t* words, uint32_t bits, uint64_t from,
                          uint64_t to, const std::vector<ValueId>& sorted_vids,
                          RowPos base, std::vector<RowPos>* out);

// ---------------------------------------------------------------------------
// PackedVector: an owning, fully-in-memory n-bit packed vector. This is the
// in-memory data vector of a default (fully loadable) column, and the staging
// buffer the paged builders pack from.
// ---------------------------------------------------------------------------
class PackedVector {
 public:
  PackedVector() = default;

  // Builds with a fixed bit width; values appended must fit.
  explicit PackedVector(uint32_t bits) : bits_(bits) {
    PAYG_ASSERT(bits >= 1 && bits <= 32);
    EnsureCapacity(0);  // padding words exist even for an empty vector
  }

  // Packs an existing vector using the minimal uniform width.
  static PackedVector Pack(const std::vector<ValueId>& values);

  // Adopts already-packed words (deserialization path). `words` may be
  // re-padded to satisfy the kernels' overread guarantee.
  static PackedVector FromWords(uint32_t bits, uint64_t size,
                                std::vector<uint64_t> words);

  void Append(uint64_t v);

  uint64_t Get(uint64_t idx) const {
    PAYG_ASSERT(idx < size_);
    return PackedGet(words_.data(), bits_, idx);
  }

  void MGet(uint64_t from, uint64_t to, uint32_t* out) const {
    PAYG_ASSERT(from <= to && to <= size_);
    PackedMGet(words_.data(), bits_, from, to, out);
  }

  uint64_t size() const { return size_; }
  uint32_t bits() const { return bits_; }
  const uint64_t* words() const { return words_.data(); }
  uint64_t word_count() const { return words_.size(); }

  // Bytes of heap memory held (accounting for the resource manager).
  uint64_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  void EnsureCapacity(uint64_t values);

  uint32_t bits_ = 1;
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace payg

#endif  // PAYG_ENCODING_BIT_PACKING_H_
