#ifndef PAYG_ENCODING_CODEC_H_
#define PAYG_ENCODING_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "encoding/simd_dispatch.h"
#include "encoding/types.h"

namespace payg {

// ---------------------------------------------------------------------------
// Pluggable page codecs for the paged data vector (DESIGN.md S22).
//
// The paper pages uniformly n-bit packed identifiers; MorphStore-style
// compression-enabled processing generalizes that: each column picks, at
// delta merge, the codec whose (bytes per row × scan cost) is lowest, and
// the search/mget kernels run directly on the compressed page image. Three
// codecs exist today; the per-codec kernel table makes a fourth a
// single-file addition.
//
//   kPlain (id 0) — the original uniform n-bit packing. Compatibility
//     default; version-0 chains (no codec byte in the meta page) decode as
//     plain.
//   kFor (id 1) — frame of reference: one column-global base (the exact
//     minimum vid), residuals packed at BitsNeeded(max-min) bits. Fewer
//     bits per row ⇒ more values per page ⇒ fewer pages through the cache.
//     Search predicates are translated into residual space, so the packed
//     SIMD kernels run unchanged on the compressed image.
//   kRle (id 2) — run-length encoding over vids: a per-page run catalog
//     (cumulative u32 run ends) plus the run values packed at the plain
//     width. Pages keep the plain values-per-page capacity, so row→page
//     mapping stays pure arithmetic; a page whose runs would not fit
//     escapes to plain packing (aux2 == kRleEscapeAux). Search walks the
//     run catalog (O(runs), not O(rows)); mget fills run-by-run.
//
// Every codec page is an array of uint64 words in the page payload; the
// per-page `aux2` header word carries codec-specific state (RLE: run count
// or the escape marker; plain/FOR: zero).
// ---------------------------------------------------------------------------

enum class CodecId : uint8_t { kPlain = 0, kFor = 1, kRle = 2 };
inline constexpr uint32_t kCodecCount = 3;

// Display / metric-suffix name ("plain", "for", "rle").
const char* CodecName(CodecId id);

// RLE pages whose run catalog would overflow the payload are stored
// plain-packed with this marker in the page header's aux2 word.
inline constexpr uint32_t kRleEscapeAux = 0xFFFFFFFFu;

// Column-level codec parameters, persisted in the data vector's meta page.
// `bits` is the packed width of the payload words (plain: BitsNeeded(max);
// FOR: BitsNeeded(max - base); RLE: the plain width, used for run values
// and escape pages alike).
struct CodecParams {
  uint32_t bits = 1;
  ValueId for_base = 0;  // FOR only; zero otherwise
};

struct CodecChoice {
  CodecId id = CodecId::kPlain;
  CodecParams params;
};

// ---------------------------------------------------------------------------
// Selection (the delta-merge codec pass).
// ---------------------------------------------------------------------------

// PAYG_FORCE_CODEC knob: kAuto runs the cost model, anything else pins the
// codec for every fragment built by this process.
enum class CodecForce : int { kAuto = -1, kPlain = 0, kFor = 1, kRle = 2 };

// Parsed once per process from PAYG_FORCE_CODEC (plain|for|rle|auto;
// unset or unrecognized values mean kAuto).
CodecForce ForcedCodec();

// Rows of the vid vector the run-density estimate samples
// (PAYG_CODEC_SAMPLE_ROWS, default 65536, clamped to [64, 1<<30]).
uint64_t CodecSampleRows();

// Exact-stat parameters for a fixed codec over this column (full min/max
// pass — the FOR base must be the true minimum).
CodecChoice MakeCodecChoice(CodecId id, const std::vector<ValueId>& vids);

// Cost-model selection: bytes-per-row × estimated scan cost per codec,
// lowest wins, plain wins ties. Does NOT consult PAYG_FORCE_CODEC.
CodecChoice ChooseCodec(const std::vector<ValueId>& vids);

// The builder entry point: spec-level force, then the env knob, then the
// cost model.
CodecChoice ResolveCodec(CodecForce force, const std::vector<ValueId>& vids);

// ---------------------------------------------------------------------------
// Page encode.
// ---------------------------------------------------------------------------

// Values-per-page capacity for this choice given the page payload size.
// Always a multiple of 64 (whole chunks), with one spare word reserved for
// the packed kernels' 8-byte window overread. For RLE this is the plain
// capacity: the escape encoding is guaranteed to fit.
uint64_t CodecValuesPerPage(uint32_t payload_bytes, const CodecChoice& choice);

// Encodes vids[0, n) into `payload` (zeroed by the callee as needed),
// returns the payload byte size to persist and sets *aux2 (the per-page
// codec word). n must be <= CodecValuesPerPage(capacity, choice).
uint32_t CodecEncodePage(const CodecChoice& choice, const ValueId* vids,
                         uint64_t n, uint8_t* payload, uint32_t capacity,
                         uint32_t* aux2);

// ---------------------------------------------------------------------------
// Page decode / search: the (codec × kernel × tier) dispatch.
// ---------------------------------------------------------------------------

// A borrowed view of one encoded page. `kernels` picks the SIMD tier for
// the inner packed kernels; nullptr means the process-wide ActiveKernels()
// (tests and benches pin specific tiers through it).
struct CodecPageView {
  const uint64_t* words = nullptr;
  uint64_t n = 0;       // values on this page
  uint32_t aux2 = 0;    // page header aux2 (RLE run count / escape marker)
  CodecParams params;
  const PackedKernels* kernels = nullptr;
};

// Validates one on-disk page image before any kernel touches it. The
// kernels trust the view completely — the RLE paths walk the run catalog
// that `aux2` sizes and `PackedGet` walks `bits`-wide slots up to `n` — so
// a page whose header or catalog lies about its own geometry would read
// past the payload. Checks, per codec:
//   plain / FOR / RLE-escape:  the packed image for `n` values at `bits`
//       (whole chunks + the kernels' spare overread word) fits in
//       `payload_size`;
//   RLE:  `aux2` run count is non-zero iff the page has rows and never
//       exceeds `n`; catalog + packed run values (+ spare word) fit in
//       `payload_size`; run ends are strictly increasing and the last one
//       equals `n`.
// Called once per page pin (PagedDataVectorIterator::Reposition) and by
// the fuzz harness, which feeds it hostile images (fuzz/fuzz_codec_page).
// O(1) for plain/FOR, O(runs) for RLE — the same order as one run-skipping
// scan of the page.
Status CodecValidatePage(CodecId id, const CodecPageView& v,
                         uint32_t payload_size);

// Native/fallback kernel accounting plus the shared decode scratch the
// fallback path reuses across pages. Owned by the caller (one per
// iterator); folded into codec.kernel_native / codec.kernel_fallback.
struct CodecStats {
  uint64_t native = 0;
  uint64_t fallback = 0;
  std::vector<ValueId> scratch;
};

// One codec's kernel row. A null entry means "no native path": the
// dispatcher decodes the range into scratch via the codec's mget (which is
// never null — decode is the primitive every codec must provide) and runs
// the predicate scalar over the decoded values.
struct CodecKernels {
  using GetFn = ValueId (*)(const CodecPageView& v, uint64_t idx);
  using MGetFn = void (*)(const CodecPageView& v, uint64_t from, uint64_t to,
                          uint32_t* out);
  using SearchEqFn = void (*)(const CodecPageView& v, uint64_t from,
                              uint64_t to, ValueId vid, RowPos base,
                              std::vector<RowPos>* out);
  using SearchRangeFn = void (*)(const CodecPageView& v, uint64_t from,
                                 uint64_t to, ValueId lo, ValueId hi,
                                 RowPos base, std::vector<RowPos>* out);
  using SearchInFn = void (*)(const CodecPageView& v, uint64_t from,
                              uint64_t to,
                              const std::vector<ValueId>& sorted_vids,
                              RowPos base, std::vector<RowPos>* out);

  GetFn get = nullptr;
  MGetFn mget = nullptr;
  SearchEqFn search_eq = nullptr;
  SearchRangeFn search_range = nullptr;
  SearchInFn search_in = nullptr;
};

// The codec dimension of the dispatch (index by CodecId).
const CodecKernels& CodecKernelTable(CodecId id);

// Dispatching wrappers: native kernel when the table has one, otherwise
// decode-into-scratch + scalar predicate. `stats` (optional) counts one
// native or one fallback per call. Ranges must satisfy from <= to <= v.n;
// predicates may be arbitrary (normalization happens inside).
ValueId CodecGetValue(CodecId id, const CodecPageView& v, uint64_t idx);
void CodecMGet(CodecId id, const CodecPageView& v, uint64_t from, uint64_t to,
               uint32_t* out, CodecStats* stats);
void CodecSearchEq(CodecId id, const CodecPageView& v, uint64_t from,
                   uint64_t to, ValueId vid, RowPos base,
                   std::vector<RowPos>* out, CodecStats* stats);
void CodecSearchRange(CodecId id, const CodecPageView& v, uint64_t from,
                      uint64_t to, ValueId lo, ValueId hi, RowPos base,
                      std::vector<RowPos>* out, CodecStats* stats);
void CodecSearchIn(CodecId id, const CodecPageView& v, uint64_t from,
                   uint64_t to, const std::vector<ValueId>& sorted_vids,
                   RowPos base, std::vector<RowPos>* out, CodecStats* stats);

}  // namespace payg

#endif  // PAYG_ENCODING_CODEC_H_
