#ifndef PAYG_ENCODING_SPARSE_VECTOR_H_
#define PAYG_ENCODING_SPARSE_VECTOR_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "encoding/bit_packing.h"
#include "encoding/types.h"

namespace payg {

// Sparse encoding of a value-identifier vector (Lemke et al. [15], cited in
// §3.1 as the compression applied on top of dictionary encoding): when one
// vid dominates the column — ERP tables are full of status/flag columns
// where it does — the dominant value is stored implicitly. A bitmap marks
// the exception positions and only the exception vids are n-bit packed.
//
// Get is O(1) via a per-word rank directory; the search primitives visit
// only exception words (plus bitmap zeros when the predicate covers the
// dominant value), so scans over very sparse columns touch a fraction of
// the bytes a plain n-bit vector would.
class SparseVector {
 public:
  SparseVector() = default;

  // Fraction of rows equal to the most frequent vid.
  static double DominantFraction(const std::vector<ValueId>& vids,
                                 ValueId* dominant);

  // True when sparse encoding is expected to beat uniform n-bit packing
  // (dominant fraction at or above `threshold`).
  static bool ShouldUse(const std::vector<ValueId>& vids,
                        double threshold = 0.6);

  static SparseVector Encode(const std::vector<ValueId>& vids);

  // Deserialization: adopts previously persisted parts.
  static SparseVector FromParts(uint64_t size, ValueId dominant,
                                uint32_t bits,
                                std::vector<uint64_t> exception_bitmap,
                                PackedVector exceptions);

  uint64_t size() const { return size_; }
  ValueId dominant() const { return dominant_; }
  uint32_t bits() const { return bits_; }
  uint64_t exception_count() const { return exceptions_.size(); }
  const std::vector<uint64_t>& exception_bitmap() const { return bitmap_; }
  const PackedVector& exceptions() const { return exceptions_; }

  ValueId Get(uint64_t i) const {
    PAYG_ASSERT(i < size_);
    uint64_t word = bitmap_[i >> 6];
    uint64_t bit = uint64_t{1} << (i & 63);
    if ((word & bit) == 0) return dominant_;
    uint64_t r = rank_[i >> 6] +
                 static_cast<uint64_t>(
                     std::popcount(word & (bit - 1)));
    return static_cast<ValueId>(exceptions_.Get(r));
  }

  void MGet(uint64_t from, uint64_t to, ValueId* out) const;

  // The same search primitives the packed kernels provide, over [from, to).
  void SearchEq(uint64_t from, uint64_t to, ValueId vid, RowPos base,
                std::vector<RowPos>* out) const;
  void SearchRange(uint64_t from, uint64_t to, ValueId lo, ValueId hi,
                   RowPos base, std::vector<RowPos>* out) const;
  void SearchIn(uint64_t from, uint64_t to,
                const std::vector<ValueId>& sorted_vids, RowPos base,
                std::vector<RowPos>* out) const;

  uint64_t MemoryBytes() const {
    return bitmap_.capacity() * 8 + rank_.capacity() * 8 +
           exceptions_.MemoryBytes();
  }

 private:
  void BuildRank();

  uint64_t size_ = 0;
  ValueId dominant_ = 0;
  uint32_t bits_ = 1;                // width of exception values
  std::vector<uint64_t> bitmap_;     // 1 = exception at this position
  std::vector<uint64_t> rank_;       // exceptions before word w
  PackedVector exceptions_;          // packed exception vids, in row order
};

}  // namespace payg

#endif  // PAYG_ENCODING_SPARSE_VECTOR_H_
