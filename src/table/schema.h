#ifndef PAYG_TABLE_SCHEMA_H_
#define PAYG_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "columnar/value.h"

namespace payg {

// Per-column DDL: the preferred loading behaviour (fully resident or page
// loadable) is specified at creation time (§1) and the optional inverted
// index per column.
struct ColumnSchema {
  std::string name;
  ValueType type = ValueType::kInt64;
  bool page_loadable = false;
  bool with_index = false;
  bool primary_key = false;
  // §8: build the inverted index lazily, on demand from the workload,
  // instead of during the delta merge. Only applies to page loadable
  // columns with with_index.
  bool defer_index = false;
};

// Table DDL. `temperature_column` names the artificial aging column (§4):
// the application sets it to a date value to mark a business object closed;
// rows whose temperature falls into a cold range move to cold partitions.
struct TableSchema {
  std::string name;
  std::vector<ColumnSchema> columns;
  int temperature_column = -1;

  int ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return static_cast<int>(i);
    }
    return -1;
  }

  int PrimaryKeyIndex() const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].primary_key) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace payg

#endif  // PAYG_TABLE_SCHEMA_H_
