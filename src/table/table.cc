#include "table/table.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

namespace payg {

Table::Table(TableSchema schema, StorageManager* storage, ResourceManager* rm,
             const ExecOptions& exec_options)
    : schema_(std::move(schema)),
      storage_(storage),
      rm_(rm),
      executor_(std::make_unique<QueryExecutor>(exec_options)) {
  // Partition 0 is the hot partition; aging-aware tables start as a
  // partitioned table with only the hot partition (§4.2).
  partitions_.push_back(
      std::make_unique<Partition>(&schema_, 0, /*cold=*/false, storage_, rm_));
}

Result<std::unique_ptr<Table>> Table::OpenExisting(
    TableSchema schema, StorageManager* storage, ResourceManager* rm,
    const std::vector<PartitionManifest>& manifests,
    const ExecOptions& exec_options) {
  if (manifests.empty() || manifests[0].cold) {
    return Status::InvalidArgument("manifests must start with the hot "
                                   "partition");
  }
  auto table =
      std::make_unique<Table>(std::move(schema), storage, rm, exec_options);
  table->partitions_.clear();
  for (uint32_t i = 0; i < manifests.size(); ++i) {
    PAYG_ASSIGN_OR_RETURN(
        auto part,
        Partition::OpenExisting(&table->schema_, i, manifests[i].cold,
                                storage, rm, manifests[i].merge_generation,
                                manifests[i].main_rows));
    table->partitions_.push_back(std::move(part));
  }
  return table;
}

void Table::set_exec_options(const ExecOptions& options) {
  executor_ = std::make_unique<QueryExecutor>(options);
}

std::vector<PartitionManifest> Table::Manifests() const {
  std::vector<PartitionManifest> out;
  for (const auto& part : partitions_) {
    out.push_back(PartitionManifest{part->cold(), part->merge_generation(),
                                    part->main_row_count()});
  }
  return out;
}

Status Table::Insert(const std::vector<Value>& row) {
  return partitions_[0]->Insert(row);
}

Status Table::AddColdPartition() {
  partitions_.push_back(std::make_unique<Partition>(
      &schema_, static_cast<uint32_t>(partitions_.size()), /*cold=*/true,
      storage_, rm_));
  return Status::OK();
}

Result<uint64_t> Table::AgeRows(const Value& threshold) {
  if (schema_.temperature_column < 0) {
    return Status::FailedPrecondition("table has no temperature column");
  }
  if (partitions_.size() < 2) {
    return Status::FailedPrecondition(
        "add a cold partition before aging rows");
  }
  Partition* hot_part = partitions_[0].get();
  Partition* cold_part = partitions_.back().get();
  const int temp_col = schema_.temperature_column;

  // Find hot rows whose temperature is <= threshold.
  std::vector<RowPos> victims;
  PAYG_RETURN_IF_ERROR(FindMatchesRange(
      hot_part, temp_col,
      schema_.columns[temp_col].type == ValueType::kInt64
          ? Value(std::numeric_limits<int64_t>::min())
          : (schema_.columns[temp_col].type == ValueType::kDouble
                 ? Value(-std::numeric_limits<double>::infinity())
                 : Value(std::string())),
      threshold, /*ctx=*/nullptr, &victims));

  // The move is ordinary DML (§4.2): insert into the cold delta, delete
  // from hot. No reorganisation of existing data happens here.
  for (RowPos r : victims) {
    PAYG_ASSIGN_OR_RETURN(std::vector<Value> row, hot_part->GetRow(r));
    PAYG_RETURN_IF_ERROR(cold_part->Insert(row));
    PAYG_RETURN_IF_ERROR(hot_part->MarkDeleted(r));
  }
  return static_cast<uint64_t>(victims.size());
}

Status Table::MergeAll() {
  for (auto& part : partitions_) {
    PAYG_RETURN_IF_ERROR(part->Merge());
  }
  return Status::OK();
}

uint64_t Table::row_count() const {
  uint64_t n = 0;
  for (const auto& part : partitions_) n += part->row_count();
  return n;
}

uint64_t Table::visible_row_count() const {
  uint64_t n = 0;
  for (const auto& part : partitions_) n += part->visible_row_count();
  return n;
}

Result<std::vector<int>> Table::ResolveColumns(
    const std::vector<std::string>& names) const {
  std::vector<int> cols;
  if (names.empty()) {
    // SELECT *.
    for (size_t i = 0; i < schema_.columns.size(); ++i) {
      cols.push_back(static_cast<int>(i));
    }
    return cols;
  }
  for (const std::string& name : names) {
    int idx = schema_.ColumnIndex(name);
    if (idx < 0) return Status::NotFound("no such column: " + name);
    cols.push_back(idx);
  }
  return cols;
}

// ---------------------------------------------------------------------------
// Fan-out/merge drivers. Every query template reduces to one of these; the
// executor runs `matcher` per partition (inline when worker_threads = 0) and
// task i writes only slot i of the partials vector, so the merge below —
// always in partition-id order — reproduces the serial loop's output exactly.
// ---------------------------------------------------------------------------

Result<QueryResult> Table::ExecuteSelect(const PartitionMatcher& matcher,
                                         const std::vector<int>& select_cols,
                                         ExecContext* ctx) {
  const size_t n = partitions_.size();
  std::vector<QueryResult> partials(n);
  PAYG_RETURN_IF_ERROR(
      executor_->ForEach(ctx, n, [&](size_t i) -> Status {
        Partition* part = partitions_[i].get();
        CountPartitionVisited(ctx);
        std::vector<RowPos> rows;
        PAYG_RETURN_IF_ERROR(matcher(part, ctx, &rows));
        return MaterializeRows(part, rows, select_cols, ctx, &partials[i]);
      }));
  QueryResult result;
  size_t total = 0;
  for (const QueryResult& p : partials) total += p.rows.size();
  result.rows.reserve(total);
  for (QueryResult& p : partials) {
    for (auto& row : p.rows) result.rows.push_back(std::move(row));
  }
  return result;
}

Result<uint64_t> Table::ExecuteCount(const PartitionMatcher& matcher,
                                     ExecContext* ctx) {
  const size_t n = partitions_.size();
  std::vector<uint64_t> partials(n, 0);
  PAYG_RETURN_IF_ERROR(
      executor_->ForEach(ctx, n, [&](size_t i) -> Status {
        Partition* part = partitions_[i].get();
        CountPartitionVisited(ctx);
        std::vector<RowPos> rows;
        PAYG_RETURN_IF_ERROR(matcher(part, ctx, &rows));
        partials[i] = rows.size();
        return Status::OK();
      }));
  uint64_t count = 0;
  for (uint64_t c : partials) count += c;
  return count;
}

Result<std::vector<RowId>> Table::ExecuteRowIds(const PartitionMatcher& matcher,
                                                ExecContext* ctx) {
  const size_t n = partitions_.size();
  std::vector<std::vector<RowId>> partials(n);
  PAYG_RETURN_IF_ERROR(
      executor_->ForEach(ctx, n, [&](size_t i) -> Status {
        Partition* part = partitions_[i].get();
        CountPartitionVisited(ctx);
        std::vector<RowPos> rows;
        PAYG_RETURN_IF_ERROR(matcher(part, ctx, &rows));
        partials[i].reserve(rows.size());
        for (RowPos r : rows) partials[i].push_back(RowId{part->id(), r});
        return Status::OK();
      }));
  std::vector<RowId> ids;
  size_t total = 0;
  for (const auto& p : partials) total += p.size();
  ids.reserve(total);
  for (auto& p : partials) ids.insert(ids.end(), p.begin(), p.end());
  return ids;
}

Result<double> Table::ExecuteSum(const PartitionMatcher& matcher, int sum_col,
                                 ExecContext* ctx) {
  const ValueType stype = schema_.columns[sum_col].type;
  const size_t n = partitions_.size();
  // Per-partition partial sums merged in partition order: floating-point
  // addition is not associative, so both serial and parallel mode use this
  // exact grouping to make the results bit-identical.
  std::vector<double> partials(n, 0.0);
  PAYG_RETURN_IF_ERROR(
      executor_->ForEach(ctx, n, [&](size_t i) -> Status {
        Partition* part = partitions_[i].get();
        CountPartitionVisited(ctx);
        std::vector<RowPos> rows;
        PAYG_RETURN_IF_ERROR(matcher(part, ctx, &rows));
        if (rows.empty()) return Status::OK();
        const RowPos base = static_cast<RowPos>(part->main_row_count());
        std::unique_ptr<FragmentReader> reader;
        std::unordered_map<ValueId, double> memo;
        double sum = 0;
        for (RowPos r : rows) {
          double v;
          if (r < base) {
            if (reader == nullptr) {
              PAYG_ASSIGN_OR_RETURN(reader,
                                    part->main(sum_col)->NewReader(ctx));
            }
            PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->GetVid(r));
            auto it = memo.find(vid);
            if (it == memo.end()) {
              PAYG_ASSIGN_OR_RETURN(Value mv, reader->GetValueForVid(vid));
              double d = stype == ValueType::kInt64
                             ? static_cast<double>(mv.AsInt64())
                             : mv.AsDouble();
              it = memo.emplace(vid, d).first;
            }
            v = it->second;
          } else {
            DeltaFragment* delta = part->delta(sum_col);
            const Value& mv = delta->GetValue(delta->GetVid(r - base));
            v = stype == ValueType::kInt64 ? static_cast<double>(mv.AsInt64())
                                           : mv.AsDouble();
          }
          sum += v;
        }
        partials[i] = sum;
        return Status::OK();
      }));
  double sum = 0;
  for (double p : partials) sum += p;
  return sum;
}

Status Table::FindMatches(Partition* part, int col, const Value& value,
                          ExecContext* ctx, std::vector<RowPos>* out) {
  std::vector<RowPos> rows;
  // Main fragment: dictionary probe, then inverted index (Alg. 5) or data
  // vector scan (Alg. 1).
  if (part->main(col) != nullptr && part->main_row_count() > 0) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->FindValueId(value));
    if (vid != kInvalidValueId) {
      PAYG_RETURN_IF_ERROR(reader->FindRows(vid, &rows));
    }
  }
  // Delta fragment (always a full value-space scan of the delta).
  std::vector<RowPos> delta_rows;
  part->delta(col)->FindRows(value, &delta_rows);
  CountRowsScanned(ctx, part->delta(col)->row_count());
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  for (RowPos r : delta_rows) rows.push_back(base + r);
  // Visibility.
  for (RowPos r : rows) {
    if (part->IsVisible(r)) out->push_back(r);
  }
  return Status::OK();
}

Status Table::MultiFindMatches(Partition* part, int col,
                               const std::vector<Value>& probes,
                               ExecContext* ctx, std::vector<RowPos>* rows,
                               std::vector<std::vector<uint32_t>>* row_probes) {
  // Probe the dictionary once per distinct probe and remember which probe
  // indices each vid answers (duplicate probes share a vid; absent probes
  // drop out here and keep empty result slots).
  std::map<ValueId, std::vector<uint32_t>> vid_probes;
  if (part->main(col) != nullptr && part->main_row_count() > 0) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    for (uint32_t j = 0; j < probes.size(); ++j) {
      PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->FindValueId(probes[j]));
      if (vid != kInvalidValueId) vid_probes[vid].push_back(j);
    }
    if (!vid_probes.empty()) {
      std::vector<ValueId> vids;
      vids.reserve(vid_probes.size());
      for (const auto& [vid, unused] : vid_probes) vids.push_back(vid);
      // search_in dispatches over the merged sorted probe set — the scan
      // every probe of this batch shares. Probe sets are chunked to the
      // size the SIMD tiers evaluate exactly (one cmpeq per probe); beyond
      // that the kernels degrade to a band prefilter + scalar membership
      // check per candidate, which for a wide probe band costs more than a
      // second pass over the (now hot) pages.
      constexpr size_t kProbeChunk = 16;
      std::vector<RowPos> matched;
      for (size_t c = 0; c < vids.size(); c += kProbeChunk) {
        std::vector<ValueId> chunk(
            vids.begin() + static_cast<ptrdiff_t>(c),
            vids.begin() +
                static_cast<ptrdiff_t>(std::min(c + kProbeChunk, vids.size())));
        PAYG_RETURN_IF_ERROR(reader->SearchVidSet(
            0, static_cast<RowPos>(part->main_row_count()), chunk, &matched));
      }
      // Chunks interleave in row space; restore ascending row order so the
      // per-probe results match what individual lookups would return.
      std::sort(matched.begin(), matched.end());
      for (RowPos r : matched) {
        if (!part->IsVisible(r)) continue;
        // Attribute the row to its probes. The row's pages are pinned hot
        // from the search, so re-decoding the vid is cheap.
        PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->GetVid(r));
        auto it = vid_probes.find(vid);
        PAYG_ASSERT(it != vid_probes.end());
        rows->push_back(r);
        row_probes->push_back(it->second);
      }
    }
  }
  // Delta: one value-space pass over the delta rows for the whole batch
  // (individual lookups scan it once per probe).
  std::map<std::string, std::vector<uint32_t>> key_probes;
  for (uint32_t j = 0; j < probes.size(); ++j) {
    key_probes[probes[j].EncodeKey()].push_back(j);
  }
  DeltaFragment* delta = part->delta(col);
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  const uint64_t delta_rows = delta->row_count();
  for (uint64_t r = 0; r < delta_rows; ++r) {
    const Value& v = delta->GetValue(delta->GetVid(static_cast<RowPos>(r)));
    auto it = key_probes.find(v.EncodeKey());
    if (it == key_probes.end()) continue;
    const RowPos pos = base + static_cast<RowPos>(r);
    if (!part->IsVisible(pos)) continue;
    rows->push_back(pos);
    row_probes->push_back(it->second);
  }
  CountRowsScanned(ctx, delta_rows);
  return Status::OK();
}

Status Table::FindMatchesRange(Partition* part, int col, const Value& lo,
                               const Value& hi, ExecContext* ctx,
                               std::vector<RowPos>* out) {
  std::vector<RowPos> rows;
  if (part->main(col) != nullptr && part->main_row_count() > 0) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    PAYG_ASSIGN_OR_RETURN(ValueId vlo, reader->LowerBoundVid(lo));
    PAYG_ASSIGN_OR_RETURN(ValueId vhi_excl, reader->UpperBoundVid(hi));
    if (vlo < vhi_excl) {
      PAYG_RETURN_IF_ERROR(reader->SearchVidRange(
          0, static_cast<RowPos>(part->main_row_count()), vlo, vhi_excl - 1,
          &rows));
    }
  }
  std::vector<RowPos> delta_rows;
  part->delta(col)->FindRowsInRange(lo, hi, &delta_rows);
  CountRowsScanned(ctx, part->delta(col)->row_count());
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  for (RowPos r : delta_rows) rows.push_back(base + r);
  for (RowPos r : rows) {
    if (part->IsVisible(r)) out->push_back(r);
  }
  return Status::OK();
}

Status Table::FindMatchesIn(Partition* part, int col,
                            const std::vector<Value>& values, ExecContext* ctx,
                            std::vector<RowPos>* out) {
  std::vector<RowPos> rows;
  if (part->main(col) != nullptr && part->main_row_count() > 0) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    // Translate the IN-list into a sorted vid set through the dictionary;
    // absent values simply drop out.
    std::vector<ValueId> vids;
    for (const Value& v : values) {
      PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->FindValueId(v));
      if (vid != kInvalidValueId) vids.push_back(vid);
    }
    std::sort(vids.begin(), vids.end());
    vids.erase(std::unique(vids.begin(), vids.end()), vids.end());
    if (!vids.empty()) {
      PAYG_RETURN_IF_ERROR(reader->SearchVidSet(
          0, static_cast<RowPos>(part->main_row_count()), vids, &rows));
    }
  }
  std::vector<RowPos> delta_rows;
  part->delta(col)->FindRowsMatching(
      [&values](const Value& v) {
        for (const Value& probe : values) {
          if (v == probe) return true;
        }
        return false;
      },
      &delta_rows);
  CountRowsScanned(ctx, part->delta(col)->row_count());
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  for (RowPos r : delta_rows) rows.push_back(base + r);
  for (RowPos r : rows) {
    if (part->IsVisible(r)) out->push_back(r);
  }
  return Status::OK();
}

Status Table::FindMatchesPrefix(Partition* part, int col,
                                const std::string& prefix, ExecContext* ctx,
                                std::vector<RowPos>* out) {
  std::vector<RowPos> rows;
  if (part->main(col) != nullptr && part->main_row_count() > 0) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    // [LowerBound(prefix), LowerBound(successor)) is exactly the vid range
    // of strings starting with `prefix` — the dictionary is order
    // preserving. The successor is the prefix with its last byte bumped
    // (dropping trailing 0xFF bytes).
    PAYG_ASSIGN_OR_RETURN(ValueId vlo,
                          reader->LowerBoundVid(Value(prefix)));
    std::string successor = prefix;
    while (!successor.empty() &&
           static_cast<unsigned char>(successor.back()) == 0xFF) {
      successor.pop_back();
    }
    ValueId vhi_excl;
    if (successor.empty()) {
      // Prefix of all-0xFF bytes: everything >= prefix matches.
      vhi_excl = static_cast<ValueId>(part->main(col)->dict_size());
    } else {
      ++successor.back();
      PAYG_ASSIGN_OR_RETURN(vhi_excl,
                            reader->LowerBoundVid(Value(successor)));
    }
    if (vlo < vhi_excl) {
      PAYG_RETURN_IF_ERROR(reader->SearchVidRange(
          0, static_cast<RowPos>(part->main_row_count()), vlo, vhi_excl - 1,
          &rows));
    }
  }
  std::vector<RowPos> delta_rows;
  part->delta(col)->FindRowsMatching(
      [&prefix](const Value& v) {
        const std::string& s = v.AsString();
        return s.size() >= prefix.size() &&
               s.compare(0, prefix.size(), prefix) == 0;
      },
      &delta_rows);
  CountRowsScanned(ctx, part->delta(col)->row_count());
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  for (RowPos r : delta_rows) rows.push_back(base + r);
  for (RowPos r : rows) {
    if (part->IsVisible(r)) out->push_back(r);
  }
  return Status::OK();
}

Status Table::MaterializeRows(Partition* part, const std::vector<RowPos>& rows,
                              const std::vector<int>& select_cols,
                              ExecContext* ctx, QueryResult* result) {
  if (rows.empty()) return Status::OK();
  const size_t first_out = result->rows.size();
  result->rows.resize(first_out + rows.size());
  for (auto& row : result->rows) row.reserve(select_cols.size());

  const RowPos base = static_cast<RowPos>(part->main_row_count());
  // Late materialization (§1): one column at a time, so each column's
  // dictionary pages are touched once per query, not once per row.
  for (int col : select_cols) {
    std::unique_ptr<FragmentReader> reader;
    std::unordered_map<ValueId, Value> memo;  // materialize each distinct vid once
    for (size_t i = 0; i < rows.size(); ++i) {
      Value v;
      if (rows[i] < base) {
        if (reader == nullptr) {
          PAYG_ASSIGN_OR_RETURN(reader, part->main(col)->NewReader(ctx));
        }
        PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->GetVid(rows[i]));
        auto it = memo.find(vid);
        if (it == memo.end()) {
          PAYG_ASSIGN_OR_RETURN(Value mv, reader->GetValueForVid(vid));
          it = memo.emplace(vid, std::move(mv)).first;
        }
        v = it->second;
      } else {
        DeltaFragment* delta = part->delta(col);
        v = delta->GetValue(delta->GetVid(rows[i] - base));
      }
      result->rows[first_out + i].push_back(std::move(v));
    }
  }
  return Status::OK();
}

Result<QueryResult> Table::SelectByValue(
    const std::string& filter_column, const Value& value,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  return ExecuteSelect(
      [this, col, &value](Partition* part, ExecContext* c,
                          std::vector<RowPos>* rows) {
        return FindMatches(part, col, value, c, rows);
      },
      select_cols, ctx);
}

Result<uint64_t> Table::CountByValue(const std::string& filter_column,
                                     const Value& value, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  return ExecuteCount(
      [this, col, &value](Partition* part, ExecContext* c,
                          std::vector<RowPos>* rows) {
        return FindMatches(part, col, value, c, rows);
      },
      ctx);
}

Result<std::vector<RowId>> Table::RowIdsByValue(
    const std::string& filter_column, const Value& value, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  return ExecuteRowIds(
      [this, col, &value](Partition* part, ExecContext* c,
                          std::vector<RowPos>* rows) {
        return FindMatches(part, col, value, c, rows);
      },
      ctx);
}

namespace {

// Shared probe validation for the multi-lookup entry points: a mistyped
// probe would hit the dictionary's typed-compare assertion deep in the
// engine, so reject it at the API boundary (the server forwards untrusted
// client values here).
Status CheckProbeTypes(const TableSchema& schema, int col,
                       const std::vector<Value>& probes) {
  for (const Value& p : probes) {
    if (p.type() != schema.columns[col].type) {
      return Status::InvalidArgument(
          "probe type does not match column " + schema.columns[col].name);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<QueryResult>> Table::MultiSelectByValue(
    const std::string& filter_column, const std::vector<Value>& probes,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  PAYG_RETURN_IF_ERROR(CheckProbeTypes(schema_, col, probes));
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  if (probes.empty()) return std::vector<QueryResult>{};
  const size_t n = partitions_.size();
  // partials[i][j] = probe j's rows from partition i; task i writes slot i.
  std::vector<std::vector<QueryResult>> partials(n);
  PAYG_RETURN_IF_ERROR(executor_->ForEach(ctx, n, [&](size_t i) -> Status {
    Partition* part = partitions_[i].get();
    CountPartitionVisited(ctx);
    std::vector<RowPos> rows;
    std::vector<std::vector<uint32_t>> row_probes;
    PAYG_RETURN_IF_ERROR(
        MultiFindMatches(part, col, probes, ctx, &rows, &row_probes));
    // One materialization pass over the union of matched rows: each
    // column's pages and dictionary entries are touched once for the whole
    // batch, then the rows fan back out to their probes.
    QueryResult united;
    PAYG_RETURN_IF_ERROR(
        MaterializeRows(part, rows, select_cols, ctx, &united));
    partials[i].resize(probes.size());
    for (size_t k = 0; k < rows.size(); ++k) {
      for (uint32_t j : row_probes[k]) {
        partials[i][j].rows.push_back(united.rows[k]);
      }
    }
    return Status::OK();
  }));
  std::vector<QueryResult> out(probes.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < probes.size(); ++j) {
      for (auto& row : partials[i][j].rows) {
        out[j].rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

Result<std::vector<uint64_t>> Table::MultiCountByValue(
    const std::string& filter_column, const std::vector<Value>& probes,
    ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  PAYG_RETURN_IF_ERROR(CheckProbeTypes(schema_, col, probes));
  if (probes.empty()) return std::vector<uint64_t>{};
  const size_t n = partitions_.size();
  std::vector<std::vector<uint64_t>> partials(n);
  PAYG_RETURN_IF_ERROR(executor_->ForEach(ctx, n, [&](size_t i) -> Status {
    Partition* part = partitions_[i].get();
    CountPartitionVisited(ctx);
    std::vector<RowPos> rows;
    std::vector<std::vector<uint32_t>> row_probes;
    PAYG_RETURN_IF_ERROR(
        MultiFindMatches(part, col, probes, ctx, &rows, &row_probes));
    partials[i].assign(probes.size(), 0);
    for (const auto& js : row_probes) {
      for (uint32_t j : js) ++partials[i][j];
    }
    return Status::OK();
  }));
  std::vector<uint64_t> out(probes.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < probes.size(); ++j) out[j] += partials[i][j];
  }
  return out;
}

Result<QueryResult> Table::SelectRange(
    const std::string& filter_column, const Value& lo, const Value& hi,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  return ExecuteSelect(
      [this, col, &lo, &hi](Partition* part, ExecContext* c,
                            std::vector<RowPos>* rows) {
        return FindMatchesRange(part, col, lo, hi, c, rows);
      },
      select_cols, ctx);
}

Result<double> Table::SumRange(const std::string& filter_column,
                               const Value& lo, const Value& hi,
                               const std::string& sum_column,
                               ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  int scol = schema_.ColumnIndex(sum_column);
  if (scol < 0) return Status::NotFound("no such column: " + sum_column);
  if (schema_.columns[scol].type == ValueType::kString) {
    return Status::InvalidArgument("SUM over a string column");
  }
  return ExecuteSum(
      [this, col, &lo, &hi](Partition* part, ExecContext* c,
                            std::vector<RowPos>* rows) {
        return FindMatchesRange(part, col, lo, hi, c, rows);
      },
      scol, ctx);
}

namespace {

// Value-space evaluation of a predicate (delta rows and IN narrowing).
bool EvalPredicate(const Predicate& pred, const Value& v) {
  switch (pred.op) {
    case Predicate::Op::kEq:
      return v == pred.value;
    case Predicate::Op::kBetween:
      return v.Compare(pred.lo) >= 0 && v.Compare(pred.hi) <= 0;
    case Predicate::Op::kIn:
      for (const Value& probe : pred.values) {
        if (v == probe) return true;
      }
      return false;
    case Predicate::Op::kPrefix: {
      const std::string& s = v.AsString();
      return s.size() >= pred.prefix.size() &&
             s.compare(0, pred.prefix.size(), pred.prefix) == 0;
    }
  }
  return false;
}

}  // namespace

Status Table::FindByPredicate(Partition* part, const Predicate& pred,
                              ExecContext* ctx, std::vector<RowPos>* out) {
  int col = schema_.ColumnIndex(pred.column);
  if (col < 0) return Status::NotFound("no such column: " + pred.column);
  switch (pred.op) {
    case Predicate::Op::kEq:
      return FindMatches(part, col, pred.value, ctx, out);
    case Predicate::Op::kBetween:
      return FindMatchesRange(part, col, pred.lo, pred.hi, ctx, out);
    case Predicate::Op::kIn:
      return FindMatchesIn(part, col, pred.values, ctx, out);
    case Predicate::Op::kPrefix:
      if (schema_.columns[col].type != ValueType::kString) {
        return Status::InvalidArgument("prefix predicate on non-string "
                                       "column");
      }
      return FindMatchesPrefix(part, col, pred.prefix, ctx, out);
  }
  return Status::Internal("unknown predicate op");
}

Status Table::NarrowByPredicate(Partition* part, const Predicate& pred,
                                const std::vector<RowPos>& in,
                                ExecContext* ctx, std::vector<RowPos>* out) {
  int col = schema_.ColumnIndex(pred.column);
  if (col < 0) return Status::NotFound("no such column: " + pred.column);

  // Split candidates into main rows (narrowed via vid-space row-list
  // search) and delta rows (narrowed in value space).
  const RowPos base = static_cast<RowPos>(part->main_row_count());
  std::vector<RowPos> main_rows, delta_rows;
  for (RowPos r : in) {
    (r < base ? main_rows : delta_rows).push_back(r);
  }

  std::vector<RowPos> kept;
  if (!main_rows.empty()) {
    PAYG_ASSIGN_OR_RETURN(auto reader, part->main(col)->NewReader(ctx));
    switch (pred.op) {
      case Predicate::Op::kEq: {
        PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->FindValueId(pred.value));
        if (vid != kInvalidValueId) {
          PAYG_RETURN_IF_ERROR(reader->FilterRows(main_rows, vid, vid, &kept));
        }
        break;
      }
      case Predicate::Op::kBetween: {
        PAYG_ASSIGN_OR_RETURN(ValueId vlo, reader->LowerBoundVid(pred.lo));
        PAYG_ASSIGN_OR_RETURN(ValueId vhi_excl, reader->UpperBoundVid(pred.hi));
        if (vlo < vhi_excl) {
          PAYG_RETURN_IF_ERROR(
              reader->FilterRows(main_rows, vlo, vhi_excl - 1, &kept));
        }
        break;
      }
      case Predicate::Op::kIn: {
        std::vector<ValueId> vids;
        for (const Value& v : pred.values) {
          PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->FindValueId(v));
          if (vid != kInvalidValueId) vids.push_back(vid);
        }
        std::sort(vids.begin(), vids.end());
        for (RowPos r : main_rows) {
          PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->GetVid(r));
          if (std::binary_search(vids.begin(), vids.end(), vid)) {
            kept.push_back(r);
          }
        }
        CountRowsScanned(ctx, main_rows.size());
        break;
      }
      case Predicate::Op::kPrefix: {
        if (schema_.columns[col].type != ValueType::kString) {
          return Status::InvalidArgument("prefix predicate on non-string "
                                         "column");
        }
        PAYG_ASSIGN_OR_RETURN(ValueId vlo,
                              reader->LowerBoundVid(Value(pred.prefix)));
        std::string successor = pred.prefix;
        while (!successor.empty() &&
               static_cast<unsigned char>(successor.back()) == 0xFF) {
          successor.pop_back();
        }
        ValueId vhi_excl;
        if (successor.empty()) {
          vhi_excl = static_cast<ValueId>(part->main(col)->dict_size());
        } else {
          ++successor.back();
          PAYG_ASSIGN_OR_RETURN(vhi_excl,
                                reader->LowerBoundVid(Value(successor)));
        }
        if (vlo < vhi_excl) {
          PAYG_RETURN_IF_ERROR(
              reader->FilterRows(main_rows, vlo, vhi_excl - 1, &kept));
        }
        break;
      }
    }
  }
  DeltaFragment* delta = part->delta(col);
  for (RowPos r : delta_rows) {
    if (EvalPredicate(pred, delta->GetValue(delta->GetVid(r - base)))) {
      kept.push_back(r);
    }
  }
  CountRowsScanned(ctx, delta_rows.size());
  std::sort(kept.begin(), kept.end());
  out->insert(out->end(), kept.begin(), kept.end());
  return Status::OK();
}

Status Table::FindMatchesWhere(Partition* part,
                               const std::vector<Predicate>& conjuncts,
                               ExecContext* ctx, std::vector<RowPos>* out) {
  PAYG_ASSERT(!conjuncts.empty());
  std::vector<RowPos> candidates;
  PAYG_RETURN_IF_ERROR(FindByPredicate(part, conjuncts[0], ctx, &candidates));
  for (size_t i = 1; i < conjuncts.size() && !candidates.empty(); ++i) {
    std::vector<RowPos> next;
    PAYG_RETURN_IF_ERROR(
        NarrowByPredicate(part, conjuncts[i], candidates, ctx, &next));
    candidates = std::move(next);
  }
  out->insert(out->end(), candidates.begin(), candidates.end());
  return Status::OK();
}

Result<QueryResult> Table::SelectWhere(
    const std::vector<Predicate>& conjuncts,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("SelectWhere needs at least one conjunct");
  }
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  return ExecuteSelect(
      [this, &conjuncts](Partition* part, ExecContext* c,
                         std::vector<RowPos>* rows) {
        return FindMatchesWhere(part, conjuncts, c, rows);
      },
      select_cols, ctx);
}

Result<uint64_t> Table::CountWhere(const std::vector<Predicate>& conjuncts,
                                   ExecContext* ctx) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument("CountWhere needs at least one conjunct");
  }
  return ExecuteCount(
      [this, &conjuncts](Partition* part, ExecContext* c,
                         std::vector<RowPos>* rows) {
        return FindMatchesWhere(part, conjuncts, c, rows);
      },
      ctx);
}

Result<QueryResult> Table::SelectIn(
    const std::string& filter_column, const std::vector<Value>& values,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  return ExecuteSelect(
      [this, col, &values](Partition* part, ExecContext* c,
                           std::vector<RowPos>* rows) {
        return FindMatchesIn(part, col, values, c, rows);
      },
      select_cols, ctx);
}

Result<uint64_t> Table::CountIn(const std::string& filter_column,
                                const std::vector<Value>& values,
                                ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  return ExecuteCount(
      [this, col, &values](Partition* part, ExecContext* c,
                           std::vector<RowPos>* rows) {
        return FindMatchesIn(part, col, values, c, rows);
      },
      ctx);
}

Result<QueryResult> Table::SelectPrefix(
    const std::string& filter_column, const std::string& prefix,
    const std::vector<std::string>& select_columns, ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  if (schema_.columns[col].type != ValueType::kString) {
    return Status::InvalidArgument("prefix predicate on non-string column");
  }
  PAYG_ASSIGN_OR_RETURN(std::vector<int> select_cols,
                        ResolveColumns(select_columns));
  return ExecuteSelect(
      [this, col, &prefix](Partition* part, ExecContext* c,
                           std::vector<RowPos>* rows) {
        return FindMatchesPrefix(part, col, prefix, c, rows);
      },
      select_cols, ctx);
}

Result<uint64_t> Table::CountPrefix(const std::string& filter_column,
                                    const std::string& prefix,
                                    ExecContext* ctx) {
  int col = schema_.ColumnIndex(filter_column);
  if (col < 0) return Status::NotFound("no such column: " + filter_column);
  if (schema_.columns[col].type != ValueType::kString) {
    return Status::InvalidArgument("prefix predicate on non-string column");
  }
  return ExecuteCount(
      [this, col, &prefix](Partition* part, ExecContext* c,
                           std::vector<RowPos>* rows) {
        return FindMatchesPrefix(part, col, prefix, c, rows);
      },
      ctx);
}

void Table::UnloadAll() {
  for (auto& part : partitions_) part->UnloadAll();
}

uint64_t Table::ResidentBytes() const {
  uint64_t bytes = 0;
  for (const auto& part : partitions_) bytes += part->ResidentBytes();
  return bytes;
}

std::vector<Table::ColumnStats> Table::CollectColumnStats() const {
  std::vector<ColumnStats> out;
  for (const auto& part : partitions_) {
    for (size_t c = 0; c < schema_.columns.size(); ++c) {
      const ColumnSchema& cs = schema_.columns[c];
      ColumnStats stats;
      stats.table = schema_.name;
      stats.column = cs.name;
      stats.partition = part->id();
      stats.cold = part->cold();
      stats.page_loadable = cs.page_loadable;
      stats.delta_rows = part->delta(static_cast<int>(c))->row_count();
      MainFragment* main =
          const_cast<Partition*>(part.get())->main(static_cast<int>(c));
      if (main != nullptr) {
        stats.has_index = main->has_index();
        stats.main_rows = main->row_count();
        stats.dict_size = main->dict_size();
        stats.resident_bytes = main->ResidentBytes();
        stats.codec = main->codec_name();
      }
      out.push_back(std::move(stats));
    }
  }
  return out;
}

}  // namespace payg
