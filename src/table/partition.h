#ifndef PAYG_TABLE_PARTITION_H_
#define PAYG_TABLE_PARTITION_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "columnar/delta_fragment.h"
#include "columnar/fragment.h"
#include "storage/storage_manager.h"
#include "table/schema.h"

namespace payg {

// One horizontal partition of a table: per column a main fragment (read
// optimized; absent until the first delta merge) and a delta fragment (write
// optimized). Cold partitions build their mains as page loadable columns in
// the cold paged pool (§4.1).
//
// Row space: main rows first (0 .. main_rows-1), then delta rows. A deletion
// bitmap provides row visibility; the delta merge compacts deleted rows
// away.
class Partition {
 public:
  Partition(const TableSchema* schema, uint32_t partition_id, bool cold,
            StorageManager* storage, ResourceManager* rm);

  // Restart path: re-attaches the persisted main fragments of generation
  // `merge_generation` with `main_rows` rows (deltas start empty; the
  // checkpoint that wrote the catalog merged them first).
  static Result<std::unique_ptr<Partition>> OpenExisting(
      const TableSchema* schema, uint32_t partition_id, bool cold,
      StorageManager* storage, ResourceManager* rm, uint64_t merge_generation,
      uint64_t main_rows);

  uint64_t merge_generation() const { return merge_generation_; }

  uint32_t id() const { return id_; }
  bool cold() const { return cold_; }
  uint64_t main_row_count() const { return main_rows_; }
  uint64_t delta_row_count() const;
  uint64_t row_count() const { return main_rows_ + delta_row_count(); }
  uint64_t visible_row_count() const { return row_count() - deleted_count_; }

  // Appends one row (all changes are appends into the delta, §2).
  Status Insert(const std::vector<Value>& row);

  // Initial-load fast path: installs a pre-encoded main fragment for one
  // column, bypassing the delta. All columns must be loaded with the same
  // row count and the partition must still be empty. The dictionary must be
  // sorted and unique; vids reference it.
  Status BulkLoadColumn(int col, const std::vector<Value>& sorted_dict,
                        const std::vector<ValueId>& vids);

  // Marks a row invisible. The data stays until the next delta merge.
  Status MarkDeleted(RowPos rpos);

  bool IsVisible(RowPos rpos) const {
    return rpos < deleted_.size() ? deleted_[rpos] == 0 : true;
  }

  // Materializes the full row at `rpos` (visible or not). `ctx` (optional)
  // attributes the per-column reads to the owning query.
  Result<std::vector<Value>> GetRow(RowPos rpos, ExecContext* ctx = nullptr);

  // Moves all committed delta rows into newly built main fragments,
  // compacting deleted rows, and resets the deltas (§2). Mains are rebuilt
  // per the schema's loading preference.
  Status Merge();

  // Access to fragments for the query executor.
  MainFragment* main(int col) { return mains_[col].get(); }
  DeltaFragment* delta(int col) { return deltas_[col].get(); }

  // Unloads every main fragment (cold restart simulation in benchmarks).
  void UnloadAll();

  // Bytes currently resident across all main fragments.
  uint64_t ResidentBytes() const;

 private:
  std::string FragmentName(int col) const;

  const TableSchema* schema_;
  uint32_t id_;
  bool cold_;
  StorageManager* storage_;
  ResourceManager* rm_;

  uint64_t main_rows_ = 0;
  uint64_t merge_generation_ = 0;
  std::vector<std::unique_ptr<MainFragment>> mains_;
  std::vector<std::unique_ptr<DeltaFragment>> deltas_;
  std::vector<uint8_t> deleted_;  // 1 = deleted; indexed by partition row
  uint64_t deleted_count_ = 0;
};

}  // namespace payg

#endif  // PAYG_TABLE_PARTITION_H_
