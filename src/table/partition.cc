#include "table/partition.h"

#include <algorithm>
#include <map>

#include "paged/fragment_factory.h"

namespace payg {

Partition::Partition(const TableSchema* schema, uint32_t partition_id,
                     bool cold, StorageManager* storage, ResourceManager* rm)
    : schema_(schema),
      id_(partition_id),
      cold_(cold),
      storage_(storage),
      rm_(rm) {
  mains_.resize(schema_->columns.size());
  for (const ColumnSchema& col : schema_->columns) {
    auto delta = std::make_unique<DeltaFragment>(col.type);
    // Columns with an inverted index keep one on the delta fragment too
    // (§2: each fragment may have a memory resident inverted index).
    if (col.with_index) delta->EnableIndex();
    deltas_.push_back(std::move(delta));
  }
}

Result<std::unique_ptr<Partition>> Partition::OpenExisting(
    const TableSchema* schema, uint32_t partition_id, bool cold,
    StorageManager* storage, ResourceManager* rm, uint64_t merge_generation,
    uint64_t main_rows) {
  auto part = std::make_unique<Partition>(schema, partition_id, cold, storage,
                                          rm);
  part->merge_generation_ = merge_generation;
  part->main_rows_ = main_rows;
  part->deleted_.assign(main_rows, 0);
  for (size_t c = 0; c < schema->columns.size(); ++c) {
    const ColumnSchema& cs = schema->columns[c];
    FragmentSpec spec;
    spec.page_loadable = cs.page_loadable;
    spec.with_index = cs.with_index;
    spec.defer_index = cs.defer_index;
    spec.pool = cold ? PoolId::kColdPagedPool : PoolId::kPagedPool;
    PAYG_ASSIGN_OR_RETURN(
        part->mains_[c],
        OpenMainFragment(storage, rm,
                         part->FragmentName(static_cast<int>(c)), spec));
    if (part->mains_[c]->row_count() != main_rows) {
      return Status::Corruption("catalog row count mismatch in " +
                                part->FragmentName(static_cast<int>(c)));
    }
  }
  return part;
}

uint64_t Partition::delta_row_count() const {
  return deltas_.empty() ? 0 : deltas_[0]->row_count();
}

Status Partition::Insert(const std::vector<Value>& row) {
  if (row.size() != schema_->columns.size()) {
    return Status::InvalidArgument("row width does not match schema");
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].type() != schema_->columns[c].type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_->columns[c].name);
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    deltas_[c]->Append(row[c]);
  }
  deleted_.push_back(0);
  return Status::OK();
}

Status Partition::BulkLoadColumn(int col, const std::vector<Value>& sorted_dict,
                                 const std::vector<ValueId>& vids) {
  if (col < 0 || static_cast<size_t>(col) >= schema_->columns.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  if (delta_row_count() > 0) {
    return Status::FailedPrecondition("bulk load into a non-empty delta");
  }
  if (main_rows_ != 0 && main_rows_ != vids.size()) {
    return Status::InvalidArgument("bulk-loaded columns differ in row count");
  }
  const ColumnSchema& cs = schema_->columns[col];
  FragmentSpec spec;
  spec.page_loadable = cs.page_loadable;
  spec.with_index = cs.with_index;
  spec.defer_index = cs.defer_index;
  spec.pool = cold_ ? PoolId::kColdPagedPool : PoolId::kPagedPool;
  PAYG_ASSIGN_OR_RETURN(
      mains_[col], BuildMainFragment(storage_, rm_, FragmentName(col),
                                     cs.type, sorted_dict, vids, spec));
  if (main_rows_ == 0) {
    main_rows_ = vids.size();
    deleted_.assign(main_rows_, 0);
    deleted_count_ = 0;
  }
  return Status::OK();
}

Status Partition::MarkDeleted(RowPos rpos) {
  if (rpos >= row_count()) return Status::OutOfRange("row position");
  if (deleted_[rpos] == 0) {
    deleted_[rpos] = 1;
    ++deleted_count_;
  }
  return Status::OK();
}

Result<std::vector<Value>> Partition::GetRow(RowPos rpos, ExecContext* ctx) {
  if (rpos >= row_count()) return Status::OutOfRange("row position");
  std::vector<Value> row;
  row.reserve(schema_->columns.size());
  if (rpos < main_rows_) {
    for (size_t c = 0; c < schema_->columns.size(); ++c) {
      PAYG_ASSIGN_OR_RETURN(auto reader, mains_[c]->NewReader(ctx));
      PAYG_ASSIGN_OR_RETURN(ValueId vid, reader->GetVid(rpos));
      PAYG_ASSIGN_OR_RETURN(Value v, reader->GetValueForVid(vid));
      row.push_back(std::move(v));
    }
  } else {
    RowPos drow = rpos - static_cast<RowPos>(main_rows_);
    for (size_t c = 0; c < schema_->columns.size(); ++c) {
      row.push_back(deltas_[c]->GetValue(deltas_[c]->GetVid(drow)));
    }
  }
  return row;
}

std::string Partition::FragmentName(int col) const {
  return schema_->name + "_p" + std::to_string(id_) + "_c" +
         std::to_string(col) + "_g" + std::to_string(merge_generation_);
}

Status Partition::Merge() {
  const uint64_t total = row_count();
  const uint64_t new_rows = total - deleted_count_;
  // Chain names of the generation being replaced, vacuumed after the swap.
  std::vector<std::string> old_names;
  for (size_t c = 0; c < schema_->columns.size(); ++c) {
    if (mains_[c] != nullptr) {
      old_names.push_back(FragmentName(static_cast<int>(c)));
    }
  }
  ++merge_generation_;

  std::vector<std::unique_ptr<MainFragment>> new_mains(
      schema_->columns.size());
  for (size_t c = 0; c < schema_->columns.size(); ++c) {
    const ColumnSchema& col = schema_->columns[c];

    // Materialize the surviving values of this column: old main rows first,
    // then delta rows, skipping deleted rows.
    std::vector<Value> values;
    values.reserve(new_rows);
    if (mains_[c] != nullptr && main_rows_ > 0) {
      PAYG_ASSIGN_OR_RETURN(auto reader, mains_[c]->NewReader());
      std::vector<ValueId> vids;
      PAYG_RETURN_IF_ERROR(
          reader->MGetVids(0, static_cast<RowPos>(main_rows_), &vids));
      // Materialize each distinct vid once.
      std::map<ValueId, Value> memo;
      for (uint64_t r = 0; r < main_rows_; ++r) {
        if (deleted_[r] != 0) continue;
        auto it = memo.find(vids[r]);
        if (it == memo.end()) {
          PAYG_ASSIGN_OR_RETURN(Value v, reader->GetValueForVid(vids[r]));
          it = memo.emplace(vids[r], std::move(v)).first;
        }
        values.push_back(it->second);
      }
    }
    const DeltaFragment& delta = *deltas_[c];
    for (uint64_t d = 0; d < delta.row_count(); ++d) {
      if (deleted_[main_rows_ + d] != 0) continue;
      values.push_back(delta.GetValue(delta.GetVid(static_cast<RowPos>(d))));
    }

    // Sorted unique dictionary; vids assigned in value order (§2: the main
    // dictionary is order-preserving, built during delta merge).
    std::vector<Value> dict_values = values;
    std::sort(dict_values.begin(), dict_values.end(),
              [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
    dict_values.erase(std::unique(dict_values.begin(), dict_values.end()),
                      dict_values.end());
    std::vector<ValueId> vids;
    vids.reserve(values.size());
    for (const Value& v : values) {
      auto it = std::lower_bound(
          dict_values.begin(), dict_values.end(), v,
          [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
      vids.push_back(static_cast<ValueId>(it - dict_values.begin()));
    }

    FragmentSpec spec;
    spec.page_loadable = col.page_loadable;
    spec.with_index = col.with_index;
    spec.defer_index = col.defer_index;
    spec.pool = cold_ ? PoolId::kColdPagedPool : PoolId::kPagedPool;
    PAYG_ASSIGN_OR_RETURN(
        new_mains[c],
        BuildMainFragment(storage_, rm_, FragmentName(static_cast<int>(c)),
                          col.type, dict_values, vids, spec));
  }

  // Atomic swap: new mains in, deltas reset, visibility bitmap compacted.
  mains_ = std::move(new_mains);
  for (auto& delta : deltas_) delta->Clear();
  main_rows_ = new_rows;
  deleted_.assign(new_rows, 0);
  deleted_count_ = 0;
  // Vacuum the replaced generation's chains (the old fragments were
  // destroyed by the swap above, closing their files).
  for (const std::string& name : old_names) {
    DropFragmentChains(storage_, name);
  }
  return Status::OK();
}

void Partition::UnloadAll() {
  for (auto& main : mains_) {
    if (main != nullptr) main->Unload();
  }
}

uint64_t Partition::ResidentBytes() const {
  uint64_t bytes = 0;
  for (const auto& main : mains_) {
    if (main != nullptr) bytes += main->ResidentBytes();
  }
  for (const auto& delta : deltas_) bytes += delta->MemoryBytes();
  return bytes;
}

}  // namespace payg
