#ifndef PAYG_TABLE_TABLE_H_
#define PAYG_TABLE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/query_executor.h"
#include "table/partition.h"
#include "table/schema.h"

namespace payg {

// Identifies a row across partitions (the executor's ROWID).
struct RowId {
  uint32_t partition = 0;
  RowPos row = 0;

  bool operator==(const RowId& other) const {
    return partition == other.partition && row == other.row;
  }
};

// Materialized query result.
struct QueryResult {
  std::vector<std::vector<Value>> rows;

  bool operator==(const QueryResult& other) const {
    return rows == other.rows;
  }
};

// One conjunct of a WHERE clause. Conjunctive queries evaluate the first
// predicate through the dictionary/index machinery and then narrow the
// surviving row positions with the data-vector search variety over row
// lists (§3.1.2).
struct Predicate {
  enum class Op { kEq, kBetween, kIn, kPrefix };

  std::string column;
  Op op = Op::kEq;
  Value value;                // kEq
  Value lo, hi;               // kBetween (inclusive)
  std::vector<Value> values;  // kIn
  std::string prefix;         // kPrefix (string columns)

  static Predicate Eq(std::string column, Value v) {
    Predicate p;
    p.column = std::move(column);
    p.op = Op::kEq;
    p.value = std::move(v);
    return p;
  }
  static Predicate Between(std::string column, Value lo, Value hi) {
    Predicate p;
    p.column = std::move(column);
    p.op = Op::kBetween;
    p.lo = std::move(lo);
    p.hi = std::move(hi);
    return p;
  }
  static Predicate In(std::string column, std::vector<Value> values) {
    Predicate p;
    p.column = std::move(column);
    p.op = Op::kIn;
    p.values = std::move(values);
    return p;
  }
  static Predicate Prefix(std::string column, std::string prefix) {
    Predicate p;
    p.column = std::move(column);
    p.op = Op::kPrefix;
    p.prefix = std::move(prefix);
    return p;
  }
};

// A range-partitioned columnar table with one hot partition and any number
// of cold partitions (§4). Every query is evaluated independently on the
// main and delta fragment of each partition and the results are combined
// after applying row visibility (§2).
// Per-partition restart info recorded in the store catalog.
struct PartitionManifest {
  bool cold = false;
  uint64_t merge_generation = 0;
  uint64_t main_rows = 0;
};

class Table {
 public:
  Table(TableSchema schema, StorageManager* storage, ResourceManager* rm,
        const ExecOptions& exec_options = ExecOptions{});

  // Restart path: re-attaches a table whose partitions were persisted by a
  // checkpoint. manifests[0] must be the hot partition.
  static Result<std::unique_ptr<Table>> OpenExisting(
      TableSchema schema, StorageManager* storage, ResourceManager* rm,
      const std::vector<PartitionManifest>& manifests,
      const ExecOptions& exec_options = ExecOptions{});

  // Manifests describing the current partitions (for the catalog). Only
  // meaningful right after MergeAll (deltas are memory-only).
  std::vector<PartitionManifest> Manifests() const;

  const TableSchema& schema() const { return schema_; }

  // Replaces the execution layer (e.g. to switch worker count between
  // benchmark phases). Must not race with running queries.
  void set_exec_options(const ExecOptions& options);
  const ExecOptions& exec_options() const { return executor_->options(); }

  // Appends a row to the hot partition's delta fragments.
  Status Insert(const std::vector<Value>& row);

  // Adds a new cold partition (explicit ADD PARTITION, §4.2). Its columns
  // follow the schema's loading preference; cold pages live in the cold
  // paged pool.
  Status AddColdPartition();

  // Ages rows: every visible hot row whose temperature column value
  // compares <= `threshold` is moved to the newest cold partition as an
  // ordinary delete+insert through the delta (§4.2). Returns the number of
  // rows moved. Run MergeAll() afterwards to persist cold mains.
  Result<uint64_t> AgeRows(const Value& threshold);

  // Runs the delta merge on every partition.
  Status MergeAll();

  uint64_t partition_count() const {
    return static_cast<uint64_t>(partitions_.size());
  }
  Partition* hot() { return partitions_[0].get(); }
  Partition* partition(uint32_t id) { return partitions_[id].get(); }

  uint64_t row_count() const;
  uint64_t visible_row_count() const;

  // --- queries (the §6 workload templates) ---------------------------------
  //
  // Every template fans its per-partition work out through the shared
  // QueryExecutor and merges partition results in partition-id order, so
  // serial (worker_threads = 0) and parallel runs return identical results.
  // The optional ExecContext collects per-query counters and carries the
  // query deadline; null means "no accounting".

  // SELECT <select_columns> FROM T WHERE <filter_column> = <value>
  Result<QueryResult> SelectByValue(const std::string& filter_column,
                                    const Value& value,
                                    const std::vector<std::string>&
                                        select_columns,
                                    ExecContext* ctx = nullptr);

  // SELECT COUNT(*) FROM T WHERE <filter_column> = <value>
  Result<uint64_t> CountByValue(const std::string& filter_column,
                                const Value& value,
                                ExecContext* ctx = nullptr);

  // --- batched point lookups (S25) ----------------------------------------
  //
  // Evaluates many `filter_column = probe` lookups in one pass. Per
  // partition this costs one reader (one pin pass over the column's pages)
  // and one merged search_in kernel dispatch over the sorted probe-vid set,
  // instead of one full lookup per probe — the engine-side primitive behind
  // the server's same-partition request batching. Element i of the result
  // is identical to SelectByValue(filter_column, probes[i], select_columns)
  // (same rows, same order); probes may repeat and may be absent from the
  // table (their slot is simply empty).

  Result<std::vector<QueryResult>> MultiSelectByValue(
      const std::string& filter_column, const std::vector<Value>& probes,
      const std::vector<std::string>& select_columns,
      ExecContext* ctx = nullptr);

  // COUNT(*) sibling: element i equals CountByValue(filter_column,
  // probes[i]).
  Result<std::vector<uint64_t>> MultiCountByValue(
      const std::string& filter_column, const std::vector<Value>& probes,
      ExecContext* ctx = nullptr);

  // SELECT ROWID() FROM T WHERE <filter_column> = <value>
  Result<std::vector<RowId>> RowIdsByValue(const std::string& filter_column,
                                           const Value& value,
                                           ExecContext* ctx = nullptr);

  // SELECT <select_columns> FROM T WHERE lo <= <filter_column> <= hi
  Result<QueryResult> SelectRange(const std::string& filter_column,
                                  const Value& lo, const Value& hi,
                                  const std::vector<std::string>&
                                      select_columns,
                                  ExecContext* ctx = nullptr);

  // SELECT SUM(<sum_column>) FROM T WHERE lo <= <filter_column> <= hi.
  // Summation is per-partition partials merged in partition order in both
  // serial and parallel mode, keeping the floating-point result identical.
  Result<double> SumRange(const std::string& filter_column, const Value& lo,
                          const Value& hi, const std::string& sum_column,
                          ExecContext* ctx = nullptr);

  // SELECT <select_columns> FROM T WHERE <filter_column> IN (<values>)
  Result<QueryResult> SelectIn(const std::string& filter_column,
                               const std::vector<Value>& values,
                               const std::vector<std::string>&
                                   select_columns,
                               ExecContext* ctx = nullptr);

  // SELECT COUNT(*) FROM T WHERE <filter_column> IN (<values>)
  Result<uint64_t> CountIn(const std::string& filter_column,
                           const std::vector<Value>& values,
                           ExecContext* ctx = nullptr);

  // SELECT <select_columns> FROM T WHERE <filter_column> LIKE '<prefix>%'
  // (string columns only). The prefix predicate is translated to a vid
  // range through the order-preserving dictionary.
  Result<QueryResult> SelectPrefix(const std::string& filter_column,
                                   const std::string& prefix,
                                   const std::vector<std::string>&
                                       select_columns,
                                   ExecContext* ctx = nullptr);

  Result<uint64_t> CountPrefix(const std::string& filter_column,
                               const std::string& prefix,
                               ExecContext* ctx = nullptr);

  // SELECT <select_columns> FROM T WHERE <p1> AND <p2> AND ...
  Result<QueryResult> SelectWhere(const std::vector<Predicate>& conjuncts,
                                  const std::vector<std::string>&
                                      select_columns,
                                  ExecContext* ctx = nullptr);

  // SELECT COUNT(*) FROM T WHERE <p1> AND <p2> AND ...
  Result<uint64_t> CountWhere(const std::vector<Predicate>& conjuncts,
                              ExecContext* ctx = nullptr);

  // --- memory control -------------------------------------------------------
  void UnloadAll();
  uint64_t ResidentBytes() const;

  // --- monitoring (an M_CS_COLUMNS-style view) ------------------------------
  struct ColumnStats {
    std::string table;
    std::string column;
    uint32_t partition = 0;
    bool cold = false;
    bool page_loadable = false;
    bool has_index = false;
    uint64_t main_rows = 0;
    uint64_t delta_rows = 0;
    uint64_t dict_size = 0;
    uint64_t resident_bytes = 0;  // main fragment only
    // Storage codec of the main fragment's data vector (S22): "plain",
    // "for", "rle" for paged columns, "resident" for fully loaded ones,
    // empty before the first delta merge.
    std::string codec;
  };

  // One row per (partition, column): loading behaviour, sizes, and the
  // bytes currently memory resident.
  std::vector<ColumnStats> CollectColumnStats() const;

 private:
  // Finds matching rows of one partition. Invoked once per partition by the
  // executor drivers — possibly concurrently, so implementations touch only
  // the given partition, per-call readers, and the (atomic) ctx counters.
  using PartitionMatcher =
      std::function<Status(Partition*, ExecContext*, std::vector<RowPos>*)>;

  // The shared fan-out/merge drivers behind every query template. Each runs
  // `matcher` on every partition via the executor (task i writes slot i of a
  // partials vector) and merges the slots in partition-id order.
  Result<QueryResult> ExecuteSelect(const PartitionMatcher& matcher,
                                    const std::vector<int>& select_cols,
                                    ExecContext* ctx);
  Result<uint64_t> ExecuteCount(const PartitionMatcher& matcher,
                                ExecContext* ctx);
  Result<std::vector<RowId>> ExecuteRowIds(const PartitionMatcher& matcher,
                                           ExecContext* ctx);
  Result<double> ExecuteSum(const PartitionMatcher& matcher, int sum_col,
                            ExecContext* ctx);

  // Row positions in `part` whose `col` equals `value`, visible rows only.
  Status FindMatches(Partition* part, int col, const Value& value,
                     ExecContext* ctx, std::vector<RowPos>* out);
  // Multi-probe variant of FindMatches: one dictionary pass + one merged
  // SearchVidSet over the union of probe vids. Appends the matched visible
  // rows (main matches in row order, then delta matches in row order) to
  // *rows and, aligned with it, the indices of the probes each row matched
  // to *row_probes (a row matches every probe equal to its value, so
  // duplicate probes share rows).
  Status MultiFindMatches(Partition* part, int col,
                          const std::vector<Value>& probes, ExecContext* ctx,
                          std::vector<RowPos>* rows,
                          std::vector<std::vector<uint32_t>>* row_probes);
  // Row positions in `part` whose `col` is within [lo, hi], visible only.
  Status FindMatchesRange(Partition* part, int col, const Value& lo,
                          const Value& hi, ExecContext* ctx,
                          std::vector<RowPos>* out);
  // Row positions in `part` whose `col` is in `values`, visible only.
  Status FindMatchesIn(Partition* part, int col,
                       const std::vector<Value>& values, ExecContext* ctx,
                       std::vector<RowPos>* out);
  // Row positions in `part` whose string `col` starts with `prefix`.
  Status FindMatchesPrefix(Partition* part, int col, const std::string& prefix,
                           ExecContext* ctx, std::vector<RowPos>* out);
  // Dispatches one predicate to the matcher above (the "driving" conjunct).
  Status FindByPredicate(Partition* part, const Predicate& pred,
                         ExecContext* ctx, std::vector<RowPos>* out);
  // Narrows candidate rows of `part` by an additional conjunct.
  Status NarrowByPredicate(Partition* part, const Predicate& pred,
                           const std::vector<RowPos>& in, ExecContext* ctx,
                           std::vector<RowPos>* out);
  // Row positions matching every conjunct, per partition.
  Status FindMatchesWhere(Partition* part,
                          const std::vector<Predicate>& conjuncts,
                          ExecContext* ctx, std::vector<RowPos>* out);
  // Materializes `select_columns` of the given rows of one partition.
  Status MaterializeRows(Partition* part, const std::vector<RowPos>& rows,
                         const std::vector<int>& select_cols, ExecContext* ctx,
                         QueryResult* result);
  Result<std::vector<int>> ResolveColumns(
      const std::vector<std::string>& names) const;

  TableSchema schema_;
  StorageManager* storage_;
  ResourceManager* rm_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::unique_ptr<QueryExecutor> executor_;
};

}  // namespace payg

#endif  // PAYG_TABLE_TABLE_H_
