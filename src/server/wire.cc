#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace payg::server::wire {

namespace {

// --- little-endian scalar + string packing --------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt64:
      PutU64(out, static_cast<uint64_t>(v.AsInt64()));
      break;
    case ValueType::kDouble:
      PutU64(out, std::bit_cast<uint64_t>(v.AsDouble()));
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

// Bounds-checked reader over the payload. Every Get* returns false on
// truncation; DecodeRequest/DecodeResponse surface that as one
// InvalidArgument instead of reading past the frame.
struct Cursor {
  std::string_view data;
  size_t pos = 0;

  bool GetU8(uint8_t* v) {
    if (pos + 1 > data.size()) return false;
    *v = static_cast<uint8_t>(data[pos++]);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos + 4 > data.size()) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 4;
    *v = r;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos + 8 > data.size()) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    *v = r;
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len) || pos + len > data.size()) return false;
    s->assign(data.substr(pos, len));
    pos += len;
    return true;
  }
  bool GetValue(Value* v) {
    uint8_t tag = 0;
    if (!GetU8(&tag)) return false;
    switch (tag) {
      case static_cast<uint8_t>(ValueType::kInt64): {
        uint64_t raw = 0;
        if (!GetU64(&raw)) return false;
        *v = Value(static_cast<int64_t>(raw));
        return true;
      }
      case static_cast<uint8_t>(ValueType::kDouble): {
        uint64_t raw = 0;
        if (!GetU64(&raw)) return false;
        *v = Value(std::bit_cast<double>(raw));
        return true;
      }
      case static_cast<uint8_t>(ValueType::kString): {
        std::string s;
        if (!GetString(&s)) return false;
        *v = Value(std::move(s));
        return true;
      }
      default:
        return false;
    }
  }
};

void PutValues(std::string* out, const std::vector<Value>& values) {
  PutU32(out, static_cast<uint32_t>(values.size()));
  for (const Value& v : values) PutValue(out, v);
}

bool GetValues(Cursor* c, std::vector<Value>* values) {
  uint32_t n = 0;
  if (!c->GetU32(&n)) return false;
  // Cheap hostile-length guard: every value costs at least 2 bytes.
  if (static_cast<size_t>(n) * 2 > c->data.size() - c->pos) return false;
  values->resize(n);
  for (Value& v : *values) {
    if (!c->GetValue(&v)) return false;
  }
  return true;
}

void PutStringList(std::string* out, const std::vector<std::string>& items) {
  PutU32(out, static_cast<uint32_t>(items.size()));
  for (const std::string& s : items) PutString(out, s);
}

bool GetStringList(Cursor* c, std::vector<std::string>* items) {
  uint32_t n = 0;
  if (!c->GetU32(&n)) return false;
  if (static_cast<size_t>(n) * 4 > c->data.size() - c->pos) return false;
  items->resize(n);
  for (std::string& s : *items) {
    if (!c->GetString(&s)) return false;
  }
  return true;
}

void PutPredicate(std::string* out, const Predicate& p) {
  PutU8(out, static_cast<uint8_t>(p.op));
  PutString(out, p.column);
  switch (p.op) {
    case Predicate::Op::kEq:
      PutValue(out, p.value);
      break;
    case Predicate::Op::kBetween:
      PutValue(out, p.lo);
      PutValue(out, p.hi);
      break;
    case Predicate::Op::kIn:
      PutValues(out, p.values);
      break;
    case Predicate::Op::kPrefix:
      PutString(out, p.prefix);
      break;
  }
}

bool GetPredicate(Cursor* c, Predicate* p) {
  uint8_t op = 0;
  if (!c->GetU8(&op) || op > static_cast<uint8_t>(Predicate::Op::kPrefix)) {
    return false;
  }
  p->op = static_cast<Predicate::Op>(op);
  if (!c->GetString(&p->column)) return false;
  switch (p->op) {
    case Predicate::Op::kEq:
      return c->GetValue(&p->value);
    case Predicate::Op::kBetween:
      return c->GetValue(&p->lo) && c->GetValue(&p->hi);
    case Predicate::Op::kIn:
      return GetValues(c, &p->values);
    case Predicate::Op::kPrefix:
      return c->GetString(&p->prefix);
  }
  return false;
}

void PutQueryResult(std::string* out, const QueryResult& result) {
  PutU32(out, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    PutU32(out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) PutValue(out, v);
  }
}

bool GetQueryResult(Cursor* c, QueryResult* result) {
  uint32_t n = 0;
  if (!c->GetU32(&n)) return false;
  if (static_cast<size_t>(n) * 4 > c->data.size() - c->pos) return false;
  result->rows.resize(n);
  for (auto& row : result->rows) {
    uint32_t cols = 0;
    if (!c->GetU32(&cols)) return false;
    if (static_cast<size_t>(cols) * 2 > c->data.size() - c->pos) return false;
    row.resize(cols);
    for (Value& v : row) {
      if (!c->GetValue(&v)) return false;
    }
  }
  return true;
}

Status Truncated() {
  return Status::InvalidArgument("truncated or malformed wire payload");
}

}  // namespace

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "Ok";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kNotFound: return "NotFound";
    case Code::kAlreadyExists: return "AlreadyExists";
    case Code::kOutOfRange: return "OutOfRange";
    case Code::kIOError: return "IOError";
    case Code::kCorruption: return "Corruption";
    case Code::kResourceExhausted: return "ResourceExhausted";
    case Code::kFailedPrecondition: return "FailedPrecondition";
    case Code::kUnsupported: return "Unsupported";
    case Code::kInternal: return "Internal";
    case Code::kDeadlineExceeded: return "DeadlineExceeded";
    case Code::kOverloaded: return "Overloaded";
    case Code::kShedDeadline: return "ShedDeadline";
    case Code::kBadRequest: return "BadRequest";
  }
  return "Unknown";
}

Code CodeFromStatus(const Status& status) {
  // StatusCode and the low Code values are aligned by construction.
  return static_cast<Code>(static_cast<int>(status.code()));
}

std::string EncodeRequest(const Request& req) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(req.op));
  PutU64(&out, req.deadline_us);
  PutString(&out, req.table);
  switch (req.op) {
    case Op::kPing:
    case Op::kDumpStats:
      break;
    case Op::kSelectByValue:
      PutString(&out, req.column);
      PutValue(&out, req.value);
      PutStringList(&out, req.select_columns);
      break;
    case Op::kCountByValue:
    case Op::kRowIdsByValue:
      PutString(&out, req.column);
      PutValue(&out, req.value);
      break;
    case Op::kSelectRange:
      PutString(&out, req.column);
      PutValue(&out, req.lo);
      PutValue(&out, req.hi);
      PutStringList(&out, req.select_columns);
      break;
    case Op::kSumRange:
      PutString(&out, req.column);
      PutValue(&out, req.lo);
      PutValue(&out, req.hi);
      PutString(&out, req.sum_column);
      break;
    case Op::kSelectIn:
      PutString(&out, req.column);
      PutValues(&out, req.values);
      PutStringList(&out, req.select_columns);
      break;
    case Op::kCountIn:
      PutString(&out, req.column);
      PutValues(&out, req.values);
      break;
    case Op::kSelectPrefix:
      PutString(&out, req.column);
      PutString(&out, req.prefix);
      PutStringList(&out, req.select_columns);
      break;
    case Op::kCountPrefix:
      PutString(&out, req.column);
      PutString(&out, req.prefix);
      break;
    case Op::kSelectWhere: {
      PutU32(&out, static_cast<uint32_t>(req.predicates.size()));
      for (const Predicate& p : req.predicates) PutPredicate(&out, p);
      PutStringList(&out, req.select_columns);
      break;
    }
    case Op::kCountWhere: {
      PutU32(&out, static_cast<uint32_t>(req.predicates.size()));
      for (const Predicate& p : req.predicates) PutPredicate(&out, p);
      break;
    }
  }
  return out;
}

Status DecodeRequest(std::string_view payload, Request* out) {
  Cursor c{payload};
  uint8_t op = 0;
  if (!c.GetU8(&op) || op > static_cast<uint8_t>(Op::kDumpStats)) {
    return Status::InvalidArgument("unknown opcode");
  }
  out->op = static_cast<Op>(op);
  if (!c.GetU64(&out->deadline_us) || !c.GetString(&out->table)) {
    return Truncated();
  }
  bool ok = true;
  switch (out->op) {
    case Op::kPing:
    case Op::kDumpStats:
      break;
    case Op::kSelectByValue:
      ok = c.GetString(&out->column) && c.GetValue(&out->value) &&
           GetStringList(&c, &out->select_columns);
      break;
    case Op::kCountByValue:
    case Op::kRowIdsByValue:
      ok = c.GetString(&out->column) && c.GetValue(&out->value);
      break;
    case Op::kSelectRange:
      ok = c.GetString(&out->column) && c.GetValue(&out->lo) &&
           c.GetValue(&out->hi) && GetStringList(&c, &out->select_columns);
      break;
    case Op::kSumRange:
      ok = c.GetString(&out->column) && c.GetValue(&out->lo) &&
           c.GetValue(&out->hi) && c.GetString(&out->sum_column);
      break;
    case Op::kSelectIn:
      ok = c.GetString(&out->column) && GetValues(&c, &out->values) &&
           GetStringList(&c, &out->select_columns);
      break;
    case Op::kCountIn:
      ok = c.GetString(&out->column) && GetValues(&c, &out->values);
      break;
    case Op::kSelectPrefix:
      ok = c.GetString(&out->column) && c.GetString(&out->prefix) &&
           GetStringList(&c, &out->select_columns);
      break;
    case Op::kCountPrefix:
      ok = c.GetString(&out->column) && c.GetString(&out->prefix);
      break;
    case Op::kSelectWhere:
    case Op::kCountWhere: {
      uint32_t n = 0;
      // Bound against the bytes actually left in the frame, not the frame
      // size: a payload whose table string eats the frame could otherwise
      // claim millions of predicates and force a huge resize before the
      // first GetPredicate ever fails. Every predicate costs at least
      // op:u8 + column-length:u32 = 5 bytes on the wire.
      ok = c.GetU32(&n) &&
           static_cast<size_t>(n) * 5 <= c.data.size() - c.pos;
      if (ok) {
        out->predicates.resize(n);
        for (Predicate& p : out->predicates) {
          if (!GetPredicate(&c, &p)) {
            ok = false;
            break;
          }
        }
      }
      if (ok && out->op == Op::kSelectWhere) {
        ok = GetStringList(&c, &out->select_columns);
      }
      break;
    }
  }
  if (!ok) return Truncated();
  return Status::OK();
}

std::string EncodeResponse(Op op, const Response& resp) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(resp.code));
  PutU64(&out, resp.query_id);
  if (resp.code != Code::kOk) {
    PutString(&out, resp.message);
    return out;
  }
  switch (op) {
    case Op::kPing:
    case Op::kDumpStats:
      break;
    case Op::kSelectByValue:
    case Op::kSelectRange:
    case Op::kSelectIn:
    case Op::kSelectPrefix:
    case Op::kSelectWhere:
      PutQueryResult(&out, resp.result);
      break;
    case Op::kCountByValue:
    case Op::kCountIn:
    case Op::kCountPrefix:
    case Op::kCountWhere:
      PutU64(&out, resp.count);
      break;
    case Op::kSumRange:
      PutU64(&out, std::bit_cast<uint64_t>(resp.sum));
      break;
    case Op::kRowIdsByValue:
      PutU32(&out, static_cast<uint32_t>(resp.row_ids.size()));
      for (const RowId& id : resp.row_ids) {
        PutU32(&out, id.partition);
        PutU32(&out, id.row);
      }
      break;
  }
  return out;
}

Status DecodeResponse(Op op, std::string_view payload, Response* out) {
  Cursor c{payload};
  uint8_t code = 0;
  if (!c.GetU8(&code) || !c.GetU64(&out->query_id)) return Truncated();
  out->code = static_cast<Code>(code);
  if (out->code != Code::kOk) {
    if (!c.GetString(&out->message)) return Truncated();
    return Status::OK();
  }
  bool ok = true;
  switch (op) {
    case Op::kPing:
    case Op::kDumpStats:
      break;
    case Op::kSelectByValue:
    case Op::kSelectRange:
    case Op::kSelectIn:
    case Op::kSelectPrefix:
    case Op::kSelectWhere:
      ok = GetQueryResult(&c, &out->result);
      break;
    case Op::kCountByValue:
    case Op::kCountIn:
    case Op::kCountPrefix:
    case Op::kCountWhere:
      ok = c.GetU64(&out->count);
      break;
    case Op::kSumRange: {
      uint64_t raw = 0;
      ok = c.GetU64(&raw);
      if (ok) out->sum = std::bit_cast<double>(raw);
      break;
    }
    case Op::kRowIdsByValue: {
      uint32_t n = 0;
      ok = c.GetU32(&n) &&
           static_cast<size_t>(n) * 8 <= c.data.size() - c.pos;
      if (ok) {
        out->row_ids.resize(n);
        for (RowId& id : out->row_ids) {
          uint32_t part = 0, row = 0;
          if (!c.GetU32(&part) || !c.GetU32(&row)) {
            ok = false;
            break;
          }
          id.partition = part;
          id.row = row;
        }
      }
      break;
    }
  }
  if (!ok) return Truncated();
  return Status::OK();
}

// --- frame transport ------------------------------------------------------

Status WriteFrame(int fd, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 4);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

Status ReadFull(int fd, char* buf, size_t len, bool* eof_at_start) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::recv(fd, buf + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (off == 0 && eof_at_start != nullptr) *eof_at_start = true;
      return Status::IOError("connection closed mid-frame");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload, uint32_t max_len) {
  char hdr[4];
  bool eof = false;
  Status s = ReadFull(fd, hdr, sizeof hdr, &eof);
  if (!s.ok()) {
    // A peer that closes between frames is a clean disconnect, not an error.
    if (eof) return Status::NotFound("eof");
    return s;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(hdr[i])) << (8 * i);
  }
  if (len > max_len) {
    return Status::InvalidArgument("frame larger than limit");
  }
  payload->resize(len);
  if (len > 0) {
    PAYG_RETURN_IF_ERROR(ReadFull(fd, payload->data(), len, nullptr));
  }
  return Status::OK();
}

}  // namespace payg::server::wire
