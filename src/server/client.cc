#include "server/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace payg::server {

namespace {

Result<int> ConnectFd(int domain, const sockaddr* addr, socklen_t len,
                      const std::string& what) {
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int rc;
  do {
    rc = ::connect(fd, addr, len);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int saved = errno;
    ::close(fd);
    return Status::IOError("connect " + what + ": " + std::strerror(saved));
  }
  return fd;
}

Status StatusFromCode(wire::Code code, const std::string& message) {
  switch (code) {
    case wire::Code::kOk:
      return Status::OK();
    case wire::Code::kOverloaded:
      return Status::ResourceExhausted("server overloaded: " + message);
    case wire::Code::kShedDeadline:
      return Status::DeadlineExceeded("shed in admission queue: " + message);
    case wire::Code::kBadRequest:
      return Status::InvalidArgument("bad request: " + message);
    default:
      break;
  }
  // Codes < 100 mirror StatusCode one to one.
  const auto sc = static_cast<StatusCode>(static_cast<int>(code));
  switch (sc) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kUnsupported:
      return Status::Unsupported(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    default:
      return Status::Internal(message);
  }
}

}  // namespace

Result<std::unique_ptr<Client>> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("unix socket path too long");
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  PAYG_ASSIGN_OR_RETURN(
      int fd, ConnectFd(AF_UNIX, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr, path));
  return std::unique_ptr<Client>(new Client(fd));
}

Result<std::unique_ptr<Client>> Client::ConnectTcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  PAYG_ASSIGN_OR_RETURN(
      int fd, ConnectFd(AF_INET, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr, "127.0.0.1:" + std::to_string(port)));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<wire::Response> Client::RoundTrip(const wire::Request& req) {
  PAYG_RETURN_IF_ERROR(wire::WriteFrame(fd_, wire::EncodeRequest(req)));
  std::string payload;
  PAYG_RETURN_IF_ERROR(wire::ReadFrame(fd_, &payload));
  wire::Response resp;
  PAYG_RETURN_IF_ERROR(wire::DecodeResponse(req.op, payload, &resp));
  last_code_ = resp.code;
  last_query_id_ = resp.query_id;
  if (resp.code != wire::Code::kOk) {
    return StatusFromCode(resp.code, resp.message);
  }
  return resp;
}

Status Client::Ping() {
  wire::Request req;
  req.op = wire::Op::kPing;
  return RoundTrip(req).status();
}

Status Client::DumpStats() {
  wire::Request req;
  req.op = wire::Op::kDumpStats;
  return RoundTrip(req).status();
}

Result<QueryResult> Client::SelectByValue(
    const std::string& table, const std::string& column, const Value& value,
    const std::vector<std::string>& select_columns, uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSelectByValue;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.value = value;
  req.select_columns = select_columns;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.result);
}

Result<uint64_t> Client::CountByValue(const std::string& table,
                                      const std::string& column,
                                      const Value& value,
                                      uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kCountByValue;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.value = value;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return resp.count;
}

Result<std::vector<RowId>> Client::RowIdsByValue(const std::string& table,
                                                 const std::string& column,
                                                 const Value& value,
                                                 uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kRowIdsByValue;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.value = value;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.row_ids);
}

Result<QueryResult> Client::SelectRange(
    const std::string& table, const std::string& column, const Value& lo,
    const Value& hi, const std::vector<std::string>& select_columns,
    uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSelectRange;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.lo = lo;
  req.hi = hi;
  req.select_columns = select_columns;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.result);
}

Result<double> Client::SumRange(const std::string& table,
                                const std::string& column, const Value& lo,
                                const Value& hi,
                                const std::string& sum_column,
                                uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSumRange;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.lo = lo;
  req.hi = hi;
  req.sum_column = sum_column;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return resp.sum;
}

Result<QueryResult> Client::SelectIn(
    const std::string& table, const std::string& column,
    const std::vector<Value>& values,
    const std::vector<std::string>& select_columns, uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSelectIn;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.values = values;
  req.select_columns = select_columns;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.result);
}

Result<uint64_t> Client::CountIn(const std::string& table,
                                 const std::string& column,
                                 const std::vector<Value>& values,
                                 uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kCountIn;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.values = values;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return resp.count;
}

Result<QueryResult> Client::SelectPrefix(
    const std::string& table, const std::string& column,
    const std::string& prefix,
    const std::vector<std::string>& select_columns, uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSelectPrefix;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.prefix = prefix;
  req.select_columns = select_columns;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.result);
}

Result<uint64_t> Client::CountPrefix(const std::string& table,
                                     const std::string& column,
                                     const std::string& prefix,
                                     uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kCountPrefix;
  req.deadline_us = deadline_us;
  req.table = table;
  req.column = column;
  req.prefix = prefix;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return resp.count;
}

Result<QueryResult> Client::SelectWhere(
    const std::string& table, const std::vector<Predicate>& predicates,
    const std::vector<std::string>& select_columns, uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kSelectWhere;
  req.deadline_us = deadline_us;
  req.table = table;
  req.predicates = predicates;
  req.select_columns = select_columns;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return std::move(resp.result);
}

Result<uint64_t> Client::CountWhere(const std::string& table,
                                    const std::vector<Predicate>& predicates,
                                    uint64_t deadline_us) {
  wire::Request req;
  req.op = wire::Op::kCountWhere;
  req.deadline_us = deadline_us;
  req.table = table;
  req.predicates = predicates;
  PAYG_ASSIGN_OR_RETURN(wire::Response resp, RoundTrip(req));
  return resp.count;
}

}  // namespace payg::server
