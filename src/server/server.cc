#include "server/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/env.h"
#include "obs/stats_dumper.h"
#include "obs/trace.h"

namespace payg::server {

namespace {

using Clock = ExecContext::Clock;

uint64_t ElapsedUs(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

// The engine's typed compares assert on type mismatches (schema-typed
// queries); the wire is untrusted, so every filter operand is validated
// against the schema here, before the request can reach a kernel.
Status CheckOperandType(const TableSchema& schema, const std::string& column,
                        const Value& v) {
  const int col = schema.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column named '" + column + "'");
  }
  if (schema.columns[col].type != v.type()) {
    return Status::InvalidArgument("operand type mismatch on column '" +
                                   column + "'");
  }
  return Status::OK();
}

Status CheckStringColumn(const TableSchema& schema,
                         const std::string& column) {
  const int col = schema.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column named '" + column + "'");
  }
  if (schema.columns[col].type != ValueType::kString) {
    return Status::InvalidArgument("prefix filter on non-string column '" +
                                   column + "'");
  }
  return Status::OK();
}

// Type-validates every filter operand of `req` against `schema`.
Status ValidateRequest(const TableSchema& schema, const wire::Request& req) {
  using wire::Op;
  switch (req.op) {
    case Op::kPing:
    case Op::kDumpStats:
      return Status::OK();
    case Op::kSelectByValue:
    case Op::kCountByValue:
    case Op::kRowIdsByValue:
      return CheckOperandType(schema, req.column, req.value);
    case Op::kSelectRange:
    case Op::kSumRange:
      PAYG_RETURN_IF_ERROR(CheckOperandType(schema, req.column, req.lo));
      return CheckOperandType(schema, req.column, req.hi);
    case Op::kSelectIn:
    case Op::kCountIn:
      for (const Value& v : req.values) {
        PAYG_RETURN_IF_ERROR(CheckOperandType(schema, req.column, v));
      }
      return Status::OK();
    case Op::kSelectPrefix:
    case Op::kCountPrefix:
      return CheckStringColumn(schema, req.column);
    case Op::kSelectWhere:
    case Op::kCountWhere:
      for (const Predicate& p : req.predicates) {
        switch (p.op) {
          case Predicate::Op::kEq:
            PAYG_RETURN_IF_ERROR(
                CheckOperandType(schema, p.column, p.value));
            break;
          case Predicate::Op::kBetween:
            PAYG_RETURN_IF_ERROR(CheckOperandType(schema, p.column, p.lo));
            PAYG_RETURN_IF_ERROR(CheckOperandType(schema, p.column, p.hi));
            break;
          case Predicate::Op::kIn:
            for (const Value& v : p.values) {
              PAYG_RETURN_IF_ERROR(CheckOperandType(schema, p.column, v));
            }
            break;
          case Predicate::Op::kPrefix:
            PAYG_RETURN_IF_ERROR(CheckStringColumn(schema, p.column));
            break;
        }
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown opcode");
}

wire::Response ErrorResponse(const Status& status, uint64_t query_id) {
  wire::Response resp;
  resp.code = wire::CodeFromStatus(status);
  resp.query_id = query_id;
  resp.message = status.message();
  return resp;
}

}  // namespace

ServerOptions ServerOptions::FromEnv() {
  ServerOptions o;
  if (const char* path = EnvRaw("PAYG_SERVER_SOCKET")) o.unix_path = path;
  o.tcp_port = static_cast<int>(
      EnvLong("PAYG_SERVER_PORT", 0, 65535, o.tcp_port));
  o.max_sessions = static_cast<uint32_t>(
      EnvLong("PAYG_SERVER_MAX_SESSIONS", 1, 4096, o.max_sessions));
  o.queue_capacity = static_cast<uint32_t>(
      EnvLong("PAYG_SERVER_QUEUE", 1, 1 << 20, o.queue_capacity));
  o.worker_threads = static_cast<uint32_t>(
      EnvLong("PAYG_SERVER_WORKERS", 1, 256, o.worker_threads));
  o.max_batch = static_cast<uint32_t>(
      EnvLong("PAYG_SERVER_MAX_BATCH", 1, 4096, o.max_batch));
  o.batch_window_us = static_cast<uint32_t>(
      EnvLong("PAYG_SERVER_BATCH_WINDOW_US", 0, 1000000, o.batch_window_us));
  if (const char* dir = EnvRaw("PAYG_STATS_DIR")) o.stats_dir = dir;
  return o;
}

Server::Server(ColumnStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {
  auto& reg = obs::MetricsRegistry::Global();
  accepted_ = reg.counter("server.accepted");
  rejected_sessions_ = reg.counter("server.rejected_sessions");
  active_sessions_ = reg.gauge("server.active_sessions");
  requests_ = reg.counter("server.requests");
  queue_depth_ = reg.gauge("server.queue_depth");
  queue_wait_us_ = reg.histogram("server.queue_wait_us");
  request_latency_us_ = reg.histogram("server.request_latency_us");
  batches_ = reg.counter("server.batches");
  batch_size_ = reg.histogram("server.batch_size");
  shed_ = reg.counter("server.shed");
  shed_overload_ = reg.counter("server.shed_overload");
  shed_deadline_ = reg.counter("server.shed_deadline");
}

Server::~Server() { Stop(); }

Status Server::Listen() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      return Status::IOError(std::string("bind ") + options_.unix_path +
                             ": " + std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0) {
      return Status::IOError(std::string("bind port ") +
                             std::to_string(options_.tcp_port) + ": " +
                             std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      return Status::IOError(std::string("getsockname: ") +
                             std::strerror(errno));
    }
    port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  obs::StatsDumper::Global().StartFromEnv();
  PAYG_RETURN_IF_ERROR(Listen());
  for (uint32_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load()) return;
  {
    MutexLock lk(queue_mu_);
    if (stopping_) return;  // second Stop (e.g. destructor after Stop)
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  // The acceptor polls with a short timeout, so flipping the flag ends it
  // within one tick; the fd is closed only after the join (no fd reuse
  // race). Shutting down session fds makes blocked recv() return 0.
  stop_accept_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    MutexLock lk(sessions_mu_);
    for (auto& s : sessions_) {
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RDWR);
    }
  }
  {
    // Join session threads outside sessions_mu_ (a session takes the lock
    // on its own exit path).
    std::vector<std::unique_ptr<Session>> taken;
    {
      MutexLock lk(sessions_mu_);
      taken.swap(sessions_);
    }
    for (auto& s : taken) {
      if (s->thread.joinable()) s->thread.join();
    }
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void Server::AcceptLoop() {
  while (!stop_accept_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;  // timeout tick: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;
    }
    accepted_->Inc();

    // Reap sessions that already finished so a long-lived server does not
    // accumulate dead thread objects.
    std::vector<std::unique_ptr<Session>> dead;
    bool at_capacity = false;
    {
      MutexLock lk(sessions_mu_);
      for (size_t i = 0; i < sessions_.size();) {
        if (sessions_[i]->finished.load(std::memory_order_acquire)) {
          dead.push_back(std::move(sessions_[i]));
          sessions_[i] = std::move(sessions_.back());
          sessions_.pop_back();
        } else {
          ++i;
        }
      }
      at_capacity = sessions_.size() >= options_.max_sessions;
    }
    for (auto& s : dead) {
      if (s->thread.joinable()) s->thread.join();
    }

    if (at_capacity) {
      rejected_sessions_->Inc();
      wire::Response resp;
      resp.code = wire::Code::kOverloaded;
      resp.message = "session limit reached";
      // Best effort: the peer may not even read it before the close.
      (void)wire::WriteFrame(  // lint:allow(dropped-status) courtesy frame
          fd, wire::EncodeResponse(wire::Op::kPing, resp));
      ::close(fd);
      continue;
    }

    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    {
      MutexLock lk(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    active_sessions_->Add(1);
    raw->thread = std::thread([this, raw] { SessionLoop(raw); });
  }
}

void Server::SessionLoop(Session* session) {
  std::string payload;
  while (true) {
    payload.clear();
    Status s = wire::ReadFrame(session->fd, &payload);
    if (!s.ok()) break;  // clean eof or transport error: drop the session

    wire::Request req;
    wire::Response resp;
    Status parsed = wire::DecodeRequest(payload, &req);
    if (!parsed.ok()) {
      resp.code = wire::Code::kBadRequest;
      resp.message = parsed.message();
      // Echo as a kPing-shaped frame: code != kOk carries only the message,
      // so the op used for encoding is irrelevant.
      if (!wire::WriteFrame(session->fd,
                            wire::EncodeResponse(wire::Op::kPing, resp))
               .ok()) {
        break;
      }
      continue;
    }

    resp = Dispatch(req);
    if (!wire::WriteFrame(session->fd, wire::EncodeResponse(req.op, resp))
             .ok()) {
      break;
    }
  }
  ::close(session->fd);
  active_sessions_->Add(-1);
  session->finished.store(true, std::memory_order_release);
}

wire::Response Server::Dispatch(const wire::Request& req) {
  requests_->Inc();
  wire::Response resp;

  if (req.op == wire::Op::kPing) {
    return resp;
  }
  if (req.op == wire::Op::kDumpStats) {
    Status s = obs::StatsDumper::DumpOnce(options_.stats_dir);
    if (!s.ok()) return ErrorResponse(s, 0);
    resp.message = options_.stats_dir;
    return resp;
  }

  Pending pending;
  pending.req = req;
  pending.arrival = Clock::now();
  pending.deadline =
      req.deadline_us == 0
          ? Clock::time_point::max()
          : pending.arrival + std::chrono::microseconds(req.deadline_us);

  {
    MutexLock lk(queue_mu_);
    if (stopping_ || queue_.size() >= options_.queue_capacity) {
      shed_->Inc();
      shed_overload_->Inc();
      resp.code = wire::Code::kOverloaded;
      resp.message = stopping_ ? "server stopping" : "admission queue full";
      return resp;
    }
    queue_.push_back(&pending);
    queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.NotifyOne();

  {
    MutexLock lk(pending.mu);
    while (!pending.done) pending.cv.Wait(pending.mu);
    resp = std::move(pending.resp);
  }
  request_latency_us_->Record(ElapsedUs(pending.arrival, Clock::now()));
  return resp;
}

void Server::Complete(Pending* p, wire::Response resp) {
  // Signal while holding the mutex: the Pending lives on the session
  // thread's stack and is destroyed as soon as the waiter sees `done`, so
  // an after-unlock signal could touch a condvar that no longer exists.
  // Under the lock, the waiter cannot re-acquire (and thus cannot return
  // and destroy the record) until this frame has fully released it.
  MutexLock lk(p->mu);
  p->resp = std::move(resp);
  p->done = true;
  p->cv.NotifyOne();
}

bool Server::SameBatchKey(const wire::Request& a, const wire::Request& b) {
  return a.op == b.op && a.table == b.table && a.column == b.column &&
         a.select_columns == b.select_columns;
}

void Server::CollectBatchLocked(const wire::Request& lead,
                                std::vector<Pending*>* batch) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < options_.max_batch;) {
    if (SameBatchKey(lead, (*it)->req)) {
      batch->push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::WorkerLoop() {
  while (true) {
    Pending* head = nullptr;
    std::vector<Pending*> batch;
    {
      UniqueLock lk(queue_mu_);
      while (queue_.empty() && !stopping_) queue_cv_.Wait(queue_mu_);
      if (queue_.empty() && stopping_) return;
      head = queue_.front();
      queue_.pop_front();

      if (wire::IsBatchable(head->req.op) && options_.max_batch > 1) {
        batch.push_back(head);
        // Opportunistic pass: coalesce whatever is already queued.
        CollectBatchLocked(head->req, &batch);
        // Optional batch window: trade latency for batch size by waiting
        // for more mates. Bounded by both the window and max_batch.
        if (options_.batch_window_us > 0 &&
            batch.size() < options_.max_batch) {
          const auto window_end =
              Clock::now() +
              std::chrono::microseconds(options_.batch_window_us);
          while (batch.size() < options_.max_batch && !stopping_) {
            const auto now = Clock::now();
            if (now >= window_end) break;
            (void)queue_cv_.WaitFor(queue_mu_, window_end - now);
            CollectBatchLocked(head->req, &batch);
          }
        }
      }
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }

    const auto now = Clock::now();
    if (batch.empty()) {
      // Non-batchable single request.
      queue_wait_us_->Record(ElapsedUs(head->arrival, now));
      if (now > head->deadline) {
        shed_->Inc();
        shed_deadline_->Inc();
        obs::MetricsRegistry::Global()
            .counter("query.deadline_exceeded")
            ->Inc();
        wire::Response resp;
        resp.code = wire::Code::kShedDeadline;
        resp.message = "deadline expired in admission queue";
        Complete(head, std::move(resp));
        continue;
      }
      Complete(head, ExecuteSingle(head->req, head->deadline));
      continue;
    }

    // Shed batch members whose deadline lapsed while queued; they never
    // reach the executor.
    std::vector<Pending*> live;
    live.reserve(batch.size());
    for (Pending* p : batch) {
      queue_wait_us_->Record(ElapsedUs(p->arrival, now));
      if (now > p->deadline) {
        shed_->Inc();
        shed_deadline_->Inc();
        obs::MetricsRegistry::Global()
            .counter("query.deadline_exceeded")
            ->Inc();
        wire::Response resp;
        resp.code = wire::Code::kShedDeadline;
        resp.message = "deadline expired in admission queue";
        Complete(p, std::move(resp));
      } else {
        live.push_back(p);
      }
    }
    if (!live.empty()) ExecuteBatch(live);
  }
}

void Server::ExecuteBatch(std::vector<Pending*>& batch) {
  batches_->Inc();
  batch_size_->Record(batch.size());

  const wire::Request& lead = batch.front()->req;
  auto table_result = store_->GetTable(lead.table);
  if (!table_result.ok()) {
    for (Pending* p : batch) {
      Complete(p, ErrorResponse(table_result.status(), 0));
    }
    return;
  }
  Table* table = *table_result;

  ExecContext ctx;
  // The batch runs under the loosest member deadline; members that wanted
  // less are not re-penalized — their result is simply a bit late, which
  // the client sees as latency, not an error.
  Clock::time_point deadline = Clock::time_point::min();
  for (Pending* p : batch) deadline = std::max(deadline, p->deadline);
  if (deadline != Clock::time_point::max()) ctx.deadline = deadline;

  // Invalid members (e.g. mistyped probe value) fail alone without
  // poisoning the merged probe set.
  std::vector<Pending*> valid;
  std::vector<Value> probes;
  valid.reserve(batch.size());
  probes.reserve(batch.size());
  for (Pending* p : batch) {
    Status ok = ValidateRequest(table->schema(), p->req);
    if (!ok.ok()) {
      Complete(p, ErrorResponse(ok, ctx.query_id));
    } else {
      valid.push_back(p);
      probes.push_back(p->req.value);
    }
  }
  if (valid.empty()) return;

  obs::TraceSpan span("server", "batch", ctx.query_id);
  obs::TraceTaskScope task(ctx.query_id);

  if (lead.op == wire::Op::kSelectByValue) {
    auto results = table->MultiSelectByValue(lead.column, probes,
                                             lead.select_columns, &ctx);
    for (size_t i = 0; i < valid.size(); ++i) {
      if (!results.ok()) {
        Complete(valid[i], ErrorResponse(results.status(), ctx.query_id));
        continue;
      }
      wire::Response resp;
      resp.query_id = ctx.query_id;
      resp.result = std::move((*results)[i]);
      Complete(valid[i], std::move(resp));
    }
  } else {
    auto counts = table->MultiCountByValue(lead.column, probes, &ctx);
    for (size_t i = 0; i < valid.size(); ++i) {
      if (!counts.ok()) {
        Complete(valid[i], ErrorResponse(counts.status(), ctx.query_id));
        continue;
      }
      wire::Response resp;
      resp.query_id = ctx.query_id;
      resp.count = (*counts)[i];
      Complete(valid[i], std::move(resp));
    }
  }
}

wire::Response Server::ExecuteSingle(const wire::Request& req,
                                     Clock::time_point deadline) {
  auto table_result = store_->GetTable(req.table);
  if (!table_result.ok()) {
    return ErrorResponse(table_result.status(), 0);
  }
  Table* table = *table_result;
  Status valid = ValidateRequest(table->schema(), req);
  if (!valid.ok()) return ErrorResponse(valid, 0);

  ExecContext ctx;
  // The remaining budget (absolute, anchored at receipt — queue wait has
  // already been spent from it) lets the executor cancel mid-query.
  if (deadline != Clock::time_point::max()) ctx.deadline = deadline;

  obs::TraceSpan span("server", "request", ctx.query_id);
  obs::TraceTaskScope task(ctx.query_id);

  wire::Response resp;
  resp.query_id = ctx.query_id;
  switch (req.op) {
    case wire::Op::kSelectByValue: {
      auto r = table->SelectByValue(req.column, req.value,
                                    req.select_columns, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.result = std::move(*r);
      return resp;
    }
    case wire::Op::kCountByValue: {
      auto r = table->CountByValue(req.column, req.value, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.count = *r;
      return resp;
    }
    case wire::Op::kRowIdsByValue: {
      auto r = table->RowIdsByValue(req.column, req.value, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.row_ids = std::move(*r);
      return resp;
    }
    case wire::Op::kSelectRange: {
      auto r = table->SelectRange(req.column, req.lo, req.hi,
                                  req.select_columns, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.result = std::move(*r);
      return resp;
    }
    case wire::Op::kSumRange: {
      auto r = table->SumRange(req.column, req.lo, req.hi, req.sum_column,
                               &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.sum = *r;
      return resp;
    }
    case wire::Op::kSelectIn: {
      auto r = table->SelectIn(req.column, req.values, req.select_columns,
                               &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.result = std::move(*r);
      return resp;
    }
    case wire::Op::kCountIn: {
      auto r = table->CountIn(req.column, req.values, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.count = *r;
      return resp;
    }
    case wire::Op::kSelectPrefix: {
      auto r = table->SelectPrefix(req.column, req.prefix,
                                   req.select_columns, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.result = std::move(*r);
      return resp;
    }
    case wire::Op::kCountPrefix: {
      auto r = table->CountPrefix(req.column, req.prefix, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.count = *r;
      return resp;
    }
    case wire::Op::kSelectWhere: {
      auto r = table->SelectWhere(req.predicates, req.select_columns, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.result = std::move(*r);
      return resp;
    }
    case wire::Op::kCountWhere: {
      auto r = table->CountWhere(req.predicates, &ctx);
      if (!r.ok()) return ErrorResponse(r.status(), ctx.query_id);
      resp.count = *r;
      return resp;
    }
    case wire::Op::kPing:
    case wire::Op::kDumpStats:
      break;  // handled in Dispatch
  }
  return ErrorResponse(Status::Internal("unreachable opcode"), 0);
}

}  // namespace payg::server
