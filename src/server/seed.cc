#include "server/seed.h"

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "columnar/value.h"
#include "table/schema.h"

namespace payg::server {

Status SeedDemoTable(ColumnStore* store, const SeedSpec& spec) {
  const uint64_t key_space =
      spec.key_space > 0 ? spec.key_space
                         : (spec.rows >= 8 ? spec.rows / 8 : 1);

  TableSchema schema;
  schema.name = "T";
  schema.columns.push_back({.name = "k",
                            .type = ValueType::kInt64,
                            .page_loadable = true});
  schema.columns.push_back({.name = "v",
                            .type = ValueType::kInt64,
                            .page_loadable = true});
  schema.columns.push_back({.name = "tag",
                            .type = ValueType::kString,
                            .page_loadable = true});

  PAYG_ASSIGN_OR_RETURN(Table * table, store->CreateTable(schema));

  // Keys are placed uniformly at random (fixed seed): a clustered layout
  // (e.g. i % key_space) would let the per-page min/max summaries prune a
  // point lookup down to one page, which is not the workload the front
  // door's batcher exists for. Random placement is the honest model of
  // point lookups on an unindexed column: every probe scans every page.
  std::mt19937_64 rng(0xC0FFEE);
  char buf[16];
  for (uint64_t i = 0; i < spec.rows; ++i) {
    const auto k = static_cast<int64_t>(rng() % key_space);
    std::snprintf(buf, sizeof buf, "K%06ld", static_cast<long>(k));
    PAYG_RETURN_IF_ERROR(table->Insert({Value(k),
                                        Value(static_cast<int64_t>(i)),
                                        Value(std::string(buf))}));
  }
  return table->MergeAll();
}

}  // namespace payg::server
