#ifndef PAYG_SERVER_SERVER_H_
#define PAYG_SERVER_SERVER_H_

// Network front door (S25): a multi-client TCP/unix-socket server in front
// of one ColumnStore. Architecture:
//
//   acceptor thread ── one session thread per connection
//        │                       │  parse frame, admin ops inline
//        │                       ▼
//        │              bounded admission queue  ── full → shed (kOverloaded)
//        │                       │
//        │                       ▼
//        └──────────── worker pool (worker_threads)
//                                │  deadline-expired in queue → kShedDeadline
//                                │  batchable same-key neighbours → one
//                                │  Multi{Select,Count}ByValue executor task
//                                ▼
//                       session thread writes the response frame
//
// Lock order: a worker never holds queue_mu_ while executing a query (the
// executor takes its own locks); per-request mu is leaf-level. sessions_mu_
// and queue_mu_ are never held together.

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/column_store.h"
#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "server/wire.h"

namespace payg::server {

// Knobs, each with a PAYG_SERVER_* env override (see FromEnv).
struct ServerOptions {
  // Non-empty: listen on this unix socket path (unlinked and re-created).
  // Empty: listen on 127.0.0.1:tcp_port (0 = kernel-assigned; read the
  // resolved port from Server::port() after Start).
  std::string unix_path;
  int tcp_port = 0;
  // Admission control.
  uint32_t max_sessions = 64;     // concurrent connections before reject
  uint32_t queue_capacity = 256;  // queued requests before kOverloaded shed
  uint32_t worker_threads = 4;    // executor-facing consumers
  // Batching stage.
  uint32_t max_batch = 64;       // probes coalesced per executor task; 1
                                 // disables batching entirely
  uint32_t batch_window_us = 0;  // extra wait for batch mates after the
                                 // first batchable request is popped; 0 =
                                 // opportunistic only (coalesce what is
                                 // already queued, never delay)
  // Target directory of the kDumpStats admin op (metrics.json/.prom).
  std::string stats_dir = "payg_stats";

  // Reads PAYG_SERVER_SOCKET, PAYG_SERVER_PORT, PAYG_SERVER_MAX_SESSIONS,
  // PAYG_SERVER_QUEUE, PAYG_SERVER_WORKERS, PAYG_SERVER_MAX_BATCH,
  // PAYG_SERVER_BATCH_WINDOW_US and PAYG_STATS_DIR over the defaults above.
  static ServerOptions FromEnv();
};

class Server {
 public:
  // `store` must outlive the server. Does not listen yet.
  Server(ColumnStore* store, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens and starts acceptor + workers. Also arms StatsDumper
  // from the environment (idempotent) so a server process exports metrics
  // without an embedding ColumnStore::Open having done it.
  Status Start();

  // Stops accepting, drains the queue (queued requests are completed or
  // shed, never lost), closes every session and joins all threads.
  // Idempotent.
  void Stop();

  // Resolved listen address, valid after Start().
  int port() const { return port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  const ServerOptions& options() const { return options_; }

 private:
  // One queued query request. The session thread blocks on `cv` until a
  // worker (or the shed path) publishes `resp` and flips `done`.
  struct Pending {
    wire::Request req;
    ExecContext::Clock::time_point arrival;
    ExecContext::Clock::time_point deadline;  // max() = none
    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
    wire::Response resp GUARDED_BY(mu);
  };

  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  Status Listen();
  void AcceptLoop();
  void SessionLoop(Session* session);
  void WorkerLoop();

  // Handles one decoded request on the session thread: admin ops inline,
  // query ops through the queue. Returns the response to frame back.
  wire::Response Dispatch(const wire::Request& req);

  // Executes one non-batchable request against the store. `deadline` is the
  // request's absolute deadline (max() = none), already queue-checked.
  wire::Response ExecuteSingle(const wire::Request& req,
                               ExecContext::Clock::time_point deadline);

  // Pulls every queued request sharing the lead's batch key into `batch`,
  // up to options_.max_batch, preserving queue order for the rest.
  void CollectBatchLocked(const wire::Request& lead,
                          std::vector<Pending*>* batch) REQUIRES(queue_mu_);

  // Executes a batch of batchable requests sharing one key (op, table,
  // column, select_columns) as one Multi*ByValue call and completes every
  // member.
  void ExecuteBatch(std::vector<Pending*>& batch);

  void Complete(Pending* p, wire::Response resp);

  // True when `b` can join a batch led by `a`.
  static bool SameBatchKey(const wire::Request& a, const wire::Request& b);

  ColumnStore* const store_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;

  Mutex queue_mu_;
  CondVar queue_cv_ /* signalled on push and on stop */;
  std::deque<Pending*> queue_ GUARDED_BY(queue_mu_);
  bool stopping_ GUARDED_BY(queue_mu_) = false;

  Mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_ GUARDED_BY(sessions_mu_);

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_accept_{false};

  // server.* metric family (resolved once; registry pointers are stable).
  obs::Counter* accepted_;
  obs::Counter* rejected_sessions_;
  obs::Gauge* active_sessions_;
  obs::Counter* requests_;
  obs::Gauge* queue_depth_;
  obs::Histogram* queue_wait_us_;
  obs::Histogram* request_latency_us_;
  obs::Counter* batches_;
  obs::Histogram* batch_size_;
  obs::Counter* shed_;
  obs::Counter* shed_overload_;
  obs::Counter* shed_deadline_;
};

}  // namespace payg::server

#endif  // PAYG_SERVER_SERVER_H_
