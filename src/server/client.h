#ifndef PAYG_SERVER_CLIENT_H_
#define PAYG_SERVER_CLIENT_H_

// Blocking client of the S25 wire protocol: one connection, one in-flight
// request (the protocol is a strict request/response alternation). Not
// thread-safe — benches give every closed-loop thread its own Client.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/wire.h"

namespace payg::server {

class Client {
 public:
  static Result<std::unique_ptr<Client>> ConnectUnix(const std::string& path);
  static Result<std::unique_ptr<Client>> ConnectTcp(int port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Every query op takes an optional per-request deadline budget in
  // microseconds (0 = none), measured by the server from receipt. Errors
  // come back as the engine Status for codes < 100; server-shell codes map
  // to ResourceExhausted (kOverloaded), DeadlineExceeded (kShedDeadline)
  // and InvalidArgument (kBadRequest) — last_code() keeps the exact wire
  // code for callers that need to tell them apart.

  Status Ping();
  // Asks the server to export metrics.json/.prom into its stats dir.
  Status DumpStats();

  Result<QueryResult> SelectByValue(const std::string& table,
                                    const std::string& column,
                                    const Value& value,
                                    const std::vector<std::string>&
                                        select_columns,
                                    uint64_t deadline_us = 0);
  Result<uint64_t> CountByValue(const std::string& table,
                                const std::string& column, const Value& value,
                                uint64_t deadline_us = 0);
  Result<std::vector<RowId>> RowIdsByValue(const std::string& table,
                                           const std::string& column,
                                           const Value& value,
                                           uint64_t deadline_us = 0);
  Result<QueryResult> SelectRange(const std::string& table,
                                  const std::string& column, const Value& lo,
                                  const Value& hi,
                                  const std::vector<std::string>&
                                      select_columns,
                                  uint64_t deadline_us = 0);
  Result<double> SumRange(const std::string& table, const std::string& column,
                          const Value& lo, const Value& hi,
                          const std::string& sum_column,
                          uint64_t deadline_us = 0);
  Result<QueryResult> SelectIn(const std::string& table,
                               const std::string& column,
                               const std::vector<Value>& values,
                               const std::vector<std::string>& select_columns,
                               uint64_t deadline_us = 0);
  Result<uint64_t> CountIn(const std::string& table,
                           const std::string& column,
                           const std::vector<Value>& values,
                           uint64_t deadline_us = 0);
  Result<QueryResult> SelectPrefix(const std::string& table,
                                   const std::string& column,
                                   const std::string& prefix,
                                   const std::vector<std::string>&
                                       select_columns,
                                   uint64_t deadline_us = 0);
  Result<uint64_t> CountPrefix(const std::string& table,
                               const std::string& column,
                               const std::string& prefix,
                               uint64_t deadline_us = 0);
  Result<QueryResult> SelectWhere(const std::string& table,
                                  const std::vector<Predicate>& predicates,
                                  const std::vector<std::string>&
                                      select_columns,
                                  uint64_t deadline_us = 0);
  Result<uint64_t> CountWhere(const std::string& table,
                              const std::vector<Predicate>& predicates,
                              uint64_t deadline_us = 0);

  // Wire code and server query id of the most recent round trip.
  wire::Code last_code() const { return last_code_; }
  uint64_t last_query_id() const { return last_query_id_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  // Sends `req`, reads the response frame, records last_code/last_query_id
  // and maps non-OK codes to a Status.
  Result<wire::Response> RoundTrip(const wire::Request& req);

  int fd_;
  wire::Code last_code_ = wire::Code::kOk;
  uint64_t last_query_id_ = 0;
};

}  // namespace payg::server

#endif  // PAYG_SERVER_CLIENT_H_
