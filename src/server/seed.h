#ifndef PAYG_SERVER_SEED_H_
#define PAYG_SERVER_SEED_H_

// Demo/bench dataset shared by payg_server, bench_server and the server
// tests: one table "T" with page-loadable columns
//   k   int64  — lookup key, uniform random over [0, key_space) with a
//                fixed seed; every key occurs ~rows/key_space times.
//                Deliberately NOT indexed and deliberately not clustered:
//                a point lookup costs a full (paged) scan that page
//                summaries cannot prune, which is exactly the cost the
//                same-partition batcher amortizes.
//   v   int64  — payload, equal to the row number
//   tag string — "K%06ld" of k, for prefix queries over the wire
// Rows are inserted into the hot delta and merged, so queries run against
// main fragments.

#include <cstdint>

#include "common/status.h"
#include "core/column_store.h"

namespace payg::server {

struct SeedSpec {
  uint64_t rows = 100000;
  uint64_t key_space = 0;  // 0 → rows / 8 (each key ~8 times)
};

Status SeedDemoTable(ColumnStore* store, const SeedSpec& spec);

}  // namespace payg::server

#endif  // PAYG_SERVER_SEED_H_
