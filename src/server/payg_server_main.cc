// payg_server — the network front door binary (S25).
//
// Opens (or creates and seeds) a ColumnStore and serves the wire protocol
// until SIGINT/SIGTERM. Knobs (all env):
//   PAYG_SERVER_SOCKET          unix socket path (preferred for local use)
//   PAYG_SERVER_PORT            TCP port on 127.0.0.1 (when no socket path;
//                               0 = kernel-assigned, printed at startup)
//   PAYG_SERVER_MAX_SESSIONS    concurrent connections before reject (64)
//   PAYG_SERVER_QUEUE           admission queue bound (256)
//   PAYG_SERVER_WORKERS         executor-facing worker threads (4)
//   PAYG_SERVER_MAX_BATCH       max coalesced point lookups per task (64)
//   PAYG_SERVER_BATCH_WINDOW_US extra wait for batch mates (0 = off)
//   PAYG_SERVER_DATA            store directory (default payg_server_data)
//   PAYG_SERVER_SEED_ROWS       rows of the demo table seeded into a fresh
//                               store (default 100000; 0 = no seeding)
//   PAYG_SERVER_LATENCY_US      simulated per-page read latency
//   PAYG_STATS_DUMP_SECS/PAYG_STATS_DIR  periodic metrics export

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "common/env.h"
#include "core/column_store.h"
#include "server/seed.h"
#include "server/server.h"

namespace {

// Signal handler → flag; the main thread does the actual shutdown.
volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

}  // namespace

int main() {
  using payg::ColumnStore;
  using payg::ColumnStoreOptions;

  ColumnStoreOptions store_options;
  store_options.directory =
      payg::EnvRaw("PAYG_SERVER_DATA") ? payg::EnvRaw("PAYG_SERVER_DATA")
                                       : "payg_server_data";
  store_options.storage.simulated_read_latency_us = static_cast<uint32_t>(
      payg::EnvLong("PAYG_SERVER_LATENCY_US", 0, 1000000, 0));

  auto store = ColumnStore::Open(store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "payg_server: open %s: %s\n",
                 store_options.directory.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }

  // Seed a fresh store so the binary is usable out of the box; a restarted
  // store keeps its checkpointed tables.
  if (!(*store)->GetTable("T").ok()) {
    payg::server::SeedSpec seed;
    seed.rows = static_cast<uint64_t>(
        payg::EnvLong("PAYG_SERVER_SEED_ROWS", 0, 100000000, 100000));
    if (seed.rows > 0) {
      payg::Status s = payg::server::SeedDemoTable(store->get(), seed);
      if (!s.ok()) {
        std::fprintf(stderr, "payg_server: seed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "payg_server: seeded table T with %llu rows\n",
                   static_cast<unsigned long long>(seed.rows));
    }
  }

  payg::server::Server server(store->get(),
                              payg::server::ServerOptions::FromEnv());
  payg::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "payg_server: start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  if (!server.unix_path().empty()) {
    std::fprintf(stderr, "payg_server: listening on %s\n",
                 server.unix_path().c_str());
  } else {
    std::fprintf(stderr, "payg_server: listening on 127.0.0.1:%d\n",
                 server.port());
  }
  std::fflush(stderr);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t empty;
  sigemptyset(&empty);
  while (g_stop == 0) {
    sigsuspend(&empty);  // returns on any delivered signal
  }

  std::fprintf(stderr, "payg_server: shutting down\n");
  server.Stop();
  return 0;
}
