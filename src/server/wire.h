#ifndef PAYG_SERVER_WIRE_H_
#define PAYG_SERVER_WIRE_H_

// Length-prefixed binary wire protocol of the network front door (S25).
//
// Every frame is a little-endian u32 payload length followed by the
// payload; requests and responses are one frame each, and a session is a
// strict request/response alternation (no pipelining — the admission
// queue, not the connection, is where concurrency lives).
//
// Request payload:
//   u8  opcode (Op)
//   u64 deadline_us — client budget relative to server receipt; 0 = none
//   str table
//   ... per-opcode operands (see EncodeRequest)
//
// Response payload:
//   u8  code (Code)
//   u64 query_id — server-side ExecContext id (0 when none was created),
//                  the correlation key into traces and slow-query dumps
//   code != kOk: str message
//   code == kOk: per-opcode result body (see EncodeResponse)
//
// Scalars are little-endian; `str` is u32 length + bytes; a Value is a u8
// type tag (ValueType) + i64 / double-bits / str.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "table/table.h"

namespace payg::server::wire {

// One opcode per Table-2 query shape, plus admin verbs.
enum class Op : uint8_t {
  kPing = 0,
  kSelectByValue = 1,
  kCountByValue = 2,
  kRowIdsByValue = 3,
  kSelectRange = 4,
  kSumRange = 5,
  kSelectIn = 6,
  kCountIn = 7,
  kSelectPrefix = 8,
  kCountPrefix = 9,
  kSelectWhere = 10,
  kCountWhere = 11,
  // Admin: synchronous StatsDumper::DumpOnce into the server's stats dir —
  // the "SIGUSR1 over the wire" an operator scrapes metrics.prom through.
  kDumpStats = 12,
};

// True for the ops the admission layer may coalesce into one executor task
// (same table + filter column + select list → merged probe set).
inline bool IsBatchable(Op op) {
  return op == Op::kSelectByValue || op == Op::kCountByValue;
}

// Response status. Values < 100 mirror payg::StatusCode one to one; values
// >= 100 are produced by the server shell itself, never by the engine —
// clients distinguish "the query failed" from "the server refused to run
// it" by the range.
enum class Code : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kResourceExhausted = 7,
  kFailedPrecondition = 8,
  kUnsupported = 9,
  kInternal = 10,
  kDeadlineExceeded = 11,
  // Admission queue full — the request was shed before queueing (fast
  // fail; retry with backoff).
  kOverloaded = 100,
  // The client deadline expired while the request sat in the admission
  // queue; it never reached the executor.
  kShedDeadline = 101,
  // The request frame could not be parsed.
  kBadRequest = 102,
};

const char* CodeName(Code code);
Code CodeFromStatus(const Status& status);

// Parsed request. Operand fields beyond what the opcode uses are ignored.
struct Request {
  Op op = Op::kPing;
  uint64_t deadline_us = 0;
  std::string table;
  std::string column;      // filter column of the *ByValue/Range/In/Prefix ops
  std::string sum_column;  // kSumRange
  Value value;             // kSelectByValue/kCountByValue/kRowIdsByValue
  Value lo, hi;            // kSelectRange/kSumRange
  std::vector<Value> values;          // kSelectIn/kCountIn
  std::string prefix;                 // kSelectPrefix/kCountPrefix
  std::vector<Predicate> predicates;  // kSelectWhere/kCountWhere
  std::vector<std::string> select_columns;  // empty = SELECT *
};

// Response for any opcode; which result field is meaningful follows from
// the request's opcode.
struct Response {
  Code code = Code::kOk;
  uint64_t query_id = 0;
  std::string message;          // code != kOk
  QueryResult result;           // select shapes
  uint64_t count = 0;           // count shapes
  double sum = 0;               // kSumRange
  std::vector<RowId> row_ids;   // kRowIdsByValue
};

std::string EncodeRequest(const Request& req);
Status DecodeRequest(std::string_view payload, Request* out);

std::string EncodeResponse(Op op, const Response& resp);
Status DecodeResponse(Op op, std::string_view payload, Response* out);

// Frame transport over a connected stream socket. Both retry EINTR and
// loop over partial transfers; ReadFrame rejects frames larger than
// `max_len` (wire corruption / hostile peer) and reports a clean
// end-of-stream as kNotFound with message "eof".
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;
Status WriteFrame(int fd, std::string_view payload);
Status ReadFrame(int fd, std::string* payload,
                 uint32_t max_len = kMaxFrameBytes);

}  // namespace payg::server::wire

#endif  // PAYG_SERVER_WIRE_H_
