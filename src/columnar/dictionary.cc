#include "columnar/dictionary.h"

#include <algorithm>

namespace payg {

Dictionary Dictionary::FromSorted(ValueType type, std::vector<Value> sorted) {
  Dictionary d(type);
#ifndef NDEBUG
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    PAYG_ASSERT_MSG(sorted[i].Compare(sorted[i + 1]) < 0,
                    "dictionary input not sorted/unique");
  }
#endif
  d.values_ = std::move(sorted);
  return d;
}

std::optional<ValueId> Dictionary::FindValueId(const Value& value) const {
  auto it = std::lower_bound(
      values_.begin(), values_.end(), value,
      [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  if (it == values_.end() || !(*it == value)) return std::nullopt;
  return static_cast<ValueId>(it - values_.begin());
}

ValueId Dictionary::LowerBound(const Value& value) const {
  auto it = std::lower_bound(
      values_.begin(), values_.end(), value,
      [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return static_cast<ValueId>(it - values_.begin());
}

ValueId Dictionary::UpperBound(const Value& value) const {
  auto it = std::upper_bound(
      values_.begin(), values_.end(), value,
      [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return static_cast<ValueId>(it - values_.begin());
}

uint64_t Dictionary::MemoryBytes() const {
  uint64_t bytes = values_.capacity() * sizeof(Value);
  for (const Value& v : values_) bytes += v.MemoryBytes();
  return bytes;
}

}  // namespace payg
