#include "columnar/value.h"

#include <cstring>

namespace payg {

std::string_view ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  PAYG_ASSERT_MSG(type() == other.type(), "comparing values of unequal type");
  switch (type()) {
    case ValueType::kInt64: {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kDouble: {
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString:
      return AsString().compare(other.AsString());
  }
  return 0;
}

std::string Value::EncodeKey() const {
  std::string key;
  key.push_back(static_cast<char>(type()));
  switch (type()) {
    case ValueType::kInt64: {
      int64_t v = AsInt64();
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      double v = AsDouble();
      key.append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case ValueType::kString:
      key.append(AsString());
      break;
  }
  return key;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "";
}

}  // namespace payg
