#ifndef PAYG_COLUMNAR_DELTA_FRAGMENT_H_
#define PAYG_COLUMNAR_DELTA_FRAGMENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/value.h"
#include "common/macros.h"
#include "encoding/types.h"

namespace payg {

// Write-optimized delta fragment of one column (§2). Inserts append a row;
// the dictionary is built in arrival order (NOT order-preserving — keeping
// it sorted under writes would be too costly, as the paper notes), with a
// hash map for value→vid lookup. Always fully memory resident; the regular
// delta merge keeps it small relative to the main fragment.
class DeltaFragment {
 public:
  explicit DeltaFragment(ValueType type) : type_(type) {}

  // Enables the memory-resident inverted index on this delta (§2: "each
  // fragment may also have a memory resident inverted index"). Maintained
  // incrementally by Append; FindRows then answers without scanning the vid
  // vector. Must be called while the fragment is empty.
  void EnableIndex() {
    PAYG_ASSERT_MSG(empty(), "enable the delta index before inserts");
    indexed_ = true;
  }
  bool has_index() const { return indexed_; }

  ValueType type() const { return type_; }
  uint64_t row_count() const { return vids_.size(); }
  uint64_t dict_size() const { return dict_values_.size(); }
  bool empty() const { return vids_.empty(); }

  // Appends one row, interning the value. Returns the row position.
  RowPos Append(const Value& value);

  ValueId GetVid(RowPos rpos) const {
    PAYG_ASSERT(rpos < vids_.size());
    return vids_[rpos];
  }

  const Value& GetValue(ValueId vid) const {
    PAYG_ASSERT(vid < dict_values_.size());
    return dict_values_[vid];
  }

  // Row positions (within the delta) whose value equals `value`.
  void FindRows(const Value& value, std::vector<RowPos>* out) const;

  // Row positions whose value v satisfies lo <= v <= hi. Because the delta
  // dictionary is unsorted, qualifying vids are first collected by a
  // dictionary scan, then the vid vector is scanned.
  void FindRowsInRange(const Value& lo, const Value& hi,
                       std::vector<RowPos>* out) const;

  // Row positions whose value satisfies an arbitrary predicate (IN-lists,
  // prefix matches). One dictionary scan, then one vid-vector scan.
  void FindRowsMatching(const std::function<bool(const Value&)>& pred,
                        std::vector<RowPos>* out) const;

  const std::vector<ValueId>& vids() const { return vids_; }
  const std::vector<Value>& dict_values() const { return dict_values_; }

  uint64_t MemoryBytes() const;

  void Clear();

 private:
  ValueType type_;
  bool indexed_ = false;
  std::vector<ValueId> vids_;
  std::vector<Value> dict_values_;                  // by first appearance
  std::unordered_map<std::string, ValueId> lookup_; // EncodeKey → vid
  std::vector<std::vector<RowPos>> postings_;       // per vid, if indexed_
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_DELTA_FRAGMENT_H_
